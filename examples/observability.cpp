// Observability: the metrics registry and query-pipeline tracing from
// application code. Runs the same windows through RBM and BWM, then reads
// back three views of what happened — the Prometheus exposition (what a
// scraper sees), a per-stage latency table from the span histograms, and
// the service's own counter snapshot with per-method percentiles.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/observability

#include <iostream>

#include "core/database.h"
#include "core/query_service.h"
#include "datasets/augment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/table_printer.h"

int main() {
  // Fine-grained spans (per cluster accept, per rule walk) are off by
  // default to protect the hot path; a diagnostics pass opts in.
  mmdb::obs::Tracer::SetDetailEnabled(true);

  // 1. A helmet collection, most of it stored as edit scripts.
  auto db_or = mmdb::MultimediaDatabase::Open();
  if (!db_or.ok()) {
    std::cerr << db_or.status().ToString() << "\n";
    return 1;
  }
  auto db = std::move(db_or).value();
  mmdb::datasets::DatasetSpec spec;
  spec.kind = mmdb::datasets::DatasetKind::kHelmets;
  spec.total_images = 200;
  spec.edited_fraction = 0.8;
  spec.seed = 21;
  if (!mmdb::datasets::BuildAugmentedDatabase(db.get(), spec).ok()) {
    return 1;
  }

  // 2. Identical windows through both access paths, batched on the pool.
  mmdb::Rng rng(5);
  const auto windows = mmdb::datasets::MakeRangeWorkload(
      db->quantizer(), mmdb::datasets::HelmetPalette(), 8, rng);
  std::vector<mmdb::QueryRequest> batch;
  for (const auto& window : windows) {
    batch.push_back(
        mmdb::QueryRequest::Range(window, mmdb::QueryMethod::kRbm));
    batch.push_back(
        mmdb::QueryRequest::Range(window, mmdb::QueryMethod::kBwm));
  }
  mmdb::QueryService service(db.get(), mmdb::QueryServiceOptions{4, {}});
  for (const auto& result : service.ExecuteBatch(batch)) {
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
  }

  // 3. Where the time went, per span site. Every span's wall time also
  //    lands in the registry as mmdb_span_seconds{span="<stage>"}.
  mmdb::TablePrinter table({"stage", "spans", "total ms", "mean us"});
  for (const auto& summary : mmdb::obs::Tracer::Default().Summaries()) {
    table.AddRow({summary.name,
                  mmdb::TablePrinter::Cell(summary.seconds.count),
                  mmdb::TablePrinter::Cell(summary.seconds.sum * 1e3, 3),
                  mmdb::TablePrinter::Cell(summary.seconds.mean() * 1e6,
                                           2)});
  }
  std::cout << "per-stage latency (from span histograms):\n";
  table.Print(std::cout);

  // 4. The service's counters: note the per-method p50/p95/max rows and
  //    the executor queue-wait accounting.
  std::cout << "\nquery service snapshot:\n";
  service.Snapshot().PrintTo(std::cout);

  // 5. The scrape view: counters, gauges, and histograms in Prometheus
  //    text exposition format 0.0.4.
  std::cout << "\nPrometheus exposition:\n";
  mmdb::obs::Registry::Default().WriteText(std::cout);
  return 0;
}
