// Flag retrieval: build an augmented database of synthetic world-flag
// images (the paper's first dataset), run color range queries with RBM
// and BWM, and compare their work. Also exports a couple of PPMs so you
// can look at the data.
//
// Run: ./build/examples/flag_search [total_images] [pct_edit_stored]

#include <cstdlib>
#include <map>
#include <iostream>

#include "core/database.h"
#include "datasets/augment.h"
#include "image/ppm_io.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  const int total = argc > 1 ? std::atoi(argv[1]) : 400;
  const double pct = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.8;

  auto db = mmdb::MultimediaDatabase::Open().value();
  mmdb::datasets::DatasetSpec spec;
  spec.kind = mmdb::datasets::DatasetKind::kFlags;
  spec.total_images = total;
  spec.edited_fraction = pct;
  spec.seed = 7;
  mmdb::datasets::DatasetStats stats;
  {
    auto built = mmdb::datasets::BuildAugmentedDatabase(db.get(), spec);
    if (!built.ok()) {
      std::cerr << built.status().ToString() << "\n";
      return 1;
    }
    stats = std::move(built).value();
  }
  std::cout << "flag database: " << stats.base_ids.size() << " originals, "
            << stats.materialized_ids.size() << " materialized variants, "
            << stats.edited_ids.size() << " edit-sequence variants ("
            << stats.widening_only << " bound-widening-only, "
            << stats.non_widening << " unclassified)\n";

  // Export one original and the instantiation of one edited variant.
  const auto first = db->GetImage(stats.base_ids.front());
  if (first.ok()) {
    mmdb::WritePpmFile(*first, "flag_original.ppm").ok();
  }
  if (!stats.edited_ids.empty()) {
    const auto variant = db->GetImage(stats.edited_ids.front());
    if (variant.ok()) {
      mmdb::WritePpmFile(*variant, "flag_variant.ppm").ok();
      std::cout << "wrote flag_original.ppm and flag_variant.ppm\n";
    }
  }

  // Add the named real-world flags so results read like the paper's
  // dataset would.
  std::map<mmdb::ObjectId, std::string> names;
  for (const auto& world : mmdb::datasets::MakeWorldFlags()) {
    const auto id = db->InsertBinaryImage(world.image);
    if (id.ok()) names[*id] = world.label;
  }

  // The paper's example query, verbatim: "Retrieve all images that are
  // at least 25% blue."
  mmdb::RangeQuery at_least_25_blue;
  at_least_25_blue.bin = db->BinOf(mmdb::colors::kBlue);
  at_least_25_blue.min_fraction = 0.25;
  at_least_25_blue.max_fraction = 1.0;

  {
    const auto result =
        db->RunRange(at_least_25_blue, mmdb::QueryMethod::kBwm).value();
    std::cout << "\n\"at least 25% blue\" among the named flags:";
    for (mmdb::ObjectId id : result.ids) {
      const auto it = names.find(id);
      if (it != names.end()) std::cout << " " << it->second;
    }
    std::cout << "\n\n";
  }

  mmdb::Rng rng(11);
  std::vector<mmdb::RangeQuery> workload = {at_least_25_blue};
  const auto more = mmdb::datasets::MakeGroundedRangeWorkload(
      db->collection(), db->quantizer(), mmdb::datasets::FlagPalette(), 19,
      rng);
  workload.insert(workload.end(), more.begin(), more.end());

  for (const auto& [name, method] :
       {std::pair{"RBM (w/out data structure)", mmdb::QueryMethod::kRbm},
        std::pair{"BWM (with data structure) ", mmdb::QueryMethod::kBwm}}) {
    mmdb::Stopwatch watch;
    mmdb::QueryStats total_stats;
    size_t total_matches = 0;
    for (const mmdb::RangeQuery& query : workload) {
      const auto result = db->RunRange(query, method);
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      total_matches += result->ids.size();
      total_stats += result->stats;
    }
    std::cout << name << ": " << workload.size() << " queries in "
              << watch.ElapsedMicros() << " us, " << total_matches
              << " matches, " << total_stats.rules_applied
              << " rules applied, " << total_stats.edited_images_skipped
              << " edited images accepted without touching their ops\n";
  }

  // Show the paper-verbatim query's answer in detail.
  const auto blue = db->RunRange(at_least_25_blue,
                                 mmdb::QueryMethod::kBwm).value();
  std::cout << "\n\"at least 25% blue\" matched " << blue.ids.size()
            << " images; with base connections: "
            << db->ExpandWithConnections(blue.ids).size() << "\n";
  return 0;
}
