// Query service: the serving layer over the augmented database. Builds a
// flag collection, then answers a whole batch of range, conjunctive
// (hard-wired and cost-planned), and top-k similarity queries
// concurrently on the service's persistent worker pool — with the
// per-query answers identical (including order) to serial facade
// dispatch — and prints the service's counter snapshot.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/query_service

#include <iostream>
#include <vector>

#include "core/query_service.h"
#include "datasets/augment.h"

int main() {
  // 1. A flag collection, most of it stored as edit sequences.
  auto db_or = mmdb::MultimediaDatabase::Open();
  if (!db_or.ok()) {
    std::cerr << db_or.status().ToString() << "\n";
    return 1;
  }
  auto db = std::move(db_or).value();
  mmdb::datasets::DatasetSpec spec;
  spec.total_images = 200;
  spec.edited_fraction = 0.8;
  spec.seed = 7;
  auto built = mmdb::datasets::BuildAugmentedDatabase(db.get(), spec);
  if (!built.ok()) {
    std::cerr << built.status().ToString() << "\n";
    return 1;
  }
  std::cout << "collection: " << built->binary_ids.size()
            << " conventional images, " << built->edited_ids.size()
            << " stored as edit sequences\n";

  // 2. A batch mixing access paths and query shapes. Independent reads
  //    like these are exactly what the pool runs concurrently; the
  //    database just must not be mutated while a batch is in flight.
  mmdb::Rng rng(11);
  const auto windows = mmdb::datasets::MakeGroundedRangeWorkload(
      db->collection(), db->quantizer(), mmdb::datasets::FlagPalette(), 8,
      rng);
  std::vector<mmdb::QueryRequest> batch;
  for (const auto& window : windows) {
    batch.push_back(
        mmdb::QueryRequest::Range(window, mmdb::QueryMethod::kBwm));
    batch.push_back(
        mmdb::QueryRequest::Range(window, mmdb::QueryMethod::kParallelRbm));
  }
  mmdb::ConjunctiveQuery conjunctive;
  conjunctive.conjuncts.push_back(windows[0]);
  conjunctive.conjuncts.push_back(windows[1]);
  batch.push_back(mmdb::QueryRequest::Conjunctive(
      conjunctive, mmdb::QueryMethod::kBwmIndexed));
  // kPlanned re-orders the conjuncts most-selective-first and picks the
  // driver's access method from the cost model (docs/QUERYING.md §2).
  batch.push_back(mmdb::QueryRequest::Conjunctive(
      conjunctive, mmdb::QueryMethod::kPlanned));
  // Top-k nearest-histogram search rides the same batch: exact distances
  // for conventional images, provable [lo, hi] intervals for edited ones.
  mmdb::SimilarityQuery nearest;
  nearest.histogram = mmdb::ColorHistogram(db->quantizer().BinCount());
  nearest.histogram.Add(db->BinOf(mmdb::Rgb(0, 0, 255)), 1);
  nearest.k = 5;
  batch.push_back(mmdb::QueryRequest::Similarity(nearest));

  // 3. Execute the whole batch across a 4-thread service.
  mmdb::QueryService service(db.get(), mmdb::QueryServiceOptions{4, {}});
  const auto results = service.ExecuteBatch(batch);
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::cerr << "query " << i << ": "
                << results[i].status().ToString() << "\n";
      return 1;
    }
  }
  std::cout << "executed " << results.size() << " queries on "
            << service.threads() << " threads; first answer has "
            << results.front()->ids.size() << " matches\n";
  const auto& knn = *results.back();
  std::cout << "nearest-to-blue candidates (k=5, no false negatives): "
            << knn.matches.size() << "; closest id " << knn.matches[0].id
            << " at d=[" << knn.matches[0].distance_lo << ", "
            << knn.matches[0].distance_hi << "]\n\n";

  // 4. Per-query work rolls up into the service counters.
  service.Snapshot().PrintTo(std::cout);
  return 0;
}
