// Helmet (logo) retrieval with a persistent, disk-backed database: the
// paper's second dataset, exercised through the storage engine rather
// than in memory. Builds the database on first run, reopens it on later
// runs, and answers range + similarity queries.
//
// Run: ./build/examples/helmet_retrieval [db_path]

#include <cstdio>
#include <iostream>

#include "core/database.h"
#include "core/similarity.h"
#include "datasets/augment.h"
#include "index/histogram_index.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "helmets.mmdb";

  mmdb::DatabaseOptions options;
  options.path = path;
  options.pool_pages = 512;
  auto db_or = mmdb::MultimediaDatabase::Open(options);
  if (!db_or.ok()) {
    std::cerr << db_or.status().ToString() << "\n";
    return 1;
  }
  auto db = std::move(db_or).value();

  if (db->collection().BinaryCount() == 0) {
    std::cout << "building " << path << " ...\n";
    mmdb::datasets::DatasetSpec spec;
    spec.kind = mmdb::datasets::DatasetKind::kHelmets;
    spec.total_images = 300;
    spec.edited_fraction = 0.7;
    spec.seed = 1234;
    const auto stats =
        mmdb::datasets::BuildAugmentedDatabase(db.get(), spec);
    if (!stats.ok()) {
      std::cerr << stats.status().ToString() << "\n";
      return 1;
    }
    if (auto flushed = db->Flush(); !flushed.ok()) {
      std::cerr << flushed.ToString() << "\n";
      return 1;
    }
  } else {
    std::cout << "reopened " << path << "\n";
  }
  std::cout << "database holds " << db->collection().BinaryCount()
            << " binary + " << db->collection().EditedCount()
            << " edit-sequence images; BWM Main component covers "
            << db->bwm_index().MainEditedCount() << " of them\n";

  // Conventional access path for the binary images: histogram R-tree.
  mmdb::HistogramIndex index(db->quantizer().BinCount());
  for (mmdb::ObjectId id : db->collection().binary_ids()) {
    if (auto inserted =
            index.Insert(id, db->collection().FindBinary(id)->histogram);
        !inserted.ok()) {
      std::cerr << inserted.ToString() << "\n";
      return 1;
    }
  }

  // "Find helmets that are at least 20% navy" (a team-color search).
  mmdb::RangeQuery query;
  query.bin = db->BinOf(mmdb::colors::kNavy);
  query.min_fraction = 0.2;
  query.max_fraction = 1.0;

  mmdb::Stopwatch watch;
  const auto via_index = index.RangeSearch(query).value();
  const auto index_us = watch.ElapsedMicros();
  watch.Restart();
  const auto via_bwm = db->RunRange(query, mmdb::QueryMethod::kBwm).value();
  const auto bwm_us = watch.ElapsedMicros();

  std::cout << "\n\"at least 20% navy\":\n"
            << "  R-tree over binary signatures: " << via_index.size()
            << " binary matches in " << index_us << " us\n"
            << "  BWM over the whole augmented DB: " << via_bwm.ids.size()
            << " matches (binary + edited) in " << bwm_us << " us, "
            << via_bwm.stats.edited_images_skipped
            << " edited images accepted from Main clusters\n";

  // Query-by-example: nearest neighbors of a stored helmet.
  const mmdb::ObjectId probe = db->collection().binary_ids().front();
  const mmdb::SimilaritySearcher searcher(&db->collection(),
                                          &db->rule_engine());
  const auto knn =
      searcher.Knn(db->collection().FindBinary(probe)->histogram, 5);
  if (!knn.ok()) {
    std::cerr << knn.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n5-NN of helmet #" << probe << ":";
  for (size_t i = 0; i < knn->size() && i < 5; ++i) {
    std::cout << "  #" << (*knn)[i].id << " (L1 >= "
              << (*knn)[i].distance_lo << ")";
  }
  std::cout << "\n(delete " << path << " to rebuild from scratch)\n";
  return 0;
}
