// Road-sign recognition (the paper's motivating application, Section 1):
// an autonomous-navigation database of sign images must match signs seen
// under different lighting. Database augmentation fixes the false
// negatives: each stored sign gets "dusk" and "washed-out" variants
// stored as cheap edit sequences, and the maintained connections route a
// match on a variant back to the original sign.
//
// Run: ./build/examples/road_signs

#include <iostream>

#include "core/database.h"
#include "core/similarity.h"
#include "datasets/generators.h"
#include "image/draw.h"

namespace {

/// Simulates the color shift of a sign photographed at dusk: saturated
/// colors darken. Expressed as editing operations, so the variant costs
/// bytes, not kilobytes.
mmdb::EditScript DuskVariant(mmdb::ObjectId base) {
  mmdb::EditScript script;
  script.base_id = base;
  script.ops.emplace_back(
      mmdb::ModifyOp{mmdb::colors::kRed, mmdb::colors::kMaroon});
  script.ops.emplace_back(
      mmdb::ModifyOp{mmdb::colors::kYellow, mmdb::colors::kGold});
  script.ops.emplace_back(
      mmdb::ModifyOp{mmdb::colors::kSkyBlue, mmdb::colors::kNavy});
  return script;
}

/// A blurred, slightly washed-out variant (motion / rain).
mmdb::EditScript WashedVariant(mmdb::ObjectId base) {
  mmdb::EditScript script;
  script.base_id = base;
  script.ops.emplace_back(mmdb::CombineOp::GaussianBlur());
  script.ops.emplace_back(mmdb::CombineOp::BoxBlur());
  return script;
}

}  // namespace

int main() {
  auto db = mmdb::MultimediaDatabase::Open().value();

  // Store a catalog of sign images and augment each with two variants.
  mmdb::Rng rng(2026);
  const auto signs = mmdb::datasets::MakeRoadSignImages(40, rng);
  std::vector<mmdb::ObjectId> originals;
  for (const auto& generated : signs) {
    const mmdb::ObjectId id =
        db->InsertBinaryImage(generated.image).value();
    originals.push_back(id);
    db->InsertEditedImage(DuskVariant(id)).value();
    db->InsertEditedImage(WashedVariant(id)).value();
  }
  std::cout << "database: " << originals.size() << " signs + "
            << db->collection().EditedCount()
            << " augmentation variants stored as edit sequences\n\n";

  // The camera sees a stop sign at dusk: mostly maroon, not red. Emulate
  // the frame by rendering a daytime stop sign and applying the dusk
  // color shift pixel-by-pixel.
  mmdb::Image camera(96, 96, mmdb::colors::kSkyBlue);
  mmdb::draw::FilledOctagon(camera, mmdb::Rect(16, 16, 80, 80),
                            mmdb::colors::kRed);
  for (auto& pixel : camera.pixels()) {
    if (pixel == mmdb::colors::kRed) pixel = mmdb::colors::kMaroon;
    if (pixel == mmdb::colors::kSkyBlue) pixel = mmdb::colors::kNavy;
  }

  // Without augmentation: query the dominant camera color against the
  // originals only — "at least 30% maroon" finds nothing.
  mmdb::RangeQuery query;
  query.bin = db->BinOf(mmdb::colors::kMaroon);
  query.min_fraction = 0.3;
  query.max_fraction = 1.0;

  const auto result = db->RunRange(query, mmdb::QueryMethod::kBwm).value();
  size_t original_hits = 0, variant_hits = 0;
  for (mmdb::ObjectId id : result.ids) {
    if (db->collection().FindBinary(id) != nullptr) {
      ++original_hits;
    } else {
      ++variant_hits;
    }
  }
  std::cout << "query \"at least 30% maroon\" (what the camera saw):\n"
            << "  originals matched directly: " << original_hits
            << "  <- the false-negative problem\n"
            << "  augmentation variants matched: " << variant_hits << "\n";

  const auto expanded = db->ExpandWithConnections(result.ids);
  size_t recovered = 0;
  for (mmdb::ObjectId id : expanded) {
    if (db->collection().FindBinary(id) != nullptr) ++recovered;
  }
  std::cout << "  originals recovered via connections: " << recovered
            << "  <- augmentation fixes it\n\n";

  // Similarity search against the camera frame, using the rule bounds
  // (no variant is ever instantiated).
  const mmdb::SimilaritySearcher searcher(&db->collection(),
                                          &db->rule_engine());
  const mmdb::ColorHistogram camera_hist =
      mmdb::ExtractHistogram(camera, db->quantizer());
  const auto matches = searcher.Knn(camera_hist, 3).value();
  std::cout << "3-NN candidates for the camera frame (distance intervals, "
               "no instantiation):\n";
  for (size_t i = 0; i < matches.size() && i < 6; ++i) {
    std::cout << "  #" << matches[i].id << "  L1 in ["
              << matches[i].distance_lo << ", " << matches[i].distance_hi
              << "]" << (matches[i].exact ? " (exact)" : "") << "\n";
  }
  return 0;
}
