// Quickstart: open an augmented multimedia database, store an image and
// an edited variant (as a sequence of editing operations), and answer a
// color range query three ways.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <iostream>

#include "core/database.h"

using mmdb::colors::kBlue;
using mmdb::colors::kRed;
using mmdb::colors::kWhite;

int main() {
  // 1. Open an in-memory database (pass options.path for a disk file).
  auto db_or = mmdb::MultimediaDatabase::Open();
  if (!db_or.ok()) {
    std::cerr << db_or.status().ToString() << "\n";
    return 1;
  }
  auto db = std::move(db_or).value();

  // 2. Store a conventional (binary) image: a 100x100 canvas, the left
  //    half red, the right half white. Its color histogram is extracted
  //    once, here, at insertion time.
  mmdb::Image original(100, 100, kWhite);
  original.Fill(mmdb::Rect(0, 0, 50, 100), kRed);
  const mmdb::ObjectId original_id =
      db->InsertBinaryImage(original).value();
  std::cout << "stored binary image #" << original_id << "\n";

  // 3. Augment the database with an edited variant, stored NOT as pixels
  //    but as a sequence of editing operations: recolor red -> blue,
  //    then crop the left half.
  mmdb::EditScript script;
  script.base_id = original_id;
  script.ops.emplace_back(mmdb::ModifyOp{kRed, kBlue});
  script.ops.emplace_back(mmdb::DefineOp{mmdb::Rect(0, 0, 50, 100)});
  script.ops.emplace_back(mmdb::MergeOp{});  // NULL target = extract DR.
  const mmdb::ObjectId variant_id = db->InsertEditedImage(script).value();
  std::cout << "stored edited variant #" << variant_id << " ("
            << script.ops.size() << " ops, never instantiated)\n";

  // 4. Range query: "retrieve all images that are at least 25% blue".
  mmdb::RangeQuery query;
  query.bin = db->BinOf(kBlue);
  query.min_fraction = 0.25;
  query.max_fraction = 1.0;

  for (const auto& [name, method] :
       {std::pair{"instantiate", mmdb::QueryMethod::kInstantiate},
        std::pair{"RBM        ", mmdb::QueryMethod::kRbm},
        std::pair{"BWM        ", mmdb::QueryMethod::kBwm}}) {
    const auto result = db->RunRange(query, method).value();
    std::cout << name << " -> matches: [";
    for (size_t i = 0; i < result.ids.size(); ++i) {
      std::cout << (i ? ", " : "") << "#" << result.ids[i];
    }
    std::cout << "]  (rules applied: " << result.stats.rules_applied
              << ", images instantiated: "
              << result.stats.images_instantiated << ")\n";
  }

  // 5. The connection semantics: matching the variant also surfaces the
  //    original image the user actually wants.
  const auto bwm = db->RunRange(query, mmdb::QueryMethod::kBwm).value();
  const auto expanded = db->ExpandWithConnections(bwm.ids);
  std::cout << "with connections: " << expanded.size()
            << " objects (variant + its referenced base)\n";

  // 6. Retrieval instantiates on demand.
  const mmdb::Image materialized = db->GetImage(variant_id).value();
  std::cout << "variant instantiates to " << materialized.width() << "x"
            << materialized.height() << ", "
            << materialized.CountColor(kBlue) << "/"
            << materialized.PixelCount() << " blue pixels\n";
  return 0;
}
