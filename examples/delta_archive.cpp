// Delta archive: the storage story behind edit-sequence databases taken
// to its constructive limit. A surveillance-style sequence of frames —
// each a small perturbation of the previous — is stored as one keyframe
// plus per-frame delta scripts (editops/delta.h), then queried by color
// and retrieved exactly. Compare the bytes.
//
// Run: ./build/examples/delta_archive [frames]

#include <cstdlib>
#include <iostream>

#include "core/database.h"
#include "editops/delta.h"
#include "editops/serialize.h"
#include "image/draw.h"
#include "image/ppm_io.h"

int main(int argc, char** argv) {
  const int frame_count = argc > 1 ? std::atoi(argv[1]) : 24;

  auto db = mmdb::MultimediaDatabase::Open().value();

  // Keyframe: an intersection scene — asphalt, sky, a stop sign.
  mmdb::Image scene(120, 90, mmdb::colors::kSkyBlue);
  scene.Fill(mmdb::Rect(0, 60, 120, 90), mmdb::colors::kSilver);  // Road.
  mmdb::draw::FilledOctagon(scene, mmdb::Rect(8, 20, 40, 52),
                            mmdb::colors::kRed);
  const mmdb::ObjectId keyframe = db->InsertBinaryImage(scene).value();

  // Subsequent frames: a navy "car" drives across the road; everything
  // else is static. Store each frame as a delta against the keyframe.
  size_t raster_bytes_total = 0;
  size_t script_bytes_total = 0;
  std::vector<mmdb::ObjectId> frames;
  for (int f = 1; f <= frame_count; ++f) {
    mmdb::Image frame = scene;
    const int32_t car_x = 4 + f * (110 / frame_count);
    frame.Fill(mmdb::Rect(car_x, 66, car_x + 14, 74), mmdb::colors::kNavy);

    const auto script = mmdb::MakeDeltaScript(keyframe, scene, frame);
    if (!script.ok()) {
      std::cerr << script.status().ToString() << "\n";
      return 1;
    }
    const auto id = db->InsertEditedImage(*script);
    if (!id.ok()) {
      std::cerr << id.status().ToString() << "\n";
      return 1;
    }
    frames.push_back(*id);
    raster_bytes_total +=
        mmdb::EncodePpm(frame, mmdb::PpmFormat::kBinary).size();
    script_bytes_total += mmdb::EncodeEditScript(*script).size();
  }

  std::cout << "archive: 1 keyframe + " << frame_count
            << " delta frames\n"
            << "  raster storage would cost  " << raster_bytes_total
            << " bytes\n"
            << "  delta scripts actually use " << script_bytes_total
            << " bytes  ("
            << (raster_bytes_total / std::max<size_t>(1, script_bytes_total))
            << "x smaller)\n\n";

  // Color query over the whole archive, answered from the rules alone:
  // which frames show the car (>= 1% navy)?
  mmdb::RangeQuery query;
  query.bin = db->BinOf(mmdb::colors::kNavy);
  query.min_fraction = 0.005;
  query.max_fraction = 1.0;
  const auto result =
      db->RunRange(query, mmdb::QueryMethod::kBwm).value();
  size_t frame_hits = 0;
  for (mmdb::ObjectId id : result.ids) {
    if (db->collection().FindEdited(id) != nullptr) ++frame_hits;
  }
  std::cout << "\"at least 0.5% navy\" flags " << frame_hits << "/"
            << frame_count << " frames ("
            << result.stats.rules_applied
            << " rules applied, 0 frames instantiated)\n";

  // Exact retrieval of one frame proves the archive is lossless.
  const mmdb::Image replay =
      db->GetImage(frames[frames.size() / 2]).value();
  std::cout << "frame " << frames.size() / 2 << " replays exactly: "
            << replay.width() << "x" << replay.height() << ", car pixels: "
            << replay.CountColor(mmdb::colors::kNavy) << "\n";
  return 0;
}
