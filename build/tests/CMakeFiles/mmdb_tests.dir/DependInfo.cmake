
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bounds_property_test.cc" "tests/CMakeFiles/mmdb_tests.dir/bounds_property_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/bounds_property_test.cc.o.d"
  "/root/repo/tests/buffer_pool_stress_test.cc" "tests/CMakeFiles/mmdb_tests.dir/buffer_pool_stress_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/buffer_pool_stress_test.cc.o.d"
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/mmdb_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/cli_test.cc" "tests/CMakeFiles/mmdb_tests.dir/cli_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/cli_test.cc.o.d"
  "/root/repo/tests/collection_test.cc" "tests/CMakeFiles/mmdb_tests.dir/collection_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/collection_test.cc.o.d"
  "/root/repo/tests/color_test.cc" "tests/CMakeFiles/mmdb_tests.dir/color_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/color_test.cc.o.d"
  "/root/repo/tests/concurrency_test.cc" "tests/CMakeFiles/mmdb_tests.dir/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/concurrency_test.cc.o.d"
  "/root/repo/tests/conjunctive_test.cc" "tests/CMakeFiles/mmdb_tests.dir/conjunctive_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/conjunctive_test.cc.o.d"
  "/root/repo/tests/database_test.cc" "tests/CMakeFiles/mmdb_tests.dir/database_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/database_test.cc.o.d"
  "/root/repo/tests/datasets_test.cc" "tests/CMakeFiles/mmdb_tests.dir/datasets_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/datasets_test.cc.o.d"
  "/root/repo/tests/deletion_test.cc" "tests/CMakeFiles/mmdb_tests.dir/deletion_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/deletion_test.cc.o.d"
  "/root/repo/tests/delta_test.cc" "tests/CMakeFiles/mmdb_tests.dir/delta_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/delta_test.cc.o.d"
  "/root/repo/tests/dominant_test.cc" "tests/CMakeFiles/mmdb_tests.dir/dominant_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/dominant_test.cc.o.d"
  "/root/repo/tests/draw_test.cc" "tests/CMakeFiles/mmdb_tests.dir/draw_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/draw_test.cc.o.d"
  "/root/repo/tests/dsl_test.cc" "tests/CMakeFiles/mmdb_tests.dir/dsl_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/dsl_test.cc.o.d"
  "/root/repo/tests/edit_ops_test.cc" "tests/CMakeFiles/mmdb_tests.dir/edit_ops_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/edit_ops_test.cc.o.d"
  "/root/repo/tests/editor_edge_test.cc" "tests/CMakeFiles/mmdb_tests.dir/editor_edge_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/editor_edge_test.cc.o.d"
  "/root/repo/tests/editor_test.cc" "tests/CMakeFiles/mmdb_tests.dir/editor_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/editor_test.cc.o.d"
  "/root/repo/tests/features_test.cc" "tests/CMakeFiles/mmdb_tests.dir/features_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/features_test.cc.o.d"
  "/root/repo/tests/fuzz_robustness_test.cc" "tests/CMakeFiles/mmdb_tests.dir/fuzz_robustness_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/fuzz_robustness_test.cc.o.d"
  "/root/repo/tests/histogram_index_test.cc" "tests/CMakeFiles/mmdb_tests.dir/histogram_index_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/histogram_index_test.cc.o.d"
  "/root/repo/tests/histogram_test.cc" "tests/CMakeFiles/mmdb_tests.dir/histogram_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/histogram_test.cc.o.d"
  "/root/repo/tests/hsv_quantizer_test.cc" "tests/CMakeFiles/mmdb_tests.dir/hsv_quantizer_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/hsv_quantizer_test.cc.o.d"
  "/root/repo/tests/image_test.cc" "tests/CMakeFiles/mmdb_tests.dir/image_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/image_test.cc.o.d"
  "/root/repo/tests/indexed_bwm_test.cc" "tests/CMakeFiles/mmdb_tests.dir/indexed_bwm_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/indexed_bwm_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/mmdb_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/integrity_test.cc" "tests/CMakeFiles/mmdb_tests.dir/integrity_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/integrity_test.cc.o.d"
  "/root/repo/tests/journal_test.cc" "tests/CMakeFiles/mmdb_tests.dir/journal_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/journal_test.cc.o.d"
  "/root/repo/tests/luv_test.cc" "tests/CMakeFiles/mmdb_tests.dir/luv_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/luv_test.cc.o.d"
  "/root/repo/tests/optimize_test.cc" "tests/CMakeFiles/mmdb_tests.dir/optimize_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/optimize_test.cc.o.d"
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/mmdb_tests.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/parallel_test.cc.o.d"
  "/root/repo/tests/ppm_io_test.cc" "tests/CMakeFiles/mmdb_tests.dir/ppm_io_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/ppm_io_test.cc.o.d"
  "/root/repo/tests/quantizer_test.cc" "tests/CMakeFiles/mmdb_tests.dir/quantizer_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/quantizer_test.cc.o.d"
  "/root/repo/tests/query_parser_test.cc" "tests/CMakeFiles/mmdb_tests.dir/query_parser_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/query_parser_test.cc.o.d"
  "/root/repo/tests/rbm_bwm_test.cc" "tests/CMakeFiles/mmdb_tests.dir/rbm_bwm_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/rbm_bwm_test.cc.o.d"
  "/root/repo/tests/recipes_test.cc" "tests/CMakeFiles/mmdb_tests.dir/recipes_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/recipes_test.cc.o.d"
  "/root/repo/tests/rtree_bulk_test.cc" "tests/CMakeFiles/mmdb_tests.dir/rtree_bulk_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/rtree_bulk_test.cc.o.d"
  "/root/repo/tests/rtree_remove_test.cc" "tests/CMakeFiles/mmdb_tests.dir/rtree_remove_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/rtree_remove_test.cc.o.d"
  "/root/repo/tests/rtree_test.cc" "tests/CMakeFiles/mmdb_tests.dir/rtree_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/rtree_test.cc.o.d"
  "/root/repo/tests/rules_test.cc" "tests/CMakeFiles/mmdb_tests.dir/rules_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/rules_test.cc.o.d"
  "/root/repo/tests/scale_test.cc" "tests/CMakeFiles/mmdb_tests.dir/scale_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/scale_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/mmdb_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/similarity_range_test.cc" "tests/CMakeFiles/mmdb_tests.dir/similarity_range_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/similarity_range_test.cc.o.d"
  "/root/repo/tests/similarity_test.cc" "tests/CMakeFiles/mmdb_tests.dir/similarity_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/similarity_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/mmdb_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/strict_mode_test.cc" "tests/CMakeFiles/mmdb_tests.dir/strict_mode_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/strict_mode_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/mmdb_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/test_util.cc.o.d"
  "/root/repo/tests/util_random_test.cc" "tests/CMakeFiles/mmdb_tests.dir/util_random_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/util_random_test.cc.o.d"
  "/root/repo/tests/util_status_test.cc" "tests/CMakeFiles/mmdb_tests.dir/util_status_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/util_status_test.cc.o.d"
  "/root/repo/tests/util_table_printer_test.cc" "tests/CMakeFiles/mmdb_tests.dir/util_table_printer_test.cc.o" "gcc" "tests/CMakeFiles/mmdb_tests.dir/util_table_printer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
