# Empty dependencies file for mmdb_tests.
# This may be replaced when dependencies are built.
