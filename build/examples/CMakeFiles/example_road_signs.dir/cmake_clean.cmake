file(REMOVE_RECURSE
  "CMakeFiles/example_road_signs.dir/road_signs.cpp.o"
  "CMakeFiles/example_road_signs.dir/road_signs.cpp.o.d"
  "road_signs"
  "road_signs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_road_signs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
