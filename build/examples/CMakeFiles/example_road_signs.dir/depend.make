# Empty dependencies file for example_road_signs.
# This may be replaced when dependencies are built.
