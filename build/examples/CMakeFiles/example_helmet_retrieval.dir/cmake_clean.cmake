file(REMOVE_RECURSE
  "CMakeFiles/example_helmet_retrieval.dir/helmet_retrieval.cpp.o"
  "CMakeFiles/example_helmet_retrieval.dir/helmet_retrieval.cpp.o.d"
  "helmet_retrieval"
  "helmet_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_helmet_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
