# Empty compiler generated dependencies file for example_helmet_retrieval.
# This may be replaced when dependencies are built.
