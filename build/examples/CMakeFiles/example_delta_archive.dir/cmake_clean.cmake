file(REMOVE_RECURSE
  "CMakeFiles/example_delta_archive.dir/delta_archive.cpp.o"
  "CMakeFiles/example_delta_archive.dir/delta_archive.cpp.o.d"
  "delta_archive"
  "delta_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_delta_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
