# Empty compiler generated dependencies file for example_delta_archive.
# This may be replaced when dependencies are built.
