file(REMOVE_RECURSE
  "CMakeFiles/example_flag_search.dir/flag_search.cpp.o"
  "CMakeFiles/example_flag_search.dir/flag_search.cpp.o.d"
  "flag_search"
  "flag_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flag_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
