# Empty compiler generated dependencies file for example_flag_search.
# This may be replaced when dependencies are built.
