
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cc" "src/CMakeFiles/mmdb.dir/core/bounds.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/bounds.cc.o.d"
  "/root/repo/src/core/bwm.cc" "src/CMakeFiles/mmdb.dir/core/bwm.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/bwm.cc.o.d"
  "/root/repo/src/core/collection.cc" "src/CMakeFiles/mmdb.dir/core/collection.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/collection.cc.o.d"
  "/root/repo/src/core/database.cc" "src/CMakeFiles/mmdb.dir/core/database.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/database.cc.o.d"
  "/root/repo/src/core/dominant.cc" "src/CMakeFiles/mmdb.dir/core/dominant.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/dominant.cc.o.d"
  "/root/repo/src/core/histogram.cc" "src/CMakeFiles/mmdb.dir/core/histogram.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/histogram.cc.o.d"
  "/root/repo/src/core/instantiate.cc" "src/CMakeFiles/mmdb.dir/core/instantiate.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/instantiate.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/CMakeFiles/mmdb.dir/core/parallel.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/parallel.cc.o.d"
  "/root/repo/src/core/quantizer.cc" "src/CMakeFiles/mmdb.dir/core/quantizer.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/quantizer.cc.o.d"
  "/root/repo/src/core/query_parser.cc" "src/CMakeFiles/mmdb.dir/core/query_parser.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/query_parser.cc.o.d"
  "/root/repo/src/core/rbm.cc" "src/CMakeFiles/mmdb.dir/core/rbm.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/rbm.cc.o.d"
  "/root/repo/src/core/rules.cc" "src/CMakeFiles/mmdb.dir/core/rules.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/rules.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/CMakeFiles/mmdb.dir/core/similarity.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/core/similarity.cc.o.d"
  "/root/repo/src/datasets/augment.cc" "src/CMakeFiles/mmdb.dir/datasets/augment.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/datasets/augment.cc.o.d"
  "/root/repo/src/datasets/generators.cc" "src/CMakeFiles/mmdb.dir/datasets/generators.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/datasets/generators.cc.o.d"
  "/root/repo/src/datasets/recipes.cc" "src/CMakeFiles/mmdb.dir/datasets/recipes.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/datasets/recipes.cc.o.d"
  "/root/repo/src/editops/delta.cc" "src/CMakeFiles/mmdb.dir/editops/delta.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/editops/delta.cc.o.d"
  "/root/repo/src/editops/dsl.cc" "src/CMakeFiles/mmdb.dir/editops/dsl.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/editops/dsl.cc.o.d"
  "/root/repo/src/editops/edit_ops.cc" "src/CMakeFiles/mmdb.dir/editops/edit_ops.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/editops/edit_ops.cc.o.d"
  "/root/repo/src/editops/optimize.cc" "src/CMakeFiles/mmdb.dir/editops/optimize.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/editops/optimize.cc.o.d"
  "/root/repo/src/editops/serialize.cc" "src/CMakeFiles/mmdb.dir/editops/serialize.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/editops/serialize.cc.o.d"
  "/root/repo/src/features/shape.cc" "src/CMakeFiles/mmdb.dir/features/shape.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/features/shape.cc.o.d"
  "/root/repo/src/features/signature.cc" "src/CMakeFiles/mmdb.dir/features/signature.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/features/signature.cc.o.d"
  "/root/repo/src/features/texture.cc" "src/CMakeFiles/mmdb.dir/features/texture.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/features/texture.cc.o.d"
  "/root/repo/src/image/color.cc" "src/CMakeFiles/mmdb.dir/image/color.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/image/color.cc.o.d"
  "/root/repo/src/image/draw.cc" "src/CMakeFiles/mmdb.dir/image/draw.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/image/draw.cc.o.d"
  "/root/repo/src/image/editor.cc" "src/CMakeFiles/mmdb.dir/image/editor.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/image/editor.cc.o.d"
  "/root/repo/src/image/image.cc" "src/CMakeFiles/mmdb.dir/image/image.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/image/image.cc.o.d"
  "/root/repo/src/image/ppm_io.cc" "src/CMakeFiles/mmdb.dir/image/ppm_io.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/image/ppm_io.cc.o.d"
  "/root/repo/src/index/histogram_index.cc" "src/CMakeFiles/mmdb.dir/index/histogram_index.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/index/histogram_index.cc.o.d"
  "/root/repo/src/index/indexed_bwm.cc" "src/CMakeFiles/mmdb.dir/index/indexed_bwm.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/index/indexed_bwm.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/CMakeFiles/mmdb.dir/index/rtree.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/index/rtree.cc.o.d"
  "/root/repo/src/storage/blob_store.cc" "src/CMakeFiles/mmdb.dir/storage/blob_store.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/storage/blob_store.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/mmdb.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/mmdb.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/mmdb.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/journal.cc" "src/CMakeFiles/mmdb.dir/storage/journal.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/storage/journal.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/CMakeFiles/mmdb.dir/storage/object_store.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/storage/object_store.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/mmdb.dir/util/random.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/mmdb.dir/util/status.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/util/status.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/mmdb.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/mmdb.dir/util/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
