# Empty dependencies file for mmdb_cli.
# This may be replaced when dependencies are built.
