file(REMOVE_RECURSE
  "CMakeFiles/mmdb_cli.dir/mmdb_cli.cc.o"
  "CMakeFiles/mmdb_cli.dir/mmdb_cli.cc.o.d"
  "mmdb_cli"
  "mmdb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
