# Empty dependencies file for bench_ablate_scale.
# This may be replaced when dependencies are built.
