file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_scale.dir/bench_ablate_scale.cc.o"
  "CMakeFiles/bench_ablate_scale.dir/bench_ablate_scale.cc.o.d"
  "CMakeFiles/bench_ablate_scale.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablate_scale.dir/bench_common.cc.o.d"
  "bench_ablate_scale"
  "bench_ablate_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
