# Empty dependencies file for bench_fig4_flag.
# This may be replaced when dependencies are built.
