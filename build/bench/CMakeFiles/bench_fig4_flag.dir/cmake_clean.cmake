file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_flag.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig4_flag.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig4_flag.dir/bench_fig4_flag.cc.o"
  "CMakeFiles/bench_fig4_flag.dir/bench_fig4_flag.cc.o.d"
  "bench_fig4_flag"
  "bench_fig4_flag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_flag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
