file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_helmet.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig3_helmet.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig3_helmet.dir/bench_fig3_helmet.cc.o"
  "CMakeFiles/bench_fig3_helmet.dir/bench_fig3_helmet.cc.o.d"
  "bench_fig3_helmet"
  "bench_fig3_helmet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_helmet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
