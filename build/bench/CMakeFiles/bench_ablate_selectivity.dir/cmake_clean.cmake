file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_selectivity.dir/bench_ablate_selectivity.cc.o"
  "CMakeFiles/bench_ablate_selectivity.dir/bench_ablate_selectivity.cc.o.d"
  "CMakeFiles/bench_ablate_selectivity.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablate_selectivity.dir/bench_common.cc.o.d"
  "bench_ablate_selectivity"
  "bench_ablate_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
