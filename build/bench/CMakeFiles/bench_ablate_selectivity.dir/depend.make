# Empty dependencies file for bench_ablate_selectivity.
# This may be replaced when dependencies are built.
