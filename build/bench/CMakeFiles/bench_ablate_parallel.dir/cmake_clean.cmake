file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_parallel.dir/bench_ablate_parallel.cc.o"
  "CMakeFiles/bench_ablate_parallel.dir/bench_ablate_parallel.cc.o.d"
  "CMakeFiles/bench_ablate_parallel.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablate_parallel.dir/bench_common.cc.o.d"
  "bench_ablate_parallel"
  "bench_ablate_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
