# Empty dependencies file for bench_ablate_parallel.
# This may be replaced when dependencies are built.
