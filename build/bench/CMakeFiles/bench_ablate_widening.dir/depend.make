# Empty dependencies file for bench_ablate_widening.
# This may be replaced when dependencies are built.
