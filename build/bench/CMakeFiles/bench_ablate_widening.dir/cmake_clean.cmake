file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_widening.dir/bench_ablate_widening.cc.o"
  "CMakeFiles/bench_ablate_widening.dir/bench_ablate_widening.cc.o.d"
  "CMakeFiles/bench_ablate_widening.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablate_widening.dir/bench_common.cc.o.d"
  "bench_ablate_widening"
  "bench_ablate_widening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_widening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
