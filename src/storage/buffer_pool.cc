#include "storage/buffer_pool.h"

#include <cassert>

#include "obs/metrics.h"

namespace mmdb {

namespace {

/// Registry mirrors of BufferPool::Stats, aggregated across every pool in
/// the process (per-pool numbers stay on `stats()`).
struct PoolCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* writebacks;
};

const PoolCounters& Counters() {
  static const PoolCounters counters = [] {
    obs::Registry& registry = obs::Registry::Default();
    PoolCounters out;
    out.hits = registry.GetCounter("mmdb_buffer_pool_hits_total",
                                   "Page fetches served from a resident "
                                   "frame.");
    out.misses = registry.GetCounter("mmdb_buffer_pool_misses_total",
                                     "Page fetches that had to touch the "
                                     "disk manager.");
    out.evictions = registry.GetCounter("mmdb_buffer_pool_evictions_total",
                                        "Frames reclaimed from the LRU "
                                        "list.");
    out.writebacks = registry.GetCounter(
        "mmdb_buffer_pool_writebacks_total",
        "Dirty frames written back to disk (evictions and flushes).");
    return out;
  }();
  return counters;
}

}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity > 0 ? capacity : 1) {
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    free_frames_.push_back(capacity_ - 1 - i);
  }
}

BufferPool::~BufferPool() {
  // Best-effort writeback; errors surface earlier through FlushAll.
  FlushAll().ok();
}

Result<size_t> BufferPool::PinFrame(PageId id, bool read_from_disk) {
  if (const auto it = page_table_.find(id); it != page_table_.end()) {
    const size_t frame_index = it->second;
    Frame& frame = frames_[frame_index];
    if (frame.pin_count == 0) {
      // Leave the LRU list while pinned.
      const auto pos = lru_pos_.find(frame_index);
      if (pos != lru_pos_.end()) {
        lru_.erase(pos->second);
        lru_pos_.erase(pos);
      }
    }
    ++frame.pin_count;
    ++stats_.hits;
    Counters().hits->Increment();
    return frame_index;
  }

  ++stats_.misses;
  Counters().misses->Increment();
  size_t frame_index;
  if (!free_frames_.empty()) {
    frame_index = free_frames_.back();
    free_frames_.pop_back();
  } else {
    if (lru_.empty()) {
      return Status::ResourceExhausted(
          "buffer pool: all " + std::to_string(capacity_) +
          " frames pinned");
    }
    frame_index = lru_.front();
    MMDB_RETURN_IF_ERROR(EvictFrame(frame_index));
  }

  Frame& frame = frames_[frame_index];
  frame.page_id = id;
  frame.in_use = true;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.captured = false;
  if (read_from_disk) {
    const Status read = disk_->ReadPage(id, &frame.page);
    if (!read.ok()) {
      // Return the claimed frame so a failed fetch leaks nothing.
      frame.in_use = false;
      frame.pin_count = 0;
      free_frames_.push_back(frame_index);
      return read;
    }
  } else {
    frame.page.Clear();
  }
  page_table_[id] = frame_index;
  return frame_index;
}

Status BufferPool::EvictFrame(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  assert(frame.pin_count == 0);
  ++stats_.evictions;
  Counters().evictions->Increment();
  if (frame.dirty) {
    ++stats_.writebacks;
    Counters().writebacks->Increment();
    MMDB_RETURN_IF_ERROR(NotifyWriteback());
    MMDB_RETURN_IF_ERROR(disk_->WritePage(frame.page_id, frame.page));
    frame.dirty = false;
  }
  page_table_.erase(frame.page_id);
  const auto pos = lru_pos_.find(frame_index);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_pos_.erase(pos);
  }
  frame.in_use = false;
  return Status::OK();
}

void BufferPool::TouchLru(size_t frame_index) {
  const auto pos = lru_pos_.find(frame_index);
  if (pos != lru_pos_.end()) lru_.erase(pos->second);
  lru_.push_back(frame_index);
  lru_pos_[frame_index] = std::prev(lru_.end());
}

void BufferPool::Unpin(size_t frame_index, bool dirty) {
  Frame& frame = frames_[frame_index];
  assert(frame.pin_count > 0);
  frame.dirty = frame.dirty || dirty;
  if (--frame.pin_count == 0) TouchLru(frame_index);
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  MMDB_ASSIGN_OR_RETURN(size_t frame_index, PinFrame(id, /*read=*/true));
  return PageGuard(this, frame_index, id);
}

Result<PageGuard> BufferPool::NewPage() {
  MMDB_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  MMDB_ASSIGN_OR_RETURN(size_t frame_index, PinFrame(id, /*read=*/false));
  return PageGuard(this, frame_index, id);
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.in_use && frame.dirty) {
      MMDB_RETURN_IF_ERROR(NotifyWriteback());
      MMDB_RETURN_IF_ERROR(disk_->WritePage(frame.page_id, frame.page));
      frame.dirty = false;
      ++stats_.writebacks;
      Counters().writebacks->Increment();
    }
  }
  return Status::OK();
}

void BufferPool::OnGuardWrite(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  if (frame.captured || !capture_hook_) return;
  frame.captured = true;  // Set first: a failing hook must not re-fire.
  const Status captured = capture_hook_(frame.page_id, frame.page);
  if (!captured.ok() && capture_error_.ok()) capture_error_ = captured;
}

Status BufferPool::NotifyWriteback() {
  if (!pre_writeback_hook_) return Status::OK();
  return pre_writeback_hook_();
}

void BufferPool::BeginCaptureEpoch() {
  for (Frame& frame : frames_) frame.captured = false;
}

Status BufferPool::TakeCaptureError() {
  Status out = capture_error_;
  capture_error_ = Status::OK();
  return out;
}

void BufferPool::AbandonForTesting() {
  for (Frame& frame : frames_) frame.dirty = false;
}

size_t BufferPool::PinnedCount() const {
  size_t pinned = 0;
  for (const Frame& frame : frames_) {
    if (frame.in_use && frame.pin_count > 0) ++pinned;
  }
  return pinned;
}

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_),
      frame_(other.frame_),
      page_id_(other.page_id_),
      dirty_(other.dirty_) {
  other.pool_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
  }
}

}  // namespace mmdb
