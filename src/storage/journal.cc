#include "storage/journal.h"

#include <cstring>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mmdb {

namespace {

obs::SpanCategory* AppendSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("journal.append");
  return category;
}

obs::SpanCategory* SyncSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("journal.fsync");
  return category;
}

obs::Counter* RecordsAppended() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "mmdb_journal_records_total",
      "Before-image records appended to the journal.");
  return counter;
}

obs::Counter* Syncs() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "mmdb_journal_syncs_total",
      "Journal fsync barriers actually issued (deduplicated syncs are "
      "not counted).");
  return counter;
}

constexpr uint32_t kRecordMagic = 0x4a524e4c;  // "JRNL"
constexpr size_t kRecordSize =
    sizeof(uint32_t) + sizeof(uint32_t) + kPageSize + sizeof(uint64_t);

uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t RecordChecksum(uint32_t page_id, const Page& page) {
  const uint64_t seed = Fnv1a(&page_id, sizeof(page_id),
                              0xcbf29ce484222325ULL);
  return Fnv1a(page.data(), kPageSize, seed);
}

/// Prefixes an I/O error with the record it addressed.
Status AnnotateRecord(const Status& status, const char* what, size_t index) {
  return Status(status.code(), std::string(what) + " journal record " +
                                   std::to_string(index) + ": " +
                                   status.message());
}

}  // namespace

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& path,
                                               Env* env) {
  if (env == nullptr) env = Env::Default();
  std::unique_ptr<Journal> journal(new Journal(path));
  MMDB_ASSIGN_OR_RETURN(journal->file_, env->OpenFile(path));
  MMDB_RETURN_IF_ERROR(journal->ScanExisting());
  return journal;
}

Status Journal::ReadRecordAt(size_t index, PageId* page_id,
                             Page* page) const {
  // Record layout: magic u32 | page id u32 | page image | checksum u64.
  char buffer[kRecordSize];
  const Status read =
      file_->ReadAt(index * kRecordSize, buffer, kRecordSize);
  if (!read.ok()) return AnnotateRecord(read, "read", index);
  uint32_t magic = 0;
  uint32_t id = 0;
  uint64_t checksum = 0;
  std::memcpy(&magic, buffer, sizeof(magic));
  std::memcpy(&id, buffer + sizeof(magic), sizeof(id));
  std::memcpy(page->data(), buffer + sizeof(magic) + sizeof(id), kPageSize);
  std::memcpy(&checksum, buffer + sizeof(magic) + sizeof(id) + kPageSize,
              sizeof(checksum));
  if (magic != kRecordMagic || checksum != RecordChecksum(id, *page)) {
    return Status::Corruption("journal record " + std::to_string(index) +
                              " of " + path_ + ": bad magic or checksum");
  }
  *page_id = id;
  return Status::OK();
}

Status Journal::ScanExisting() {
  MMDB_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  record_count_ = 0;
  // Count the valid record prefix; a torn tail is expected after a crash.
  PageId page_id = 0;
  Page page;
  while ((record_count_ + 1) * kRecordSize <= size) {
    if (!ReadRecordAt(record_count_, &page_id, &page).ok()) break;
    ++record_count_;
  }
  return Status::OK();
}

Status Journal::Append(PageId page_id, const Page& before_image) {
  obs::Span span(AppendSpan());
  // Build the whole record in memory so it reaches the env as a single
  // write (one fault-injection point per record, and no partial-record
  // interleavings beyond what a real torn write produces).
  char buffer[kRecordSize];
  const uint32_t magic = kRecordMagic;
  const uint64_t checksum = RecordChecksum(page_id, before_image);
  std::memcpy(buffer, &magic, sizeof(magic));
  std::memcpy(buffer + sizeof(magic), &page_id, sizeof(page_id));
  std::memcpy(buffer + sizeof(magic) + sizeof(page_id), before_image.data(),
              kPageSize);
  std::memcpy(buffer + sizeof(magic) + sizeof(page_id) + kPageSize,
              &checksum, sizeof(checksum));
  const Status written =
      file_->WriteAt(record_count_ * kRecordSize, buffer, kRecordSize);
  if (!written.ok()) return AnnotateRecord(written, "append", record_count_);
  ++record_count_;
  synced_ = false;
  RecordsAppended()->Increment();
  return Status::OK();
}

Status Journal::EnsureSynced() {
  if (sync_failed_) {
    return Status::DataLoss("journal " + path_ +
                            ": an earlier fsync failed; appended records "
                            "may not be durable");
  }
  if (synced_) return Status::OK();
  obs::Span span(SyncSpan());
  const Status synced = file_->Sync();
  if (!synced.ok()) {
    sync_failed_ = true;
    // Whatever the file reported (IoError from fault injection, DataLoss
    // from a real fsync), the journal-level meaning is the same: the
    // write-ahead barrier did not happen and the records may be gone.
    return Status::DataLoss("journal " + path_ + ": fsync failed: " +
                            synced.message());
  }
  synced_ = true;
  Syncs()->Increment();
  return Status::OK();
}

Status Journal::Reset() {
  MMDB_RETURN_IF_ERROR(file_->Truncate(0));
  MMDB_RETURN_IF_ERROR(file_->Sync());
  record_count_ = 0;
  synced_ = true;
  // An empty journal that just synced has nothing left to lose.
  sync_failed_ = false;
  return Status::OK();
}

Result<std::vector<std::pair<PageId, Page>>> Journal::ReadRecords() {
  std::vector<std::pair<PageId, Page>> records;
  records.reserve(record_count_);
  for (size_t i = 0; i < record_count_; ++i) {
    PageId page_id = 0;
    Page page;
    MMDB_RETURN_IF_ERROR(ReadRecordAt(i, &page_id, &page));
    records.emplace_back(page_id, page);
  }
  return records;
}

}  // namespace mmdb
