#include "storage/journal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

namespace mmdb {

namespace {

constexpr uint32_t kRecordMagic = 0x4a524e4c;  // "JRNL"
constexpr size_t kRecordSize =
    sizeof(uint32_t) + sizeof(uint32_t) + kPageSize + sizeof(uint64_t);

uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t RecordChecksum(uint32_t page_id, const Page& page) {
  const uint64_t seed = Fnv1a(&page_id, sizeof(page_id),
                              0xcbf29ce484222325ULL);
  return Fnv1a(page.data(), kPageSize, seed);
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& path) {
  std::unique_ptr<Journal> journal(new Journal(path));
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) return Errno("open", path);
  journal->file_ = f;
  MMDB_RETURN_IF_ERROR(journal->ScanExisting());
  return journal;
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status Journal::ScanExisting() {
  if (std::fseek(file_, 0, SEEK_END) != 0) return Errno("seek", path_);
  const long size = std::ftell(file_);
  if (size < 0) return Errno("tell", path_);
  record_count_ = 0;
  if (std::fseek(file_, 0, SEEK_SET) != 0) return Errno("seek", path_);
  // Count the valid record prefix; a torn tail is expected after a crash.
  while ((record_count_ + 1) * kRecordSize <=
         static_cast<size_t>(size)) {
    uint32_t magic = 0, page_id = 0;
    Page page;
    uint64_t checksum = 0;
    if (std::fread(&magic, sizeof(magic), 1, file_) != 1 ||
        std::fread(&page_id, sizeof(page_id), 1, file_) != 1 ||
        std::fread(page.data(), kPageSize, 1, file_) != 1 ||
        std::fread(&checksum, sizeof(checksum), 1, file_) != 1) {
      break;
    }
    if (magic != kRecordMagic ||
        checksum != RecordChecksum(page_id, page)) {
      break;
    }
    ++record_count_;
  }
  return Status::OK();
}

Status Journal::Append(PageId page_id, const Page& before_image) {
  if (std::fseek(file_,
                 static_cast<long>(record_count_ * kRecordSize),
                 SEEK_SET) != 0) {
    return Errno("seek", path_);
  }
  const uint32_t magic = kRecordMagic;
  const uint64_t checksum = RecordChecksum(page_id, before_image);
  if (std::fwrite(&magic, sizeof(magic), 1, file_) != 1 ||
      std::fwrite(&page_id, sizeof(page_id), 1, file_) != 1 ||
      std::fwrite(before_image.data(), kPageSize, 1, file_) != 1 ||
      std::fwrite(&checksum, sizeof(checksum), 1, file_) != 1) {
    return Errno("append", path_);
  }
  ++record_count_;
  synced_ = false;
  return Status::OK();
}

Status Journal::EnsureSynced() {
  if (synced_) return Status::OK();
  if (std::fflush(file_) != 0) return Errno("flush", path_);
  if (::fsync(::fileno(file_)) != 0) return Errno("fsync", path_);
  synced_ = true;
  return Status::OK();
}

Status Journal::Reset() {
  if (std::fflush(file_) != 0) return Errno("flush", path_);
  if (::ftruncate(::fileno(file_), 0) != 0) return Errno("truncate", path_);
  if (::fsync(::fileno(file_)) != 0) return Errno("fsync", path_);
  if (std::fseek(file_, 0, SEEK_SET) != 0) return Errno("seek", path_);
  record_count_ = 0;
  synced_ = true;
  return Status::OK();
}

Result<std::vector<std::pair<PageId, Page>>> Journal::ReadRecords() {
  std::vector<std::pair<PageId, Page>> records;
  if (std::fseek(file_, 0, SEEK_SET) != 0) return Errno("seek", path_);
  for (size_t i = 0; i < record_count_; ++i) {
    uint32_t magic = 0, page_id = 0;
    Page page;
    uint64_t checksum = 0;
    if (std::fread(&magic, sizeof(magic), 1, file_) != 1 ||
        std::fread(&page_id, sizeof(page_id), 1, file_) != 1 ||
        std::fread(page.data(), kPageSize, 1, file_) != 1 ||
        std::fread(&checksum, sizeof(checksum), 1, file_) != 1) {
      return Status::Corruption("journal: unreadable record");
    }
    if (magic != kRecordMagic || checksum != RecordChecksum(page_id, page)) {
      return Status::Corruption("journal: invalid record inside prefix");
    }
    records.emplace_back(page_id, page);
  }
  return records;
}

}  // namespace mmdb
