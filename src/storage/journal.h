#ifndef MMDB_STORAGE_JOURNAL_H_
#define MMDB_STORAGE_JOURNAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/env.h"
#include "storage/page.h"
#include "util/result.h"

namespace mmdb {

/// Undo journal giving the page store crash-consistent mutations.
///
/// Protocol (classic before-image logging with the write-ahead rule):
///  1. before a page is first modified within a transaction, its
///     before-image is appended to the journal (`Append`);
///  2. before any dirty page may be written back to the main file, the
///     journal must be durable (`EnsureSynced` — the buffer pool's
///     pre-writeback hook calls this);
///  3. once every dirty page of the committed transaction has reached
///     the main file (flush + fsync), the journal is truncated
///     (`Reset`).
///
/// If the process dies between (2) and (3), reopening the store finds a
/// non-empty journal and rolls the main file back to the pre-transaction
/// images (`RecoverInto`). Each record carries a checksum; a torn tail
/// record is ignored. Recovery can orphan freshly appended pages (they
/// roll back to zeroed free-floating pages) but never corrupts reachable
/// state. The crash-point torture sweep (tests/torture_test.cc) proves
/// the protocol by crashing after every k-th I/O operation of a scripted
/// workload and asserting the all-or-nothing invariant on reopen.
///
/// All raw I/O goes through an `Env` (POSIX by default); tests inject a
/// `FaultInjectingEnv` to script write/sync failures and crash points.
class Journal {
 public:
  /// Opens (creating if absent) the journal file at `path` through `env`
  /// (null = `Env::Default()`).
  static Result<std::unique_ptr<Journal>> Open(const std::string& path,
                                               Env* env = nullptr);

  ~Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends a before-image record (one buffered write; not yet durable).
  Status Append(PageId page_id, const Page& before_image);

  /// Makes all appended records durable (no-op when already synced).
  /// A failed fsync is sticky: it returns DataLoss now and on every
  /// later call, so a commit can never be reported durable after its
  /// write-ahead barrier failed (the kernel may have dropped the dirty
  /// pages on the failing fsync — retrying cannot bring them back).
  /// Only a successful `Reset` (a fresh, empty, synced journal) clears
  /// the condition.
  Status EnsureSynced();

  /// Truncates the journal after a completed transaction.
  Status Reset();

  /// True if the journal holds records from an interrupted transaction.
  bool NeedsRecovery() const { return record_count_ > 0; }

  /// The valid recorded before-images, oldest first (a torn tail record
  /// is dropped). Empty when no recovery is needed.
  Result<std::vector<std::pair<PageId, Page>>> ReadRecords();

  /// Number of (valid) records currently in the journal.
  size_t record_count() const { return record_count_; }

 private:
  explicit Journal(std::string path) : path_(std::move(path)) {}

  Status ScanExisting();
  /// Reads record `index` into the out-params; Corruption carries the
  /// record index.
  Status ReadRecordAt(size_t index, PageId* page_id, Page* page) const;

  std::string path_;
  std::unique_ptr<File> file_;
  size_t record_count_ = 0;
  bool synced_ = true;
  /// Set when an fsync barrier failed; see EnsureSynced.
  bool sync_failed_ = false;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_JOURNAL_H_
