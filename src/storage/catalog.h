#ifndef MMDB_STORAGE_CATALOG_H_
#define MMDB_STORAGE_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "editops/edit_ops.h"
#include "util/result.h"

namespace mmdb {

/// Kind of a stored image object.
enum class ImageKind : uint8_t {
  kBinary = 1,  // Conventional raster; pixels in the object store.
  kEdited = 2,  // Sequence of editing operations referencing a base image.
};

/// A persisted catalog row describing one image object. For binary images
/// the row carries the extracted histogram (counts) and dimensions so that
/// reopening a database never re-runs feature extraction; for edited
/// images the edit script is stored as its own object and the row only
/// records the kind.
struct CatalogRow {
  ObjectId id = kInvalidObjectId;
  ImageKind kind = ImageKind::kBinary;
  int32_t width = 0;
  int32_t height = 0;
  std::vector<int64_t> histogram_counts;  // Binary images only.

  friend bool operator==(const CatalogRow&, const CatalogRow&) = default;
};

/// Database-wide metadata persisted under a reserved object key.
struct CatalogMeta {
  uint64_t next_id = 1;
  int32_t quantizer_divisions = 4;
  /// ColorSpace enum value (0 = RGB, 1 = HSV).
  uint8_t color_space = 0;

  friend bool operator==(const CatalogMeta&, const CatalogMeta&) = default;
};

/// Versioned little-endian encodings.
std::string EncodeCatalogRow(const CatalogRow& row);
Result<CatalogRow> DecodeCatalogRow(const std::string& data);
std::string EncodeCatalogMeta(const CatalogMeta& meta);
Result<CatalogMeta> DecodeCatalogMeta(const std::string& data);

/// Object-store key scheme: each image id owns a small key range so its
/// raster / script / catalog row live under distinct keys, and key 1 is
/// reserved for the database metadata.
namespace catalog_keys {
inline constexpr uint64_t kMetaKey = 1;
inline uint64_t RasterKey(ObjectId id) { return id * 4 + 0; }
inline uint64_t ScriptKey(ObjectId id) { return id * 4 + 1; }
inline uint64_t RowKey(ObjectId id) { return id * 4 + 2; }
/// First id whose key range clears the reserved keys.
inline constexpr ObjectId kFirstObjectId = 2;
}  // namespace catalog_keys

}  // namespace mmdb

#endif  // MMDB_STORAGE_CATALOG_H_
