#include "storage/disk_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <thread>

#include "core/cancel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mmdb {

namespace {

/// Prefixes an I/O error with the page it addressed, so failures carry
/// "which page" and not just "which file".
Status AnnotatePage(const Status& status, const char* what, PageId id) {
  return Status(status.code(), std::string(what) + " page " +
                                   std::to_string(id) + ": " +
                                   status.message());
}

obs::SpanCategory* ReadSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("disk.read_page");
  return category;
}

obs::SpanCategory* WriteSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("disk.write_page");
  return category;
}

obs::Counter* PagesRead() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "mmdb_disk_pages_read_total", "Pages read through the disk manager.");
  return counter;
}

obs::Counter* PagesWritten() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "mmdb_disk_pages_written_total",
      "Pages written through the disk manager.");
  return counter;
}

obs::Counter* ChecksumFailures() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "mmdb_disk_checksum_failures_total",
      "Page reads rejected because the CRC-32 footer did not match.");
  return counter;
}

obs::Counter* Retries() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "mmdb_storage_retries_total",
      "Page read attempts repeated after a transient I/O failure.");
  return counter;
}

obs::Counter* ChecksumRereads() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "mmdb_storage_checksum_rereads_total",
      "Immediate re-reads issued after a checksum mismatch, before the "
      "Corruption verdict stands.");
  return counter;
}

/// Sleeps the exponential-backoff delay before retry number `retry`
/// (1-based), jittered so synchronized readers of a struggling device
/// spread out instead of hammering it in lockstep.
void SleepBackoff(const DiskManager::ReadRetryPolicy& policy, int retry) {
  double delay = policy.backoff_seconds;
  for (int i = 1; i < retry; ++i) delay *= policy.backoff_multiplier;
  if (policy.jitter_fraction > 0.0) {
    thread_local std::mt19937_64 rng(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) ^
        0x6d6d64625f696fULL);
    std::uniform_real_distribution<double> jitter(
        1.0 - policy.jitter_fraction, 1.0 + policy.jitter_fraction);
    delay *= jitter(rng);
  }
  if (delay > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

}  // namespace

DiskManager::~DiskManager() { Close().ok(); }

Status DiskManager::Open(const std::string& path, Env* env, bool checksums,
                         ReadRetryPolicy retry) {
  if (file_ != nullptr) {
    return Status::InvalidArgument("disk manager already open: " + path_);
  }
  if (env == nullptr) env = Env::Default();
  MMDB_ASSIGN_OR_RETURN(file_, env->OpenFile(path));
  path_ = path;
  checksums_ = checksums;
  retry_ = retry;
  return Status::OK();
}

Status DiskManager::Close() {
  if (file_ == nullptr) return Status::OK();
  const Status closed = file_->Close();
  file_.reset();
  return closed;
}

Result<PageId> DiskManager::PageCount() const {
  if (file_ == nullptr) return Status::InvalidArgument("not open");
  MMDB_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  return static_cast<PageId>(size / kPageSize);
}

Result<PageId> DiskManager::AllocatePage() {
  MMDB_ASSIGN_OR_RETURN(PageId count, PageCount());
  Page zero;
  if (checksums_) zero.StampChecksum();
  const Status appended =
      file_->WriteAt(static_cast<uint64_t>(count) * kPageSize, zero.data(),
                     kPageSize);
  if (!appended.ok()) return AnnotatePage(appended, "append", count);
  return count;
}

Status DiskManager::ReadPageRaw(PageId id, Page* page) const {
  if (file_ == nullptr) return Status::InvalidArgument("not open");
  MMDB_ASSIGN_OR_RETURN(PageId count, PageCount());
  if (id >= count) {
    return Status::OutOfRange("page " + std::to_string(id) + " past EOF (" +
                              std::to_string(count) + " pages)");
  }
  const Status read = file_->ReadAt(static_cast<uint64_t>(id) * kPageSize,
                                    page->data(), kPageSize);
  if (!read.ok()) return AnnotatePage(read, "read", id);
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, Page* page) const {
  obs::Span span(ReadSpan());
  // Per-page cooperative check: a storage-bound scan under a deadline or
  // cancel token stops here, between pages.
  MMDB_RETURN_IF_ERROR(CheckScopedCancel());
  const int attempts = std::max(1, retry_.max_attempts);
  Status read = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      SleepBackoff(retry_, attempt - 1);
      Retries()->Increment();
      MMDB_RETURN_IF_ERROR(CheckScopedCancel());
    }
    read = ReadPageRaw(id, page);
    if (read.ok()) break;
    // Only IoError is worth retrying; OutOfRange and friends are
    // deterministic verdicts about the request, not the device.
    if (read.code() != StatusCode::kIoError) return read;
  }
  MMDB_RETURN_IF_ERROR(read);
  PagesRead()->Increment();
  if (checksums_ && !page->ChecksumValid()) {
    // Distinguish a flipped bit in flight from one on the platter: one
    // immediate re-read. Persistent damage fails again and stands.
    if (retry_.checksum_retry) {
      ChecksumRereads()->Increment();
      const Status reread = ReadPageRaw(id, page);
      if (reread.ok() && page->ChecksumValid()) return Status::OK();
    }
    ChecksumFailures()->Increment();
    return Status::Corruption(
        "page " + std::to_string(id) + " of " + path_ +
        ": checksum mismatch (stored 0x" +
        [](uint32_t v) {
          char buf[9];
          std::snprintf(buf, sizeof(buf), "%08x", v);
          return std::string(buf);
        }(page->StoredChecksum()) +
        ")");
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const Page& page) {
  obs::Span span(WriteSpan());
  if (file_ == nullptr) return Status::InvalidArgument("not open");
  MMDB_ASSIGN_OR_RETURN(PageId count, PageCount());
  if (id >= count) {
    return Status::OutOfRange("write to unallocated page " +
                              std::to_string(id));
  }
  // Stamp the footer on a scratch copy; the caller's in-memory image may
  // carry a stale footer from the read that populated it.
  Page out = page;
  if (checksums_) out.StampChecksum();
  const Status written = file_->WriteAt(static_cast<uint64_t>(id) * kPageSize,
                                        out.data(), kPageSize);
  if (!written.ok()) return AnnotatePage(written, "write", id);
  PagesWritten()->Increment();
  return Status::OK();
}

Status DiskManager::Sync() {
  if (file_ == nullptr) return Status::InvalidArgument("not open");
  return file_->Sync();
}

}  // namespace mmdb
