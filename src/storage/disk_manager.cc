#include "storage/disk_manager.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mmdb {

namespace {
Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}
}  // namespace

DiskManager::~DiskManager() { Close().ok(); }

Status DiskManager::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::InvalidArgument("disk manager already open: " + path_);
  }
  // "r+b" keeps existing contents; fall back to "w+b" to create.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) return Errno("open", path);
  file_ = f;
  path_ = path;
  return Status::OK();
}

Status DiskManager::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Errno("close", path_);
  return Status::OK();
}

Result<PageId> DiskManager::PageCount() const {
  if (file_ == nullptr) return Status::InvalidArgument("not open");
  if (std::fseek(file_, 0, SEEK_END) != 0) return Errno("seek", path_);
  const long end = std::ftell(file_);
  if (end < 0) return Errno("tell", path_);
  return static_cast<PageId>(static_cast<size_t>(end) / kPageSize);
}

Result<PageId> DiskManager::AllocatePage() {
  MMDB_ASSIGN_OR_RETURN(PageId count, PageCount());
  Page zero;
  if (std::fseek(file_, 0, SEEK_END) != 0) return Errno("seek", path_);
  if (std::fwrite(zero.data(), kPageSize, 1, file_) != 1) {
    return Errno("append", path_);
  }
  return count;
}

Status DiskManager::ReadPage(PageId id, Page* page) const {
  if (file_ == nullptr) return Status::InvalidArgument("not open");
  MMDB_ASSIGN_OR_RETURN(PageId count, PageCount());
  if (id >= count) {
    return Status::OutOfRange("page " + std::to_string(id) + " past EOF (" +
                              std::to_string(count) + " pages)");
  }
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Errno("seek", path_);
  }
  if (std::fread(page->data(), kPageSize, 1, file_) != 1) {
    return Errno("read", path_);
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const Page& page) {
  if (file_ == nullptr) return Status::InvalidArgument("not open");
  MMDB_ASSIGN_OR_RETURN(PageId count, PageCount());
  if (id >= count) {
    return Status::OutOfRange("write to unallocated page " +
                              std::to_string(id));
  }
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Errno("seek", path_);
  }
  if (std::fwrite(page.data(), kPageSize, 1, file_) != 1) {
    return Errno("write", path_);
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  if (file_ == nullptr) return Status::InvalidArgument("not open");
  if (std::fflush(file_) != 0) return Errno("flush", path_);
  if (::fsync(::fileno(file_)) != 0) return Errno("fsync", path_);
  return Status::OK();
}

}  // namespace mmdb
