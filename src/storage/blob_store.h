#ifndef MMDB_STORAGE_BLOB_STORE_H_
#define MMDB_STORAGE_BLOB_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "util/result.h"

namespace mmdb {

/// On-disk identification of a blob-store page file, exported so
/// `DiskObjectStore::Open` can version-gate a file *before* running
/// journal recovery over it (recovery writes pages, and writing stamps
/// checksum footers — fatal to a v1 file whose pages may carry payload
/// in the footer region).
namespace blob_format {
inline constexpr uint32_t kMagic = 0x4d4d4442;  // "MMDB"
/// Version 2 reserves the trailing `kPageFooterSize` bytes of every page
/// for the CRC-32 footer (see page.h). Version 1 files used the full
/// 4096 bytes for payload and are rejected, not migrated.
inline constexpr uint32_t kVersion = 2;
/// Byte offsets of the magic/version fields within header page 0.
inline constexpr size_t kMagicOffset = 0;
inline constexpr size_t kVersionOffset = 4;
}  // namespace blob_format

/// Key -> blob storage over the page file, used to persist image rasters
/// (PPM-encoded), edit-script records, and catalog metadata.
///
/// On-disk layout (format v2 — every page ends in the checksum footer,
/// so layouts use the first `kPageUsableSize` bytes):
///  * page 0: header {magic, version, free_list_head, directory_head}
///  * directory pages: chained fixed-slot arrays of
///    {key u64, first_page u32, total_len u32} entries (key 0 = free slot)
///  * blob pages: chained {next u32, payload_len u32, payload[4080]}
///  * free pages: singly linked through their first 4 bytes
///
/// The directory is mirrored in memory at `Open` so lookups are O(log n)
/// without I/O; reads and writes of blob payloads go through the buffer
/// pool.
class BlobStore {
 public:
  /// Opens the store over `pool` (whose disk file may be empty, in which
  /// case the header is initialized). `pool` must outlive the store.
  static Result<std::unique_ptr<BlobStore>> Open(BufferPool* pool);

  /// Inserts `value` under `key` (key must be non-zero and absent).
  Status Put(uint64_t key, const std::string& value);

  /// Retrieves the blob stored under `key`.
  Result<std::string> Get(uint64_t key) const;

  /// Removes `key`, returning its pages to the free list.
  Status Delete(uint64_t key);

  bool Contains(uint64_t key) const { return directory_.count(key) > 0; }

  /// All keys in ascending order.
  std::vector<uint64_t> Keys() const;

  /// Every blob's key and the head page of its chain, in key order —
  /// for integrity walks (`DiskObjectStore::Scrub`).
  std::vector<std::pair<uint64_t, PageId>> ChainHeads() const;

  size_t BlobCount() const { return directory_.size(); }

  /// Writes every dirty page back to disk.
  Status Flush();

 private:
  struct DirEntry {
    PageId first_page = kInvalidPageId;
    uint32_t total_len = 0;
    PageId dir_page = kInvalidPageId;  // Directory page holding the slot.
    uint32_t slot = 0;
  };

  explicit BlobStore(BufferPool* pool) : pool_(pool) {}

  Status InitializeHeader();
  Status LoadDirectory();
  /// Allocates a page, preferring the free list.
  Result<PageId> AllocPage();
  /// Returns `id` to the free list.
  Status FreePage(PageId id);
  /// Finds (or creates) a free directory slot.
  Result<DirEntry> ClaimDirectorySlot(uint64_t key, PageId first_page,
                                      uint32_t total_len);

  BufferPool* pool_;
  std::map<uint64_t, DirEntry> directory_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_BLOB_STORE_H_
