#ifndef MMDB_STORAGE_BLOB_STORE_H_
#define MMDB_STORAGE_BLOB_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "util/result.h"

namespace mmdb {

/// Key -> blob storage over the page file, used to persist image rasters
/// (PPM-encoded), edit-script records, and catalog metadata.
///
/// On-disk layout:
///  * page 0: header {magic, version, free_list_head, directory_head}
///  * directory pages: chained fixed-slot arrays of
///    {key u64, first_page u32, total_len u32} entries (key 0 = free slot)
///  * blob pages: chained {next u32, payload_len u32, payload[4088]}
///  * free pages: singly linked through their first 4 bytes
///
/// The directory is mirrored in memory at `Open` so lookups are O(log n)
/// without I/O; reads and writes of blob payloads go through the buffer
/// pool.
class BlobStore {
 public:
  /// Opens the store over `pool` (whose disk file may be empty, in which
  /// case the header is initialized). `pool` must outlive the store.
  static Result<std::unique_ptr<BlobStore>> Open(BufferPool* pool);

  /// Inserts `value` under `key` (key must be non-zero and absent).
  Status Put(uint64_t key, const std::string& value);

  /// Retrieves the blob stored under `key`.
  Result<std::string> Get(uint64_t key) const;

  /// Removes `key`, returning its pages to the free list.
  Status Delete(uint64_t key);

  bool Contains(uint64_t key) const { return directory_.count(key) > 0; }

  /// All keys in ascending order.
  std::vector<uint64_t> Keys() const;

  size_t BlobCount() const { return directory_.size(); }

  /// Writes every dirty page back to disk.
  Status Flush();

 private:
  struct DirEntry {
    PageId first_page = kInvalidPageId;
    uint32_t total_len = 0;
    PageId dir_page = kInvalidPageId;  // Directory page holding the slot.
    uint32_t slot = 0;
  };

  explicit BlobStore(BufferPool* pool) : pool_(pool) {}

  Status InitializeHeader();
  Status LoadDirectory();
  /// Allocates a page, preferring the free list.
  Result<PageId> AllocPage();
  /// Returns `id` to the free list.
  Status FreePage(PageId id);
  /// Finds (or creates) a free directory slot.
  Result<DirEntry> ClaimDirectorySlot(uint64_t key, PageId first_page,
                                      uint32_t total_len);

  BufferPool* pool_;
  std::map<uint64_t, DirEntry> directory_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_BLOB_STORE_H_
