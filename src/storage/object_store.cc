#include "storage/object_store.h"

#include <functional>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mmdb {

namespace {

obs::SpanCategory* CommitSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("store.commit");
  return category;
}

obs::Counter* Commits() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "mmdb_store_commits_total",
      "Transactions committed by the disk object store.");
  return counter;
}

/// The latest Scrub() result, exposed as gauges: an instantaneous health
/// reading, overwritten by each scrub.
struct ScrubGauges {
  obs::Gauge* pages_scanned;
  obs::Gauge* corrupt_pages;
  obs::Gauge* corrupt_keys;
  obs::Counter* scrubs;
};

const ScrubGauges& ScrubInstruments() {
  static const ScrubGauges gauges = [] {
    obs::Registry& registry = obs::Registry::Default();
    ScrubGauges out;
    out.pages_scanned = registry.GetGauge(
        "mmdb_scrub_pages_scanned",
        "Pages verified by the most recent store scrub.");
    out.corrupt_pages = registry.GetGauge(
        "mmdb_scrub_corrupt_pages",
        "Pages failing checksum in the most recent store scrub.");
    out.corrupt_keys = registry.GetGauge(
        "mmdb_scrub_corrupt_keys",
        "Blob keys with a damaged page chain in the most recent scrub.");
    out.scrubs = registry.GetCounter("mmdb_scrubs_total",
                                     "Store scrubs completed.");
    return out;
  }();
  return gauges;
}

}  // namespace

Status MemoryObjectStore::Put(uint64_t key, const std::string& value) {
  if (key == 0) return Status::InvalidArgument("object key must be non-zero");
  if (!blobs_.emplace(key, value).second) {
    return Status::AlreadyExists("object key " + std::to_string(key));
  }
  return Status::OK();
}

Status MemoryObjectStore::Upsert(uint64_t key, const std::string& value) {
  if (key == 0) return Status::InvalidArgument("object key must be non-zero");
  blobs_[key] = value;
  return Status::OK();
}

Result<std::string> MemoryObjectStore::Get(uint64_t key) const {
  const auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Status::NotFound("object key " + std::to_string(key));
  }
  return it->second;
}

Status MemoryObjectStore::Delete(uint64_t key) {
  if (blobs_.erase(key) == 0) {
    return Status::NotFound("object key " + std::to_string(key));
  }
  return Status::OK();
}

bool MemoryObjectStore::Contains(uint64_t key) const {
  return blobs_.count(key) > 0;
}

std::vector<uint64_t> MemoryObjectStore::Keys() const {
  std::vector<uint64_t> keys;
  keys.reserve(blobs_.size());
  for (const auto& [key, value] : blobs_) keys.push_back(key);
  return keys;
}

namespace {

/// Rejects a page file written by a pre-checksum (v1) format *before*
/// journal recovery gets a chance to write (and checksum-stamp) pages
/// over it. Uses a raw read: a v1 header page has no footer to verify.
Status CheckFormatVersion(const DiskManager& disk) {
  MMDB_ASSIGN_OR_RETURN(PageId page_count, disk.PageCount());
  if (page_count == 0) return Status::OK();  // Fresh file.
  Page header;
  MMDB_RETURN_IF_ERROR(disk.ReadPageRaw(0, &header));
  if (header.ReadU32(blob_format::kMagicOffset) != blob_format::kMagic) {
    // Not a blob-store file at all; let BlobStore::Open report it.
    return Status::OK();
  }
  const uint32_t version = header.ReadU32(blob_format::kVersionOffset);
  if (version < blob_format::kVersion) {
    return Status::Corruption(
        "database file is format version " + std::to_string(version) +
        "; this build reads version " + std::to_string(blob_format::kVersion) +
        " (pages carry checksum footers). Migrate by re-ingesting into a "
        "fresh file; in-place conversion would overwrite v1 page payload.");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<DiskObjectStore>> DiskObjectStore::Open(
    const std::string& path, size_t pool_pages, bool journaled, Env* env) {
  std::unique_ptr<DiskObjectStore> store(new DiskObjectStore());
  store->journaled_ = journaled;
  store->disk_ = std::make_unique<DiskManager>();
  MMDB_RETURN_IF_ERROR(store->disk_->Open(path, env));
  MMDB_RETURN_IF_ERROR(CheckFormatVersion(*store->disk_));

  // Recover an interrupted transaction before anything reads the file.
  MMDB_ASSIGN_OR_RETURN(store->journal_,
                        Journal::Open(path + ".journal", env));
  if (store->journal_->NeedsRecovery()) {
    MMDB_ASSIGN_OR_RETURN(auto records, store->journal_->ReadRecords());
    MMDB_ASSIGN_OR_RETURN(PageId page_count, store->disk_->PageCount());
    // Undo in reverse order; before-images of pages the crash never got
    // to write (beyond EOF) need no undo.
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      if (it->first >= page_count) continue;
      MMDB_RETURN_IF_ERROR(store->disk_->WritePage(it->first, it->second));
    }
    MMDB_RETURN_IF_ERROR(store->disk_->Sync());
    MMDB_RETURN_IF_ERROR(store->journal_->Reset());
  }

  // The blob store pins up to three pages at once; keep a sane floor.
  store->pool_ = std::make_unique<BufferPool>(
      store->disk_.get(), pool_pages < 8 ? 8 : pool_pages);
  if (journaled) {
    Journal* journal = store->journal_.get();
    store->pool_->SetWriteCaptureHook(
        [journal](PageId id, const Page& before) {
          return journal->Append(id, before);
        });
    store->pool_->SetPreWritebackHook(
        [journal] { return journal->EnsureSynced(); });
  }
  MMDB_ASSIGN_OR_RETURN(store->blobs_, BlobStore::Open(store->pool_.get()));
  // Initializing a fresh header page is itself a transaction.
  MMDB_RETURN_IF_ERROR(store->CommitTransaction());
  return store;
}

Status DiskObjectStore::CommitTransaction() {
  obs::Span span(CommitSpan());
  if (crashed_) return Status::Internal("store crashed (testing)");
  MMDB_RETURN_IF_ERROR(pool_->TakeCaptureError());
  MMDB_RETURN_IF_ERROR(pool_->FlushAll());
  MMDB_RETURN_IF_ERROR(disk_->Sync());
  MMDB_RETURN_IF_ERROR(journal_->Reset());
  pool_->BeginCaptureEpoch();
  Commits()->Increment();
  return Status::OK();
}

Status DiskObjectStore::RollbackTransaction() {
  // Restore every captured before-image through the pool, then commit
  // the restoration and rebuild the in-memory blob directory.
  MMDB_RETURN_IF_ERROR(pool_->TakeCaptureError());
  pool_->SetWriteCaptureHook(nullptr);  // Don't journal the undo itself.
  MMDB_ASSIGN_OR_RETURN(auto records, journal_->ReadRecords());
  Status undo = Status::OK();
  for (auto it = records.rbegin(); it != records.rend() && undo.ok(); ++it) {
    Result<PageGuard> guard = pool_->FetchPage(it->first);
    if (!guard.ok()) {
      undo = guard.status();
      break;
    }
    guard->Write() = it->second;
  }
  if (undo.ok()) undo = pool_->FlushAll();
  if (undo.ok()) undo = disk_->Sync();
  if (undo.ok()) undo = journal_->Reset();
  pool_->BeginCaptureEpoch();
  if (journaled_) {
    Journal* journal = journal_.get();
    pool_->SetWriteCaptureHook([journal](PageId id, const Page& before) {
      return journal->Append(id, before);
    });
  }
  MMDB_RETURN_IF_ERROR(undo);
  // The rolled-back pages invalidate the cached directory; reload it.
  MMDB_ASSIGN_OR_RETURN(blobs_, BlobStore::Open(pool_.get()));
  return Status::OK();
}

Status DiskObjectStore::MaybeCommit() {
  if (batch_depth_ > 0) return Status::OK();
  return CommitTransaction();
}

Status DiskObjectStore::Mutate(const std::function<Status()>& mutation) {
  if (crashed_) return Status::Internal("store crashed (testing)");
  const Status applied = mutation();
  if (!applied.ok()) {
    if (batch_depth_ == 0 && journaled_ && journal_->record_count() > 0) {
      // A failed standalone mutation may have touched pages; undo them.
      MMDB_RETURN_IF_ERROR(RollbackTransaction());
    }
    return applied;
  }
  return MaybeCommit();
}

Status DiskObjectStore::Put(uint64_t key, const std::string& value) {
  return Mutate([&] { return blobs_->Put(key, value); });
}

Status DiskObjectStore::Upsert(uint64_t key, const std::string& value) {
  return Mutate([&]() -> Status {
    if (blobs_->Contains(key)) {
      MMDB_RETURN_IF_ERROR(blobs_->Delete(key));
    }
    return blobs_->Put(key, value);
  });
}

Status DiskObjectStore::Delete(uint64_t key) {
  return Mutate([&] { return blobs_->Delete(key); });
}

Result<std::string> DiskObjectStore::Get(uint64_t key) const {
  return blobs_->Get(key);
}

bool DiskObjectStore::Contains(uint64_t key) const {
  return blobs_->Contains(key);
}

std::vector<uint64_t> DiskObjectStore::Keys() const { return blobs_->Keys(); }

size_t DiskObjectStore::Count() const { return blobs_->BlobCount(); }

Status DiskObjectStore::BeginBatch() {
  ++batch_depth_;
  return Status::OK();
}

Status DiskObjectStore::CommitBatch() {
  if (batch_depth_ <= 0) {
    return Status::InvalidArgument("CommitBatch without BeginBatch");
  }
  if (--batch_depth_ == 0) return CommitTransaction();
  return Status::OK();
}

Status DiskObjectStore::AbortBatch() {
  if (batch_depth_ <= 0) {
    return Status::InvalidArgument("AbortBatch without BeginBatch");
  }
  batch_depth_ = 0;  // An abort unwinds the whole nest.
  return RollbackTransaction();
}

Status DiskObjectStore::Flush() {
  MMDB_RETURN_IF_ERROR(CommitTransaction());
  return Status::OK();
}

Result<DiskObjectStore::ScrubReport> DiskObjectStore::Scrub() const {
  ScrubReport report;
  MMDB_ASSIGN_OR_RETURN(report.pages_scanned, disk_->PageCount());
  Page page;
  for (PageId id = 0; id < report.pages_scanned; ++id) {
    const Status read = disk_->ReadPage(id, &page);
    if (read.code() == StatusCode::kCorruption) {
      report.corrupt_pages.push_back(id);
    } else if (!read.ok()) {
      return read;
    }
  }
  // Attribute corruption to blobs: a chain is damaged when any page on it
  // is corrupt, points past EOF, or loops (a bad next pointer can do
  // both, so the walk is bounded by the file's page count).
  for (const auto& [key, head] : blobs_->ChainHeads()) {
    PageId id = head;
    PageId hops = 0;
    while (id != kInvalidPageId) {
      if (id >= report.pages_scanned || ++hops > report.pages_scanned) {
        report.corrupt_keys.push_back(key);
        break;
      }
      const Status read = disk_->ReadPage(id, &page);
      if (!read.ok()) {
        if (read.code() != StatusCode::kCorruption) return read;
        report.corrupt_keys.push_back(key);
        break;
      }
      id = page.ReadU32(0);  // kBlobNext
    }
  }
  const ScrubGauges& gauges = ScrubInstruments();
  gauges.pages_scanned->Set(static_cast<double>(report.pages_scanned));
  gauges.corrupt_pages->Set(static_cast<double>(report.corrupt_pages.size()));
  gauges.corrupt_keys->Set(static_cast<double>(report.corrupt_keys.size()));
  gauges.scrubs->Increment();
  return report;
}

void DiskObjectStore::SimulateCrashForTesting() {
  pool_->AbandonForTesting();
  crashed_ = true;
}

}  // namespace mmdb
