#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace mmdb {

std::string_view IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kOpen:
      return "open";
    case IoOp::kRead:
      return "read";
    case IoOp::kWrite:
      return "write";
    case IoOp::kSync:
      return "sync";
    case IoOp::kTruncate:
      return "truncate";
  }
  return "unknown";
}

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// POSIX file over a plain fd, pread/pwrite based. EINTR and short
/// transfers retry in a loop; genuine errors and EOF surface as IoError.
class PosixFile final : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status ReadAt(uint64_t offset, void* dst, size_t n) override {
    MMDB_RETURN_IF_ERROR(CheckOpen("read"));
    char* out = static_cast<char*>(dst);
    size_t done = 0;
    while (done < n) {
      const ssize_t got = ::pread(fd_, out + done, n - done,
                                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;  // Retry interrupted reads.
        return ErrnoStatus("read", path_);
      }
      if (got == 0) {
        return Status::IoError("read " + path_ + ": short read at offset " +
                               std::to_string(offset + done) + " (wanted " +
                               std::to_string(n) + " bytes)");
      }
      done += static_cast<size_t>(got);
    }
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const void* src, size_t n) override {
    MMDB_RETURN_IF_ERROR(CheckOpen("write"));
    const char* in = static_cast<const char*>(src);
    size_t done = 0;
    while (done < n) {
      const ssize_t put = ::pwrite(fd_, in + done, n - done,
                                   static_cast<off_t>(offset + done));
      if (put < 0) {
        if (errno == EINTR) continue;  // Retry interrupted writes.
        return ErrnoStatus("write", path_);
      }
      done += static_cast<size_t>(put);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    MMDB_RETURN_IF_ERROR(CheckOpen("stat"));
    struct stat st{};
    if (::fstat(fd_, &st) != 0) return ErrnoStatus("stat", path_);
    return static_cast<uint64_t>(st.st_size);
  }

  Status Sync() override {
    MMDB_RETURN_IF_ERROR(CheckOpen("sync"));
    // Fsyncgate semantics: after a failed fsync the kernel may already
    // have dropped the dirty pages, so no later fsync can make the data
    // durable — the failure is sticky and typed DataLoss, never IoError
    // (which callers are allowed to retry).
    if (sync_failed_) {
      return Status::DataLoss("fsync " + path_ +
                              ": a previous fsync failed; writes since then "
                              "may be lost");
    }
    int rc;
    do {
      rc = ::fsync(fd_);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      sync_failed_ = true;
      return Status::DataLoss("fsync " + path_ + ": " + std::strerror(errno));
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    MMDB_RETURN_IF_ERROR(CheckOpen("truncate"));
    int rc;
    do {
      rc = ::ftruncate(fd_, static_cast<off_t>(size));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return ErrnoStatus("truncate", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_);
    return Status::OK();
  }

 private:
  Status CheckOpen(const char* what) const {
    if (fd_ < 0) {
      return Status::IoError(std::string(what) + " " + path_ +
                             ": file is closed");
    }
    return Status::OK();
  }

  int fd_;
  std::string path_;
  /// Set forever once an fsync fails (see Sync).
  bool sync_failed_ = false;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& path) override {
    // O_CREAT without O_TRUNC: opens an existing file intact and creates
    // a missing one in a single call — there is no failure mode that
    // truncates existing data (the old fopen("r+b") → fopen("w+b")
    // fallback had one: any transient error, e.g. EMFILE, fell through
    // to the truncating create).
    int fd;
    do {
      fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return ErrnoStatus("open", path);
    return std::unique_ptr<File>(new PosixFile(fd, path));
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return ErrnoStatus("unlink", path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) const override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

// --- FaultInjectingEnv -------------------------------------------------

/// File wrapper that routes every operation through the env's fault
/// accountant before (maybe) delegating to the real file. Lives in the
/// mmdb namespace (not file-local) to match the env's friend declaration.
class FaultInjectingFile final : public File {
 public:
  FaultInjectingFile(FaultInjectingEnv* env, std::unique_ptr<File> base,
                     std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Status ReadAt(uint64_t offset, void* dst, size_t n) override;
  Status WriteAt(uint64_t offset, const void* src, size_t n) override;
  Result<uint64_t> Size() const override { return base_->Size(); }
  Status Sync() override;
  Status Truncate(uint64_t size) override;
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<File> base_;
  std::string path_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base) : base_(base) {}

Status FaultInjectingEnv::Account(IoOp op, const std::string& path,
                                  bool* torn, size_t* torn_keep, bool* flip,
                                  size_t* flip_byte, int* flip_bit) {
  log_.push_back({op, path});
  // The crash point lets exactly `k` operations through, then freezes
  // the machine: this operation and every later one is refused.
  if (crash_after_ == 0) {
    crashed_ = true;
    crash_after_ = -1;
  }
  if (crashed_) {
    return Status::IoError("injected crash: " + std::string(IoOpName(op)) +
                           " " + path + " refused");
  }
  if (crash_after_ > 0) --crash_after_;
  Status verdict = Status::OK();

  auto take = [](int64_t* countdown) {
    if (*countdown < 0) return false;
    if (--*countdown >= 0) return false;
    *countdown = -1;
    return true;
  };

  // A stalled operation still happens — it just takes a while, which is
  // what deadline enforcement has to survive.
  if (op == stall_op_ && take(&stall_countdown_)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(stall_seconds_));
  }
  if (op == IoOp::kRead && transient_reads_ > 0) {
    --transient_reads_;
    return Status::IoError("injected transient read failure: " + path);
  }

  int64_t* fail = nullptr;
  switch (op) {
    case IoOp::kOpen:
      fail = &fail_open_;
      break;
    case IoOp::kRead:
      fail = &fail_read_;
      break;
    case IoOp::kWrite:
      fail = &fail_write_;
      break;
    case IoOp::kSync:
      fail = &fail_sync_;
      break;
    case IoOp::kTruncate:
      fail = &fail_truncate_;
      break;
  }
  if (take(fail)) {
    verdict = Status::IoError("injected fault: " +
                              std::string(IoOpName(op)) + " " + path);
  }
  if (op == IoOp::kWrite && take(&torn_write_)) {
    *torn = true;
    *torn_keep = torn_keep_;
  }
  if (op == IoOp::kRead && take(&flip_read_)) {
    *flip = true;
    *flip_byte = flip_byte_;
    *flip_bit = flip_bit_;
  }
  return verdict;
}

Status FaultInjectingFile::ReadAt(uint64_t offset, void* dst, size_t n) {
  bool torn = false, flip = false;
  size_t keep = 0, flip_byte = 0;
  int flip_bit = 0;
  MMDB_RETURN_IF_ERROR(
      env_->Account(IoOp::kRead, path_, &torn, &keep, &flip, &flip_byte,
                    &flip_bit));
  MMDB_RETURN_IF_ERROR(base_->ReadAt(offset, dst, n));
  if (flip && n > 0) {
    static_cast<unsigned char*>(dst)[flip_byte % n] ^=
        static_cast<unsigned char>(1u << (flip_bit & 7));
  }
  return Status::OK();
}

Status FaultInjectingFile::WriteAt(uint64_t offset, const void* src,
                                   size_t n) {
  bool torn = false, flip = false;
  size_t keep = 0, flip_byte = 0;
  int flip_bit = 0;
  MMDB_RETURN_IF_ERROR(
      env_->Account(IoOp::kWrite, path_, &torn, &keep, &flip, &flip_byte,
                    &flip_bit));
  if (torn) {
    // Persist only a prefix, then report failure — a torn write.
    const size_t prefix = keep < n ? keep : n;
    if (prefix > 0) {
      MMDB_RETURN_IF_ERROR(base_->WriteAt(offset, src, prefix));
    }
    return Status::IoError("injected torn write: " + path_ + " kept " +
                           std::to_string(prefix) + " of " +
                           std::to_string(n) + " bytes");
  }
  return base_->WriteAt(offset, src, n);
}

Status FaultInjectingFile::Sync() {
  bool torn = false, flip = false;
  size_t keep = 0, flip_byte = 0;
  int flip_bit = 0;
  MMDB_RETURN_IF_ERROR(env_->Account(IoOp::kSync, path_, &torn, &keep, &flip,
                                     &flip_byte, &flip_bit));
  return base_->Sync();
}

Status FaultInjectingFile::Truncate(uint64_t size) {
  bool torn = false, flip = false;
  size_t keep = 0, flip_byte = 0;
  int flip_bit = 0;
  MMDB_RETURN_IF_ERROR(env_->Account(IoOp::kTruncate, path_, &torn, &keep,
                                     &flip, &flip_byte, &flip_bit));
  return base_->Truncate(size);
}

Result<std::unique_ptr<File>> FaultInjectingEnv::OpenFile(
    const std::string& path) {
  bool torn = false, flip = false;
  size_t keep = 0, flip_byte = 0;
  int flip_bit = 0;
  MMDB_RETURN_IF_ERROR(Account(IoOp::kOpen, path, &torn, &keep, &flip,
                               &flip_byte, &flip_bit));
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<File> base, base_->OpenFile(path));
  return std::unique_ptr<File>(
      new FaultInjectingFile(this, std::move(base), path));
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) const {
  return base_->FileExists(path);
}

void FaultInjectingEnv::FailNth(IoOp op, int64_t n) {
  int64_t* slot = nullptr;
  switch (op) {
    case IoOp::kOpen:
      slot = &fail_open_;
      break;
    case IoOp::kRead:
      slot = &fail_read_;
      break;
    case IoOp::kWrite:
      slot = &fail_write_;
      break;
    case IoOp::kSync:
      slot = &fail_sync_;
      break;
    case IoOp::kTruncate:
      slot = &fail_truncate_;
      break;
  }
  *slot = n - 1;
}

void FaultInjectingEnv::TornNthWrite(int64_t n, size_t keep_bytes) {
  torn_write_ = n - 1;
  torn_keep_ = keep_bytes;
}

void FaultInjectingEnv::FlipBitOnNthRead(int64_t n, size_t byte_offset,
                                         int bit) {
  flip_read_ = n - 1;
  flip_byte_ = byte_offset;
  flip_bit_ = bit;
}

void FaultInjectingEnv::TransientReadFailures(int64_t count) {
  transient_reads_ = count > 0 ? count : 0;
}

void FaultInjectingEnv::StallNth(IoOp op, int64_t n, double seconds) {
  stall_op_ = op;
  stall_countdown_ = n - 1;
  stall_seconds_ = seconds;
}

void FaultInjectingEnv::CrashAfterOps(int64_t k) { crash_after_ = k; }

void FaultInjectingEnv::ClearFaults() {
  crashed_ = false;
  crash_after_ = -1;
  fail_open_ = -1;
  fail_read_ = -1;
  fail_write_ = -1;
  fail_sync_ = -1;
  fail_truncate_ = -1;
  torn_write_ = -1;
  flip_read_ = -1;
  transient_reads_ = 0;
  stall_countdown_ = -1;
}

}  // namespace mmdb
