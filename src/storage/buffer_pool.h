#ifndef MMDB_STORAGE_BUFFER_POOL_H_
#define MMDB_STORAGE_BUFFER_POOL_H_

#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/result.h"

namespace mmdb {

class PageGuard;

/// Invoked with a page's pre-modification image the first time it is
/// written within the current capture epoch (see `BufferPool`'s journal
/// integration).
using WriteCaptureHook = std::function<Status(PageId, const Page&)>;

/// Invoked before any dirty page is written back to disk; used to
/// enforce the write-ahead rule (journal durable before data pages).
using PreWritebackHook = std::function<Status()>;

/// A fixed-capacity page cache over a `DiskManager` with LRU replacement
/// and pin counting.
///
/// Pages are accessed through `PageGuard`s, which pin their frame for
/// their lifetime (a pinned frame is never evicted) and mark it dirty when
/// written through. Dirty frames are written back on eviction and on
/// `FlushAll`.
class BufferPool {
 public:
  /// `capacity` is the number of in-memory frames; `disk` must outlive
  /// the pool.
  BufferPool(DiskManager* disk, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss. Fails with
  /// ResourceExhausted when every frame is pinned.
  Result<PageGuard> FetchPage(PageId id);

  /// Allocates a fresh page on disk and pins it.
  Result<PageGuard> NewPage();

  /// Writes back every dirty frame (does not evict).
  Status FlushAll();

  /// Frames currently pinned (for tests and stats).
  size_t PinnedCount() const;
  size_t capacity() const { return capacity_; }

  /// Journal integration (see `Journal`). The capture hook receives each
  /// page's before-image on its first write of the current epoch; the
  /// pre-writeback hook runs before any dirty page reaches disk.
  void SetWriteCaptureHook(WriteCaptureHook hook) {
    capture_hook_ = std::move(hook);
  }
  void SetPreWritebackHook(PreWritebackHook hook) {
    pre_writeback_hook_ = std::move(hook);
  }

  /// Starts a new capture epoch: every page's next write is captured
  /// again. Called after each committed transaction.
  void BeginCaptureEpoch();

  /// Returns (and clears) any error a capture-hook invocation produced;
  /// `PageGuard::Write` cannot fail, so errors surface here at commit.
  Status TakeCaptureError();

  /// TESTING ONLY: drops all dirty bits so destruction writes nothing
  /// back — simulates losing buffered state in a crash.
  void AbandonForTesting();

  /// Cache statistics.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t writebacks = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    PageId page_id = 0;
    /// Distinguishes an empty frame from one holding disk page 0 (page
    /// ids start at 0; there is no spare id to use as a sentinel).
    bool in_use = false;
    int pin_count = 0;
    bool dirty = false;
    /// Before-image already captured this epoch.
    bool captured = false;
  };

  /// Captures the frame's before-image on its first write this epoch.
  void OnGuardWrite(size_t frame_index);
  /// Runs the pre-writeback hook (write-ahead rule) before a dirty page
  /// reaches disk.
  Status NotifyWriteback();

  /// Finds a frame for `id` (hit, free frame, or LRU eviction), pins it.
  Result<size_t> PinFrame(PageId id, bool read_from_disk);
  void Unpin(size_t frame_index, bool dirty);
  void TouchLru(size_t frame_index);
  Status EvictFrame(size_t frame_index);

  DiskManager* disk_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::vector<size_t> free_frames_;
  /// LRU order over unpinned-but-resident frames; front = least recent.
  std::list<size_t> lru_;
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  Stats stats_;
  WriteCaptureHook capture_hook_;
  PreWritebackHook pre_writeback_hook_;
  Status capture_error_;
};

/// RAII pin on a buffer pool frame.
///
/// `Read()` returns the page for inspection; `Write()` additionally marks
/// the frame dirty. The pin is released on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool Valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  const Page& Read() const { return pool_->frames_[frame_].page; }
  Page& Write() {
    // Capture the before-image (journal) before handing out mutable
    // access.
    pool_->OnGuardWrite(frame_);
    dirty_ = true;
    return pool_->frames_[frame_].page;
  }

  /// Releases the pin early.
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, size_t frame, PageId page_id)
      : pool_(pool), frame_(frame), page_id_(page_id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
  bool dirty_ = false;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_BUFFER_POOL_H_
