#include "storage/blob_store.h"

#include <algorithm>

namespace mmdb {

namespace {

// Header page (page 0) layout.
constexpr size_t kHdrMagic = blob_format::kMagicOffset;
constexpr size_t kHdrVersion = blob_format::kVersionOffset;
constexpr size_t kHdrFreeHead = 8;
constexpr size_t kHdrDirHead = 12;

// Blob page layout. Payload stops at kPageUsableSize so the checksum
// footer never overlaps blob bytes.
constexpr size_t kBlobNext = 0;
constexpr size_t kBlobLen = 4;
constexpr size_t kBlobPayload = 8;
constexpr size_t kBlobCapacity = kPageUsableSize - kBlobPayload;

// Directory page layout.
constexpr size_t kDirNext = 0;
constexpr size_t kDirSlots = 8;
constexpr size_t kDirEntrySize = 16;  // key u64, first_page u32, len u32.
constexpr uint32_t kSlotsPerDirPage =
    static_cast<uint32_t>((kPageUsableSize - kDirSlots) / kDirEntrySize);

size_t SlotOffset(uint32_t slot) { return kDirSlots + slot * kDirEntrySize; }

}  // namespace

Result<std::unique_ptr<BlobStore>> BlobStore::Open(BufferPool* pool) {
  std::unique_ptr<BlobStore> store(new BlobStore(pool));
  MMDB_RETURN_IF_ERROR(store->InitializeHeader());
  MMDB_RETURN_IF_ERROR(store->LoadDirectory());
  return store;
}

Status BlobStore::InitializeHeader() {
  // A brand-new file has no pages; create and stamp the header page.
  Result<PageGuard> fetched = pool_->FetchPage(0);
  if (!fetched.ok()) {
    MMDB_ASSIGN_OR_RETURN(PageGuard header, pool_->NewPage());
    if (header.page_id() != 0) {
      return Status::Corruption("header page allocated at nonzero id");
    }
    Page& page = header.Write();
    page.WriteU32(kHdrMagic, blob_format::kMagic);
    page.WriteU32(kHdrVersion, blob_format::kVersion);
    page.WriteU32(kHdrFreeHead, kInvalidPageId);
    page.WriteU32(kHdrDirHead, kInvalidPageId);
    return Status::OK();
  }
  const Page& page = fetched->Read();
  if (page.ReadU32(kHdrMagic) == 0) {
    // An all-zero header page is a crashed (or rolled-back) store
    // creation: page 0 was allocated but its contents never committed.
    // Finish the interrupted initialization. Any data pages a crashed
    // first batch appended become orphans, never reachable corruption.
    Page& fresh = fetched->Write();
    fresh.Clear();
    fresh.WriteU32(kHdrMagic, blob_format::kMagic);
    fresh.WriteU32(kHdrVersion, blob_format::kVersion);
    fresh.WriteU32(kHdrFreeHead, kInvalidPageId);
    fresh.WriteU32(kHdrDirHead, kInvalidPageId);
    return Status::OK();
  }
  if (page.ReadU32(kHdrMagic) != blob_format::kMagic) {
    return Status::Corruption("bad magic in database header");
  }
  if (page.ReadU32(kHdrVersion) != blob_format::kVersion) {
    return Status::Corruption("unsupported database version " +
                              std::to_string(page.ReadU32(kHdrVersion)));
  }
  return Status::OK();
}

Status BlobStore::LoadDirectory() {
  MMDB_ASSIGN_OR_RETURN(PageGuard header, pool_->FetchPage(0));
  PageId dir_id = header.Read().ReadU32(kHdrDirHead);
  header.Release();
  while (dir_id != kInvalidPageId) {
    MMDB_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(dir_id));
    const Page& page = dir.Read();
    for (uint32_t slot = 0; slot < kSlotsPerDirPage; ++slot) {
      const uint64_t key = page.ReadU64(SlotOffset(slot));
      if (key == 0) continue;
      DirEntry entry;
      entry.first_page = page.ReadU32(SlotOffset(slot) + 8);
      entry.total_len = page.ReadU32(SlotOffset(slot) + 12);
      entry.dir_page = dir_id;
      entry.slot = slot;
      if (!directory_.emplace(key, entry).second) {
        return Status::Corruption("duplicate key in directory: " +
                                  std::to_string(key));
      }
    }
    dir_id = page.ReadU32(kDirNext);
  }
  return Status::OK();
}

Result<PageId> BlobStore::AllocPage() {
  MMDB_ASSIGN_OR_RETURN(PageGuard header, pool_->FetchPage(0));
  const PageId free_head = header.Read().ReadU32(kHdrFreeHead);
  if (free_head != kInvalidPageId) {
    MMDB_ASSIGN_OR_RETURN(PageGuard free_page, pool_->FetchPage(free_head));
    const PageId next = free_page.Read().ReadU32(0);
    free_page.Write().Clear();
    header.Write().WriteU32(kHdrFreeHead, next);
    return free_head;
  }
  header.Release();
  MMDB_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPage());
  return fresh.page_id();
}

Status BlobStore::FreePage(PageId id) {
  MMDB_ASSIGN_OR_RETURN(PageGuard header, pool_->FetchPage(0));
  MMDB_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(id));
  page.Write().Clear();
  page.Write().WriteU32(0, header.Read().ReadU32(kHdrFreeHead));
  header.Write().WriteU32(kHdrFreeHead, id);
  return Status::OK();
}

Result<BlobStore::DirEntry> BlobStore::ClaimDirectorySlot(
    uint64_t key, PageId first_page, uint32_t total_len) {
  MMDB_ASSIGN_OR_RETURN(PageGuard header, pool_->FetchPage(0));
  PageId dir_id = header.Read().ReadU32(kHdrDirHead);
  PageId prev_dir = kInvalidPageId;
  while (dir_id != kInvalidPageId) {
    MMDB_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(dir_id));
    for (uint32_t slot = 0; slot < kSlotsPerDirPage; ++slot) {
      if (dir.Read().ReadU64(SlotOffset(slot)) == 0) {
        Page& page = dir.Write();
        page.WriteU64(SlotOffset(slot), key);
        page.WriteU32(SlotOffset(slot) + 8, first_page);
        page.WriteU32(SlotOffset(slot) + 12, total_len);
        return DirEntry{first_page, total_len, dir_id, slot};
      }
    }
    prev_dir = dir_id;
    dir_id = dir.Read().ReadU32(kDirNext);
  }
  // Every directory page is full: chain a new one.
  MMDB_ASSIGN_OR_RETURN(PageId new_dir, AllocPage());
  MMDB_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(new_dir));
  Page& page = dir.Write();
  page.Clear();
  page.WriteU64(SlotOffset(0), key);
  page.WriteU32(SlotOffset(0) + 8, first_page);
  page.WriteU32(SlotOffset(0) + 12, total_len);
  if (prev_dir == kInvalidPageId) {
    header.Write().WriteU32(kHdrDirHead, new_dir);
  } else {
    MMDB_ASSIGN_OR_RETURN(PageGuard prev, pool_->FetchPage(prev_dir));
    prev.Write().WriteU32(kDirNext, new_dir);
  }
  return DirEntry{first_page, total_len, new_dir, 0};
}

Status BlobStore::Put(uint64_t key, const std::string& value) {
  if (key == 0) return Status::InvalidArgument("blob key must be non-zero");
  if (directory_.count(key)) {
    return Status::AlreadyExists("blob key " + std::to_string(key));
  }
  if (value.size() > UINT32_MAX) {
    return Status::InvalidArgument("blob too large");
  }
  // Write the chain front-to-back.
  PageId first_page = kInvalidPageId;
  PageId prev_page = kInvalidPageId;
  size_t offset = 0;
  do {
    const size_t chunk = std::min(kBlobCapacity, value.size() - offset);
    MMDB_ASSIGN_OR_RETURN(PageId page_id, AllocPage());
    MMDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
    Page& page = guard.Write();
    page.Clear();
    page.WriteU32(kBlobNext, kInvalidPageId);
    page.WriteU32(kBlobLen, static_cast<uint32_t>(chunk));
    if (chunk > 0) page.WriteBytes(kBlobPayload, value.data() + offset, chunk);
    if (prev_page != kInvalidPageId) {
      MMDB_ASSIGN_OR_RETURN(PageGuard prev, pool_->FetchPage(prev_page));
      prev.Write().WriteU32(kBlobNext, page_id);
    } else {
      first_page = page_id;
    }
    prev_page = page_id;
    offset += chunk;
  } while (offset < value.size());

  MMDB_ASSIGN_OR_RETURN(
      DirEntry entry,
      ClaimDirectorySlot(key, first_page,
                         static_cast<uint32_t>(value.size())));
  directory_.emplace(key, entry);
  return Status::OK();
}

Result<std::string> BlobStore::Get(uint64_t key) const {
  const auto it = directory_.find(key);
  if (it == directory_.end()) {
    return Status::NotFound("blob key " + std::to_string(key));
  }
  std::string out;
  out.reserve(it->second.total_len);
  PageId page_id = it->second.first_page;
  while (page_id != kInvalidPageId) {
    MMDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
    const Page& page = guard.Read();
    const uint32_t len = page.ReadU32(kBlobLen);
    if (len > kBlobCapacity) {
      return Status::Corruption("blob page length out of range");
    }
    const size_t prev_size = out.size();
    out.resize(prev_size + len);
    page.ReadBytes(kBlobPayload, out.data() + prev_size, len);
    page_id = page.ReadU32(kBlobNext);
  }
  if (out.size() != it->second.total_len) {
    return Status::Corruption("blob chain length mismatch for key " +
                              std::to_string(key));
  }
  return out;
}

Status BlobStore::Delete(uint64_t key) {
  const auto it = directory_.find(key);
  if (it == directory_.end()) {
    return Status::NotFound("blob key " + std::to_string(key));
  }
  // Free the chain.
  PageId page_id = it->second.first_page;
  while (page_id != kInvalidPageId) {
    MMDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
    const PageId next = guard.Read().ReadU32(kBlobNext);
    guard.Release();
    MMDB_RETURN_IF_ERROR(FreePage(page_id));
    page_id = next;
  }
  // Clear the directory slot.
  MMDB_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(it->second.dir_page));
  Page& page = dir.Write();
  page.WriteU64(SlotOffset(it->second.slot), 0);
  page.WriteU32(SlotOffset(it->second.slot) + 8, kInvalidPageId);
  page.WriteU32(SlotOffset(it->second.slot) + 12, 0);
  directory_.erase(it);
  return Status::OK();
}

std::vector<uint64_t> BlobStore::Keys() const {
  std::vector<uint64_t> keys;
  keys.reserve(directory_.size());
  for (const auto& [key, entry] : directory_) keys.push_back(key);
  return keys;
}

std::vector<std::pair<uint64_t, PageId>> BlobStore::ChainHeads() const {
  std::vector<std::pair<uint64_t, PageId>> heads;
  heads.reserve(directory_.size());
  for (const auto& [key, entry] : directory_) {
    heads.emplace_back(key, entry.first_page);
  }
  return heads;
}

Status BlobStore::Flush() { return pool_->FlushAll(); }

}  // namespace mmdb
