#ifndef MMDB_STORAGE_ENV_H_
#define MMDB_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace mmdb {

/// Kinds of raw file operations an `Env` performs. The fault-injecting
/// wrapper scripts faults against these, and logs every operation as one.
enum class IoOp : uint8_t {
  kOpen,
  kRead,
  kWrite,
  kSync,
  kTruncate,
};

/// Stable lowercase name for `op` ("open", "read", ...).
std::string_view IoOpName(IoOp op);

/// A random-access file handle. All offsets are absolute (pread/pwrite
/// style; no shared cursor), so callers never depend on seek state.
/// Implementations retry transparently on EINTR and on short reads and
/// writes; a short read at end-of-file is an error (callers always know
/// how many bytes they expect).
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly `n` bytes at `offset` into `dst`.
  virtual Status ReadAt(uint64_t offset, void* dst, size_t n) = 0;

  /// Writes exactly `n` bytes from `src` at `offset`, extending the file
  /// as needed.
  virtual Status WriteAt(uint64_t offset, const void* src, size_t n) = 0;

  /// Current file size in bytes.
  virtual Result<uint64_t> Size() const = 0;

  /// Durably flushes all written data (fsync).
  virtual Status Sync() = 0;

  /// Truncates (or extends with zeros) to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Closes the handle; further operations fail. The destructor closes
  /// best-effort for handles never explicitly closed.
  virtual Status Close() = 0;
};

/// The seam between the storage stack and the operating system: every
/// byte `DiskManager`, `Journal`, and `DiskObjectStore` move to or from
/// disk goes through an `Env`. Production uses the process-wide POSIX
/// environment (`Env::Default`); tests wrap it in a `FaultInjectingEnv`
/// to script failures the real kernel produces rarely and never on cue.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` read-write, creating it only when it does not exist
  /// (ENOENT). Never truncates: a transient open failure (EMFILE, EACCES,
  /// ...) must not destroy an existing file, so creation is a single
  /// O_CREAT open rather than an open-then-create fallback.
  virtual Result<std::unique_ptr<File>> OpenFile(const std::string& path) = 0;

  /// Removes `path` (NotFound if absent).
  virtual Status DeleteFile(const std::string& path) = 0;

  /// True iff `path` exists.
  virtual bool FileExists(const std::string& path) const = 0;

  /// The process-wide POSIX environment. Never null; not owned.
  static Env* Default();
};

/// An `Env` decorator with a scriptable fault plan, modeled on
/// Tarantool's error-injection machinery: every durability claim gets a
/// scripted fault that tries to break it. All faults address the shared
/// program-order sequence of operations across every file the env opened
/// (indices are 1-based); the sequence is also logged, so a test can run
/// a workload once, locate the operation it wants to break (e.g. "the
/// journal fsync of the second commit"), and re-run with the fault armed.
///
/// Not thread-safe, matching the single-threaded storage engine.
class FaultInjectingEnv final : public Env {
 public:
  /// One logged operation: its kind and the file it addressed.
  struct OpRecord {
    IoOp op;
    std::string path;
  };

  /// Wraps `base` (not owned; must outlive this env).
  explicit FaultInjectingEnv(Env* base);

  Result<std::unique_ptr<File>> OpenFile(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  bool FileExists(const std::string& path) const override;

  // --- Fault scripting -------------------------------------------------

  /// The `n`-th operation of kind `op` from now fails with IoError
  /// without touching the file. One-shot.
  void FailNth(IoOp op, int64_t n);

  /// The `n`-th write from now persists only its first `keep_bytes`
  /// bytes, then fails — a torn write. One-shot.
  void TornNthWrite(int64_t n, size_t keep_bytes);

  /// The `n`-th read from now succeeds but returns its payload with one
  /// bit flipped: bit `bit & 7` of byte `byte_offset % length`. One-shot.
  void FlipBitOnNthRead(int64_t n, size_t byte_offset, int bit);

  /// The next `count` reads each fail with IoError("injected transient
  /// read failure"), then reads succeed again — the fault class a retry
  /// loop is supposed to absorb (contrast `FailNth(kRead, n)`, which
  /// fails one scripted read and stays quiet before it).
  void TransientReadFailures(int64_t count);

  /// The `n`-th operation of kind `op` from now sleeps `seconds` before
  /// proceeding normally — a stalling disk, for deadline tests. One-shot.
  void StallNth(IoOp op, int64_t n, double seconds);

  /// After `k` more operations complete, the simulated machine dies: the
  /// on-disk file image freezes, and every subsequent operation on every
  /// file fails with IoError("injected crash") without effect. Reopening
  /// the files through a clean env then observes exactly what a reboot
  /// would. `k = 0` crashes immediately.
  void CrashAfterOps(int64_t k);

  /// Clears every armed fault and the crashed state (the operation
  /// counter and log keep running).
  void ClearFaults();

  /// Operations performed (or refused) so far, in program order.
  const std::vector<OpRecord>& log() const { return log_; }

  /// Count of operations so far (equals `log().size()`).
  int64_t op_count() const { return static_cast<int64_t>(log_.size()); }

  /// True once a scripted crash point has fired.
  bool crashed() const { return crashed_; }

 private:
  friend class FaultInjectingFile;

  /// Records one operation and decides its fate. Returns OK to let it
  /// through; the out-params carry torn-write / bit-flip modifiers.
  Status Account(IoOp op, const std::string& path, bool* torn,
                 size_t* torn_keep, bool* flip, size_t* flip_byte,
                 int* flip_bit);

  Env* base_;
  std::vector<OpRecord> log_;
  bool crashed_ = false;
  int64_t crash_after_ = -1;  // Ops remaining before the crash; -1 = unarmed.
  // One-shot countdowns; -1 = unarmed. Indexed per fault, not per kind.
  int64_t fail_open_ = -1;
  int64_t fail_read_ = -1;
  int64_t fail_write_ = -1;
  int64_t fail_sync_ = -1;
  int64_t fail_truncate_ = -1;
  int64_t torn_write_ = -1;
  size_t torn_keep_ = 0;
  int64_t flip_read_ = -1;
  size_t flip_byte_ = 0;
  int flip_bit_ = 0;
  /// Reads remaining in the current transient-failure burst.
  int64_t transient_reads_ = 0;
  IoOp stall_op_ = IoOp::kRead;
  int64_t stall_countdown_ = -1;
  double stall_seconds_ = 0.0;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_ENV_H_
