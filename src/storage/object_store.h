#ifndef MMDB_STORAGE_OBJECT_STORE_H_
#define MMDB_STORAGE_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/blob_store.h"
#include "storage/disk_manager.h"
#include "storage/journal.h"
#include "util/result.h"

namespace mmdb {

/// Abstract key -> blob object storage used by the MMDBMS facade to hold
/// image rasters, edit-script records, and catalog rows. Two
/// implementations: a page-file-backed store with journaled
/// crash-consistent transactions (production) and an in-memory store
/// (benchmarks and tests, matching the paper's setup where database
/// contents fit in memory).
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Inserts `value` under non-zero `key`; AlreadyExists on duplicates.
  virtual Status Put(uint64_t key, const std::string& value) = 0;

  /// Inserts or replaces `value` under non-zero `key` atomically.
  virtual Status Upsert(uint64_t key, const std::string& value) = 0;

  /// Retrieves the blob under `key`.
  virtual Result<std::string> Get(uint64_t key) const = 0;

  /// Removes `key`.
  virtual Status Delete(uint64_t key) = 0;

  virtual bool Contains(uint64_t key) const = 0;

  /// All keys in ascending order.
  virtual std::vector<uint64_t> Keys() const = 0;

  virtual size_t Count() const = 0;

  /// Groups subsequent mutations into one atomic unit (on stores with
  /// durability; elsewhere a no-op). Batches nest by depth; the
  /// outermost `CommitBatch` makes everything durable, `AbortBatch`
  /// rolls the whole batch back.
  virtual Status BeginBatch() { return Status::OK(); }
  virtual Status CommitBatch() { return Status::OK(); }
  virtual Status AbortBatch() { return Status::OK(); }

  /// Persists any buffered state (no-op in memory).
  virtual Status Flush() = 0;
};

/// Heap-backed object store (no durability; batch calls are no-ops).
class MemoryObjectStore final : public ObjectStore {
 public:
  Status Put(uint64_t key, const std::string& value) override;
  Status Upsert(uint64_t key, const std::string& value) override;
  Result<std::string> Get(uint64_t key) const override;
  Status Delete(uint64_t key) override;
  bool Contains(uint64_t key) const override;
  std::vector<uint64_t> Keys() const override;
  size_t Count() const override { return blobs_.size(); }
  Status Flush() override { return Status::OK(); }

 private:
  std::map<uint64_t, std::string> blobs_;
};

/// Page-file-backed object store (DiskManager + BufferPool + BlobStore)
/// with an undo journal: every mutation (or explicit batch of mutations)
/// commits atomically — after a crash at any point, reopening the store
/// observes either all of the batch or none of it.
class DiskObjectStore final : public ObjectStore {
 public:
  /// Outcome of an integrity scan (`Scrub`).
  struct ScrubReport {
    /// Pages in the on-disk file at scan time.
    PageId pages_scanned = 0;
    /// Pages whose checksum footer failed verification, ascending.
    std::vector<PageId> corrupt_pages;
    /// Blobs whose chain touches a corrupt (or unreachable) page.
    std::vector<uint64_t> corrupt_keys;
    bool clean() const { return corrupt_pages.empty() && corrupt_keys.empty(); }
  };

  /// Opens (or creates) the store at `path` with a buffer pool of
  /// `pool_pages` frames. The journal lives at `path` + ".journal";
  /// `journaled = false` opts out of crash consistency (the journal
  /// file, if present from an earlier run, is still recovered first).
  /// All raw I/O goes through `env` (null = `Env::Default()`).
  ///
  /// A file written by the pre-checksum v1 format is rejected with a
  /// versioned-header Corruption error before journal recovery runs —
  /// v1 pages may carry payload in the bytes the v2 footer occupies, so
  /// touching them would destroy data.
  static Result<std::unique_ptr<DiskObjectStore>> Open(
      const std::string& path, size_t pool_pages = 256, bool journaled = true,
      Env* env = nullptr);

  /// Scans every page of the on-disk file (checksum verification) and
  /// walks each blob chain, reporting the extent of any corruption. Reads
  /// the disk image directly — call on a freshly opened or flushed store.
  Result<ScrubReport> Scrub() const;

  Status Put(uint64_t key, const std::string& value) override;
  Status Upsert(uint64_t key, const std::string& value) override;
  Result<std::string> Get(uint64_t key) const override;
  Status Delete(uint64_t key) override;
  bool Contains(uint64_t key) const override;
  std::vector<uint64_t> Keys() const override;
  size_t Count() const override;
  Status BeginBatch() override;
  Status CommitBatch() override;
  Status AbortBatch() override;
  Status Flush() override;

  /// Buffer pool statistics (hits/misses/evictions).
  const BufferPool::Stats& PoolStats() const { return pool_->stats(); }

  /// TESTING ONLY: abandons all buffered (uncommitted) state, leaving
  /// the on-disk file and journal exactly as a crash would. The store is
  /// unusable afterwards; reopen to observe recovery.
  void SimulateCrashForTesting();

 private:
  DiskObjectStore() = default;

  /// Commits the active transaction (flush + data sync + journal reset)
  /// unless inside an explicit batch.
  Status MaybeCommit();
  Status CommitTransaction();
  /// Rolls back every captured page to its before-image and reloads the
  /// blob directory.
  Status RollbackTransaction();
  /// Runs `mutation`, committing on success and rolling back on failure.
  Status Mutate(const std::function<Status()>& mutation);

  // Declaration order is a lifetime contract: members destroy in reverse,
  // and ~BufferPool writes back dirty pages through hooks that hold raw
  // Journal* and DiskManager* — both must outlive pool_ (and blobs_,
  // which holds a raw BufferPool*, must not).
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BlobStore> blobs_;
  bool journaled_ = false;
  int batch_depth_ = 0;
  bool crashed_ = false;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_OBJECT_STORE_H_
