#ifndef MMDB_STORAGE_PAGE_H_
#define MMDB_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace mmdb {

/// Fixed database page size, the unit of disk I/O and buffer management.
inline constexpr size_t kPageSize = 4096;

/// Page number within a database file. Page 0 is the file header.
using PageId = uint32_t;

/// Sentinel for "no page" (page 0 is the header, never a data page).
inline constexpr PageId kInvalidPageId = 0;

/// A raw page buffer with little-endian scalar accessors.
///
/// Higher layers (blob chains, the directory) define their own layouts on
/// top of these primitives; the page itself is just bytes.
class Page {
 public:
  Page() { data_.fill(0); }

  char* data() { return data_.data(); }
  const char* data() const { return data_.data(); }

  /// Little-endian scalar reads/writes at byte `offset`; the caller must
  /// keep offset + width <= kPageSize.
  uint16_t ReadU16(size_t offset) const { return Read<uint16_t>(offset); }
  uint32_t ReadU32(size_t offset) const { return Read<uint32_t>(offset); }
  uint64_t ReadU64(size_t offset) const { return Read<uint64_t>(offset); }
  void WriteU16(size_t offset, uint16_t v) { Write(offset, v); }
  void WriteU32(size_t offset, uint32_t v) { Write(offset, v); }
  void WriteU64(size_t offset, uint64_t v) { Write(offset, v); }

  /// Bulk byte copy into / out of the page.
  void WriteBytes(size_t offset, const void* src, size_t len) {
    std::memcpy(data_.data() + offset, src, len);
  }
  void ReadBytes(size_t offset, void* dst, size_t len) const {
    std::memcpy(dst, data_.data() + offset, len);
  }

  void Clear() { data_.fill(0); }

 private:
  template <typename T>
  T Read(size_t offset) const {
    T v;
    std::memcpy(&v, data_.data() + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void Write(size_t offset, T v) {
    std::memcpy(data_.data() + offset, &v, sizeof(T));
  }

  std::array<char, kPageSize> data_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_PAGE_H_
