#ifndef MMDB_STORAGE_PAGE_H_
#define MMDB_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "util/crc32.h"

namespace mmdb {

/// Fixed database page size, the unit of disk I/O and buffer management.
inline constexpr size_t kPageSize = 4096;

/// Every on-disk page ends in an 8-byte checksum footer (format v2):
///
///   byte [kPageUsableSize + 0, +4)  CRC-32 of bytes [0, kPageUsableSize)
///   byte [kPageUsableSize + 4, +8)  bitwise NOT of that CRC
///
/// `DiskManager::WritePage` / `AllocatePage` stamp the footer on the way
/// out and `DiskManager::ReadPage` verifies it on the way in, surfacing
/// any flipped bit or torn write as `Status::Corruption`. The complement
/// copy guards the guard: a page whose footer region was zeroed or
/// blitted with a constant fails the cross-check even if the CRC field
/// happens to collide. Layers above the disk manager (blob chains, the
/// directory) must confine their layouts to the first `kPageUsableSize`
/// bytes. Files written by the pre-checksum v1 format are rejected at
/// open with a versioned-header error (see `DiskObjectStore::Open`).
inline constexpr size_t kPageFooterSize = 8;

/// Bytes of a page available to payload layouts (everything above the
/// checksum footer).
inline constexpr size_t kPageUsableSize = kPageSize - kPageFooterSize;

/// Page number within a database file. Page 0 is the file header.
using PageId = uint32_t;

/// Sentinel for "no page" (page 0 is the header, never a data page).
inline constexpr PageId kInvalidPageId = 0;

/// A raw page buffer with little-endian scalar accessors.
///
/// Higher layers (blob chains, the directory) define their own layouts on
/// top of these primitives; the page itself is just bytes.
class Page {
 public:
  Page() { data_.fill(0); }

  char* data() { return data_.data(); }
  const char* data() const { return data_.data(); }

  /// Little-endian scalar reads/writes at byte `offset`; the caller must
  /// keep offset + width <= kPageSize.
  uint16_t ReadU16(size_t offset) const { return Read<uint16_t>(offset); }
  uint32_t ReadU32(size_t offset) const { return Read<uint32_t>(offset); }
  uint64_t ReadU64(size_t offset) const { return Read<uint64_t>(offset); }
  void WriteU16(size_t offset, uint16_t v) { Write(offset, v); }
  void WriteU32(size_t offset, uint32_t v) { Write(offset, v); }
  void WriteU64(size_t offset, uint64_t v) { Write(offset, v); }

  /// Bulk byte copy into / out of the page.
  void WriteBytes(size_t offset, const void* src, size_t len) {
    std::memcpy(data_.data() + offset, src, len);
  }
  void ReadBytes(size_t offset, void* dst, size_t len) const {
    std::memcpy(dst, data_.data() + offset, len);
  }

  void Clear() { data_.fill(0); }

  /// Recomputes the CRC-32 footer from the usable bytes (done by the
  /// disk manager on every write-out).
  void StampChecksum() {
    const uint32_t crc = Crc32(data_.data(), kPageUsableSize);
    Write(kPageUsableSize, crc);
    Write(kPageUsableSize + sizeof(uint32_t), ~crc);
  }

  /// True iff the footer matches the usable bytes.
  bool ChecksumValid() const {
    const uint32_t crc = Crc32(data_.data(), kPageUsableSize);
    return Read<uint32_t>(kPageUsableSize) == crc &&
           Read<uint32_t>(kPageUsableSize + sizeof(uint32_t)) == ~crc;
  }

  /// The stored CRC field (for diagnostics; meaningless when invalid).
  uint32_t StoredChecksum() const { return Read<uint32_t>(kPageUsableSize); }

 private:
  template <typename T>
  T Read(size_t offset) const {
    T v;
    std::memcpy(&v, data_.data() + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void Write(size_t offset, T v) {
    std::memcpy(data_.data() + offset, &v, sizeof(T));
  }

  std::array<char, kPageSize> data_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_PAGE_H_
