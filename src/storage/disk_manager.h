#ifndef MMDB_STORAGE_DISK_MANAGER_H_
#define MMDB_STORAGE_DISK_MANAGER_H_

#include <memory>
#include <string>

#include "storage/env.h"
#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace mmdb {

/// Transient-fault handling for `DiskManager::ReadPage` (namespace-scope
/// so it is a complete type by the time it appears as a default
/// argument).
struct ReadRetryPolicy {
  /// Total read attempts for an IoError (1 = no retry).
  int max_attempts = 3;
  /// Sleep before the first retry; each further retry multiplies it.
  double backoff_seconds = 0.0005;
  double backoff_multiplier = 2.0;
  /// Uniform jitter applied to each sleep: factor in
  /// [1 - jitter_fraction, 1 + jitter_fraction].
  double jitter_fraction = 0.5;
  /// Re-read once on checksum mismatch before declaring Corruption.
  bool checksum_retry = true;
};

/// Page-granular file I/O for a single database file.
///
/// The disk manager knows nothing about page *layouts*; it reads, writes,
/// and appends whole pages — but it owns page *integrity*: every page
/// written carries a CRC-32 footer (see `kPageFooterSize` in page.h),
/// re-stamped on every write-out and verified on every read, so a flipped
/// bit or torn write surfaces as `Status::Corruption` naming the page.
/// All raw I/O goes through an `Env` (POSIX by default; tests inject a
/// `FaultInjectingEnv`). Not thread-safe (the engine is single-threaded,
/// like the paper's prototype).
///
/// `ReadPage` absorbs transient faults per a `ReadRetryPolicy`: an
/// IoError read retries with exponential backoff and jitter, and a
/// checksum mismatch triggers one immediate re-read (a flipped bit on
/// the wire differs from a flipped bit on the platter) before the
/// Corruption verdict stands. Reads also honor the calling query's
/// deadline/cancel scope (`CheckScopedCancel`), so a storage-bound scan
/// stops between pages, not minutes later.
class DiskManager {
 public:
  using ReadRetryPolicy = mmdb::ReadRetryPolicy;

  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating only when absent — an existing file is never
  /// truncated) the database file at `path` through `env` (null =
  /// `Env::Default()`). `checksums = false` skips footer stamping and
  /// verification; for measurement only (bench_storage), never for data
  /// anyone keeps.
  Status Open(const std::string& path, Env* env = nullptr,
              bool checksums = true, ReadRetryPolicy retry = {});

  /// Closes the file. Safe to call when not open.
  Status Close();

  bool IsOpen() const { return file_ != nullptr; }

  /// Number of pages currently in the file (a torn partial page at the
  /// tail is not counted).
  Result<PageId> PageCount() const;

  /// Appends a zeroed (checksummed) page; returns its id.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `*page`, verifying its checksum footer. Fails
  /// with OutOfRange past EOF and Corruption on a checksum mismatch.
  Status ReadPage(PageId id, Page* page) const;

  /// Reads page `id` without checksum verification — for format-version
  /// probing and corruption diagnostics (`DiskObjectStore::Scrub`).
  Status ReadPageRaw(PageId id, Page* page) const;

  /// Writes `page` at `id` (which must already exist), stamping a fresh
  /// checksum footer.
  Status WritePage(PageId id, const Page& page);

  /// Durably flushes written pages (fsync).
  Status Sync();

 private:
  std::unique_ptr<File> file_;
  std::string path_;
  bool checksums_ = true;
  ReadRetryPolicy retry_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_DISK_MANAGER_H_
