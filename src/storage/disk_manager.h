#ifndef MMDB_STORAGE_DISK_MANAGER_H_
#define MMDB_STORAGE_DISK_MANAGER_H_

#include <cstdio>
#include <string>

#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace mmdb {

/// Page-granular file I/O for a single database file.
///
/// The disk manager knows nothing about page contents; it reads, writes,
/// and appends whole pages. Not thread-safe (the engine is single-threaded,
/// like the paper's prototype).
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if absent) the database file at `path`.
  Status Open(const std::string& path);

  /// Flushes and closes the file. Safe to call when not open.
  Status Close();

  bool IsOpen() const { return file_ != nullptr; }

  /// Number of pages currently in the file.
  Result<PageId> PageCount() const;

  /// Appends a zeroed page; returns its id.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `*page`. Fails with OutOfRange past EOF.
  Status ReadPage(PageId id, Page* page) const;

  /// Writes `page` at `id` (which must already exist).
  Status WritePage(PageId id, const Page& page);

  /// fflush + fsync.
  Status Sync();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_DISK_MANAGER_H_
