#include "storage/catalog.h"

#include <cstring>

namespace mmdb {

namespace {

constexpr uint8_t kRowVersion = 1;
constexpr uint8_t kMetaVersion = 2;

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

Status Truncated() { return Status::Corruption("catalog: truncated record"); }

class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}
  Result<uint8_t> U8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

std::string EncodeCatalogRow(const CatalogRow& row) {
  std::string out;
  PutU8(out, kRowVersion);
  PutU64(out, row.id);
  PutU8(out, static_cast<uint8_t>(row.kind));
  PutU32(out, static_cast<uint32_t>(row.width));
  PutU32(out, static_cast<uint32_t>(row.height));
  PutU32(out, static_cast<uint32_t>(row.histogram_counts.size()));
  for (int64_t count : row.histogram_counts) {
    PutU64(out, static_cast<uint64_t>(count));
  }
  return out;
}

Result<CatalogRow> DecodeCatalogRow(const std::string& data) {
  Reader reader(data);
  MMDB_ASSIGN_OR_RETURN(uint8_t version, reader.U8());
  if (version != kRowVersion) {
    return Status::Corruption("catalog row: unknown version");
  }
  CatalogRow row;
  MMDB_ASSIGN_OR_RETURN(row.id, reader.U64());
  MMDB_ASSIGN_OR_RETURN(uint8_t kind, reader.U8());
  if (kind != static_cast<uint8_t>(ImageKind::kBinary) &&
      kind != static_cast<uint8_t>(ImageKind::kEdited)) {
    return Status::Corruption("catalog row: bad image kind");
  }
  row.kind = static_cast<ImageKind>(kind);
  MMDB_ASSIGN_OR_RETURN(uint32_t width, reader.U32());
  MMDB_ASSIGN_OR_RETURN(uint32_t height, reader.U32());
  row.width = static_cast<int32_t>(width);
  row.height = static_cast<int32_t>(height);
  MMDB_ASSIGN_OR_RETURN(uint32_t bins, reader.U32());
  if (bins > (1u << 24)) {
    return Status::Corruption("catalog row: implausible bin count");
  }
  row.histogram_counts.reserve(bins);
  for (uint32_t i = 0; i < bins; ++i) {
    MMDB_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
    row.histogram_counts.push_back(static_cast<int64_t>(count));
  }
  if (!reader.AtEnd()) return Status::Corruption("catalog row: trailing data");
  return row;
}

std::string EncodeCatalogMeta(const CatalogMeta& meta) {
  std::string out;
  PutU8(out, kMetaVersion);
  PutU64(out, meta.next_id);
  PutU32(out, static_cast<uint32_t>(meta.quantizer_divisions));
  PutU8(out, meta.color_space);
  return out;
}

Result<CatalogMeta> DecodeCatalogMeta(const std::string& data) {
  Reader reader(data);
  MMDB_ASSIGN_OR_RETURN(uint8_t version, reader.U8());
  if (version != 1 && version != kMetaVersion) {
    return Status::Corruption("catalog meta: unknown version");
  }
  CatalogMeta meta;
  MMDB_ASSIGN_OR_RETURN(meta.next_id, reader.U64());
  MMDB_ASSIGN_OR_RETURN(uint32_t divisions, reader.U32());
  meta.quantizer_divisions = static_cast<int32_t>(divisions);
  if (version >= 2) {
    // Version 1 predates configurable color spaces (implicitly RGB).
    MMDB_ASSIGN_OR_RETURN(meta.color_space, reader.U8());
    if (meta.color_space > 2) {
      return Status::Corruption("catalog meta: unknown color space");
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("catalog meta: trailing data");
  }
  return meta;
}

}  // namespace mmdb
