#ifndef MMDB_FEATURES_TEXTURE_H_
#define MMDB_FEATURES_TEXTURE_H_

#include "features/signature.h"
#include "image/image.h"

namespace mmdb::features {

/// Texture features (paper Section 6 future work: "it will be necessary
/// to develop approaches for other common features besides color, such
/// as texture and shape").
///
/// Unlike color histograms, no per-editing-operation rule table exists
/// for these features, so edited images must be instantiated before
/// extraction — exactly the asymmetry that makes the paper's color rules
/// valuable. These extractors serve the conventional (binary image)
/// path; see DESIGN.md.

/// Edge-orientation histogram: Sobel gradients, orientations folded into
/// [0, pi) and spread over `orientation_bins`, plus one trailing bin for
/// flat (below `magnitude_threshold`) pixels. Normalized to sum 1; the
/// signature has `orientation_bins + 1` entries. Returns an empty
/// signature for images smaller than 3x3.
Signature EdgeOrientationHistogram(const Image& image,
                                   int orientation_bins = 8,
                                   double magnitude_threshold = 32.0);

/// Fraction of pixels whose Sobel gradient magnitude reaches
/// `magnitude_threshold` — a single-number busyness measure.
double EdgeDensity(const Image& image, double magnitude_threshold = 32.0);

}  // namespace mmdb::features

#endif  // MMDB_FEATURES_TEXTURE_H_
