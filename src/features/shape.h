#ifndef MMDB_FEATURES_SHAPE_H_
#define MMDB_FEATURES_SHAPE_H_

#include <vector>

#include "features/signature.h"
#include "image/image.h"

namespace mmdb::features {

/// Shape features (paper Section 6 future work; also the paper's own
/// [7], "Improving the Recognition of Geometrical Shapes in Road Signs
/// By Augmenting the Database"). Like texture, these need pixels — no
/// rule table exists for edit sequences.

/// Heuristic figure/ground separation: the background color is taken to
/// be the most frequent color on the image border, and every pixel that
/// differs from it is foreground. Returns one 0/1 byte per pixel,
/// row-major. Works well for the synthetic sign/logo imagery this repo
/// targets; callers with alpha or depth data should build their own
/// mask.
std::vector<uint8_t> ForegroundMask(const Image& image);

/// Fraction of pixels in the foreground mask.
double ForegroundArea(const Image& image);

/// The seven Hu invariant moments of the foreground mask, each
/// log-compressed as sign(h) * log10(1 + |h| * 1e7) for comparable
/// magnitudes. Invariant (up to rasterization noise) under translation,
/// scaling, and rotation of the shape — verified by the property tests.
/// Returns an empty signature for an empty mask.
Signature HuMoments(const Image& image);

/// Hu moments of a caller-supplied mask (same layout as
/// `ForegroundMask`).
Signature HuMomentsOfMask(const std::vector<uint8_t>& mask, int32_t width,
                          int32_t height);

}  // namespace mmdb::features

#endif  // MMDB_FEATURES_SHAPE_H_
