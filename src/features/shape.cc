#include "features/shape.h"

#include <cmath>
#include <map>

namespace mmdb::features {

std::vector<uint8_t> ForegroundMask(const Image& image) {
  std::vector<uint8_t> mask(static_cast<size_t>(image.PixelCount()), 0);
  if (image.Empty()) return mask;
  // Most frequent border color = background.
  std::map<uint32_t, int64_t> border_counts;
  for (int32_t x = 0; x < image.width(); ++x) {
    ++border_counts[image.At(x, 0).Packed()];
    ++border_counts[image.At(x, image.height() - 1).Packed()];
  }
  for (int32_t y = 0; y < image.height(); ++y) {
    ++border_counts[image.At(0, y).Packed()];
    ++border_counts[image.At(image.width() - 1, y).Packed()];
  }
  uint32_t background = 0;
  int64_t best = -1;
  for (const auto& [packed, count] : border_counts) {
    if (count > best) {
      best = count;
      background = packed;
    }
  }
  const Rgb background_color = Rgb::FromPacked(background);
  size_t i = 0;
  for (const Rgb& pixel : image.pixels()) {
    mask[i++] = pixel == background_color ? 0 : 1;
  }
  return mask;
}

double ForegroundArea(const Image& image) {
  if (image.Empty()) return 0.0;
  const std::vector<uint8_t> mask = ForegroundMask(image);
  int64_t on = 0;
  for (uint8_t bit : mask) on += bit;
  return static_cast<double>(on) / static_cast<double>(mask.size());
}

Signature HuMomentsOfMask(const std::vector<uint8_t>& mask, int32_t width,
                          int32_t height) {
  // Raw moments m00, m10, m01.
  double m00 = 0, m10 = 0, m01 = 0;
  for (int32_t y = 0; y < height; ++y) {
    for (int32_t x = 0; x < width; ++x) {
      if (!mask[static_cast<size_t>(y) * width + x]) continue;
      m00 += 1;
      m10 += x;
      m01 += y;
    }
  }
  if (m00 <= 0) return {};
  const double cx = m10 / m00;
  const double cy = m01 / m00;

  // Central moments up to order 3.
  double mu20 = 0, mu02 = 0, mu11 = 0;
  double mu30 = 0, mu03 = 0, mu21 = 0, mu12 = 0;
  for (int32_t y = 0; y < height; ++y) {
    for (int32_t x = 0; x < width; ++x) {
      if (!mask[static_cast<size_t>(y) * width + x]) continue;
      const double dx = x - cx;
      const double dy = y - cy;
      mu20 += dx * dx;
      mu02 += dy * dy;
      mu11 += dx * dy;
      mu30 += dx * dx * dx;
      mu03 += dy * dy * dy;
      mu21 += dx * dx * dy;
      mu12 += dx * dy * dy;
    }
  }
  // Scale-normalized central moments: eta_pq = mu_pq / m00^(1+(p+q)/2).
  auto eta = [m00](double mu, int order) {
    return mu / std::pow(m00, 1.0 + order / 2.0);
  };
  const double n20 = eta(mu20, 2), n02 = eta(mu02, 2), n11 = eta(mu11, 2);
  const double n30 = eta(mu30, 3), n03 = eta(mu03, 3);
  const double n21 = eta(mu21, 3), n12 = eta(mu12, 3);

  Signature hu(7, 0.0);
  hu[0] = n20 + n02;
  hu[1] = (n20 - n02) * (n20 - n02) + 4 * n11 * n11;
  hu[2] = (n30 - 3 * n12) * (n30 - 3 * n12) +
          (3 * n21 - n03) * (3 * n21 - n03);
  hu[3] = (n30 + n12) * (n30 + n12) + (n21 + n03) * (n21 + n03);
  hu[4] = (n30 - 3 * n12) * (n30 + n12) *
              ((n30 + n12) * (n30 + n12) - 3 * (n21 + n03) * (n21 + n03)) +
          (3 * n21 - n03) * (n21 + n03) *
              (3 * (n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03));
  hu[5] = (n20 - n02) *
              ((n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03)) +
          4 * n11 * (n30 + n12) * (n21 + n03);
  hu[6] = (3 * n21 - n03) * (n30 + n12) *
              ((n30 + n12) * (n30 + n12) - 3 * (n21 + n03) * (n21 + n03)) -
          (n30 - 3 * n12) * (n21 + n03) *
              (3 * (n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03));

  // Log compression keeps the seven values on comparable scales.
  for (double& h : hu) {
    const double sign = h < 0 ? -1.0 : 1.0;
    h = sign * std::log10(1.0 + std::fabs(h) * 1e7);
  }
  return hu;
}

Signature HuMoments(const Image& image) {
  if (image.Empty()) return {};
  return HuMomentsOfMask(ForegroundMask(image), image.width(),
                         image.height());
}

}  // namespace mmdb::features
