#include "features/signature.h"

#include <cassert>
#include <cmath>

namespace mmdb::features {

double L1Distance(const Signature& a, const Signature& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double CosineSimilarity(const Signature& a, const Signature& b) {
  assert(a.size() == b.size());
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

}  // namespace mmdb::features
