#include "features/texture.h"

#include <algorithm>
#include <cmath>

namespace mmdb::features {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Rec. 601 luma.
double Grey(const Rgb& p) {
  return 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
}

/// Sobel gradient at (x, y); the caller keeps coordinates interior.
void SobelAt(const Image& image, int32_t x, int32_t y, double* gx,
             double* gy) {
  const double tl = Grey(image.At(x - 1, y - 1));
  const double tc = Grey(image.At(x, y - 1));
  const double tr = Grey(image.At(x + 1, y - 1));
  const double ml = Grey(image.At(x - 1, y));
  const double mr = Grey(image.At(x + 1, y));
  const double bl = Grey(image.At(x - 1, y + 1));
  const double bc = Grey(image.At(x, y + 1));
  const double br = Grey(image.At(x + 1, y + 1));
  *gx = (tr + 2 * mr + br) - (tl + 2 * ml + bl);
  *gy = (bl + 2 * bc + br) - (tl + 2 * tc + tr);
}

}  // namespace

Signature EdgeOrientationHistogram(const Image& image, int orientation_bins,
                                   double magnitude_threshold) {
  orientation_bins = std::max(1, orientation_bins);
  if (image.width() < 3 || image.height() < 3) return {};
  Signature histogram(static_cast<size_t>(orientation_bins) + 1, 0.0);
  int64_t total = 0;
  for (int32_t y = 1; y < image.height() - 1; ++y) {
    for (int32_t x = 1; x < image.width() - 1; ++x) {
      double gx, gy;
      SobelAt(image, x, y, &gx, &gy);
      const double magnitude = std::hypot(gx, gy);
      ++total;
      if (magnitude < magnitude_threshold) {
        histogram.back() += 1.0;
        continue;
      }
      // Edge orientation is undirected: fold into [0, pi).
      double theta = std::atan2(gy, gx);
      if (theta < 0) theta += kPi;
      if (theta >= kPi) theta -= kPi;
      int bin = static_cast<int>(theta / kPi * orientation_bins);
      bin = std::clamp(bin, 0, orientation_bins - 1);
      histogram[static_cast<size_t>(bin)] += 1.0;
    }
  }
  if (total > 0) {
    for (double& value : histogram) value /= static_cast<double>(total);
  }
  return histogram;
}

double EdgeDensity(const Image& image, double magnitude_threshold) {
  if (image.width() < 3 || image.height() < 3) return 0.0;
  int64_t edges = 0, total = 0;
  for (int32_t y = 1; y < image.height() - 1; ++y) {
    for (int32_t x = 1; x < image.width() - 1; ++x) {
      double gx, gy;
      SobelAt(image, x, y, &gx, &gy);
      ++total;
      if (std::hypot(gx, gy) >= magnitude_threshold) ++edges;
    }
  }
  return total > 0 ? static_cast<double>(edges) / total : 0.0;
}

}  // namespace mmdb::features
