#ifndef MMDB_FEATURES_SIGNATURE_H_
#define MMDB_FEATURES_SIGNATURE_H_

#include <vector>

namespace mmdb::features {

/// A generic normalized feature vector (texture and shape features use
/// this representation; color keeps its dedicated `ColorHistogram`).
using Signature = std::vector<double>;

/// Sum of absolute differences; signatures must have equal arity.
double L1Distance(const Signature& a, const Signature& b);

/// Cosine similarity in [-1, 1]; 0 when either vector is all-zero.
double CosineSimilarity(const Signature& a, const Signature& b);

}  // namespace mmdb::features

#endif  // MMDB_FEATURES_SIGNATURE_H_
