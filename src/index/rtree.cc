#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace mmdb {

HyperRect HyperRect::Point(std::vector<double> point) {
  HyperRect rect;
  rect.max = point;
  rect.min = std::move(point);
  return rect;
}

bool HyperRect::Intersects(const HyperRect& other) const {
  for (size_t d = 0; d < Dims(); ++d) {
    if (min[d] > other.max[d] || max[d] < other.min[d]) return false;
  }
  return true;
}

bool HyperRect::Contains(const HyperRect& other) const {
  for (size_t d = 0; d < Dims(); ++d) {
    if (other.min[d] < min[d] || other.max[d] > max[d]) return false;
  }
  return true;
}

double HyperRect::Volume() const {
  double volume = 1.0;
  for (size_t d = 0; d < Dims(); ++d) volume *= (max[d] - min[d]);
  return volume;
}

void HyperRect::Enclose(const HyperRect& other) {
  for (size_t d = 0; d < Dims(); ++d) {
    min[d] = std::min(min[d], other.min[d]);
    max[d] = std::max(max[d], other.max[d]);
  }
}

double HyperRect::Enlargement(const HyperRect& other) const {
  double enlarged = 1.0;
  for (size_t d = 0; d < Dims(); ++d) {
    enlarged *= std::max(max[d], other.max[d]) - std::min(min[d], other.min[d]);
  }
  return enlarged - Volume();
}

double HyperRect::MinDistSquared(const std::vector<double>& point) const {
  double sum = 0.0;
  for (size_t d = 0; d < Dims(); ++d) {
    double diff = 0.0;
    if (point[d] < min[d]) {
      diff = min[d] - point[d];
    } else if (point[d] > max[d]) {
      diff = point[d] - max[d];
    }
    sum += diff * diff;
  }
  return sum;
}

RTree::RTree(size_t dims, size_t max_entries)
    : dims_(dims),
      max_entries_(std::max<size_t>(4, max_entries)),
      min_entries_(std::max<size_t>(2, max_entries_ / 2)),
      root_(std::make_unique<Node>()) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

HyperRect RTree::NodeMbr(const Node& node) {
  HyperRect mbr = node.entries.front().rect;
  for (size_t i = 1; i < node.entries.size(); ++i) {
    mbr.Enclose(node.entries[i].rect);
  }
  return mbr;
}

RTree::Node* RTree::ChooseLeaf(Node* node, const HyperRect& rect,
                               std::vector<Node*>* path) const {
  path->push_back(node);
  while (!node->is_leaf) {
    Entry* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (Entry& entry : node->entries) {
      const double enlargement = entry.rect.Enlargement(rect);
      const double volume = entry.rect.Volume();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && volume < best_volume)) {
        best = &entry;
        best_enlargement = enlargement;
        best_volume = volume;
      }
    }
    best->rect.Enclose(rect);
    node = best->child.get();
    path->push_back(node);
  }
  return node;
}

std::unique_ptr<RTree::Node> RTree::SplitNode(Node* node) {
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();

  // Quadratic pick-seeds: the pair wasting the most volume.
  size_t seed_a = 0, seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      HyperRect combined = entries[i].rect;
      combined.Enclose(entries[j].rect);
      const double waste = combined.Volume() - entries[i].rect.Volume() -
                           entries[j].rect.Volume();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  node->entries.push_back(std::move(entries[seed_a]));
  sibling->entries.push_back(std::move(entries[seed_b]));
  HyperRect mbr_a = node->entries.front().rect;
  HyperRect mbr_b = sibling->entries.front().rect;

  std::vector<size_t> remaining;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i != seed_a && i != seed_b) remaining.push_back(i);
  }

  while (!remaining.empty()) {
    // If one group must take everything to reach min fill, do so.
    if (node->entries.size() + remaining.size() == min_entries_) {
      for (size_t i : remaining) {
        mbr_a.Enclose(entries[i].rect);
        node->entries.push_back(std::move(entries[i]));
      }
      break;
    }
    if (sibling->entries.size() + remaining.size() == min_entries_) {
      for (size_t i : remaining) {
        mbr_b.Enclose(entries[i].rect);
        sibling->entries.push_back(std::move(entries[i]));
      }
      break;
    }
    // Pick-next: the entry with the greatest preference for one group.
    size_t pick_pos = 0;
    double best_diff = -1.0;
    double pick_cost_a = 0.0, pick_cost_b = 0.0;
    for (size_t pos = 0; pos < remaining.size(); ++pos) {
      const double cost_a = mbr_a.Enlargement(entries[remaining[pos]].rect);
      const double cost_b = mbr_b.Enlargement(entries[remaining[pos]].rect);
      const double diff = std::fabs(cost_a - cost_b);
      if (diff > best_diff) {
        best_diff = diff;
        pick_pos = pos;
        pick_cost_a = cost_a;
        pick_cost_b = cost_b;
      }
    }
    const size_t chosen = remaining[pick_pos];
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick_pos));
    const bool to_a =
        pick_cost_a < pick_cost_b ||
        (pick_cost_a == pick_cost_b &&
         node->entries.size() <= sibling->entries.size());
    if (to_a) {
      mbr_a.Enclose(entries[chosen].rect);
      node->entries.push_back(std::move(entries[chosen]));
    } else {
      mbr_b.Enclose(entries[chosen].rect);
      sibling->entries.push_back(std::move(entries[chosen]));
    }
  }
  return sibling;
}

Result<RTree> RTree::BulkLoad(size_t dims, std::vector<LoadEntry> entries,
                              size_t max_entries) {
  RTree tree(dims, max_entries);
  for (const LoadEntry& entry : entries) {
    if (entry.rect.Dims() != dims || entry.rect.max.size() != dims) {
      return Status::InvalidArgument("rtree bulk load: dims mismatch");
    }
    for (size_t d = 0; d < dims; ++d) {
      if (entry.rect.min[d] > entry.rect.max[d]) {
        return Status::InvalidArgument("rtree bulk load: inverted rect");
      }
    }
  }
  if (entries.empty()) return tree;
  tree.size_ = entries.size();

  // Current level of nodes being packed, starting with the leaf entries.
  std::vector<Entry> level;
  level.reserve(entries.size());
  for (LoadEntry& entry : entries) {
    Entry leaf_entry;
    leaf_entry.rect = std::move(entry.rect);
    leaf_entry.id = entry.id;
    level.push_back(std::move(leaf_entry));
  }

  const size_t cap = tree.max_entries_;
  const size_t min_fill = tree.min_entries_;
  bool is_leaf_level = true;
  size_t sort_dim = 0;
  while (level.size() > cap || is_leaf_level) {
    // Sort by MBR center along the cycling dimension.
    std::sort(level.begin(), level.end(),
              [sort_dim](const Entry& a, const Entry& b) {
                return a.rect.min[sort_dim] + a.rect.max[sort_dim] <
                       b.rect.min[sort_dim] + b.rect.max[sort_dim];
              });
    sort_dim = (sort_dim + 1) % dims;

    // Chunk into nodes of `cap` entries; rebalance the tail so no node
    // (other than a lone root) falls below the minimum fill.
    std::vector<size_t> chunk_sizes;
    size_t remaining = level.size();
    while (remaining > 0) {
      size_t take = std::min(cap, remaining);
      if (remaining - take > 0 && remaining - take < min_fill) {
        // Leave enough for the final chunk to reach min fill.
        take = remaining - min_fill;
      }
      chunk_sizes.push_back(take);
      remaining -= take;
    }

    std::vector<Entry> parents;
    parents.reserve(chunk_sizes.size());
    size_t pos = 0;
    for (size_t chunk : chunk_sizes) {
      auto node = std::make_unique<Node>();
      node->is_leaf = is_leaf_level;
      node->entries.reserve(chunk);
      for (size_t i = 0; i < chunk; ++i) {
        node->entries.push_back(std::move(level[pos + i]));
      }
      pos += chunk;
      Entry parent;
      parent.rect = NodeMbr(*node);
      parent.child = std::move(node);
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
    is_leaf_level = false;
  }

  if (level.size() == 1) {
    tree.root_ = std::move(level.front().child);
  } else {
    auto root = std::make_unique<Node>();
    root->is_leaf = false;
    root->entries = std::move(level);
    tree.root_ = std::move(root);
  }
  return tree;
}

Status RTree::Insert(const HyperRect& rect, ObjectId id) {
  if (rect.Dims() != dims_ || rect.max.size() != dims_) {
    return Status::InvalidArgument("rtree: rect dimensionality mismatch");
  }
  for (size_t d = 0; d < dims_; ++d) {
    if (rect.min[d] > rect.max[d]) {
      return Status::InvalidArgument("rtree: inverted rectangle");
    }
  }
  std::vector<Node*> path;
  Node* leaf = ChooseLeaf(root_.get(), rect, &path);
  Entry entry;
  entry.rect = rect;
  entry.id = id;
  leaf->entries.push_back(std::move(entry));
  ++size_;

  // Walk back up, splitting overfull nodes.
  for (size_t level = path.size(); level-- > 0;) {
    Node* node = path[level];
    if (node->entries.size() <= max_entries_) break;
    std::unique_ptr<Node> sibling = SplitNode(node);
    if (level == 0) {
      // Root split: grow the tree.
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      Entry left;
      left.rect = NodeMbr(*node);
      left.child = std::move(root_);
      Entry right;
      right.rect = NodeMbr(*sibling);
      right.child = std::move(sibling);
      new_root->entries.push_back(std::move(left));
      new_root->entries.push_back(std::move(right));
      root_ = std::move(new_root);
      break;
    }
    // Fix the parent: refresh this child's MBR and add the sibling.
    Node* parent = path[level - 1];
    for (Entry& parent_entry : parent->entries) {
      if (parent_entry.child.get() == node) {
        parent_entry.rect = NodeMbr(*node);
        break;
      }
    }
    Entry sibling_entry;
    sibling_entry.rect = NodeMbr(*sibling);
    sibling_entry.child = std::move(sibling);
    parent->entries.push_back(std::move(sibling_entry));
  }
  return Status::OK();
}

bool RTree::FindLeaf(Node* node, const HyperRect& rect, ObjectId id,
                     std::vector<Node*>* path, size_t* entry_index) {
  path->push_back(node);
  if (node->is_leaf) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].id == id && node->entries[i].rect == rect) {
        *entry_index = i;
        return true;
      }
    }
    path->pop_back();
    return false;
  }
  for (Entry& entry : node->entries) {
    if (!entry.rect.Contains(rect)) continue;
    if (FindLeaf(entry.child.get(), rect, id, path, entry_index)) {
      return true;
    }
  }
  path->pop_back();
  return false;
}

void RTree::CondenseTree(std::vector<Node*>& path,
                         std::vector<Entry>* orphans) {
  // Walk from the leaf upward: dissolve underfull non-root nodes into
  // the orphan list, refresh surviving ancestors' MBRs.
  for (size_t level = path.size(); level-- > 1;) {
    Node* node = path[level];
    Node* parent = path[level - 1];
    // Locate this child in its parent.
    size_t child_pos = 0;
    for (; child_pos < parent->entries.size(); ++child_pos) {
      if (parent->entries[child_pos].child.get() == node) break;
    }
    if (node->entries.size() < min_entries_) {
      // Orphan the node's entries and drop it from the parent. Orphaned
      // subtrees keep their depth by reinsertion at entry granularity:
      // leaf entries reinsert directly; internal entries reinsert their
      // transitive leaf entries (simple and correct for our fan-outs).
      std::vector<Node*> stack = {node};
      while (!stack.empty()) {
        Node* current = stack.back();
        stack.pop_back();
        for (Entry& entry : current->entries) {
          if (current->is_leaf) {
            orphans->push_back(std::move(entry));
          } else {
            stack.push_back(entry.child.get());
          }
        }
        // Children are owned by their entries; keep them alive until the
        // parent entry is destroyed below.
      }
      parent->entries.erase(parent->entries.begin() +
                            static_cast<ptrdiff_t>(child_pos));
    } else if (child_pos < parent->entries.size()) {
      parent->entries[child_pos].rect = NodeMbr(*node);
    }
  }
  // Shrink the root: a non-leaf root with a single child is replaced by
  // that child; an empty non-leaf root becomes an empty leaf.
  while (!root_->is_leaf && root_->entries.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->entries.front().child);
    root_ = std::move(child);
  }
  if (!root_->is_leaf && root_->entries.empty()) {
    root_ = std::make_unique<Node>();
  }
}

Status RTree::Remove(const HyperRect& rect, ObjectId id) {
  if (rect.Dims() != dims_ || rect.max.size() != dims_) {
    return Status::InvalidArgument("rtree: rect dimensionality mismatch");
  }
  std::vector<Node*> path;
  size_t entry_index = 0;
  if (!FindLeaf(root_.get(), rect, id, &path, &entry_index)) {
    return Status::NotFound("rtree: no entry with id " + std::to_string(id));
  }
  Node* leaf = path.back();
  leaf->entries.erase(leaf->entries.begin() +
                      static_cast<ptrdiff_t>(entry_index));
  --size_;

  std::vector<Entry> orphans;
  CondenseTree(path, &orphans);
  // Orphans stayed logically present (size_ still counts them), but
  // Insert() increments size_ again — compensate afterwards.
  for (Entry& orphan : orphans) {
    MMDB_RETURN_IF_ERROR(Insert(orphan.rect, orphan.id));
  }
  size_ -= orphans.size();
  return Status::OK();
}

void RTree::RangeSearchNode(const Node& node, const HyperRect& query,
                            std::vector<ObjectId>* out) const {
  for (const Entry& entry : node.entries) {
    if (!entry.rect.Intersects(query)) continue;
    if (node.is_leaf) {
      out->push_back(entry.id);
    } else {
      RangeSearchNode(*entry.child, query, out);
    }
  }
}

Result<std::vector<ObjectId>> RTree::RangeSearch(
    const HyperRect& query) const {
  if (query.Dims() != dims_ || query.max.size() != dims_) {
    return Status::InvalidArgument("rtree: query dimensionality mismatch");
  }
  std::vector<ObjectId> out;
  RangeSearchNode(*root_, query, &out);
  return out;
}

Result<std::vector<std::pair<ObjectId, double>>> RTree::Knn(
    const std::vector<double>& point, size_t k) const {
  if (point.size() != dims_) {
    return Status::InvalidArgument("rtree: point dimensionality mismatch");
  }
  // Best-first traversal over (min-distance, node-or-entry).
  struct QueueItem {
    double dist_sq;
    const Node* node;     // Non-null for subtrees.
    ObjectId id;          // Valid when node == nullptr.
    bool operator>(const QueueItem& other) const {
      return dist_sq > other.dist_sq;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      queue;
  queue.push({0.0, root_.get(), kInvalidObjectId});
  std::vector<std::pair<ObjectId, double>> out;
  while (!queue.empty() && out.size() < k) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.node == nullptr) {
      out.emplace_back(item.id, std::sqrt(item.dist_sq));
      continue;
    }
    for (const Entry& entry : item.node->entries) {
      const double dist_sq = entry.rect.MinDistSquared(point);
      if (item.node->is_leaf) {
        queue.push({dist_sq, nullptr, entry.id});
      } else {
        queue.push({dist_sq, entry.child.get(), kInvalidObjectId});
      }
    }
  }
  return out;
}

size_t RTree::Height() const {
  size_t height = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++height;
    node = node->entries.front().child.get();
  }
  return height;
}

Status RTree::CheckNode(const Node& node, size_t depth, size_t leaf_depth,
                        bool is_root) const {
  if (node.entries.size() > max_entries_) {
    return Status::Internal("rtree: overfull node");
  }
  if (!is_root && node.entries.size() < min_entries_) {
    return Status::Internal("rtree: underfull node");
  }
  if (node.is_leaf) {
    if (depth != leaf_depth) {
      return Status::Internal("rtree: leaves at different depths");
    }
    return Status::OK();
  }
  for (const Entry& entry : node.entries) {
    if (entry.child == nullptr) {
      return Status::Internal("rtree: internal entry without child");
    }
    if (!(entry.rect == NodeMbr(*entry.child)) &&
        !entry.rect.Contains(NodeMbr(*entry.child))) {
      return Status::Internal("rtree: MBR does not cover child");
    }
    MMDB_RETURN_IF_ERROR(
        CheckNode(*entry.child, depth + 1, leaf_depth, false));
  }
  return Status::OK();
}

Status RTree::CheckInvariants() const {
  if (size_ == 0) return Status::OK();
  return CheckNode(*root_, 1, Height(), true);
}

}  // namespace mmdb
