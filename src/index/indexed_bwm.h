#ifndef MMDB_INDEX_INDEXED_BWM_H_
#define MMDB_INDEX_INDEXED_BWM_H_

#include "core/bwm.h"
#include "core/collection.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "core/rules.h"
#include "index/histogram_index.h"
#include "util/result.h"

namespace mmdb {

/// Engine-internal header (`mmdb_internal.h`): applications reach this
/// access path as `QueryMethod::kBwmIndexed` through `QueryService` or
/// the facade; constructing the processor directly is deprecated as
/// public API.
///
/// BWM combined with the conventional access path the paper's Section 4
/// opens with: binary-image signatures live in a multidimensional index
/// (the R-tree), so the per-cluster "does the base satisfy the query?"
/// test becomes one index range search instead of a full histogram scan.
/// The edited images still flow through the Main/Unclassified logic of
/// Figure 2; result sets are identical to the plain `BwmQueryProcessor`
/// (enforced by the tests).
class IndexedBwmQueryProcessor : public QueryProcessor {
 public:
  /// `index` must contain exactly the collection's binary images. All
  /// referents must outlive the processor.
  IndexedBwmQueryProcessor(const AugmentedCollection* collection,
                           const BwmIndex* bwm_index,
                           const RuleEngine* engine,
                           const HistogramIndex* histogram_index);

  using QueryProcessor::RunConjunctive;
  using QueryProcessor::RunRange;

  /// Runs `query` using the index for the binary-image side. Checks
  /// `ctx`'s limits per cluster and per bounded image.
  Result<QueryResult> RunRange(const RangeQuery& query,
                               const QueryContext& ctx) const override;

  /// Conjunctive variant. The R-tree probes one bin per search, so a
  /// conjunction runs the plain BWM Figure 2 logic over the stored
  /// histograms (exactly what the facade used to fall back to); result
  /// sets are identical to `BwmQueryProcessor::RunConjunctive`.
  Result<QueryResult> RunConjunctive(const ConjunctiveQuery& query,
                                     const QueryContext& ctx) const override;

 private:
  const AugmentedCollection* collection_;
  const BwmIndex* bwm_index_;
  const RuleEngine* engine_;
  const HistogramIndex* histogram_index_;
  TargetBoundsResolver resolver_;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_INDEXED_BWM_H_
