#ifndef MMDB_INDEX_HISTOGRAM_INDEX_H_
#define MMDB_INDEX_HISTOGRAM_INDEX_H_

#include <utility>
#include <vector>

#include "core/histogram.h"
#include "core/query.h"
#include "index/rtree.h"
#include "util/result.h"

namespace mmdb {

/// The conventional access path the paper describes in Section 4's
/// opening: binary-image histogram signatures organized in a
/// multidimensional index (an R-tree) so range queries prune whole
/// regions of histogram space without touching each image.
///
/// Only conventionally stored images are indexable this way — edited
/// images have no extracted signature, which is exactly why the paper
/// needs RBM/BWM. The index therefore complements, not replaces, those
/// methods.
class HistogramIndex {
 public:
  /// `bins` is the quantizer's bin count (index dimensionality).
  explicit HistogramIndex(int32_t bins);

  /// Indexes the signature of binary image `id`.
  Status Insert(ObjectId id, const ColorHistogram& histogram);

  /// Removes a previously indexed signature (point key + id).
  Status Remove(const HyperRect& point, ObjectId id) {
    return tree_.Remove(point, id);
  }

  /// Ids of indexed images that may satisfy `query` (fraction of `bin` in
  /// [min, max]); exact for point signatures.
  Result<std::vector<ObjectId>> RangeSearch(const RangeQuery& query) const;

  /// The k indexed images nearest to `query` by L2 distance over
  /// normalized histograms.
  Result<std::vector<std::pair<ObjectId, double>>> Knn(
      const ColorHistogram& query, size_t k) const;

  size_t Size() const { return tree_.Size(); }
  const RTree& tree() const { return tree_; }

 private:
  int32_t bins_;
  RTree tree_;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_HISTOGRAM_INDEX_H_
