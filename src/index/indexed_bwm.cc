#include "index/indexed_bwm.h"

#include <set>

#include "core/bounds.h"
#include "obs/trace.h"

namespace mmdb {

namespace {

obs::SpanCategory* ScanSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("bwm_indexed.scan");
  return category;
}

}  // namespace

IndexedBwmQueryProcessor::IndexedBwmQueryProcessor(
    const AugmentedCollection* collection, const BwmIndex* bwm_index,
    const RuleEngine* engine, const HistogramIndex* histogram_index)
    : collection_(collection),
      bwm_index_(bwm_index),
      engine_(engine),
      histogram_index_(histogram_index),
      resolver_(collection->MakeTargetResolver(*engine)) {}

Result<QueryResult> IndexedBwmQueryProcessor::RunRange(
    const RangeQuery& query, const QueryContext& ctx) const {
  obs::Span scan_span(ScanSpan());
  QueryResult result;
  CancelCheck check(ctx);

  // One index probe answers the binary side for every cluster at once.
  MMDB_ASSIGN_OR_RETURN(std::vector<ObjectId> matching_binaries,
                        histogram_index_->RangeSearch(query));
  const std::set<ObjectId> satisfied(matching_binaries.begin(),
                                     matching_binaries.end());
  result.stats.binary_images_checked =
      static_cast<int64_t>(matching_binaries.size());

  auto bound_and_collect = [&](ObjectId edited_id) -> Status {
    MMDB_RETURN_IF_ERROR(check.Check());
    const EditedImageInfo* edited = collection_->FindEdited(edited_id);
    if (edited == nullptr) {
      return Status::Corruption("BWM index references missing edited image " +
                                std::to_string(edited_id));
    }
    const BinaryImageInfo* base =
        collection_->FindBinary(edited->script.base_id);
    if (base == nullptr) {
      return Status::Corruption("edited image " + std::to_string(edited_id) +
                                " references missing base");
    }
    MMDB_ASSIGN_OR_RETURN(
        FractionBounds bounds,
        ComputeBounds(*engine_, edited->script, query.bin,
                      base->histogram.Count(query.bin), base->width,
                      base->height, resolver_, check.enabled_or_null()));
    ++result.stats.edited_images_bounded;
    result.stats.rules_applied +=
        static_cast<int64_t>(edited->script.ops.size());
    if (bounds.Overlaps(query.min_fraction, query.max_fraction)) {
      result.ids.push_back(edited_id);
    }
    return Status::OK();
  };

  for (const auto& [base_id, edited_ids] : bwm_index_->main_map()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    if (satisfied.count(base_id)) {
      result.ids.push_back(base_id);
      result.ids.insert(result.ids.end(), edited_ids.begin(),
                        edited_ids.end());
      result.stats.edited_images_skipped +=
          static_cast<int64_t>(edited_ids.size());
    } else {
      for (ObjectId edited_id : edited_ids) {
        MMDB_RETURN_IF_ERROR(
            AnnotateInterrupt(ctx, result, bound_and_collect(edited_id)));
      }
    }
  }
  // Satisfied binaries that are not cluster bases (e.g. materialized
  // variants) still belong in the answer.
  for (ObjectId id : matching_binaries) {
    if (!bwm_index_->main_map().count(id)) result.ids.push_back(id);
  }
  for (ObjectId edited_id : bwm_index_->Unclassified()) {
    MMDB_RETURN_IF_ERROR(
        AnnotateInterrupt(ctx, result, bound_and_collect(edited_id)));
  }
  return result;
}

Result<QueryResult> IndexedBwmQueryProcessor::RunConjunctive(
    const ConjunctiveQuery& query, const QueryContext& ctx) const {
  BwmQueryProcessor bwm(collection_, bwm_index_, engine_);
  return bwm.RunConjunctive(query, ctx);
}

}  // namespace mmdb
