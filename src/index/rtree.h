#ifndef MMDB_INDEX_RTREE_H_
#define MMDB_INDEX_RTREE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "editops/edit_ops.h"
#include "util/result.h"

namespace mmdb {

/// An n-dimensional axis-aligned (hyper)rectangle with inclusive bounds.
struct HyperRect {
  std::vector<double> min;
  std::vector<double> max;

  HyperRect() = default;
  HyperRect(std::vector<double> lo, std::vector<double> hi)
      : min(std::move(lo)), max(std::move(hi)) {}

  /// A degenerate rectangle at `point`.
  static HyperRect Point(std::vector<double> point);

  size_t Dims() const { return min.size(); }
  bool Intersects(const HyperRect& other) const;
  bool Contains(const HyperRect& other) const;
  /// Volume (product of extents); 0 for points.
  double Volume() const;
  /// Grows to cover `other`.
  void Enclose(const HyperRect& other);
  /// Volume of the union minus own volume (Guttman's enlargement cost).
  double Enlargement(const HyperRect& other) const;
  /// Minimum squared L2 distance from `point` to this rectangle.
  double MinDistSquared(const std::vector<double>& point) const;

  friend bool operator==(const HyperRect&, const HyperRect&) = default;
};

/// In-memory R-tree (Guttman 1984, quadratic split), the
/// "multidimensional index" the paper cites for organizing color
/// histograms of conventionally stored images (Section 3.1 / [13]).
///
/// Keys are `HyperRect`s (points for histogram signatures); values are
/// object ids. Range search returns every entry whose rectangle
/// intersects the query; k-NN search uses best-first MinDist traversal.
class RTree {
 public:
  /// `dims` is the key dimensionality (the histogram bin count);
  /// `max_entries` the node fan-out (min fill is max/2).
  explicit RTree(size_t dims, size_t max_entries = 8);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  /// One (key, payload) pair for bulk loading.
  struct LoadEntry {
    HyperRect rect;
    ObjectId id = kInvalidObjectId;
  };

  /// Builds a packed tree from `entries` bottom-up (sort-tile-recursive
  /// style: each level sorted by MBR center along a cycling dimension and
  /// chunked into full nodes, with the tail rebalanced to respect the
  /// minimum fill). Much faster and better-clustered than repeated
  /// `Insert` for static datasets; the result satisfies the same
  /// invariants.
  static Result<RTree> BulkLoad(size_t dims,
                                std::vector<LoadEntry> entries,
                                size_t max_entries = 8);

  /// Inserts `rect` (must have `dims` dimensions) with payload `id`.
  Status Insert(const HyperRect& rect, ObjectId id);

  /// Removes the entry whose key equals `rect` and payload equals `id`
  /// (Guttman's delete: underfull nodes are condensed and their
  /// surviving entries reinserted). NotFound when no such entry exists;
  /// when duplicates exist, one of them is removed.
  Status Remove(const HyperRect& rect, ObjectId id);

  /// All ids whose rectangle intersects `query`.
  Result<std::vector<ObjectId>> RangeSearch(const HyperRect& query) const;

  /// The `k` entries nearest to `point` by L2 distance (rect MinDist),
  /// as (id, distance) pairs in ascending distance order.
  Result<std::vector<std::pair<ObjectId, double>>> Knn(
      const std::vector<double>& point, size_t k) const;

  size_t Size() const { return size_; }
  size_t Height() const;
  size_t dims() const { return dims_; }

  /// Verifies structural invariants (entry counts, MBR containment,
  /// uniform leaf depth); used by the property tests.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    HyperRect rect;
    ObjectId id = kInvalidObjectId;      // Leaf entries.
    std::unique_ptr<Node> child;         // Internal entries.
  };
  struct Node {
    bool is_leaf = true;
    std::vector<Entry> entries;
  };

  Node* ChooseLeaf(Node* node, const HyperRect& rect,
                   std::vector<Node*>* path) const;
  /// Depth-first search for the leaf containing (rect, id); fills `path`
  /// (root..leaf) and `entry_index` within the leaf. Returns false when
  /// absent.
  bool FindLeaf(Node* node, const HyperRect& rect, ObjectId id,
                std::vector<Node*>* path, size_t* entry_index);
  /// Refreshes ancestor MBRs and dissolves underfull nodes after a
  /// removal, collecting orphaned entries for reinsertion.
  void CondenseTree(std::vector<Node*>& path,
                    std::vector<Entry>* orphans);
  /// Splits an overfull node's entries in two (quadratic pick-seeds /
  /// pick-next); returns the new sibling.
  std::unique_ptr<Node> SplitNode(Node* node);
  static HyperRect NodeMbr(const Node& node);
  void RangeSearchNode(const Node& node, const HyperRect& query,
                       std::vector<ObjectId>* out) const;
  Status CheckNode(const Node& node, size_t depth, size_t leaf_depth,
                   bool is_root) const;

  size_t dims_;
  size_t max_entries_;
  size_t min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_RTREE_H_
