#include "index/histogram_index.h"

namespace mmdb {

HistogramIndex::HistogramIndex(int32_t bins)
    : bins_(bins), tree_(static_cast<size_t>(bins)) {}

Status HistogramIndex::Insert(ObjectId id, const ColorHistogram& histogram) {
  if (histogram.BinCount() != bins_) {
    return Status::InvalidArgument("histogram arity mismatch");
  }
  return tree_.Insert(HyperRect::Point(histogram.Normalized()), id);
}

Result<std::vector<ObjectId>> HistogramIndex::RangeSearch(
    const RangeQuery& query) const {
  if (query.bin < 0 || query.bin >= bins_) {
    return Status::InvalidArgument("query bin out of range");
  }
  // All dimensions unconstrained except the queried bin.
  HyperRect window;
  window.min.assign(static_cast<size_t>(bins_), 0.0);
  window.max.assign(static_cast<size_t>(bins_), 1.0);
  window.min[static_cast<size_t>(query.bin)] = query.min_fraction;
  window.max[static_cast<size_t>(query.bin)] = query.max_fraction;
  return tree_.RangeSearch(window);
}

Result<std::vector<std::pair<ObjectId, double>>> HistogramIndex::Knn(
    const ColorHistogram& query, size_t k) const {
  if (query.BinCount() != bins_) {
    return Status::InvalidArgument("histogram arity mismatch");
  }
  return tree_.Knn(query.Normalized(), k);
}

}  // namespace mmdb
