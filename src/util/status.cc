#include "util/status.h"

namespace mmdb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

}  // namespace mmdb
