#ifndef MMDB_UTIL_RESULT_H_
#define MMDB_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace mmdb {

/// A value of type `T` or a non-OK `Status`, in the Arrow idiom.
///
/// Usage:
/// ```
/// Result<Image> img = LoadPpm(path);
/// if (!img.ok()) return img.status();
/// Use(img.value());
/// ```
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK `status`.
  /// Passing an OK status is a programming error and is converted to
  /// `StatusCode::kInternal`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// Accessors. Must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when value_ holds a value.
  std::optional<T> value_;
};

}  // namespace mmdb

/// Assigns the value of a `Result` expression to `lhs`, or propagates the
/// error `Status` out of the enclosing function.
#define MMDB_ASSIGN_OR_RETURN(lhs, expr)                 \
  MMDB_ASSIGN_OR_RETURN_IMPL_(                           \
      MMDB_RESULT_CONCAT_(_mmdb_result, __LINE__), lhs, expr)

#define MMDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define MMDB_RESULT_CONCAT_(a, b) MMDB_RESULT_CONCAT_IMPL_(a, b)
#define MMDB_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // MMDB_UTIL_RESULT_H_
