#ifndef MMDB_UTIL_STOPWATCH_H_
#define MMDB_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace mmdb {

/// Wall-clock stopwatch over `std::chrono::steady_clock`.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last `Restart()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_STOPWATCH_H_
