#ifndef MMDB_UTIL_RANDOM_H_
#define MMDB_UTIL_RANDOM_H_

#include <cstdint>

namespace mmdb {

/// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
///
/// Used everywhere randomness is needed (dataset generation, workload
/// sampling, property-test inputs) so that every experiment in the repo is
/// reproducible from a seed printed in its output.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform 32-bit value.
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

}  // namespace mmdb

#endif  // MMDB_UTIL_RANDOM_H_
