#ifndef MMDB_UTIL_STATUS_H_
#define MMDB_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace mmdb {

/// Machine-readable classification of an error carried by `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kIoError,
  kResourceExhausted,
  kNotSupported,
  kInternal,
  /// The query's deadline expired before it finished; partial progress
  /// may be reported out of band (see `QueryInterrupt`).
  kDeadlineExceeded,
  /// The caller cancelled the operation via a `CancelToken`.
  kCancelled,
  /// Durability was lost: an fsync failed, so previously written bytes
  /// may or may not have reached stable storage. Unlike kIoError this is
  /// not retryable — the kernel may already have dropped the dirty pages.
  kDataLoss,
  /// The target (a shard, replica, or remote peer) is currently not
  /// serving — ejected by a circuit breaker or unreachable. Retryable
  /// once the target is probed healthy again.
  kUnavailable,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that may fail, in the RocksDB/Arrow idiom.
///
/// The library does not throw exceptions: every fallible public entry point
/// returns a `Status` (or a `Result<T>`, which carries a value on success).
/// A default-constructed `Status` is OK and carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with `code` and a human-readable `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace mmdb

/// Propagates a non-OK `Status` out of the enclosing function.
#define MMDB_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::mmdb::Status _mmdb_status = (expr);         \
    if (!_mmdb_status.ok()) return _mmdb_status;  \
  } while (0)

#endif  // MMDB_UTIL_STATUS_H_
