#ifndef MMDB_UTIL_TABLE_PRINTER_H_
#define MMDB_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mmdb {

/// Renders aligned ASCII tables and CSV, used by the benchmark harnesses to
/// print paper-style rows/series.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; cells beyond the header count are dropped, missing
  /// cells render empty.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for mixed cell types.
  static std::string Cell(const std::string& s) { return s; }
  static std::string Cell(const char* s) { return s; }
  static std::string Cell(int64_t v);
  static std::string Cell(uint64_t v);
  static std::string Cell(int v) { return Cell(static_cast<int64_t>(v)); }
  /// Formats with `precision` digits after the decimal point.
  static std::string Cell(double v, int precision = 4);

  /// Writes an aligned ASCII rendering.
  void Print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_TABLE_PRINTER_H_
