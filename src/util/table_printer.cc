#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace mmdb {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Cell(int64_t v) { return std::to_string(v); }
std::string TablePrinter::Cell(uint64_t v) { return std::to_string(v); }

std::string TablePrinter::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    os << "+";
    for (size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

namespace {
void WriteCsvCell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      WriteCsvCell(os, row[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace mmdb
