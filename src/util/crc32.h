#ifndef MMDB_UTIL_CRC32_H_
#define MMDB_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace mmdb {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `len` bytes of `data`.
/// `seed` chains incremental computations: `Crc32(b, m, Crc32(a, n))` equals
/// the CRC of `a` followed by `b`. Used for the page checksum footers
/// (storage/page.h); the journal keeps its older FNV-1a record checksums.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace mmdb

#endif  // MMDB_UTIL_CRC32_H_
