#ifndef MMDB_EDITOPS_SERIALIZE_H_
#define MMDB_EDITOPS_SERIALIZE_H_

#include <string>

#include "editops/edit_ops.h"
#include "util/result.h"

namespace mmdb {

/// Serializes an edit script to a compact, versioned little-endian binary
/// record: this is the on-disk storage format of an edited image in the
/// augmented MMDBMS (a few dozen bytes, versus megabytes for the raster).
std::string EncodeEditScript(const EditScript& script);

/// Parses a record produced by `EncodeEditScript`. Returns Corruption on
/// malformed input.
Result<EditScript> DecodeEditScript(const std::string& data);

}  // namespace mmdb

#endif  // MMDB_EDITOPS_SERIALIZE_H_
