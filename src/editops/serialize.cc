#include "editops/serialize.h"

#include <cstring>

namespace mmdb {

namespace {

constexpr uint8_t kFormatVersion = 1;

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutI32(std::string& out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Cursor over the encoded buffer with bounds-checked reads.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  Result<uint8_t> U8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  Result<int32_t> I32() {
    MMDB_ASSIGN_OR_RETURN(uint32_t v, U32());
    return static_cast<int32_t>(v);
  }
  Result<double> F64() {
    MMDB_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  static Status Truncated() {
    return Status::Corruption("edit script: truncated record");
  }
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

std::string EncodeEditScript(const EditScript& script) {
  std::string out;
  PutU8(out, kFormatVersion);
  PutU64(out, script.base_id);
  PutU32(out, static_cast<uint32_t>(script.ops.size()));
  for (const EditOp& op : script.ops) {
    PutU8(out, static_cast<uint8_t>(GetOpType(op)));
    std::visit(
        [&out](const auto& concrete) {
          using T = std::decay_t<decltype(concrete)>;
          if constexpr (std::is_same_v<T, DefineOp>) {
            PutI32(out, concrete.region.x0);
            PutI32(out, concrete.region.y0);
            PutI32(out, concrete.region.x1);
            PutI32(out, concrete.region.y1);
          } else if constexpr (std::is_same_v<T, CombineOp>) {
            for (double w : concrete.weights) PutF64(out, w);
          } else if constexpr (std::is_same_v<T, ModifyOp>) {
            PutU32(out, concrete.old_color.Packed());
            PutU32(out, concrete.new_color.Packed());
          } else if constexpr (std::is_same_v<T, MutateOp>) {
            for (double v : concrete.m) PutF64(out, v);
          } else {
            // MergeOp.
            PutU8(out, concrete.target.has_value() ? 1 : 0);
            PutU64(out, concrete.target.value_or(kInvalidObjectId));
            PutI32(out, concrete.x);
            PutI32(out, concrete.y);
          }
        },
        op);
  }
  return out;
}

Result<EditScript> DecodeEditScript(const std::string& data) {
  Reader reader(data);
  MMDB_ASSIGN_OR_RETURN(uint8_t version, reader.U8());
  if (version != kFormatVersion) {
    return Status::Corruption("edit script: unknown format version " +
                              std::to_string(version));
  }
  EditScript script;
  MMDB_ASSIGN_OR_RETURN(script.base_id, reader.U64());
  MMDB_ASSIGN_OR_RETURN(uint32_t op_count, reader.U32());
  if (op_count > (1u << 24)) {
    return Status::Corruption("edit script: implausible op count");
  }
  script.ops.reserve(op_count);
  for (uint32_t i = 0; i < op_count; ++i) {
    MMDB_ASSIGN_OR_RETURN(uint8_t raw_type, reader.U8());
    switch (static_cast<EditOpType>(raw_type)) {
      case EditOpType::kDefine: {
        DefineOp op;
        MMDB_ASSIGN_OR_RETURN(op.region.x0, reader.I32());
        MMDB_ASSIGN_OR_RETURN(op.region.y0, reader.I32());
        MMDB_ASSIGN_OR_RETURN(op.region.x1, reader.I32());
        MMDB_ASSIGN_OR_RETURN(op.region.y1, reader.I32());
        script.ops.emplace_back(op);
        break;
      }
      case EditOpType::kCombine: {
        CombineOp op;
        for (double& w : op.weights) {
          MMDB_ASSIGN_OR_RETURN(w, reader.F64());
        }
        script.ops.emplace_back(op);
        break;
      }
      case EditOpType::kModify: {
        ModifyOp op;
        MMDB_ASSIGN_OR_RETURN(uint32_t old_packed, reader.U32());
        MMDB_ASSIGN_OR_RETURN(uint32_t new_packed, reader.U32());
        op.old_color = Rgb::FromPacked(old_packed);
        op.new_color = Rgb::FromPacked(new_packed);
        script.ops.emplace_back(op);
        break;
      }
      case EditOpType::kMutate: {
        MutateOp op;
        for (double& v : op.m) {
          MMDB_ASSIGN_OR_RETURN(v, reader.F64());
        }
        script.ops.emplace_back(op);
        break;
      }
      case EditOpType::kMerge: {
        MergeOp op;
        MMDB_ASSIGN_OR_RETURN(uint8_t has_target, reader.U8());
        MMDB_ASSIGN_OR_RETURN(uint64_t target, reader.U64());
        if (has_target) op.target = target;
        MMDB_ASSIGN_OR_RETURN(op.x, reader.I32());
        MMDB_ASSIGN_OR_RETURN(op.y, reader.I32());
        script.ops.emplace_back(op);
        break;
      }
      default:
        return Status::Corruption("edit script: unknown op tag " +
                                  std::to_string(raw_type));
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("edit script: trailing bytes");
  }
  return script;
}

}  // namespace mmdb
