#include "editops/optimize.h"

#include <cmath>

namespace mmdb {

namespace {

bool IsIdentityMutate(const MutateOp& op) {
  static constexpr double kIdentity[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  for (int i = 0; i < 9; ++i) {
    if (std::fabs(op.m[static_cast<size_t>(i)] - kIdentity[i]) > 1e-12) {
      return false;
    }
  }
  return true;
}

bool IsDeadOp(const EditOp& op) {
  switch (GetOpType(op)) {
    case EditOpType::kModify: {
      const ModifyOp& modify = std::get<ModifyOp>(op);
      return modify.old_color == modify.new_color;
    }
    case EditOpType::kCombine:
      return std::get<CombineOp>(op).WeightSum() == 0.0;
    case EditOpType::kMutate:
      return IsIdentityMutate(std::get<MutateOp>(op));
    default:
      return false;
  }
}

}  // namespace

EditScript OptimizeScript(const EditScript& script, OptimizeStats* stats) {
  EditScript out;
  out.base_id = script.base_id;
  out.ops.reserve(script.ops.size());

  for (const EditOp& op : script.ops) {
    if (IsDeadOp(op)) continue;
    // A Define immediately followed by another Define was never consumed.
    if (!out.ops.empty() &&
        GetOpType(out.ops.back()) == EditOpType::kDefine &&
        GetOpType(op) == EditOpType::kDefine) {
      out.ops.back() = op;
      continue;
    }
    out.ops.push_back(op);
  }
  // Trailing Defines select pixels nothing will ever edit.
  while (!out.ops.empty() &&
         GetOpType(out.ops.back()) == EditOpType::kDefine) {
    out.ops.pop_back();
  }

  if (stats != nullptr) {
    stats->removed_ops =
        static_cast<int>(script.ops.size()) - static_cast<int>(out.ops.size());
  }
  return out;
}

}  // namespace mmdb
