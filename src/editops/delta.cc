#include "editops/delta.h"

namespace mmdb {

Result<EditScript> MakeDeltaScript(ObjectId base_id, const Image& base,
                                   const Image& target) {
  if (base.Empty() || target.Empty()) {
    return Status::InvalidArgument("delta script: empty image");
  }
  if (target.width() > base.width() || target.height() > base.height()) {
    return Status::NotSupported(
        "delta script: target exceeds base dimensions");
  }

  EditScript script;
  script.base_id = base_id;

  // Reach the target dimensions first with a crop, if needed.
  Image working = base;
  if (target.width() != base.width() || target.height() != base.height()) {
    const Rect crop = Rect::Full(target.width(), target.height());
    script.ops.emplace_back(DefineOp{crop});
    script.ops.emplace_back(MergeOp{});  // NULL target: extract the DR.
    Image cropped(target.width(), target.height());
    for (int32_t y = 0; y < target.height(); ++y) {
      for (int32_t x = 0; x < target.width(); ++x) {
        cropped.At(x, y) = working.At(x, y);
      }
    }
    working = std::move(cropped);
  }

  // One Define + Modify per maximal horizontal run of pixels that share
  // the same (current, wanted) recoloring. Every pixel of the old color
  // inside such a run wants the change, so Modify is exact there.
  for (int32_t y = 0; y < target.height(); ++y) {
    int32_t x = 0;
    while (x < target.width()) {
      const Rgb current = working.At(x, y);
      const Rgb wanted = target.At(x, y);
      if (current == wanted) {
        ++x;
        continue;
      }
      int32_t end = x + 1;
      while (end < target.width() && working.At(end, y) == current &&
             target.At(end, y) == wanted) {
        ++end;
      }
      script.ops.emplace_back(DefineOp{Rect(x, y, end, y + 1)});
      script.ops.emplace_back(ModifyOp{current, wanted});
      x = end;
    }
  }
  return script;
}

}  // namespace mmdb
