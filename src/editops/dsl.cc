#include "editops/dsl.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace mmdb {

namespace {

constexpr double kPi = 3.14159265358979323846;

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string token;
  while (std::getline(stream, token, sep)) out.push_back(token);
  return out;
}

bool ParseColor(const std::string& text, Rgb* out) {
  if (text.size() != 7 || text[0] != '#') return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str() + 1, &end, 16);
  if (end == nullptr || *end != '\0') return false;
  *out = Rgb::FromPacked(static_cast<uint32_t>(value));
  return true;
}

Result<std::vector<double>> ParseDoubles(const std::string& text,
                                         size_t expected) {
  const std::vector<std::string> parts = Split(text, ',');
  if (parts.size() != expected) {
    return Status::InvalidArgument("expected " + std::to_string(expected) +
                                   " comma-separated numbers");
  }
  std::vector<double> out;
  for (const std::string& part : parts) {
    char* end = nullptr;
    out.push_back(std::strtod(part.c_str(), &end));
    if (end == part.c_str() || *end != '\0') {
      return Status::InvalidArgument("malformed number '" + part + "'");
    }
  }
  return out;
}

/// Shortest exact double rendering (%.17g trimmed via round-trip).
std::string FormatDouble(double v) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return buf;
}

bool IsPureTranslation(const MutateOp& op, double* dx, double* dy) {
  if (op.m[0] != 1 || op.m[1] != 0 || op.m[3] != 0 || op.m[4] != 1 ||
      op.m[6] != 0 || op.m[7] != 0 || op.m[8] != 1) {
    return false;
  }
  *dx = op.m[2];
  *dy = op.m[5];
  return true;
}

}  // namespace

Result<EditScript> ParseScriptDsl(ObjectId base_id,
                                  const std::string& spec) {
  EditScript script;
  script.base_id = base_id;
  for (const std::string& op_text : Split(spec, ';')) {
    if (op_text.empty()) continue;
    const size_t colon = op_text.find(':');
    const std::string kind = op_text.substr(0, colon);
    const std::string args =
        colon == std::string::npos ? "" : op_text.substr(colon + 1);
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument("op '" + op_text + "': " + why);
    };

    if (kind == "define") {
      MMDB_ASSIGN_OR_RETURN(auto nums, ParseDoubles(args, 4));
      script.ops.emplace_back(DefineOp{
          Rect(static_cast<int32_t>(nums[0]), static_cast<int32_t>(nums[1]),
               static_cast<int32_t>(nums[2]),
               static_cast<int32_t>(nums[3]))});
    } else if (kind == "modify") {
      const std::vector<std::string> colors = Split(args, ':');
      ModifyOp op;
      if (colors.size() != 2 || !ParseColor(colors[0], &op.old_color) ||
          !ParseColor(colors[1], &op.new_color)) {
        return bad("expected modify:#old:#new");
      }
      script.ops.emplace_back(op);
    } else if (kind == "blur") {
      script.ops.emplace_back(CombineOp::BoxBlur());
    } else if (kind == "gauss") {
      script.ops.emplace_back(CombineOp::GaussianBlur());
    } else if (kind == "combine") {
      MMDB_ASSIGN_OR_RETURN(auto weights, ParseDoubles(args, 9));
      CombineOp op;
      for (size_t i = 0; i < 9; ++i) op.weights[i] = weights[i];
      script.ops.emplace_back(op);
    } else if (kind == "scale") {
      const size_t comma = args.find(',');
      if (comma == std::string::npos) {
        MMDB_ASSIGN_OR_RETURN(auto s, ParseDoubles(args, 1));
        if (s[0] <= 0) return bad("scale must be positive");
        script.ops.emplace_back(MutateOp::Scale(s[0], s[0]));
      } else {
        MMDB_ASSIGN_OR_RETURN(auto s, ParseDoubles(args, 2));
        if (s[0] <= 0 || s[1] <= 0) return bad("scale must be positive");
        script.ops.emplace_back(MutateOp::Scale(s[0], s[1]));
      }
    } else if (kind == "translate") {
      MMDB_ASSIGN_OR_RETURN(auto d, ParseDoubles(args, 2));
      script.ops.emplace_back(MutateOp::Translation(d[0], d[1]));
    } else if (kind == "rotate") {
      const std::vector<std::string> parts = Split(args, ',');
      if (parts.size() == 1) {
        MMDB_ASSIGN_OR_RETURN(auto deg, ParseDoubles(args, 1));
        script.ops.emplace_back(
            MutateOp::Rotation(deg[0] * kPi / 180.0, 0.0, 0.0));
      } else {
        MMDB_ASSIGN_OR_RETURN(auto v, ParseDoubles(args, 3));
        script.ops.emplace_back(
            MutateOp::Rotation(v[0] * kPi / 180.0, v[1], v[2]));
      }
    } else if (kind == "matrix") {
      MMDB_ASSIGN_OR_RETURN(auto m, ParseDoubles(args, 9));
      MutateOp op;
      for (size_t i = 0; i < 9; ++i) op.m[i] = m[i];
      script.ops.emplace_back(op);
    } else if (kind == "crop") {
      script.ops.emplace_back(MergeOp{});
    } else if (kind == "merge") {
      MMDB_ASSIGN_OR_RETURN(auto v, ParseDoubles(args, 3));
      if (v[0] < 1) return bad("merge target id must be positive");
      MergeOp op;
      op.target = static_cast<ObjectId>(v[0]);
      op.x = static_cast<int32_t>(v[1]);
      op.y = static_cast<int32_t>(v[2]);
      script.ops.emplace_back(op);
    } else {
      return bad("unknown op kind '" + kind + "'");
    }
  }
  return script;
}

std::string FormatScriptDsl(const EditScript& script) {
  std::string out;
  for (const EditOp& op : script.ops) {
    if (!out.empty()) out += ';';
    std::visit(
        [&out](const auto& concrete) {
          using T = std::decay_t<decltype(concrete)>;
          if constexpr (std::is_same_v<T, DefineOp>) {
            out += "define:" + std::to_string(concrete.region.x0) + "," +
                   std::to_string(concrete.region.y0) + "," +
                   std::to_string(concrete.region.x1) + "," +
                   std::to_string(concrete.region.y1);
          } else if constexpr (std::is_same_v<T, ModifyOp>) {
            out += "modify:" + concrete.old_color.ToHexString() + ":" +
                   concrete.new_color.ToHexString();
          } else if constexpr (std::is_same_v<T, CombineOp>) {
            if (concrete == CombineOp::BoxBlur()) {
              out += "blur";
            } else if (concrete == CombineOp::GaussianBlur()) {
              out += "gauss";
            } else {
              out += "combine:";
              for (size_t i = 0; i < 9; ++i) {
                if (i) out += ',';
                out += FormatDouble(concrete.weights[i]);
              }
            }
          } else if constexpr (std::is_same_v<T, MutateOp>) {
            double dx, dy;
            if (concrete.IsPureScale()) {
              out += "scale:" + FormatDouble(concrete.m[0]) + "," +
                     FormatDouble(concrete.m[4]);
            } else if (IsPureTranslation(concrete, &dx, &dy)) {
              out += "translate:" + FormatDouble(dx) + "," +
                     FormatDouble(dy);
            } else {
              out += "matrix:";
              for (size_t i = 0; i < 9; ++i) {
                if (i) out += ',';
                out += FormatDouble(concrete.m[i]);
              }
            }
          } else {
            // MergeOp.
            if (concrete.IsNullTarget()) {
              out += "crop";
            } else {
              out += "merge:" + std::to_string(*concrete.target) + "," +
                     std::to_string(concrete.x) + "," +
                     std::to_string(concrete.y);
            }
          }
        },
        op);
  }
  return out;
}

}  // namespace mmdb
