#ifndef MMDB_EDITOPS_OPTIMIZE_H_
#define MMDB_EDITOPS_OPTIMIZE_H_

#include "editops/edit_ops.h"

namespace mmdb {

/// Statistics from one optimizer run.
struct OptimizeStats {
  int removed_ops = 0;

  friend bool operator==(const OptimizeStats&, const OptimizeStats&) =
      default;
};

/// Conservative, semantics-preserving simplification of an edit script.
///
/// Stored edit sequences accumulate dead operations as editing sessions
/// are recorded (re-selects, cancelled recolors, identity transforms);
/// since the MMDBMS pays per operation at query time (one rule per op
/// per query), shortening scripts speeds up RBM and BWM alike. Applied
/// rewrites — each provably identity-preserving on the instantiated
/// pixels (the property suite checks this against the editor):
///
///  * drop `Modify` whose old and new colors are equal;
///  * drop `Combine` whose weights sum to zero (defined as a no-op);
///  * drop identity `Mutate` matrices;
///  * of consecutive `Define`s, keep only the last (an unconsumed
///    selection has no effect);
///  * drop trailing `Define`s (the final DR is not part of the image).
///
/// The rewrites never change the bound-widening classification of the
/// script (only bound-widening ops are ever removed), so BWM placement
/// is stable.
EditScript OptimizeScript(const EditScript& script,
                          OptimizeStats* stats = nullptr);

}  // namespace mmdb

#endif  // MMDB_EDITOPS_OPTIMIZE_H_
