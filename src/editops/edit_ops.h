#ifndef MMDB_EDITOPS_EDIT_OPS_H_
#define MMDB_EDITOPS_EDIT_OPS_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "image/color.h"
#include "image/geometry.h"

namespace mmdb {

/// Identifier of an image object stored in the MMDBMS (binary or edited).
using ObjectId = uint64_t;

/// Sentinel for "no object".
inline constexpr ObjectId kInvalidObjectId = 0;

/// The five editing operations of the complete set from Brown, Gruenwald &
/// Speegle (MIS'97) used by the paper: Define, Combine, Modify, Mutate,
/// Merge. Any image transformation can be composed from them.
enum class EditOpType {
  kDefine,
  kCombine,
  kModify,
  kMutate,
  kMerge,
};

/// Returns "Define", "Combine", ... for diagnostics.
std::string_view EditOpTypeName(EditOpType type);

/// Define(DR): selects the group of pixels — the Defined Region — that
/// subsequent operations in the script edit. Clipped to the canvas when
/// applied.
struct DefineOp {
  Rect region;

  friend bool operator==(const DefineOp&, const DefineOp&) = default;
  std::string ToString() const;
};

/// Combine(C1..C9): blurs the DR by replacing each pixel with the weighted
/// average of its 3x3 neighborhood; `weights` are row-major C1..C9.
/// Neighbors outside the canvas clamp to the nearest edge pixel. A zero
/// weight sum makes the operation a no-op.
struct CombineOp {
  std::array<double, 9> weights{};

  /// The uniform 1/9-style box blur (all weights 1).
  static CombineOp BoxBlur();
  /// The 1-2-1 binomial (Gaussian-ish) kernel.
  static CombineOp GaussianBlur();

  double WeightSum() const;
  friend bool operator==(const CombineOp&, const CombineOp&) = default;
  std::string ToString() const;
};

/// Modify(RGBold, RGBnew): recolors every DR pixel whose color is exactly
/// `old_color` to `new_color`.
struct ModifyOp {
  Rgb old_color;
  Rgb new_color;

  friend bool operator==(const ModifyOp&, const ModifyOp&) = default;
  std::string ToString() const;
};

/// Mutate(M11..M33): rearranges DR pixels with a 3x3 homogeneous matrix
/// (row-major `m`; rows are output coordinates). Supports translations,
/// rotations, and scales of items within an image.
///
/// Instantiation semantics (see `Editor`):
///  * If the DR covers the whole canvas and the matrix is a pure axis
///    scale, the canvas is resized to (round(w*M11), round(h*M22)) and
///    resampled (nearest neighbor).
///  * Otherwise the transformed copy of the DR is stamped over the canvas
///    (destination pixels whose preimage falls inside the DR are
///    overwritten); canvas size is unchanged.
struct MutateOp {
  std::array<double, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};

  static MutateOp Identity();
  static MutateOp Translation(double dx, double dy);
  /// Rotation by `radians` about (cx, cy).
  static MutateOp Rotation(double radians, double cx, double cy);
  static MutateOp Scale(double sx, double sy);

  /// Determinant of the upper-left 2x2 block.
  double Det2x2() const;
  /// True iff the upper 2x2 block is orthonormal with |det| == 1 and the
  /// bottom row is (0, 0, 1): a rotation/reflection + translation.
  bool IsRigidBody() const;
  /// True iff the matrix is a pure positive axis-aligned scale with no
  /// translation, rotation, or shear.
  bool IsPureScale() const;
  /// Applies the matrix to (x, y); returns false if the homogeneous w
  /// coordinate is ~0.
  bool Apply(double x, double y, double* out_x, double* out_y) const;
  /// The inverse matrix, if invertible.
  std::optional<MutateOp> Inverse() const;

  friend bool operator==(const MutateOp&, const MutateOp&) = default;
  std::string ToString() const;
};

/// Merge(target, x, y): copies the current DR into `target` with the DR's
/// top-left corner placed at (x, y) in target coordinates. A null target
/// extracts the DR as the new image (x, y ignored). Pasting is clipped to
/// the target canvas.
struct MergeOp {
  /// Target image object; `std::nullopt` is the paper's NULL target.
  std::optional<ObjectId> target;
  int32_t x = 0;
  int32_t y = 0;

  bool IsNullTarget() const { return !target.has_value(); }
  friend bool operator==(const MergeOp&, const MergeOp&) = default;
  std::string ToString() const;
};

/// One editing operation.
using EditOp = std::variant<DefineOp, CombineOp, ModifyOp, MutateOp, MergeOp>;

/// The dynamic type of `op`.
EditOpType GetOpType(const EditOp& op);

/// Human-readable rendering of `op`.
std::string EditOpToString(const EditOp& op);

/// An edited image stored as a sequence of editing operations: a reference
/// to the base (binary) image plus the operations that transform it.
/// This is the space-saving storage format the paper queries without
/// instantiating.
struct EditScript {
  /// The referenced base image (a conventionally stored binary image).
  ObjectId base_id = kInvalidObjectId;
  /// Applied in order to the base image.
  std::vector<EditOp> ops;

  friend bool operator==(const EditScript&, const EditScript&) = default;
  std::string ToString() const;
};

}  // namespace mmdb

#endif  // MMDB_EDITOPS_EDIT_OPS_H_
