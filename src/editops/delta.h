#ifndef MMDB_EDITOPS_DELTA_H_
#define MMDB_EDITOPS_DELTA_H_

#include "editops/edit_ops.h"
#include "image/image.h"
#include "util/result.h"

namespace mmdb {

/// Constructive completeness of the operation set (the paper's [2]
/// proves the five operations "can be combined to perform any image
/// transformation by manipulating a single pixel at a time"):
/// `MakeDeltaScript` builds an edit script that transforms `base` into
/// `target` exactly, so *any* image can be stored as a sequence of
/// editing operations against any same-sized base.
///
/// Construction: for every maximal horizontal run of pixels that share
/// the same (current, wanted) color pair, emit Define(run) + Modify
/// (Modify only recolors pixels matching the old color, and within a
/// run every such pixel wants the change, so the pair is always safe).
/// If the target is smaller it is reached with a Define + Merge(NULL)
/// crop first; other size changes are unsupported (store conventionally
/// instead).
///
/// The script length is proportional to the number of differing runs —
/// tiny for near-duplicates, up to 2 ops per pixel in the worst case —
/// which is exactly the storage trade-off the augmented MMDBMS makes.
Result<EditScript> MakeDeltaScript(ObjectId base_id, const Image& base,
                                   const Image& target);

}  // namespace mmdb

#endif  // MMDB_EDITOPS_DELTA_H_
