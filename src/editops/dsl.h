#ifndef MMDB_EDITOPS_DSL_H_
#define MMDB_EDITOPS_DSL_H_

#include <string>

#include "editops/edit_ops.h"
#include "util/result.h"

namespace mmdb {

/// Human-writable textual format for edit scripts — the interchange form
/// used by the CLI and suitable for config files and logs. Operations
/// are separated by ';':
///
/// ```
/// define:x0,y0,x1,y1        select the Defined Region
/// modify:#rrggbb:#rrggbb    recolor old -> new within the DR
/// blur | gauss              box / binomial Combine kernels
/// combine:w1,...,w9         arbitrary 3x3 Combine weights
/// scale:s | scale:sx,sy     pure axis Mutate scale
/// translate:dx,dy           rigid Mutate translation
/// rotate:deg[,cx,cy]        rigid Mutate rotation (about cx,cy; 0,0
///                           when omitted)
/// matrix:m11,...,m33        arbitrary Mutate matrix (row-major)
/// crop                      Merge with NULL target (extract the DR)
/// merge:target,x,y          Merge into stored image `target` at (x, y)
/// ```
///
/// `FormatScriptDsl` renders every script in canonical tokens
/// (blur/gauss/scale/translate shortcuts where exact, matrix otherwise)
/// such that `ParseScriptDsl(base, FormatScriptDsl(s)) == s` — the
/// round-trip property the tests enforce.
Result<EditScript> ParseScriptDsl(ObjectId base_id, const std::string& spec);

/// Canonical textual rendering (see `ParseScriptDsl`).
std::string FormatScriptDsl(const EditScript& script);

}  // namespace mmdb

#endif  // MMDB_EDITOPS_DSL_H_
