#include "editops/edit_ops.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace mmdb {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

std::string_view EditOpTypeName(EditOpType type) {
  switch (type) {
    case EditOpType::kDefine:
      return "Define";
    case EditOpType::kCombine:
      return "Combine";
    case EditOpType::kModify:
      return "Modify";
    case EditOpType::kMutate:
      return "Mutate";
    case EditOpType::kMerge:
      return "Merge";
  }
  return "Unknown";
}

std::string DefineOp::ToString() const {
  return "Define(" + region.ToString() + ")";
}

CombineOp CombineOp::BoxBlur() {
  CombineOp op;
  op.weights.fill(1.0);
  return op;
}

CombineOp CombineOp::GaussianBlur() {
  CombineOp op;
  op.weights = {1, 2, 1, 2, 4, 2, 1, 2, 1};
  return op;
}

double CombineOp::WeightSum() const {
  double sum = 0.0;
  for (double w : weights) sum += w;
  return sum;
}

std::string CombineOp::ToString() const {
  std::ostringstream os;
  os << "Combine(";
  for (size_t i = 0; i < weights.size(); ++i) {
    if (i) os << ",";
    os << weights[i];
  }
  os << ")";
  return os.str();
}

std::string ModifyOp::ToString() const {
  return "Modify(" + old_color.ToHexString() + "->" +
         new_color.ToHexString() + ")";
}

MutateOp MutateOp::Identity() { return MutateOp(); }

MutateOp MutateOp::Translation(double dx, double dy) {
  MutateOp op;
  op.m = {1, 0, dx, 0, 1, dy, 0, 0, 1};
  return op;
}

MutateOp MutateOp::Rotation(double radians, double cx, double cy) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  // Translate(-cx,-cy) then rotate then translate back, composed.
  MutateOp op;
  op.m = {c, -s, cx - c * cx + s * cy,
          s, c,  cy - s * cx - c * cy,
          0, 0,  1};
  return op;
}

MutateOp MutateOp::Scale(double sx, double sy) {
  MutateOp op;
  op.m = {sx, 0, 0, 0, sy, 0, 0, 0, 1};
  return op;
}

double MutateOp::Det2x2() const { return m[0] * m[4] - m[1] * m[3]; }

bool MutateOp::IsRigidBody() const {
  if (std::fabs(m[6]) > kEps || std::fabs(m[7]) > kEps ||
      std::fabs(m[8] - 1.0) > kEps) {
    return false;
  }
  // Columns of the 2x2 block must be orthonormal.
  const double c0 = m[0] * m[0] + m[3] * m[3];
  const double c1 = m[1] * m[1] + m[4] * m[4];
  const double dot = m[0] * m[1] + m[3] * m[4];
  return std::fabs(c0 - 1.0) < 1e-6 && std::fabs(c1 - 1.0) < 1e-6 &&
         std::fabs(dot) < 1e-6;
}

bool MutateOp::IsPureScale() const {
  return std::fabs(m[1]) < kEps && std::fabs(m[3]) < kEps &&
         std::fabs(m[2]) < kEps && std::fabs(m[5]) < kEps &&
         std::fabs(m[6]) < kEps && std::fabs(m[7]) < kEps &&
         std::fabs(m[8] - 1.0) < kEps && m[0] > kEps && m[4] > kEps;
}

bool MutateOp::Apply(double x, double y, double* out_x, double* out_y) const {
  const double w = m[6] * x + m[7] * y + m[8];
  if (std::fabs(w) < kEps) return false;
  *out_x = (m[0] * x + m[1] * y + m[2]) / w;
  *out_y = (m[3] * x + m[4] * y + m[5]) / w;
  return true;
}

std::optional<MutateOp> MutateOp::Inverse() const {
  const auto& a = m;
  const double det = a[0] * (a[4] * a[8] - a[5] * a[7]) -
                     a[1] * (a[3] * a[8] - a[5] * a[6]) +
                     a[2] * (a[3] * a[7] - a[4] * a[6]);
  if (std::fabs(det) < kEps) return std::nullopt;
  MutateOp inv;
  inv.m = {(a[4] * a[8] - a[5] * a[7]) / det,
           (a[2] * a[7] - a[1] * a[8]) / det,
           (a[1] * a[5] - a[2] * a[4]) / det,
           (a[5] * a[6] - a[3] * a[8]) / det,
           (a[0] * a[8] - a[2] * a[6]) / det,
           (a[2] * a[3] - a[0] * a[5]) / det,
           (a[3] * a[7] - a[4] * a[6]) / det,
           (a[1] * a[6] - a[0] * a[7]) / det,
           (a[0] * a[4] - a[1] * a[3]) / det};
  return inv;
}

std::string MutateOp::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Mutate([%.3g %.3g %.3g; %.3g %.3g %.3g; %.3g %.3g %.3g])",
                m[0], m[1], m[2], m[3], m[4], m[5], m[6], m[7], m[8]);
  return buf;
}

std::string MergeOp::ToString() const {
  if (IsNullTarget()) return "Merge(NULL)";
  return "Merge(target=" + std::to_string(*target) + ", at=(" +
         std::to_string(x) + "," + std::to_string(y) + "))";
}

EditOpType GetOpType(const EditOp& op) {
  return std::visit(
      [](const auto& concrete) -> EditOpType {
        using T = std::decay_t<decltype(concrete)>;
        if constexpr (std::is_same_v<T, DefineOp>) {
          return EditOpType::kDefine;
        } else if constexpr (std::is_same_v<T, CombineOp>) {
          return EditOpType::kCombine;
        } else if constexpr (std::is_same_v<T, ModifyOp>) {
          return EditOpType::kModify;
        } else if constexpr (std::is_same_v<T, MutateOp>) {
          return EditOpType::kMutate;
        } else {
          return EditOpType::kMerge;
        }
      },
      op);
}

std::string EditOpToString(const EditOp& op) {
  return std::visit([](const auto& concrete) { return concrete.ToString(); },
                    op);
}

std::string EditScript::ToString() const {
  std::ostringstream os;
  os << "EditScript(base=" << base_id << ", ops=[";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i) os << ", ";
    os << EditOpToString(ops[i]);
  }
  os << "])";
  return os.str();
}

}  // namespace mmdb
