#ifndef MMDB_MMDB_H_
#define MMDB_MMDB_H_

/// Umbrella header for the mmdb library: a single include that exposes
/// the stable public API a downstream application needs — the database
/// facade, the query types, the serving layer (`QueryService`), and the
/// network client/server speaking the versioned wire protocol.
/// Individual headers remain includable for finer-grained dependencies.
///
/// ```
/// #include "mmdb.h"
/// auto db = mmdb::MultimediaDatabase::Open().value();
/// mmdb::QueryService service(db.get());
/// ```
///
/// Engine internals (the concrete query processors, the storage engine,
/// index structures, edit-script transforms) live behind
/// `mmdb_internal.h`, which code that genuinely embeds the engine must
/// include explicitly. Queries are issued through `QueryService` (or the
/// facade's `RunRange` / `RunConjunctive` / `RunSimilarity`);
/// constructing a processor directly is an internal affordance, not API.
/// (The one-release deprecated passthrough that pulled the internals in
/// by default, and its `MMDB_PUBLIC_API_ONLY` opt-out, are retired: this
/// umbrella is now always the lean surface.)

// Database facade, query types, and the serving layer.
#include "core/admission.h"
#include "core/cancel.h"
#include "core/collection.h"
#include "core/database.h"
#include "core/dominant.h"
#include "core/histogram.h"
#include "core/quantizer.h"
#include "core/query.h"
#include "core/query_parser.h"
#include "core/query_service.h"
#include "core/similarity.h"

// Remote access: versioned wire protocol, blocking client, TCP server.
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/status_codes.h"

// Fault-tolerant sharded corpus: partitioning, scatter-gather
// coordination with hedged retries and partial results, shard health.
#include "shard/backend.h"
#include "shard/coordinator.h"
#include "shard/health.h"
#include "shard/partition.h"
#include "shard/sharded_db.h"

// Image substrate and the editing-operation model (the public face:
// building images and edit scripts to store).
#include "editops/dsl.h"
#include "editops/edit_ops.h"
#include "image/color.h"
#include "image/draw.h"
#include "image/editor.h"
#include "image/geometry.h"
#include "image/image.h"
#include "image/ppm_io.h"

// Feature extraction beyond color.
#include "features/shape.h"
#include "features/signature.h"
#include "features/texture.h"

// Synthetic datasets, augmentation recipes, and workloads.
#include "datasets/augment.h"
#include "datasets/generators.h"
#include "datasets/recipes.h"

// Utilities.
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

#endif  // MMDB_MMDB_H_
