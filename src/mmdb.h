#ifndef MMDB_MMDB_H_
#define MMDB_MMDB_H_

/// Umbrella header for the mmdb library: a single include that exposes
/// the public API a downstream application needs. Individual headers
/// remain includable for finer-grained dependencies.
///
/// ```
/// #include "mmdb.h"
/// auto db = mmdb::MultimediaDatabase::Open().value();
/// ```

// Core database facade, query types, and processors.
#include "core/bounds.h"
#include "core/bwm.h"
#include "core/collection.h"
#include "core/database.h"
#include "core/dominant.h"
#include "core/executor.h"
#include "core/histogram.h"
#include "core/instantiate.h"
#include "core/parallel.h"
#include "core/quantizer.h"
#include "core/query.h"
#include "core/query_parser.h"
#include "core/query_processor.h"
#include "core/query_service.h"
#include "core/rbm.h"
#include "core/rules.h"
#include "core/similarity.h"

// Image substrate and the editing-operation model.
#include "editops/delta.h"
#include "editops/dsl.h"
#include "editops/edit_ops.h"
#include "editops/optimize.h"
#include "editops/serialize.h"
#include "image/color.h"
#include "image/draw.h"
#include "image/editor.h"
#include "image/geometry.h"
#include "image/image.h"
#include "image/ppm_io.h"

// Indexing.
#include "index/histogram_index.h"
#include "index/indexed_bwm.h"
#include "index/rtree.h"

// Feature extraction beyond color.
#include "features/shape.h"
#include "features/signature.h"
#include "features/texture.h"

// Synthetic datasets, augmentation recipes, and workloads.
#include "datasets/augment.h"
#include "datasets/generators.h"
#include "datasets/recipes.h"

// Storage engine (only needed when embedding the disk backend directly).
#include "storage/catalog.h"
#include "storage/object_store.h"

// Utilities.
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

#endif  // MMDB_MMDB_H_
