#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

namespace mmdb::obs {

namespace internal {

size_t ShardIndex() {
  // Hash the thread id once per thread; consecutive thread ids hash to
  // spread shards even when ids are sequential.
  thread_local const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShardCount;
  return index;
}

}  // namespace internal

namespace {

/// Canonical label key: sorted `k="escaped v"` pairs joined by commas.
/// Doubles as the exposition body between the braces.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string CanonicalLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ',';
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += '"';
  }
  return out;
}

/// Formats a double the way Prometheus clients do: shortest round-trip
/// representation, integral values without a useless mantissa.
std::string FormatValue(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value > -1e15 && value < 1e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  char buffer[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteJsonLabels(std::ostream& os, const Labels& labels) {
  os << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) os << ',';
    first = false;
    os << '"' << EscapeJson(key) << "\":\"" << EscapeJson(value) << '"';
  }
  os << '}';
}

/// JSON numbers must be finite; histogram bounds never are +Inf here but
/// sums of garbage could be — clamp to strings prometheus-style? Keep it
/// simple: non-finite values are serialized as 0 (they cannot occur from
/// the recording API, which only ever adds finite durations).
double Finite(double v) { return v == v && v < 1e300 && v > -1e300 ? v : 0.0; }

}  // namespace

const std::vector<double>& Histogram::DefaultLatencyBounds() {
  static const std::vector<double>* const kBounds = new std::vector<double>{
      1e-6,   2.5e-6, 5e-6,  1e-5,   2.5e-5, 5e-5,  1e-4,
      2.5e-4, 5e-4,   1e-3,  2.5e-3, 5e-3,   1e-2,  2.5e-2,
      5e-2,   1e-1,   2.5e-1, 5e-1,  1.0,    2.5};
  return *kBounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? DefaultLatencyBounds() : std::move(bounds)),
      shards_(kShardCount) {
  const size_t buckets = bounds_.size() + 1;  // +Inf overflow bucket.
  for (Shard& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<int64_t>[]>(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::RecordImpl(double value) {
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[internal::ShardIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(shard.sum, value);
  internal::AtomicMax(shard.max, value);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
  }
  return snap;
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const int64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (b >= bounds.size()) return max;  // Overflow bucket.
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      const double upper = bounds[b];
      const double within =
          (rank - static_cast<double>(cumulative)) / in_bucket;
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return max;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (size_t b = 0; b < bounds_.size() + 1; ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.max.store(0.0, std::memory_order_relaxed);
  }
}

Registry& Registry::Default() {
  static Registry* const registry = new Registry();  // Never destroyed.
  return *registry;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help,
                              Labels labels) {
  const std::string key = CanonicalLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  Family<Counter>& family = counters_[std::string(name)];
  if (family.help.empty()) family.help = std::string(help);
  auto [it, inserted] = family.instruments.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Counter>();
    family.labels[key] = std::move(labels);
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help,
                          Labels labels) {
  const std::string key = CanonicalLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  Family<Gauge>& family = gauges_[std::string(name)];
  if (family.help.empty()) family.help = std::string(help);
  auto [it, inserted] = family.instruments.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Gauge>();
    family.labels[key] = std::move(labels);
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view help, Labels labels,
                                  std::vector<double> bounds) {
  const std::string key = CanonicalLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  Family<Histogram>& family = histograms_[std::string(name)];
  if (family.help.empty()) family.help = std::string(help);
  auto [it, inserted] = family.instruments.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Histogram>(std::move(bounds));
    family.labels[key] = std::move(labels);
  }
  return it->second.get();
}

void Registry::WriteText(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : counters_) {
    os << "# HELP " << name << ' ' << family.help << '\n';
    os << "# TYPE " << name << " counter\n";
    for (const auto& [key, counter] : family.instruments) {
      os << name;
      if (!key.empty()) os << '{' << key << '}';
      os << ' ' << counter->Value() << '\n';
    }
  }
  for (const auto& [name, family] : gauges_) {
    os << "# HELP " << name << ' ' << family.help << '\n';
    os << "# TYPE " << name << " gauge\n";
    for (const auto& [key, gauge] : family.instruments) {
      os << name;
      if (!key.empty()) os << '{' << key << '}';
      os << ' ' << FormatValue(gauge->Value()) << '\n';
    }
  }
  for (const auto& [name, family] : histograms_) {
    os << "# HELP " << name << ' ' << family.help << '\n';
    os << "# TYPE " << name << " histogram\n";
    for (const auto& [key, histogram] : family.instruments) {
      const Histogram::Snapshot snap = histogram->Snap();
      int64_t cumulative = 0;
      for (size_t b = 0; b <= snap.bounds.size(); ++b) {
        cumulative += snap.counts[b];
        os << name << "_bucket{";
        if (!key.empty()) os << key << ',';
        os << "le=\"";
        if (b == snap.bounds.size()) {
          os << "+Inf";
        } else {
          os << FormatValue(snap.bounds[b]);
        }
        os << "\"} " << cumulative << '\n';
      }
      os << name << "_sum";
      if (!key.empty()) os << '{' << key << '}';
      os << ' ' << FormatValue(snap.sum) << '\n';
      os << name << "_count";
      if (!key.empty()) os << '{' << key << '}';
      os << ' ' << snap.count << '\n';
    }
  }
}

void Registry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << '{';
  os << "\"counters\":[";
  bool first = true;
  for (const auto& [name, family] : counters_) {
    for (const auto& [key, counter] : family.instruments) {
      if (!first) os << ',';
      first = false;
      os << "{\"name\":\"" << EscapeJson(name) << "\",\"labels\":";
      WriteJsonLabels(os, family.labels.at(key));
      os << ",\"value\":" << counter->Value() << '}';
    }
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& [name, family] : gauges_) {
    for (const auto& [key, gauge] : family.instruments) {
      if (!first) os << ',';
      first = false;
      os << "{\"name\":\"" << EscapeJson(name) << "\",\"labels\":";
      WriteJsonLabels(os, family.labels.at(key));
      os << ",\"value\":" << FormatValue(Finite(gauge->Value())) << '}';
    }
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& [name, family] : histograms_) {
    for (const auto& [key, histogram] : family.instruments) {
      if (!first) os << ',';
      first = false;
      const Histogram::Snapshot snap = histogram->Snap();
      os << "{\"name\":\"" << EscapeJson(name) << "\",\"labels\":";
      WriteJsonLabels(os, family.labels.at(key));
      os << ",\"count\":" << snap.count
         << ",\"sum\":" << FormatValue(Finite(snap.sum))
         << ",\"max\":" << FormatValue(Finite(snap.max))
         << ",\"p50\":" << FormatValue(Finite(snap.Percentile(0.5)))
         << ",\"p95\":" << FormatValue(Finite(snap.Percentile(0.95)))
         << ",\"buckets\":[";
      for (size_t b = 0; b <= snap.bounds.size(); ++b) {
        if (b > 0) os << ',';
        os << "{\"le\":";
        if (b == snap.bounds.size()) {
          os << "\"+Inf\"";
        } else {
          os << FormatValue(snap.bounds[b]);
        }
        os << ",\"count\":" << snap.counts[b] << '}';
      }
      os << "]}";
    }
  }
  os << "]}";
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : counters_) {
    for (auto& [key, counter] : family.instruments) counter->Reset();
  }
  for (auto& [name, family] : gauges_) {
    for (auto& [key, gauge] : family.instruments) gauge->Reset();
  }
  for (auto& [name, family] : histograms_) {
    for (auto& [key, histogram] : family.instruments) histogram->Reset();
  }
}

}  // namespace mmdb::obs
