#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

namespace mmdb::obs {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t ThreadHash() {
  thread_local const uint64_t hash = static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return hash;
}

/// Innermost open span on this thread (lexical parent for new spans).
thread_local Span* g_current_span = nullptr;
/// Its id, mirrored so CurrentSpanId needs no Span internals.
thread_local uint64_t g_current_span_id = 0;

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::atomic<bool> Tracer::enabled_{true};
std::atomic<bool> Tracer::detail_enabled_{false};

Tracer::Tracer(Registry* registry, size_t ring_capacity)
    : registry_(registry != nullptr ? registry : &Registry::Default()),
      ring_capacity_(ring_capacity > 0 ? ring_capacity : 1) {
  ring_.reserve(ring_capacity_);
}

Tracer& Tracer::Default() {
  static Tracer* const tracer = new Tracer();  // Never destroyed.
  return *tracer;
}

SpanCategory* Tracer::Intern(std::string_view name, SpanDetail detail) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& category : categories_) {
    if (category->name() == name) return category.get();
  }
  Histogram* seconds = registry_->GetHistogram(
      "mmdb_span_seconds", "Wall time per traced span, by span site.",
      {{"span", std::string(name)}});
  categories_.push_back(std::unique_ptr<SpanCategory>(
      new SpanCategory(this, std::string(name), detail, seconds)));
  return categories_.back().get();
}

void Tracer::SetCaptureEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  capture_ = enabled;
}

void Tracer::Finish(const SpanRecord& record, SpanCategory* category) {
  category->seconds_->Record(static_cast<double>(record.duration_ns) * 1e-9);
  std::lock_guard<std::mutex> lock(mu_);
  if (!capture_) return;
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(record);
  } else {
    ring_[ring_next_] = record;
    ring_next_ = (ring_next_ + 1) % ring_capacity_;
  }
}

std::vector<SpanRecord> Tracer::RecentSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // ring_next_ is the oldest entry once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::ClearRecent() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_next_ = 0;
}

void Tracer::DumpRecentJson(std::ostream& os) const {
  const std::vector<SpanRecord> spans = RecentSpans();
  os << '[';
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) os << ',';
    const SpanRecord& span = spans[i];
    os << "{\"id\":" << span.id << ",\"parent_id\":" << span.parent_id
       << ",\"name\":\"" << EscapeJson(span.name) << "\",\"start_ns\":"
       << span.start_ns << ",\"duration_ns\":" << span.duration_ns
       << ",\"thread\":" << span.thread_hash << '}';
  }
  os << ']';
}

std::vector<Tracer::CategorySummary> Tracer::Summaries() const {
  std::vector<CategorySummary> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(categories_.size());
    for (const auto& category : categories_) {
      CategorySummary summary;
      summary.name = category->name();
      summary.seconds = category->seconds_->Snap();
      out.push_back(std::move(summary));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CategorySummary& a, const CategorySummary& b) {
              return a.name < b.name;
            });
  return out;
}

uint64_t Tracer::CurrentSpanId() { return g_current_span_id; }

void Span::Start(SpanCategory* category, uint64_t parent_id) {
  if (category == nullptr || !Tracer::Enabled()) return;
  if (category->detail() == SpanDetail::kFine && !Tracer::DetailEnabled()) {
    return;
  }
  category_ = category;
  record_.id = category->tracer_->next_span_id_.fetch_add(
      1, std::memory_order_relaxed);
  record_.parent_id =
      parent_id == kInheritParent ? g_current_span_id : parent_id;
  record_.name = category->name().c_str();
  record_.thread_hash = ThreadHash();
  prev_ = g_current_span;
  g_current_span = this;
  g_current_span_id = record_.id;
  record_.start_ns = NowNanos();  // Last: exclude setup from the timing.
}

void Span::FinishImpl() {
  record_.duration_ns = NowNanos() - record_.start_ns;
  g_current_span = prev_;
  g_current_span_id = prev_ != nullptr ? prev_->record_.id : 0;
  category_->tracer_->Finish(record_, category_);
}

}  // namespace mmdb::obs
