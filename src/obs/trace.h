#ifndef MMDB_OBS_TRACE_H_
#define MMDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace mmdb::obs {

class Tracer;

/// How expensive a span site is allowed to be.
enum class SpanDetail {
  /// Always timed: per-batch, per-query, per-I/O spans whose cost is
  /// negligible against the work they wrap.
  kCoarse,
  /// Per-item spans on the query hot path (one per accepted BWM cluster,
  /// one per BOUNDS rule walk). Only timed while
  /// `Tracer::SetDetailEnabled(true)` is in effect, so the default
  /// configuration keeps the BWM hot path within the <5% overhead budget
  /// (see docs/OBSERVABILITY.md and bench_obs_overhead).
  kFine,
};

/// One interned span site: a stable name plus the registry histogram its
/// durations aggregate into. Obtained once per call site via
/// `Tracer::Intern` and cached (function-local static); never deleted.
class SpanCategory {
 public:
  const std::string& name() const { return name_; }
  SpanDetail detail() const { return detail_; }

 private:
  friend class Tracer;
  friend class Span;
  SpanCategory(Tracer* tracer, std::string name, SpanDetail detail,
               Histogram* seconds)
      : tracer_(tracer),
        name_(std::move(name)),
        detail_(detail),
        seconds_(seconds) {}

  Tracer* tracer_;
  const std::string name_;
  const SpanDetail detail_;
  Histogram* seconds_;
};

/// One finished span, as captured in the tracer's ring buffer.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;       ///< 0 = root.
  const char* name = "";        ///< Points at the interned category name.
  int64_t start_ns = 0;         ///< steady_clock nanos at span start.
  int64_t duration_ns = 0;
  uint64_t thread_hash = 0;     ///< Hashed std::thread::id.
};

/// Span collector: interns span sites, aggregates every span's wall time
/// into per-site registry histograms (`mmdb_span_seconds{span=...}`), and
/// keeps a fixed-capacity ring of recent spans dumpable as JSON.
///
/// Thread safety: `Intern` and ring operations are mutex-guarded (cold /
/// per-span-finish); the enabled flags are relaxed atomics read on every
/// span start.
class Tracer {
 public:
  explicit Tracer(Registry* registry = nullptr, size_t ring_capacity = 4096);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The tracer every built-in span site uses, aggregating into
  /// `Registry::Default()`. Never destroyed.
  static Tracer& Default();

  /// Returns the category for `name`, creating it on first use. Stable
  /// pointer; cache it at the call site.
  SpanCategory* Intern(std::string_view name,
                       SpanDetail detail = SpanDetail::kCoarse);

  /// Master switch: false makes every span (coarse and fine) a no-op.
  static void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  static bool Enabled() {
    return kObsEnabled && enabled_.load(std::memory_order_relaxed);
  }

  /// Opt-in switch for `SpanDetail::kFine` sites (per-cluster-accept and
  /// per-rule-walk timing). Off by default — see SpanDetail::kFine.
  static void SetDetailEnabled(bool enabled) {
    detail_enabled_.store(enabled, std::memory_order_relaxed);
  }
  static bool DetailEnabled() {
    return detail_enabled_.load(std::memory_order_relaxed);
  }

  /// Whether finished spans are copied into the ring (on by default; the
  /// per-site histograms aggregate either way).
  void SetCaptureEnabled(bool enabled);

  /// The captured spans, oldest first.
  std::vector<SpanRecord> RecentSpans() const;

  /// Drops all captured spans (tests, and the CLI between workloads).
  void ClearRecent();

  /// Dumps the captured spans as a JSON array of
  /// {"id","parent_id","name","start_ns","duration_ns","thread"} objects.
  void DumpRecentJson(std::ostream& os) const;

  /// Aggregate view over every interned site, alphabetical by name.
  struct CategorySummary {
    std::string name;
    Histogram::Snapshot seconds;
  };
  std::vector<CategorySummary> Summaries() const;

  /// The id of the span currently open on this thread (0 if none) — pass
  /// it to `Span`'s explicit-parent constructor to stitch parentage
  /// across a thread handoff (e.g. executor dispatch).
  static uint64_t CurrentSpanId();

 private:
  friend class Span;

  void Finish(const SpanRecord& record, SpanCategory* category);

  static std::atomic<bool> enabled_;
  static std::atomic<bool> detail_enabled_;

  Registry* registry_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpanCategory>> categories_;
  size_t ring_capacity_;
  bool capture_ = true;
  std::vector<SpanRecord> ring_;
  size_t ring_next_ = 0;
  std::atomic<uint64_t> next_span_id_{1};
};

/// RAII span: times the enclosed scope and reports to the category's
/// tracer on destruction. Parentage follows lexical nesting on one thread
/// (a thread-local stack); use the explicit-parent constructor to link a
/// span to work that started on another thread.
///
/// A null category or a disabled tracer makes the span a complete no-op,
/// and under MMDB_OBS_OFF the whole class compiles away to nothing.
class Span {
 public:
  explicit Span(SpanCategory* category) : Span(category, kInheritParent) {}

  /// `parent_id` overrides the thread-local parent (0 = root).
  Span(SpanCategory* category, uint64_t parent_id) {
    if constexpr (kObsEnabled) {
      Start(category, parent_id);
    } else {
      (void)category;
      (void)parent_id;
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if constexpr (kObsEnabled) {
      if (category_ != nullptr) FinishImpl();
    }
  }

  /// This span's id (0 when the span is disabled); hand it to spans on
  /// other threads as their explicit parent.
  uint64_t id() const { return record_.id; }

 private:
  static constexpr uint64_t kInheritParent = ~uint64_t{0};

  void Start(SpanCategory* category, uint64_t parent_id);
  void FinishImpl();

  SpanCategory* category_ = nullptr;  ///< Null when disabled.
  Span* prev_ = nullptr;              ///< Enclosing span on this thread.
  SpanRecord record_;
};

}  // namespace mmdb::obs

#endif  // MMDB_OBS_TRACE_H_
