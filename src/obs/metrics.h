#ifndef MMDB_OBS_METRICS_H_
#define MMDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mmdb::obs {

/// Compile-time observability switch. Building with -DMMDB_OBS_OFF (the
/// `MMDB_OBS_OFF` CMake option) turns every hot-path recording call —
/// `Counter::Increment`, `Gauge::Set`, `Histogram::Record`, `Span`
/// construction — into an inline no-op, for measuring the instrumentation
/// tax (bench_obs_overhead) or shaving the last percent off a production
/// build. Registration and exposition still work; they just report zeros.
#ifdef MMDB_OBS_OFF
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

/// Metric labels, e.g. {{"method", "bwm"}}. Order-insensitive: the
/// registry canonicalizes by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Shards per instrument. Concurrent recorders hash their thread onto a
/// shard so the fast path is one relaxed atomic RMW on a cache line that
/// is rarely contended — no lock, TSan-clean.
inline constexpr size_t kShardCount = 8;

namespace internal {

/// Stable per-thread shard index in [0, kShardCount).
size_t ShardIndex();

struct alignas(64) PaddedCount {
  std::atomic<int64_t> value{0};
};

/// Lock-free add on an atomic double (no fetch_add for doubles pre-C++20
/// on all toolchains; CAS loop is portable and contends only within one
/// shard).
inline void AtomicAdd(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Lock-free max on an atomic double.
inline void AtomicMax(std::atomic<double>& target, double candidate) {
  double observed = target.load(std::memory_order_relaxed);
  while (observed < candidate &&
         !target.compare_exchange_weak(observed, candidate,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// Monotonically increasing count. Name convention: `mmdb_*_total`.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
    if constexpr (kObsEnabled) {
      shards_[internal::ShardIndex()].value.fetch_add(
          delta, std::memory_order_relaxed);
    } else {
      (void)delta;
    }
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const internal::PaddedCount& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes the counter (tests and `Registry::Reset`).
  void Reset() {
    for (internal::PaddedCount& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  internal::PaddedCount shards_[kShardCount];
};

/// Last-write-wins instantaneous value (quarantine size, scrub results).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) {
    if constexpr (kObsEnabled) {
      value_.store(value, std::memory_order_relaxed);
    } else {
      (void)value;
    }
  }

  void Add(double delta) {
    if constexpr (kObsEnabled) {
      internal::AtomicAdd(value_, delta);
    } else {
      (void)delta;
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram. Buckets are cumulative upper bounds in
/// ascending order with an implicit +Inf bucket appended, exactly the
/// Prometheus histogram model. Recording is a bucket lookup plus four
/// relaxed atomic operations on the caller's shard — concurrent recorders
/// never block each other or a snapshot reader.
class Histogram {
 public:
  /// Buckets suiting query/IO latencies in seconds: 1µs .. 2.5s.
  static const std::vector<double>& DefaultLatencyBounds();

  /// `bounds` must be strictly ascending; empty selects the default
  /// latency bounds.
  explicit Histogram(std::vector<double> bounds = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value) {
    if constexpr (kObsEnabled) {
      RecordImpl(value);
    } else {
      (void)value;
    }
  }

  /// A consistent-enough copy for reporting: each shard is read with
  /// relaxed loads, so a snapshot taken while recorders are running may
  /// be mid-update (count and sum can disagree by in-flight records), but
  /// it never tears a value and a quiescent snapshot is exact.
  struct Snapshot {
    std::vector<double> bounds;      ///< Upper bounds, ascending (no +Inf).
    std::vector<int64_t> counts;     ///< Per-bucket counts; size bounds+1.
    int64_t count = 0;               ///< Total records.
    double sum = 0.0;                ///< Sum of recorded values.
    double max = 0.0;                ///< Largest recorded value.

    double mean() const { return count > 0 ? sum / count : 0.0; }
    /// Prometheus-style quantile estimate (linear interpolation within
    /// the owning bucket; the overflow bucket reports `max`).
    double Percentile(double q) const;
  };
  Snapshot Snap() const;

  const std::vector<double>& bounds() const { return bounds_; }

  void Reset();

 private:
  void RecordImpl(double value);

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<int64_t>[]> buckets;
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// A process-wide, thread-safe named-instrument registry.
///
/// `Get*` registers on first use and returns the same pointer for the
/// same (name, labels) forever after — instruments are never deleted, so
/// call sites cache the pointer and record lock-free. Instruments sharing
/// a name form one family (same help text and type) and are exposed
/// together. Names must not be reused across instrument types.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The default registry every built-in instrument lives in. Never
  /// destroyed (spans can finish during static teardown).
  static Registry& Default();

  Counter* GetCounter(std::string_view name, std::string_view help,
                      Labels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  Labels labels = {});
  /// Empty `bounds` selects `Histogram::DefaultLatencyBounds()`.
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          Labels labels = {},
                          std::vector<double> bounds = {});

  /// Prometheus text exposition format 0.0.4 (`# HELP` / `# TYPE` plus
  /// samples; histograms expose `_bucket`/`_sum`/`_count` series).
  void WriteText(std::ostream& os) const;

  /// The same data as one JSON document:
  /// {"counters":[...],"gauges":[...],"histograms":[...]}.
  void WriteJson(std::ostream& os) const;

  /// Zeroes every registered instrument (registrations survive).
  void Reset();

 private:
  template <typename T>
  struct Family {
    std::string help;
    /// Keyed by canonical label string; values never move (unique_ptr).
    std::map<std::string, std::unique_ptr<T>> instruments;
    /// Original labels per canonical key, for structured exposition.
    std::map<std::string, Labels> labels;
  };

  mutable std::mutex mu_;
  std::map<std::string, Family<Counter>, std::less<>> counters_;
  std::map<std::string, Family<Gauge>, std::less<>> gauges_;
  std::map<std::string, Family<Histogram>, std::less<>> histograms_;
};

}  // namespace mmdb::obs

#endif  // MMDB_OBS_METRICS_H_
