#include "shard/sharded_db.h"

#include <algorithm>
#include <string>

#include "storage/catalog.h"

namespace mmdb::shard {

ObjectId ShardCatalog::GlobalOf(size_t shard, ObjectId local_id) const {
  if (shard >= local_to_global_.size()) return kInvalidObjectId;
  if (local_id < catalog_keys::kFirstObjectId) return kInvalidObjectId;
  const size_t index =
      static_cast<size_t>(local_id - catalog_keys::kFirstObjectId);
  const std::vector<ObjectId>& table = local_to_global_[shard];
  if (index >= table.size()) return kInvalidObjectId;
  return table[index];
}

bool ShardCatalog::IsEdited(ObjectId global_id) const {
  if (global_id < catalog_keys::kFirstObjectId) return false;
  const size_t index =
      static_cast<size_t>(global_id - catalog_keys::kFirstObjectId);
  return index < kind_.size() && kind_[index] == 1;
}

Result<std::unique_ptr<ShardedDatabase>> ShardedDatabase::Open(
    ShardedDatabaseOptions options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("a sharded database needs >= 1 shard");
  }
  if (!options.shard_envs.empty() &&
      options.shard_envs.size() != options.shards) {
    return Status::InvalidArgument(
        "shard_envs carries " + std::to_string(options.shard_envs.size()) +
        " entries for " + std::to_string(options.shards) + " shards");
  }
  auto db = std::unique_ptr<ShardedDatabase>(new ShardedDatabase());
  db->shards_.reserve(options.shards);
  for (size_t i = 0; i < options.shards; ++i) {
    DatabaseOptions shard_options = options.shard_options;
    if (!shard_options.path.empty()) {
      shard_options.path += ".shard" + std::to_string(i);
    }
    if (!options.shard_envs.empty()) {
      shard_options.env = options.shard_envs[i];
    }
    MMDB_ASSIGN_OR_RETURN(std::unique_ptr<MultimediaDatabase> store,
                          MultimediaDatabase::Open(std::move(shard_options)));
    db->shards_.push_back(std::move(store));
  }
  db->catalog_.local_to_global_.resize(options.shards);
  db->catalog_.ghost_counts_.assign(options.shards, 0);
  db->ghosts_.resize(options.shards);
  db->next_global_ = catalog_keys::kFirstObjectId;
  return db;
}

Status ShardedDatabase::RecordLocal(size_t shard, ObjectId local_id,
                                    ObjectId global_id) {
  std::vector<ObjectId>& table = catalog_.local_to_global_[shard];
  if (local_id < catalog_keys::kFirstObjectId ||
      static_cast<size_t>(local_id - catalog_keys::kFirstObjectId) !=
          table.size()) {
    // Each shard assigns local ids sequentially from kFirstObjectId, so
    // every registration appends; anything else means the shard's store
    // and this catalog have diverged.
    return Status::Internal(
        "shard " + std::to_string(shard) + " assigned local id " +
        std::to_string(local_id) + ", catalog expected " +
        std::to_string(table.size() + catalog_keys::kFirstObjectId));
  }
  table.push_back(global_id);
  return Status::OK();
}

Result<ShardedDatabase::Home> ShardedDatabase::HomeOf(
    ObjectId global_id) const {
  if (global_id >= catalog_keys::kFirstObjectId) {
    const size_t index =
        static_cast<size_t>(global_id - catalog_keys::kFirstObjectId);
    if (index < home_.size()) return home_[index];
  }
  return Status::NotFound("no image with id " + std::to_string(global_id));
}

Result<size_t> ShardedDatabase::HomeShard(ObjectId global_id) const {
  MMDB_ASSIGN_OR_RETURN(Home home, HomeOf(global_id));
  return static_cast<size_t>(home.shard);
}

Result<ObjectId> ShardedDatabase::InsertBinaryImage(const Image& image) {
  const ObjectId global_id = next_global_;
  const size_t shard = ShardOf(global_id, shards_.size());
  MMDB_ASSIGN_OR_RETURN(ObjectId local_id,
                        shards_[shard]->InsertBinaryImage(image));
  MMDB_RETURN_IF_ERROR(RecordLocal(shard, local_id, global_id));
  catalog_.kind_.push_back(0);
  home_.push_back(Home{static_cast<uint32_t>(shard), local_id});
  ++next_global_;
  return global_id;
}

Result<ObjectId> ShardedDatabase::LocalTargetOn(size_t shard,
                                                ObjectId global_id) {
  MMDB_ASSIGN_OR_RETURN(Home home, HomeOf(global_id));
  if (home.shard == shard) return home.local_id;
  auto ghost = ghosts_[shard].find(global_id);
  if (ghost != ghosts_[shard].end()) return ghost->second;
  if (catalog_.IsEdited(global_id)) {
    // Replicating an edited target would mean replicating its whole
    // script chain (base, its own merge targets, ...) — out of scope;
    // the datasets only merge into binary images.
    return Status::InvalidArgument(
        "Merge target " + std::to_string(global_id) +
        " is an edited image on shard " + std::to_string(home.shard) +
        "; cross-shard Merge targets must be binary images");
  }
  // First cross-shard reference to this binary image: ghost-replicate
  // its pixels onto the referencing shard, aliased to the same global
  // id. The shard's rule engine now resolves the target locally exactly
  // as a single store would; the coordinator deduplicates the id and
  // compensates the scan counters (see ShardCatalog::GhostCount).
  MMDB_ASSIGN_OR_RETURN(Image pixels,
                        shards_[home.shard]->GetImage(home.local_id));
  MMDB_ASSIGN_OR_RETURN(ObjectId ghost_local,
                        shards_[shard]->InsertBinaryImage(pixels));
  MMDB_RETURN_IF_ERROR(RecordLocal(shard, ghost_local, global_id));
  ghosts_[shard].emplace(global_id, ghost_local);
  ++catalog_.ghost_counts_[shard];
  return ghost_local;
}

Result<ObjectId> ShardedDatabase::InsertEditedImage(const EditScript& script) {
  MMDB_ASSIGN_OR_RETURN(Home base, HomeOf(script.base_id));
  if (catalog_.IsEdited(script.base_id)) {
    return Status::InvalidArgument(
        "base image " + std::to_string(script.base_id) +
        " is itself an edited image; a script's base must be a "
        "conventionally stored binary image");
  }
  const size_t shard = base.shard;
  EditScript local_script = script;
  local_script.base_id = base.local_id;
  for (EditOp& op : local_script.ops) {
    MergeOp* merge = std::get_if<MergeOp>(&op);
    if (merge == nullptr || !merge->target.has_value()) continue;
    MMDB_ASSIGN_OR_RETURN(ObjectId local_target,
                          LocalTargetOn(shard, *merge->target));
    merge->target = local_target;
  }
  const ObjectId global_id = next_global_;
  MMDB_ASSIGN_OR_RETURN(ObjectId local_id,
                        shards_[shard]->InsertEditedImage(local_script));
  MMDB_RETURN_IF_ERROR(RecordLocal(shard, local_id, global_id));
  catalog_.kind_.push_back(1);
  home_.push_back(Home{static_cast<uint32_t>(shard), local_id});
  ++next_global_;
  return global_id;
}

Result<Image> ShardedDatabase::GetImage(ObjectId global_id) const {
  MMDB_ASSIGN_OR_RETURN(Home home, HomeOf(global_id));
  return shards_[home.shard]->GetImage(home.local_id);
}

Status MirrorDatabase(const MultimediaDatabase& source,
                      ShardedDatabase* target) {
  const AugmentedCollection& collection = source.collection();
  std::vector<ObjectId> ids;
  ids.reserve(collection.BinaryCount() + collection.EditedCount());
  ids.insert(ids.end(), collection.binary_ids().begin(),
             collection.binary_ids().end());
  ids.insert(ids.end(), collection.edited_ids().begin(),
             collection.edited_ids().end());
  std::sort(ids.begin(), ids.end());
  for (ObjectId id : ids) {
    Result<ObjectId> assigned = Status::Internal("unreached");
    if (const BinaryImageInfo* binary = collection.FindBinary(id)) {
      (void)binary;
      MMDB_ASSIGN_OR_RETURN(Image pixels, source.GetImage(id));
      assigned = target->InsertBinaryImage(pixels);
    } else if (const EditedImageInfo* edited = collection.FindEdited(id)) {
      assigned = target->InsertEditedImage(edited->script);
    } else {
      return Status::Internal("catalog lists id " + std::to_string(id) +
                              " but neither side resolves it");
    }
    MMDB_RETURN_IF_ERROR(assigned.status());
    if (*assigned != id) {
      // Sequential reassignment only reproduces the source ids when the
      // source id space is dense (no deletions). Fail loudly instead of
      // silently shifting every id after the gap.
      return Status::Internal(
          "id drift while mirroring: source id " + std::to_string(id) +
          " became " + std::to_string(*assigned) +
          " (source has gaps — mirror only freshly built corpora)");
    }
  }
  return Status::OK();
}

}  // namespace mmdb::shard
