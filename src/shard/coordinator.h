#ifndef MMDB_SHARD_COORDINATOR_H_
#define MMDB_SHARD_COORDINATOR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/executor.h"
#include "core/query_service.h"
#include "shard/backend.h"
#include "shard/health.h"
#include "shard/sharded_db.h"
#include "util/result.h"

namespace mmdb::shard {

/// Fan-out policy.
struct CoordinatorOptions {
  /// Fixed hedge delay; 0 prices it per shard from the shard's observed
  /// p99 latency (`ShardHealth::HedgeDelaySeconds`, which starts at
  /// `health.default_hedge_delay_seconds` until history accumulates).
  double hedge_delay_seconds = 0.0;
  /// Total attempts per shard per query (primary + hedges/retries).
  int max_attempts_per_shard = 2;
  /// Fraction of the query deadline the coordinator keeps for itself
  /// (merge + bookkeeping); each shard gets the rest as its budget.
  double merge_reserve_fraction = 0.1;
  /// Per-shard breaker / latency-tracking knobs.
  ShardHealthOptions health;
  /// Worker threads for dispatch. 0 sizes to 2 × shard count (every
  /// shard's primary plus one hedge can run concurrently). Must be >= 1
  /// effective — a stalled shard must never be able to block another
  /// shard's dispatch.
  int threads = 0;
};

/// One shard's typed failure inside a degraded answer.
struct ShardError {
  uint32_t shard = 0;
  Status status = Status::OK();
};

/// A scatter-gather answer: the merged result plus its completeness.
/// `complete == false` means one or more shards failed inside the
/// failure envelope; their typed errors are itemized and `result` holds
/// the full answers of every surviving shard — degraded, never silently
/// truncated.
struct ShardedResult {
  QueryResult result;
  bool complete = true;
  std::vector<ShardError> shard_errors;
};

/// The scatter-gather query coordinator over a partitioned corpus.
///
/// `Execute` fans one `QueryRequest` (any shape, any method — queries
/// carry no object ids, so the request forwards verbatim) to every
/// shard's backend, then merges the global-id answers back into exactly
/// what a single store holding the whole corpus would return:
///
///  * ids are deduplicated (ghost Merge-target copies answer on two
///    shards) and emitted in the canonical single-store order — binary
///    images ascending, then edited ascending (`kPlanned` guarantees
///    set identity only, like the single store itself).
///  * work counters are summed, then compensated for ghost double
///    scanning (see `MergeStatsCompensation` in the .cc).
///  * a similarity query runs with per-shard k inflated by the shard's
///    ghost count, and the global top-k cutoff is recomputed over the
///    deduplicated candidates — bit-identical intervals to the single
///    store.
///
/// The failure envelope (docs/SHARDING.md):
///
///  * each shard's budget is `Deadline::Budget(request.deadline,
///    1 - merge_reserve_fraction)` — the coordinator always has time
///    left to merge and answer.
///  * a shard that has not answered after its hedge delay (p99-priced)
///    gets a second, hedged attempt on its next replica; first answer
///    wins, the loser is abandoned (its late write is discarded).
///  * a shard that fails fast is retried immediately while attempts
///    remain; a shard whose breaker is open is skipped with
///    `Unavailable` without consuming its cooldown probe.
///  * whatever happens, `Execute` returns by the query deadline with
///    every surviving shard's full answer and `complete == false` plus
///    typed per-shard errors for the rest. It fails outright only when
///    *no* shard answered.
///
/// Thread-safe: any number of `Execute` calls may run concurrently
/// (dispatch runs on the coordinator's own executor; merge state is
/// per-call).
class Coordinator {
 public:
  /// `backends[shard][replica]`; every shard needs >= 1 replica.
  /// `catalog` must outlive the coordinator.
  Coordinator(std::vector<std::vector<std::unique_ptr<ShardBackend>>> backends,
              const ShardCatalog* catalog, CoordinatorOptions options = {});

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  ~Coordinator();

  Result<ShardedResult> Execute(const QueryRequest& request);

  /// Probes every breaker-ejected shard whose cooldown has elapsed
  /// (backend `Probe`, not a real query) and records the outcome,
  /// closing the breaker on success. Call periodically (the serving
  /// loop does) or before a latency-sensitive burst.
  void ProbeEjected();

  ShardHealth& health() { return health_; }
  const ShardCatalog& catalog() const { return *catalog_; }
  size_t shard_count() const { return backends_.size(); }

  /// Cumulative fan-out counters (also mirrored into the metrics
  /// registry as mmdb_coord_*).
  struct Stats {
    int64_t queries = 0;
    int64_t partial_results = 0;
    int64_t hedges_launched = 0;
    int64_t hedge_wins = 0;
    int64_t shard_failures = 0;
    int64_t breaker_skips = 0;
  };
  Stats stats() const;

 private:
  struct Fanout;

  /// Builds shard `shard`'s copy of `request` (budgeted deadline,
  /// inflated similarity k).
  QueryRequest ShardRequest(const QueryRequest& request, size_t shard,
                            const Deadline& shard_deadline) const;
  void LaunchAttempt(const std::shared_ptr<Fanout>& fanout, size_t shard,
                     int attempt);
  Result<ShardedResult> Merge(const QueryRequest& request,
                              Fanout& fanout) const;

  std::vector<std::vector<std::unique_ptr<ShardBackend>>> backends_;
  const ShardCatalog* catalog_;
  CoordinatorOptions options_;
  ShardHealth health_;
  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> partial_results_{0};
  std::atomic<int64_t> hedges_launched_{0};
  std::atomic<int64_t> hedge_wins_{0};
  std::atomic<int64_t> shard_failures_{0};
  std::atomic<int64_t> breaker_skips_{0};
  /// Last member: destroyed first, joining every in-flight attempt
  /// before the backends (which attempts reference) go away.
  Executor executor_;
};

}  // namespace mmdb::shard

#endif  // MMDB_SHARD_COORDINATOR_H_
