#include "shard/health.h"

#include <algorithm>
#include <cmath>

namespace mmdb::shard {

ShardHealth::ShardHealth(size_t shards, ShardHealthOptions options)
    : options_(options) {
  slots_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->latencies.resize(std::max<size_t>(1, options_.latency_window), 0.0);
    slots_.push_back(std::move(slot));
  }
}

bool ShardHealth::AllowDispatch(size_t shard) {
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  switch (slot.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const auto cooled =
          slot.opened_at + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   options_.cooldown_seconds));
      if (std::chrono::steady_clock::now() < cooled) return false;
      slot.state = BreakerState::kHalfOpen;
      slot.probe_in_flight = true;
      return true;
    }
    case BreakerState::kHalfOpen:
      if (slot.probe_in_flight) return false;
      slot.probe_in_flight = true;
      return true;
  }
  return false;
}

void ShardHealth::RecordSuccess(size_t shard, double seconds) {
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.state = BreakerState::kClosed;
  slot.consecutive_failures = 0;
  slot.probe_in_flight = false;
  slot.latencies[slot.next] = seconds;
  slot.next = (slot.next + 1) % slot.latencies.size();
  slot.filled = std::min(slot.filled + 1, slot.latencies.size());
}

void ShardHealth::RecordFailure(size_t shard) {
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.state == BreakerState::kHalfOpen) {
    // The trial failed: straight back to ejected, restart the cooldown.
    slot.state = BreakerState::kOpen;
    slot.opened_at = std::chrono::steady_clock::now();
    slot.probe_in_flight = false;
    return;
  }
  ++slot.consecutive_failures;
  if (slot.state == BreakerState::kClosed &&
      slot.consecutive_failures >= options_.failure_threshold) {
    slot.state = BreakerState::kOpen;
    slot.opened_at = std::chrono::steady_clock::now();
  }
}

BreakerState ShardHealth::StateOf(size_t shard) const {
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.state;
}

std::vector<uint8_t> ShardHealth::WireStates() const {
  std::vector<uint8_t> states;
  states.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    net::ShardWireState wire = net::ShardWireState::kServing;
    switch (StateOf(i)) {
      case BreakerState::kClosed:
        wire = net::ShardWireState::kServing;
        break;
      case BreakerState::kOpen:
        wire = net::ShardWireState::kEjected;
        break;
      case BreakerState::kHalfOpen:
        wire = net::ShardWireState::kProbing;
        break;
    }
    states.push_back(static_cast<uint8_t>(wire));
  }
  return states;
}

double ShardHealth::HedgeDelaySeconds(size_t shard) const {
  Slot& slot = *slots_[shard];
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.filled == 0) return options_.default_hedge_delay_seconds;
    window.assign(slot.latencies.begin(),
                  slot.latencies.begin() +
                      static_cast<ptrdiff_t>(slot.filled));
  }
  // Nearest-rank p99 over the window.
  const size_t rank = std::min(
      window.size() - 1,
      static_cast<size_t>(std::ceil(0.99 * static_cast<double>(window.size()))) -
          1);
  std::nth_element(window.begin(),
                   window.begin() + static_cast<ptrdiff_t>(rank),
                   window.end());
  return window[rank];
}

}  // namespace mmdb::shard
