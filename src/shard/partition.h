#ifndef MMDB_SHARD_PARTITION_H_
#define MMDB_SHARD_PARTITION_H_

#include <cstddef>
#include <cstdint>

#include "editops/edit_ops.h"

namespace mmdb::shard {

/// The partitioning invariant (docs/SHARDING.md):
///
///   * A *binary* image lives on `ShardOf(global_id, shards)`.
///   * An *edited* image lives on its base image's shard.
///
/// The paper's data structure makes this the natural split: a BWM Main
/// cluster is keyed by its base image, and the cluster accept/reject
/// decision (Figure 2, step 4.2) never consults anything outside the
/// cluster — so hashing by base-image id keeps every cluster whole on
/// one shard, and each shard answers exactly like a small standalone
/// store. The only cross-shard references left are Merge *targets*,
/// which `ShardedDatabase` resolves by replicating the target's pixels
/// onto the referencing shard (a "ghost" copy under the same global
/// id; the coordinator deduplicates).
///
/// `ShardOf` finalizes the id through a 64-bit avalanche mix
/// (splitmix64's finalizer) before taking the modulus, so the
/// sequentially assigned object ids spread uniformly instead of
/// striping.
inline size_t ShardOf(ObjectId base_id, size_t shards) {
  if (shards <= 1) return 0;
  uint64_t x = base_id;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % shards);
}

}  // namespace mmdb::shard

#endif  // MMDB_SHARD_PARTITION_H_
