#ifndef MMDB_SHARD_HEALTH_H_
#define MMDB_SHARD_HEALTH_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/protocol.h"

namespace mmdb::shard {

/// Knobs for per-shard failure tracking.
struct ShardHealthOptions {
  /// Consecutive failures that open a shard's breaker (ejecting it from
  /// fan-out). Successes reset the count, so a flapping shard needs a
  /// streak to get ejected and one good probe to come back.
  int failure_threshold = 3;
  /// How long an open breaker blocks dispatch before admitting a single
  /// half-open trial request.
  double cooldown_seconds = 0.25;
  /// Completed-request latencies remembered per shard for the p99
  /// estimate behind the hedge delay.
  size_t latency_window = 128;
  /// Hedge delay used while a shard has no latency history yet.
  double default_hedge_delay_seconds = 0.05;
};

/// Breaker state of one shard, mirroring the PR-4 `CircuitBreaker`
/// vocabulary at shard granularity.
enum class BreakerState : uint8_t {
  kClosed = 0,    ///< Healthy: dispatch freely.
  kOpen = 1,      ///< Ejected: skip until the cooldown elapses.
  kHalfOpen = 2,  ///< One trial request in flight; its outcome decides.
};

/// Per-shard health: a consecutive-failure circuit breaker plus a
/// sliding window of request latencies that prices the hedged-retry
/// delay. One instance is shared by every fan-out the `Coordinator`
/// runs; all methods are thread-safe (one mutex per shard — recording
/// an outcome on shard 3 never contends with dispatch checks on
/// shard 0).
class ShardHealth {
 public:
  explicit ShardHealth(size_t shards, ShardHealthOptions options = {});

  ShardHealth(const ShardHealth&) = delete;
  ShardHealth& operator=(const ShardHealth&) = delete;

  size_t shard_count() const { return slots_.size(); }

  /// True when `shard` may receive a request right now. A closed
  /// breaker always admits; an open one admits nothing until the
  /// cooldown elapses, then flips to half-open and admits exactly one
  /// trial (further callers are refused until that trial's outcome is
  /// recorded).
  bool AllowDispatch(size_t shard);

  /// Records a completed request: closes the breaker, clears the
  /// failure streak, and feeds `seconds` into the latency window.
  void RecordSuccess(size_t shard, double seconds);

  /// Records a failed request: extends the failure streak (opening the
  /// breaker at the threshold) or, for a half-open trial, re-opens
  /// immediately.
  void RecordFailure(size_t shard);

  BreakerState StateOf(size_t shard) const;

  /// The wire rendering of every shard's state, by shard index — what
  /// a sharded server's kHealthResponse carries.
  std::vector<uint8_t> WireStates() const;

  /// How long the coordinator waits on `shard`'s primary before
  /// launching a hedge: the p99 of the shard's recorded latencies, or
  /// `default_hedge_delay_seconds` while the window is empty.
  double HedgeDelaySeconds(size_t shard) const;

 private:
  struct Slot {
    mutable std::mutex mu;
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point opened_at{};
    bool probe_in_flight = false;
    /// Fixed-size latency ring.
    std::vector<double> latencies;
    size_t next = 0;
    size_t filled = 0;
  };

  ShardHealthOptions options_;
  /// unique_ptr because Slot (mutex) is immovable.
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace mmdb::shard

#endif  // MMDB_SHARD_HEALTH_H_
