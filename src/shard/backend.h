#ifndef MMDB_SHARD_BACKEND_H_
#define MMDB_SHARD_BACKEND_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/query_service.h"
#include "net/client.h"
#include "shard/sharded_db.h"
#include "util/result.h"

namespace mmdb::shard {

/// Rewrites one shard's answer from its local id space into the global
/// one via the catalog (ids and similarity matches alike). A local id
/// the catalog cannot translate is Internal — it means the serving
/// store and the catalog diverged.
Status TranslateToGlobal(const ShardCatalog& catalog, size_t shard,
                         QueryResult* result);

/// One executable endpoint for one shard — a (shard, replica) cell of
/// the coordinator's dispatch table. Queries carry no object ids, so a
/// backend forwards the request verbatim and translates only the
/// *answer* into global ids. Implementations must be safe to call from
/// multiple coordinator threads at once (hedges and concurrent queries
/// overlap).
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Runs `request` (deadline already carved down to this shard's
  /// budget by the coordinator) and returns the shard's answer with
  /// GLOBAL ids.
  virtual Result<QueryResult> Execute(const QueryRequest& request) = 0;

  /// Cheap liveness probe — the coordinator's half-open trial for
  /// re-admitting an ejected shard without risking a real query.
  virtual Status Probe() = 0;

  /// Diagnostic name ("local:2", "remote:host:port") used in typed
  /// per-shard errors.
  virtual std::string name() const = 0;
};

/// In-process backend: the shard is a `QueryService` in this address
/// space. The service (and the catalog) must outlive the backend.
class LocalShardBackend : public ShardBackend {
 public:
  LocalShardBackend(QueryService* service, const ShardCatalog* catalog,
                    size_t shard)
      : service_(service), catalog_(catalog), shard_(shard) {}

  Result<QueryResult> Execute(const QueryRequest& request) override;
  Status Probe() override { return Status::OK(); }
  std::string name() const override {
    return "local:" + std::to_string(shard_);
  }

 private:
  QueryService* service_;
  const ShardCatalog* catalog_;
  size_t shard_;
};

/// Remote backend: the shard serves the PR-5 wire protocol on
/// host:port. Connections are pooled (checkout / return) so concurrent
/// fan-outs and hedges each get their own socket; a connection that
/// suffers a transport error is dropped instead of returned, and the
/// next checkout dials fresh. `options.connect_retries` rides on each
/// connection, giving the per-dispatch reconnect-with-backoff of the
/// client satellite.
class RemoteShardBackend : public ShardBackend {
 public:
  RemoteShardBackend(std::string host, int port, const ShardCatalog* catalog,
                     size_t shard, net::ClientOptions options = {})
      : host_(std::move(host)),
        port_(port),
        catalog_(catalog),
        shard_(shard),
        options_(options) {}

  Result<QueryResult> Execute(const QueryRequest& request) override;
  Status Probe() override;
  std::string name() const override {
    return "remote:" + host_ + ":" + std::to_string(port_);
  }

 private:
  Result<net::Client> Checkout();
  void Return(net::Client client);

  std::string host_;
  int port_;
  const ShardCatalog* catalog_;
  size_t shard_;
  net::ClientOptions options_;
  std::mutex mu_;
  std::vector<net::Client> idle_;
};

}  // namespace mmdb::shard

#endif  // MMDB_SHARD_BACKEND_H_
