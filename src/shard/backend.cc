#include "shard/backend.h"

#include <utility>

namespace mmdb::shard {

Status TranslateToGlobal(const ShardCatalog& catalog, size_t shard,
                         QueryResult* result) {
  for (ObjectId& id : result->ids) {
    const ObjectId global_id = catalog.GlobalOf(shard, id);
    if (global_id == kInvalidObjectId) {
      return Status::Internal("shard " + std::to_string(shard) +
                              " returned local id " + std::to_string(id) +
                              " the catalog cannot translate");
    }
    id = global_id;
  }
  for (SimilarityMatch& match : result->matches) {
    const ObjectId global_id = catalog.GlobalOf(shard, match.id);
    if (global_id == kInvalidObjectId) {
      return Status::Internal("shard " + std::to_string(shard) +
                              " returned local match id " +
                              std::to_string(match.id) +
                              " the catalog cannot translate");
    }
    match.id = global_id;
  }
  return Status::OK();
}

Result<QueryResult> LocalShardBackend::Execute(const QueryRequest& request) {
  MMDB_ASSIGN_OR_RETURN(QueryResult result, service_->Execute(request));
  MMDB_RETURN_IF_ERROR(TranslateToGlobal(*catalog_, shard_, &result));
  return result;
}

Result<net::Client> RemoteShardBackend::Checkout() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      net::Client client = std::move(idle_.back());
      idle_.pop_back();
      return client;
    }
  }
  return net::Client::Connect(host_, port_, options_);
}

void RemoteShardBackend::Return(net::Client client) {
  if (!client.connected()) return;  // Broken connections are not pooled.
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(client));
}

Result<QueryResult> RemoteShardBackend::Execute(const QueryRequest& request) {
  MMDB_ASSIGN_OR_RETURN(net::Client client, Checkout());
  Result<QueryResult> result = client.Execute(request);
  Return(std::move(client));
  if (!result.ok()) return result.status();
  MMDB_RETURN_IF_ERROR(TranslateToGlobal(*catalog_, shard_, &*result));
  return result;
}

Status RemoteShardBackend::Probe() {
  MMDB_ASSIGN_OR_RETURN(net::Client client, Checkout());
  Status alive = client.Ping();
  Return(std::move(client));
  return alive;
}

}  // namespace mmdb::shard
