#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace mmdb::shard {

namespace {

using SteadyClock = std::chrono::steady_clock;

struct CoordMetrics {
  obs::Counter* queries;
  obs::Counter* partial;
  obs::Counter* hedges;
  obs::Counter* hedge_wins;
  obs::Counter* shard_failures;
  obs::Counter* breaker_skips;
  obs::Histogram* latency;
};

CoordMetrics& Metrics() {
  static CoordMetrics* const metrics = [] {
    obs::Registry& registry = obs::Registry::Default();
    auto* m = new CoordMetrics();
    m->queries = registry.GetCounter(
        "mmdb_coord_queries_total",
        "Queries fanned out by the shard coordinator.");
    m->partial = registry.GetCounter(
        "mmdb_coord_partial_results_total",
        "Coordinator answers that were degraded (complete=false): one or "
        "more shards failed and the merge covered the survivors only.");
    m->hedges = registry.GetCounter(
        "mmdb_coord_hedges_total",
        "Hedged attempts launched after a shard outlived its p99-priced "
        "hedge delay.");
    m->hedge_wins = registry.GetCounter(
        "mmdb_coord_hedge_wins_total",
        "Hedged attempts that answered before the primary they doubled.");
    m->shard_failures = registry.GetCounter(
        "mmdb_coord_shard_failures_total",
        "Individual shard attempt failures observed by the coordinator "
        "(before retry/hedge recovery).");
    m->breaker_skips = registry.GetCounter(
        "mmdb_coord_breaker_skips_total",
        "Dispatches skipped because the shard's circuit breaker was open.");
    m->latency = registry.GetHistogram(
        "mmdb_coord_query_latency_seconds",
        "End-to-end coordinator query latency (fan-out through merge).");
    return m;
  }();
  return *metrics;
}

Status NamedShardError(size_t shard, const std::string& backend,
                       const Status& cause) {
  return Status(cause.code(), "shard " + std::to_string(shard) + " (" +
                                  backend + "): " + cause.message());
}

/// Methods whose binary side is a full histogram scan — on a shard,
/// every ghost copy is scanned exactly like a real binary image, so the
/// merged `binary_images_checked` overcounts by the ghost count.
bool ScansAllBinaries(QueryMethod method) {
  switch (method) {
    case QueryMethod::kInstantiate:
    case QueryMethod::kRbm:
    case QueryMethod::kBwm:
    case QueryMethod::kParallelRbm:
      return true;
    case QueryMethod::kBwmIndexed:
    case QueryMethod::kPlanned:
      return false;
  }
  return false;
}

}  // namespace

struct Coordinator::Fanout {
  std::mutex mu;
  std::condition_variable cv;

  struct Slot {
    bool done = false;
    Result<QueryResult> result = Status::Internal("shard never dispatched");
    Status last_error;
    int launched = 0;
    int in_flight = 0;
    bool hedged = false;
    SteadyClock::time_point hedge_at{};
    Deadline deadline;
    QueryRequest request;
  };
  std::vector<Slot> slots;
};

Coordinator::Coordinator(
    std::vector<std::vector<std::unique_ptr<ShardBackend>>> backends,
    const ShardCatalog* catalog, CoordinatorOptions options)
    : backends_(std::move(backends)),
      catalog_(catalog),
      options_(options),
      health_(backends_.size(), options.health),
      executor_(options.threads > 0
                    ? options.threads
                    : static_cast<int>(2 * std::max<size_t>(1,
                                                            backends_.size()))) {
}

Coordinator::~Coordinator() { executor_.Shutdown(); }

Coordinator::Stats Coordinator::stats() const {
  Stats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.partial_results = partial_results_.load(std::memory_order_relaxed);
  stats.hedges_launched = hedges_launched_.load(std::memory_order_relaxed);
  stats.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  stats.shard_failures = shard_failures_.load(std::memory_order_relaxed);
  stats.breaker_skips = breaker_skips_.load(std::memory_order_relaxed);
  return stats;
}

QueryRequest Coordinator::ShardRequest(const QueryRequest& request,
                                       size_t shard,
                                       const Deadline& shard_deadline) const {
  QueryRequest shard_request = request;
  shard_request.deadline = shard_deadline;
  if (const SimilarityQuery* similarity = request.similarity();
      similarity != nullptr && similarity->k > 0) {
    // A ghost can displace at most one real image from the shard's
    // top-k, and the shard hosts GhostCount of them — inflating k by
    // that bound keeps the shard's candidate set a superset of the
    // single store's candidates restricted to this shard.
    SimilarityQuery inflated = *similarity;
    inflated.k =
        similarity->k + static_cast<uint32_t>(catalog_->GhostCount(shard));
    shard_request.payload = std::move(inflated);
  }
  return shard_request;
}

void Coordinator::LaunchAttempt(const std::shared_ptr<Fanout>& fanout,
                                size_t shard, int attempt) {
  // Caller holds fanout->mu.
  Fanout::Slot& slot = fanout->slots[shard];
  ++slot.launched;
  ++slot.in_flight;
  executor_.Submit([this, fanout, shard, attempt] {
    Fanout::Slot& slot = fanout->slots[shard];
    QueryRequest request;
    {
      std::lock_guard<std::mutex> lock(fanout->mu);
      if (slot.done) {
        // The shard was finalized (deadline, other attempt) before this
        // attempt got a worker; don't burn the backend.
        --slot.in_flight;
        return;
      }
      request = slot.request;
    }
    const size_t replicas = backends_[shard].size();
    ShardBackend* backend =
        backends_[shard][static_cast<size_t>(attempt) % replicas].get();
    const auto start = SteadyClock::now();
    Result<QueryResult> result = backend->Execute(request);
    const double elapsed =
        std::chrono::duration<double>(SteadyClock::now() - start).count();
    if (result.ok()) {
      health_.RecordSuccess(shard, elapsed);
    } else {
      health_.RecordFailure(shard);
      shard_failures_.fetch_add(1, std::memory_order_relaxed);
      Metrics().shard_failures->Increment();
    }
    std::lock_guard<std::mutex> lock(fanout->mu);
    --slot.in_flight;
    if (slot.done) return;  // Lost the hedge race; late answer discarded.
    if (result.ok()) {
      slot.done = true;
      slot.result = std::move(result);
      if (attempt > 0) {
        hedge_wins_.fetch_add(1, std::memory_order_relaxed);
        Metrics().hedge_wins->Increment();
      }
    } else {
      slot.last_error = NamedShardError(shard, backend->name(),
                                        result.status());
      // The coordinating thread decides: immediate retry while attempts
      // remain, or finalize with this error.
    }
    fanout->cv.notify_all();
  });
}

Result<ShardedResult> Coordinator::Execute(const QueryRequest& request) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  Metrics().queries->Increment();
  const auto query_start = SteadyClock::now();

  const size_t shards = backends_.size();
  const Deadline shard_deadline = Deadline::Budget(
      request.deadline, 1.0 - options_.merge_reserve_fraction);
  auto fanout = std::make_shared<Fanout>();
  fanout->slots.resize(shards);

  std::unique_lock<std::mutex> lock(fanout->mu);
  for (size_t shard = 0; shard < shards; ++shard) {
    Fanout::Slot& slot = fanout->slots[shard];
    slot.deadline = shard_deadline;
    slot.request = ShardRequest(request, shard, shard_deadline);
    if (!health_.AllowDispatch(shard)) {
      slot.done = true;
      slot.result = Status::Unavailable(
          "shard " + std::to_string(shard) + " (" +
          backends_[shard][0]->name() + ") is ejected by its circuit breaker");
      breaker_skips_.fetch_add(1, std::memory_order_relaxed);
      Metrics().breaker_skips->Increment();
      continue;
    }
    const double hedge_delay = options_.hedge_delay_seconds > 0.0
                                   ? options_.hedge_delay_seconds
                                   : health_.HedgeDelaySeconds(shard);
    slot.hedge_at = SteadyClock::now() +
                    std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(hedge_delay));
    LaunchAttempt(fanout, shard, 0);
  }

  for (;;) {
    const auto now = SteadyClock::now();
    auto next_wake = SteadyClock::time_point::max();
    for (size_t shard = 0; shard < shards; ++shard) {
      Fanout::Slot& slot = fanout->slots[shard];
      if (slot.done) continue;
      if (slot.deadline.Expired()) {
        // The budget is spent; whatever is still in flight is orphaned
        // so the reserve is left for the merge. This is the envelope's
        // core guarantee: a stalled shard costs its budget, never the
        // whole query.
        slot.done = true;
        slot.result = NamedShardError(
            shard, backends_[shard][0]->name(),
            Status::DeadlineExceeded("missed its per-shard deadline budget"));
        health_.RecordFailure(shard);
        shard_failures_.fetch_add(1, std::memory_order_relaxed);
        Metrics().shard_failures->Increment();
        continue;
      }
      if (slot.in_flight == 0) {
        if (slot.launched < options_.max_attempts_per_shard) {
          // Fast failure: re-dispatch immediately (next replica) instead
          // of waiting for the hedge timer.
          LaunchAttempt(fanout, shard, slot.launched);
        } else {
          slot.done = true;
          slot.result = slot.last_error.ok()
                            ? NamedShardError(
                                  shard, backends_[shard][0]->name(),
                                  Status::Internal(
                                      "failed without a recorded error"))
                            : slot.last_error;
          continue;
        }
      } else if (!slot.hedged &&
                 slot.launched < options_.max_attempts_per_shard) {
        if (now >= slot.hedge_at) {
          slot.hedged = true;
          hedges_launched_.fetch_add(1, std::memory_order_relaxed);
          Metrics().hedges->Increment();
          LaunchAttempt(fanout, shard, slot.launched);
        } else {
          next_wake = std::min(next_wake, slot.hedge_at);
        }
      }
      if (!slot.deadline.IsInfinite()) {
        next_wake = std::min(
            next_wake, SteadyClock::time_point(slot.deadline.time_point()));
      }
    }
    bool all_done = true;
    for (const Fanout::Slot& slot : fanout->slots) {
      if (!slot.done) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    if (next_wake == SteadyClock::time_point::max()) {
      fanout->cv.wait(lock);
    } else {
      fanout->cv.wait_until(lock, next_wake);
    }
  }
  lock.unlock();

  Result<ShardedResult> merged = Merge(request, *fanout);
  if (merged.ok() && !merged->complete) {
    partial_results_.fetch_add(1, std::memory_order_relaxed);
    Metrics().partial->Increment();
  }
  Metrics().latency->Record(
      std::chrono::duration<double>(SteadyClock::now() - query_start).count());
  return merged;
}

Result<ShardedResult> Coordinator::Merge(const QueryRequest& request,
                                         Fanout& fanout) const {
  ShardedResult out;
  std::vector<size_t> succeeded;
  for (size_t shard = 0; shard < fanout.slots.size(); ++shard) {
    const Fanout::Slot& slot = fanout.slots[shard];
    if (slot.result.ok()) {
      succeeded.push_back(shard);
    } else {
      out.complete = false;
      out.shard_errors.push_back(
          ShardError{static_cast<uint32_t>(shard), slot.result.status()});
    }
  }
  if (succeeded.empty()) {
    // Degradation needs survivors; with none, the query failed outright
    // and the caller gets the first shard's typed error.
    if (out.shard_errors.empty()) {
      return Status::Internal("coordinator has no shards");
    }
    return out.shard_errors.front().status;
  }

  QueryStats stats;
  int64_t ghost_total = 0;
  for (size_t shard : succeeded) {
    stats += fanout.slots[shard].result->stats;
    ghost_total += catalog_->GhostCount(shard);
  }

  if (request.kind() != QueryKind::kSimilarity) {
    std::vector<ObjectId> ids;
    for (size_t shard : succeeded) {
      const std::vector<ObjectId>& shard_ids =
          fanout.slots[shard].result->ids;
      ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
    }
    // Canonical single-store order: binary images ascending, then edited
    // ascending — exactly the RBM/BWM emission order (the collection
    // scans insertion order, and sequential ids make insertion order id
    // order). kPlanned promises set identity only, same as the single
    // store's own contract.
    std::sort(ids.begin(), ids.end(), [this](ObjectId a, ObjectId b) {
      const bool a_edited = catalog_->IsEdited(a);
      const bool b_edited = catalog_->IsEdited(b);
      if (a_edited != b_edited) return !a_edited;
      return a < b;
    });
    const size_t before = ids.size();
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    const int64_t duplicates = static_cast<int64_t>(before - ids.size());
    // Ghost compensation: a full binary scan touched every ghost copy
    // once; the R-tree path only touched the ghosts that matched (they
    // are exactly the duplicates the dedup removed). kPlanned mixes
    // access paths per predicate, so its counters stay as summed.
    if (ScansAllBinaries(request.method)) {
      stats.binary_images_checked -= ghost_total;
    } else if (request.method == QueryMethod::kBwmIndexed) {
      stats.binary_images_checked -= duplicates;
    }
    out.result.ids = std::move(ids);
    out.result.stats = stats;
    return out;
  }

  // Similarity: merge the per-shard candidate sets (each a superset of
  // the single store's candidates restricted to that shard, thanks to
  // the k inflation) and recompute the global cutoff over the
  // deduplicated union — reproducing the single store's candidate set
  // and intervals bit for bit.
  std::vector<SimilarityMatch> candidates;
  for (size_t shard : succeeded) {
    const std::vector<SimilarityMatch>& matches =
        fanout.slots[shard].result->matches;
    candidates.insert(candidates.end(), matches.begin(), matches.end());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const SimilarityMatch& a, const SimilarityMatch& b) {
              return a.id < b.id;
            });
  candidates.erase(
      std::unique(candidates.begin(), candidates.end(),
                  [](const SimilarityMatch& a, const SimilarityMatch& b) {
                    return a.id == b.id;  // Ghost copies carry identical
                                          // exact distances.
                  }),
      candidates.end());
  const uint32_t k = request.similarity()->k;
  std::vector<SimilarityMatch> kept;
  if (k > 0 && !candidates.empty()) {
    std::vector<double> upper_bounds;
    upper_bounds.reserve(candidates.size());
    for (const SimilarityMatch& match : candidates) {
      upper_bounds.push_back(match.distance_hi);
    }
    std::sort(upper_bounds.begin(), upper_bounds.end());
    const double cutoff = k <= upper_bounds.size()
                              ? upper_bounds[k - 1]
                              : upper_bounds.back();
    for (const SimilarityMatch& match : candidates) {
      if (match.distance_lo <= cutoff) kept.push_back(match);
    }
    std::sort(kept.begin(), kept.end(),
              [](const SimilarityMatch& a, const SimilarityMatch& b) {
                if (a.distance_lo != b.distance_lo) {
                  return a.distance_lo < b.distance_lo;
                }
                return a.id < b.id;
              });
  }
  out.result.matches = std::move(kept);
  out.result.ids.reserve(out.result.matches.size());
  for (const SimilarityMatch& match : out.result.matches) {
    out.result.ids.push_back(match.id);
  }
  stats.binary_images_checked -= ghost_total;  // Full binary scan.
  out.result.stats = stats;
  return out;
}

void Coordinator::ProbeEjected() {
  for (size_t shard = 0; shard < backends_.size(); ++shard) {
    if (health_.StateOf(shard) != BreakerState::kOpen) continue;
    // AllowDispatch admits the half-open trial only once the cooldown
    // has elapsed; refusals leave the breaker untouched.
    if (!health_.AllowDispatch(shard)) continue;
    const auto start = SteadyClock::now();
    Status alive = backends_[shard][0]->Probe();
    const double elapsed =
        std::chrono::duration<double>(SteadyClock::now() - start).count();
    if (alive.ok()) {
      health_.RecordSuccess(shard, elapsed);
    } else {
      health_.RecordFailure(shard);
    }
  }
}

}  // namespace mmdb::shard
