#ifndef MMDB_SHARD_SHARDED_DB_H_
#define MMDB_SHARD_SHARDED_DB_H_

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/database.h"
#include "image/image.h"
#include "shard/partition.h"
#include "storage/env.h"
#include "util/result.h"

namespace mmdb::shard {

/// Shape of a sharded corpus.
struct ShardedDatabaseOptions {
  /// Number of partitions (>= 1).
  size_t shards = 2;
  /// Template options for every shard's store. An empty `path` opens
  /// volatile in-memory shards; otherwise shard i opens
  /// `path + ".shard<i>"`.
  DatabaseOptions shard_options;
  /// Optional per-shard `Env` overrides (size must equal `shards` when
  /// non-empty); tests point one shard at a `FaultInjectingEnv` while
  /// the rest stay healthy.
  std::vector<Env*> shard_envs;
};

/// The immutable-after-ingest metadata a `Coordinator` needs to merge
/// shard-local answers back into the global id space: per-shard
/// local→global translation, ghost counts for stats compensation and
/// similarity k-inflation, and the binary/edited kind of every global
/// id for canonical result ordering.
class ShardCatalog {
 public:
  size_t shard_count() const { return local_to_global_.size(); }

  /// The global id behind shard-local id `local_id` on `shard`;
  /// `kInvalidObjectId` when the shard never assigned it. A ghost copy
  /// translates to the *same* global id as the real copy — that is the
  /// whole point.
  ObjectId GlobalOf(size_t shard, ObjectId local_id) const;

  /// Translation table for one shard, indexed by
  /// `local_id - kFirstObjectId`.
  const std::vector<ObjectId>& LocalToGlobal(size_t shard) const {
    return local_to_global_[shard];
  }

  /// Ghost (replicated Merge-target) binary copies living on `shard`.
  /// Every one of them is scanned by that shard's full-scan access
  /// paths exactly like a real binary image, so the coordinator
  /// subtracts this from the merged `binary_images_checked` and
  /// inflates a similarity query's k by it.
  int64_t GhostCount(size_t shard) const { return ghost_counts_[shard]; }

  /// True iff `global_id` names an edited image. Drives the canonical
  /// merged result order (binary ascending, then edited ascending —
  /// exactly the single-store RBM emission order).
  bool IsEdited(ObjectId global_id) const;

  /// Total distinct global ids assigned (ghosts excluded).
  size_t GlobalCount() const { return kind_.size(); }

 private:
  friend class ShardedDatabase;

  std::vector<std::vector<ObjectId>> local_to_global_;
  std::vector<int64_t> ghost_counts_;
  /// Indexed by `global_id - kFirstObjectId`: 0 binary, 1 edited.
  std::vector<uint8_t> kind_;
};

/// A corpus partitioned across N `MultimediaDatabase` stores by the
/// `partition.h` invariant, presenting the single-store insertion API
/// in one *global* id space:
///
///  * `InsertBinaryImage` assigns the next global id (sequential from
///    `kFirstObjectId`, exactly like a single store) and routes the
///    image to `ShardOf(global_id, shards)`.
///  * `InsertEditedImage` takes a script whose `base_id` / Merge
///    targets are global ids, routes the image to its base's shard,
///    and rewrites the script into that shard's local id space. A
///    Merge target living on another shard is *ghost-replicated*: its
///    pixels are copied into the referencing shard as a local binary
///    image aliased to the same global id, so the shard's rule engine
///    resolves the target exactly as a single store would.
///
/// Because global ids are assigned in insertion order, a corpus built
/// here side by side with a single store (same insertion sequence —
/// see `MirrorDatabase`) gets *identical* ids, which is what makes
/// "sharded results bit-identical to the single store" testable at
/// all.
///
/// Thread safety matches the facade: mutations need external
/// serialization; the per-shard read paths run concurrently.
class ShardedDatabase {
 public:
  static Result<std::unique_ptr<ShardedDatabase>> Open(
      ShardedDatabaseOptions options);

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  /// Stores a binary image under the next global id.
  Result<ObjectId> InsertBinaryImage(const Image& image);

  /// Stores an edited image (script in global ids) on its base's
  /// shard. A Merge target that is an *edited* image on another shard
  /// is rejected as InvalidArgument (replicating a script chain across
  /// shards is not supported; datasets only merge into binary images).
  Result<ObjectId> InsertEditedImage(const EditScript& script);

  /// Retrieves pixels by global id, from the image's home shard.
  Result<Image> GetImage(ObjectId global_id) const;

  size_t shard_count() const { return shards_.size(); }
  MultimediaDatabase* shard(size_t i) const { return shards_[i].get(); }
  const ShardCatalog& catalog() const { return catalog_; }

  /// The shard a global id lives on (its home — not a ghost location).
  Result<size_t> HomeShard(ObjectId global_id) const;

 private:
  ShardedDatabase() = default;

  struct Home {
    uint32_t shard = 0;
    ObjectId local_id = kInvalidObjectId;
  };

  Result<Home> HomeOf(ObjectId global_id) const;
  /// Registers `local_id` (just assigned by `shard`) → `global_id`.
  Status RecordLocal(size_t shard, ObjectId local_id, ObjectId global_id);
  /// The shard-local id of `global_id` on `shard`, replicating a ghost
  /// binary copy on first cross-shard reference.
  Result<ObjectId> LocalTargetOn(size_t shard, ObjectId global_id);

  std::vector<std::unique_ptr<MultimediaDatabase>> shards_;
  ShardCatalog catalog_;
  ObjectId next_global_ = 0;
  /// Indexed by `global_id - kFirstObjectId`.
  std::vector<Home> home_;
  /// Per shard: global id → local id of its ghost copy there.
  std::vector<std::unordered_map<ObjectId, ObjectId>> ghosts_;
};

/// Replays `source`'s corpus into `target` in global-id order (ids are
/// assigned sequentially, so ascending id order *is* insertion order).
/// After a successful mirror the sharded corpus carries the same
/// global ids as the single store — the equivalence tests and benches
/// are built on this.
Status MirrorDatabase(const MultimediaDatabase& source,
                      ShardedDatabase* target);

}  // namespace mmdb::shard

#endif  // MMDB_SHARD_SHARDED_DB_H_
