#ifndef MMDB_NET_SOCKET_H_
#define MMDB_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace mmdb::net {

/// A connected TCP stream (RAII over the fd). Blocking I/O with
/// exact-count semantics: `SendAll` / `RecvAll` loop over short
/// transfers and EINTR the same way the storage `Env` does, so callers
/// reason in whole messages, never partial ones. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  /// Connects to `host:port` (numeric or resolvable host).
  static Result<Socket> ConnectTcp(const std::string& host, int port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes exactly `n` bytes.
  Status SendAll(const void* data, size_t n);

  /// Reads exactly `n` bytes. A clean EOF *before the first byte* sets
  /// `*clean_close = true` and returns OK with nothing read (pass null
  /// to make that an IoError instead); EOF mid-message is always an
  /// IoError. A receive timeout (see `SetRecvTimeout`) surfaces as
  /// DeadlineExceeded.
  Status RecvAll(void* data, size_t n, bool* clean_close = nullptr);

  /// Bounds every subsequent blocking receive (SO_RCVTIMEO); 0 restores
  /// "wait forever".
  Status SetRecvTimeout(double seconds);

  /// Half-close both directions, waking any blocked peer loop; the fd
  /// stays open until destruction/Close.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket. `port = 0` binds an ephemeral port; `port()`
/// reports the actual one.
class ListenSocket {
 public:
  ListenSocket() = default;
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;
  ~ListenSocket() { Close(); }

  static Result<ListenSocket> Listen(const std::string& host, int port,
                                     int backlog = 128);

  /// Waits up to `timeout_seconds` for a connection. On timeout returns
  /// OK-shaped failure via `*timed_out = true` and an invalid Socket
  /// slot — the accept loop polls this so shutdown never needs to race
  /// a blocking accept(2).
  Result<Socket> AcceptWithTimeout(double timeout_seconds, bool* timed_out);

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }

  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Transport framing: each protocol frame travels as a u32 LE payload
/// length followed by the payload bytes.
inline constexpr size_t kLengthPrefixBytes = 4;

/// Writes one frame.
Status WriteFrame(Socket& socket, std::string_view payload);

/// Reads one frame into `*payload`. A declared length of zero or above
/// `max_frame_bytes` is rejected as InvalidArgument without reading the
/// body (the caller should drop the connection: framing is unreliable
/// past this point). Clean EOF between frames sets `*closed`.
Status ReadFrame(Socket& socket, size_t max_frame_bytes,
                 std::string* payload, bool* closed);

}  // namespace mmdb::net

#endif  // MMDB_NET_SOCKET_H_
