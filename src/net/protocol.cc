#include "net/protocol.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "net/status_codes.h"
#include "net/wire.h"

namespace mmdb::net {

namespace {

/// Frame payload skeleton: header then caller-appended fields.
WireWriter BeginFrame(FrameType type, uint16_t version = kProtocolVersion) {
  WireWriter w;
  w.PutU32(kMagic);
  w.PutU16(version);
  w.PutU16(static_cast<uint16_t>(type));
  return w;
}

/// Iterates the tagged fields of a frame region, handing each known
/// field's payload to `visit(tag, payload)`. Unknown tags are skipped —
/// this loop is where forward compatibility actually happens. Returns
/// InvalidArgument on structurally broken field framing (truncated tag,
/// length past the end).
template <typename Visitor>
Status ForEachField(std::string_view fields, Visitor&& visit) {
  WireReader r(fields);
  while (r.remaining() > 0) {
    uint16_t field_tag;
    uint32_t length;
    std::string_view payload;
    if (!r.GetU16(&field_tag) || !r.GetU32(&length) ||
        !r.GetBytes(length, &payload)) {
      return Status::InvalidArgument("truncated field framing");
    }
    MMDB_RETURN_IF_ERROR(visit(field_tag, payload));
  }
  return Status::OK();
}

}  // namespace

Result<Frame> ParseFrame(std::string_view payload) {
  WireReader r(payload);
  uint32_t magic;
  Frame frame;
  if (!r.GetU32(&magic) || !r.GetU16(&frame.version) ||
      !r.GetU16(&frame.raw_type)) {
    return Status::InvalidArgument("frame shorter than its header");
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("bad frame magic (not an mmdb peer?)");
  }
  if (frame.version < kMinProtocolVersion) {
    return Status::InvalidArgument(
        "peer protocol version " + std::to_string(frame.version) +
        " is older than the supported minimum " +
        std::to_string(kMinProtocolVersion));
  }
  frame.fields = payload.substr(kFrameHeaderBytes);
  return frame;
}

uint8_t QueryMethodToWire(QueryMethod method) {
  // Appended-only wire values; exhaustive so a new QueryMethod fails the
  // build here rather than ship unserializable.
  switch (method) {
    case QueryMethod::kInstantiate:
      return 0;
    case QueryMethod::kRbm:
      return 1;
    case QueryMethod::kBwm:
      return 2;
    case QueryMethod::kBwmIndexed:
      return 3;
    case QueryMethod::kParallelRbm:
      return 4;
    case QueryMethod::kPlanned:
      return 5;
  }
  return 0xff;  // Unreachable for valid enum values.
}

Result<QueryMethod> QueryMethodFromWire(uint8_t wire_method) {
  switch (wire_method) {
    case 0:
      return QueryMethod::kInstantiate;
    case 1:
      return QueryMethod::kRbm;
    case 2:
      return QueryMethod::kBwm;
    case 3:
      return QueryMethod::kBwmIndexed;
    case 4:
      return QueryMethod::kParallelRbm;
    case 5:
      return QueryMethod::kPlanned;
    default:
      return Status::InvalidArgument("unknown query method code " +
                                     std::to_string(wire_method) +
                                     " (peer newer than this server?)");
  }
}

namespace {

/// kExecuteRequest and kExplainRequest share one field schema.
std::string EncodeRequestFields(FrameType type, const QueryRequest& request,
                                uint16_t version) {
  WireWriter w = BeginFrame(type, version);
  {
    WireWriter f;
    f.PutU8(QueryMethodToWire(request.method));
    w.PutField(tag::kMethod, f.data());
  }
  if (const RangeQuery* range = request.range()) {
    WireWriter f;
    f.PutU32(static_cast<uint32_t>(range->bin));
    f.PutF64(range->min_fraction);
    f.PutF64(range->max_fraction);
    w.PutField(tag::kRange, f.data());
  }
  if (const ConjunctiveQuery* conjunctive = request.conjunctive()) {
    WireWriter f;
    f.PutU32(static_cast<uint32_t>(conjunctive->conjuncts.size()));
    for (const RangeQuery& conjunct : conjunctive->conjuncts) {
      f.PutU32(static_cast<uint32_t>(conjunct.bin));
      f.PutF64(conjunct.min_fraction);
      f.PutF64(conjunct.max_fraction);
    }
    w.PutField(tag::kConjuncts, f.data());
  }
  if (const SimilarityQuery* similarity = request.similarity()) {
    // Integer pixel counts (not fractions) cross the wire, so the server
    // reconstructs the exact histogram and loopback results stay
    // bit-identical to the embedded path.
    WireWriter f;
    f.PutU32(similarity->k);
    f.PutU32(static_cast<uint32_t>(similarity->histogram.BinCount()));
    for (int64_t count : similarity->histogram.counts()) f.PutI64(count);
    w.PutField(tag::kSimilarity, f.data());
  }
  if (!request.deadline.IsInfinite()) {
    // Remaining milliseconds, floored at zero: an already-expired
    // deadline still travels (the server answers DeadlineExceeded, the
    // same thing the embedded path would do).
    const double remaining =
        std::max(0.0, request.deadline.RemainingSeconds());
    WireWriter f;
    f.PutU64(static_cast<uint64_t>(std::llround(remaining * 1000.0)));
    w.PutField(tag::kDeadlineMs, f.data());
  }
  return w.Take();
}

}  // namespace

std::string EncodeExecuteRequest(const QueryRequest& request,
                                 uint16_t version) {
  return EncodeRequestFields(FrameType::kExecuteRequest, request, version);
}

std::string EncodeExplainRequest(const QueryRequest& request,
                                 uint16_t version) {
  return EncodeRequestFields(FrameType::kExplainRequest, request, version);
}

Result<QueryRequest> DecodeExecuteRequest(const Frame& frame) {
  QueryRequest request;
  bool saw_method = false;
  bool saw_range = false;
  bool saw_conjuncts = false;
  bool saw_similarity = false;
  Status walk = ForEachField(
      frame.fields,
      [&](uint16_t field_tag, std::string_view payload) -> Status {
        WireReader f(payload);
        switch (field_tag) {
          case tag::kMethod: {
            uint8_t method;
            if (!f.GetU8(&method)) {
              return Status::InvalidArgument("truncated method field");
            }
            MMDB_ASSIGN_OR_RETURN(request.method,
                                  QueryMethodFromWire(method));
            saw_method = true;
            return Status::OK();
          }
          case tag::kRange: {
            uint32_t bin;
            RangeQuery range;
            if (!f.GetU32(&bin) || !f.GetF64(&range.min_fraction) ||
                !f.GetF64(&range.max_fraction)) {
              return Status::InvalidArgument("truncated range field");
            }
            range.bin = static_cast<BinIndex>(bin);
            request.payload = range;
            saw_range = true;
            return Status::OK();
          }
          case tag::kConjuncts: {
            uint32_t count;
            if (!f.GetU32(&count)) {
              return Status::InvalidArgument("truncated conjunct count");
            }
            ConjunctiveQuery conjunctive;
            for (uint32_t i = 0; i < count; ++i) {
              uint32_t bin;
              RangeQuery conjunct;
              if (!f.GetU32(&bin) || !f.GetF64(&conjunct.min_fraction) ||
                  !f.GetF64(&conjunct.max_fraction)) {
                return Status::InvalidArgument("truncated conjunct list");
              }
              conjunct.bin = static_cast<BinIndex>(bin);
              conjunctive.conjuncts.push_back(conjunct);
            }
            request.payload = std::move(conjunctive);
            saw_conjuncts = true;
            return Status::OK();
          }
          case tag::kSimilarity: {
            uint32_t k;
            uint32_t bins;
            if (!f.GetU32(&k) || !f.GetU32(&bins)) {
              return Status::InvalidArgument("truncated similarity field");
            }
            if (f.remaining() != static_cast<size_t>(bins) * 8) {
              return Status::InvalidArgument(
                  "similarity histogram length disagrees with its arity");
            }
            SimilarityQuery similarity;
            similarity.k = k;
            similarity.histogram =
                ColorHistogram(static_cast<int32_t>(bins));
            for (uint32_t bin = 0; bin < bins; ++bin) {
              int64_t count;
              if (!f.GetI64(&count)) {
                return Status::InvalidArgument(
                    "truncated similarity histogram");
              }
              similarity.histogram.Add(static_cast<BinIndex>(bin), count);
            }
            request.payload = std::move(similarity);
            saw_similarity = true;
            return Status::OK();
          }
          case tag::kDeadlineMs: {
            uint64_t ms;
            if (!f.GetU64(&ms)) {
              return Status::InvalidArgument("truncated deadline field");
            }
            request.deadline =
                Deadline::After(static_cast<double>(ms) / 1000.0);
            return Status::OK();
          }
          default:
            // Unknown tag from a newer peer: skipped by construction.
            return Status::OK();
        }
      });
  MMDB_RETURN_IF_ERROR(walk);
  if (!saw_method) {
    return Status::InvalidArgument("execute frame lacks a method field");
  }
  // The variant holds whichever payload tag decoded last; the wire stays
  // strict regardless: exactly one payload tag per frame.
  const int payloads = static_cast<int>(saw_range) +
                       static_cast<int>(saw_conjuncts) +
                       static_cast<int>(saw_similarity);
  if (payloads != 1) {
    return Status::InvalidArgument(
        "execute frame must carry exactly one of a range, conjunctive, "
        "or similarity query");
  }
  return request;
}

std::string EncodeResultChunk(std::span<const ObjectId> ids) {
  WireWriter w = BeginFrame(FrameType::kResultChunk);
  WireWriter f;
  for (ObjectId id : ids) f.PutU64(id);
  w.PutField(tag::kIds, f.data());
  return w.Take();
}

Status DecodeResultChunk(const Frame& frame, std::vector<ObjectId>* ids) {
  return ForEachField(
      frame.fields,
      [&](uint16_t field_tag, std::string_view payload) -> Status {
        if (field_tag != tag::kIds) return Status::OK();
        if (payload.size() % 8 != 0) {
          return Status::InvalidArgument("id list not a multiple of 8 bytes");
        }
        WireReader f(payload);
        uint64_t id;
        while (f.GetU64(&id)) ids->push_back(id);
        return Status::OK();
      });
}

Status WireShardError::ToStatus() const {
  return StatusFromWire(wire_code, message);
}

std::string EncodeResultDone(const QueryStats& stats, uint64_t total_ids,
                             std::span<const SimilarityMatch> matches,
                             bool complete,
                             std::span<const WireShardError> shard_errors) {
  WireWriter w = BeginFrame(FrameType::kResultDone);
  {
    // The stats blob is an ordered run of i64 counters. Appending a new
    // counter later just lengthens the blob; old decoders read the
    // prefix they know and newer decoders default the missing tail.
    WireWriter f;
    f.PutI64(stats.binary_images_checked);
    f.PutI64(stats.edited_images_bounded);
    f.PutI64(stats.edited_images_skipped);
    f.PutI64(stats.rules_applied);
    f.PutI64(stats.images_instantiated);
    f.PutI64(stats.corrupt_images_skipped);
    w.PutField(tag::kStats, f.data());
  }
  {
    WireWriter f;
    f.PutU64(total_ids);
    w.PutField(tag::kTotalIds, f.data());
  }
  if (!matches.empty()) {
    // One interval per streamed id, in stream order; f64 bit patterns
    // round-trip exactly, keeping loopback results bit-identical.
    WireWriter f;
    for (const SimilarityMatch& match : matches) {
      f.PutF64(match.distance_lo);
      f.PutF64(match.distance_hi);
      f.PutU8(match.exact ? 1 : 0);
    }
    w.PutField(tag::kIntervals, f.data());
  }
  if (!complete || !shard_errors.empty()) {
    // v3 partial-result trailer. Only emitted when there is something to
    // say, so a healthy single-store stream stays byte-identical to v2.
    {
      WireWriter f;
      f.PutU8(complete ? 1 : 0);
      w.PutField(tag::kComplete, f.data());
    }
    WireWriter f;
    f.PutU32(static_cast<uint32_t>(shard_errors.size()));
    for (const WireShardError& error : shard_errors) {
      f.PutU32(error.shard);
      f.PutU16(error.wire_code);
      f.PutU32(static_cast<uint32_t>(error.message.size()));
      f.PutBytes(error.message);
    }
    w.PutField(tag::kShardErrors, f.data());
  }
  return w.Take();
}

Result<ResultDone> DecodeResultDone(const Frame& frame) {
  ResultDone done;
  Status walk = ForEachField(
      frame.fields,
      [&](uint16_t field_tag, std::string_view payload) -> Status {
        WireReader f(payload);
        switch (field_tag) {
          case tag::kStats: {
            if (payload.size() % 8 != 0) {
              return Status::InvalidArgument(
                  "stats blob not a multiple of 8 bytes");
            }
            int64_t* slots[] = {&done.stats.binary_images_checked,
                                &done.stats.edited_images_bounded,
                                &done.stats.edited_images_skipped,
                                &done.stats.rules_applied,
                                &done.stats.images_instantiated,
                                &done.stats.corrupt_images_skipped};
            for (int64_t* slot : slots) {
              if (f.remaining() == 0) break;  // Older peer: shorter blob.
              if (!f.GetI64(slot)) {
                return Status::InvalidArgument("truncated stats blob");
              }
            }
            return Status::OK();  // Extra counters from a newer peer.
          }
          case tag::kTotalIds: {
            if (!f.GetU64(&done.total_ids)) {
              return Status::InvalidArgument("truncated total-ids field");
            }
            return Status::OK();
          }
          case tag::kIntervals: {
            constexpr size_t kEntryBytes = 8 + 8 + 1;
            if (payload.size() % kEntryBytes != 0) {
              return Status::InvalidArgument(
                  "interval trailer not a multiple of 17 bytes");
            }
            done.matches.reserve(payload.size() / kEntryBytes);
            while (f.remaining() > 0) {
              SimilarityMatch match;
              uint8_t exact;
              if (!f.GetF64(&match.distance_lo) ||
                  !f.GetF64(&match.distance_hi) || !f.GetU8(&exact)) {
                return Status::InvalidArgument("truncated interval trailer");
              }
              match.exact = exact != 0;
              done.matches.push_back(match);
            }
            return Status::OK();
          }
          case tag::kComplete: {
            uint8_t complete;
            if (!f.GetU8(&complete)) {
              return Status::InvalidArgument("truncated complete field");
            }
            done.complete = complete != 0;
            return Status::OK();
          }
          case tag::kShardErrors: {
            uint32_t count;
            if (!f.GetU32(&count)) {
              return Status::InvalidArgument("truncated shard-error count");
            }
            for (uint32_t i = 0; i < count; ++i) {
              WireShardError error;
              uint32_t length;
              std::string_view message;
              if (!f.GetU32(&error.shard) || !f.GetU16(&error.wire_code) ||
                  !f.GetU32(&length) || !f.GetBytes(length, &message)) {
                return Status::InvalidArgument(
                    "truncated shard-error list");
              }
              error.message.assign(message);
              done.shard_errors.push_back(std::move(error));
            }
            return Status::OK();
          }
          default:
            return Status::OK();
        }
      });
  MMDB_RETURN_IF_ERROR(walk);
  return done;
}

std::string EncodeError(const Status& status) {
  WireWriter w = BeginFrame(FrameType::kError);
  {
    WireWriter f;
    f.PutU16(static_cast<uint16_t>(ToWireCode(status.code())));
    w.PutField(tag::kCode, f.data());
  }
  {
    WireWriter f;
    f.PutBytes(status.message());
    w.PutField(tag::kMessage, f.data());
  }
  return w.Take();
}

Status DecodeError(const Frame& frame, Status* carried) {
  bool saw_code = false;
  uint16_t code = 0;
  std::string message;
  Status walk = ForEachField(
      frame.fields,
      [&](uint16_t field_tag, std::string_view payload) -> Status {
        WireReader f(payload);
        switch (field_tag) {
          case tag::kCode:
            if (!f.GetU16(&code)) {
              return Status::InvalidArgument("truncated error code field");
            }
            saw_code = true;
            return Status::OK();
          case tag::kMessage:
            message.assign(payload);
            return Status::OK();
          default:
            return Status::OK();
        }
      });
  MMDB_RETURN_IF_ERROR(walk);
  if (!saw_code) {
    return Status::InvalidArgument("error frame lacks a code field");
  }
  *carried = StatusFromWire(code, std::move(message));
  return Status::OK();
}

std::string EncodeInfoRequest() {
  return BeginFrame(FrameType::kInfoRequest).Take();
}

std::string EncodeInfoResponse(const ServerInfo& info) {
  WireWriter w = BeginFrame(FrameType::kInfoResponse);
  {
    WireWriter f;
    f.PutI32(info.quantizer_divisions);
    w.PutField(tag::kDivisions, f.data());
  }
  {
    WireWriter f;
    f.PutU8(info.color_space);
    w.PutField(tag::kColorSpace, f.data());
  }
  {
    WireWriter f;
    f.PutU64(info.image_count);
    w.PutField(tag::kImageCount, f.data());
  }
  {
    WireWriter f;
    f.PutU16(kProtocolVersion);
    w.PutField(tag::kServerVersion, f.data());
  }
  return w.Take();
}

Result<ServerInfo> DecodeInfoResponse(const Frame& frame) {
  ServerInfo info;
  Status walk = ForEachField(
      frame.fields,
      [&](uint16_t field_tag, std::string_view payload) -> Status {
        WireReader f(payload);
        bool ok = true;
        switch (field_tag) {
          case tag::kDivisions:
            ok = f.GetI32(&info.quantizer_divisions);
            break;
          case tag::kColorSpace:
            ok = f.GetU8(&info.color_space);
            break;
          case tag::kImageCount:
            ok = f.GetU64(&info.image_count);
            break;
          case tag::kServerVersion:
            ok = f.GetU16(&info.protocol_version);
            break;
          default:
            break;
        }
        return ok ? Status::OK()
                  : Status::InvalidArgument("truncated info field");
      });
  MMDB_RETURN_IF_ERROR(walk);
  return info;
}

std::string EncodePing() { return BeginFrame(FrameType::kPing).Take(); }
std::string EncodePong() { return BeginFrame(FrameType::kPong).Take(); }

std::string EncodeHealthRequest() {
  return BeginFrame(FrameType::kHealthRequest).Take();
}

std::string EncodeHealthResponse(const HealthInfo& info) {
  WireWriter w = BeginFrame(FrameType::kHealthResponse);
  {
    WireWriter f;
    f.PutU8(info.serving);
    w.PutField(tag::kServing, f.data());
  }
  if (!info.shard_states.empty()) {
    WireWriter f;
    f.PutU32(static_cast<uint32_t>(info.shard_states.size()));
    for (uint8_t state : info.shard_states) f.PutU8(state);
    w.PutField(tag::kShardStates, f.data());
  }
  return w.Take();
}

Result<HealthInfo> DecodeHealthResponse(const Frame& frame) {
  HealthInfo info;
  Status walk = ForEachField(
      frame.fields,
      [&](uint16_t field_tag, std::string_view payload) -> Status {
        WireReader f(payload);
        switch (field_tag) {
          case tag::kServing:
            if (!f.GetU8(&info.serving)) {
              return Status::InvalidArgument("truncated serving field");
            }
            return Status::OK();
          case tag::kShardStates: {
            uint32_t count;
            if (!f.GetU32(&count)) {
              return Status::InvalidArgument("truncated shard-state count");
            }
            info.shard_states.reserve(count);
            for (uint32_t i = 0; i < count; ++i) {
              uint8_t state;
              if (!f.GetU8(&state)) {
                return Status::InvalidArgument(
                    "truncated shard-state list");
              }
              info.shard_states.push_back(state);
            }
            return Status::OK();
          }
          default:
            return Status::OK();
        }
      });
  MMDB_RETURN_IF_ERROR(walk);
  return info;
}

std::string EncodeExplainResponse(std::string_view plan_text) {
  WireWriter w = BeginFrame(FrameType::kExplainResponse);
  WireWriter f;
  f.PutBytes(plan_text);
  w.PutField(tag::kPlanText, f.data());
  return w.Take();
}

Result<std::string> DecodeExplainResponse(const Frame& frame) {
  std::string text;
  bool saw_text = false;
  Status walk = ForEachField(
      frame.fields,
      [&](uint16_t field_tag, std::string_view payload) -> Status {
        if (field_tag == tag::kPlanText) {
          text.assign(payload);
          saw_text = true;
        }
        return Status::OK();
      });
  MMDB_RETURN_IF_ERROR(walk);
  if (!saw_text) {
    return Status::InvalidArgument("explain response lacks a plan field");
  }
  return text;
}

}  // namespace mmdb::net
