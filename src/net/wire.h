#ifndef MMDB_NET_WIRE_H_
#define MMDB_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace mmdb::net {

/// Append-only little-endian byte emitter for wire frames. All integers
/// are fixed-width LE; doubles travel as their IEEE-754 bit pattern, so
/// an encode/decode round trip is bit-identical.
class WireWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutLe(v, 2); }
  void PutU32(uint32_t v) { PutLe(v, 4); }
  void PutU64(uint64_t v) { PutLe(v, 8); }
  void PutI32(int32_t v) { PutLe(static_cast<uint32_t>(v), 4); }
  void PutI64(int64_t v) { PutLe(static_cast<uint64_t>(v), 8); }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutBytes(std::string_view bytes) { out_.append(bytes); }

  /// Emits one tagged field: `tag` (u16) + payload length (u32) +
  /// payload. Decoders skip tags they do not know, which is the whole
  /// forward-compatibility story of the protocol.
  void PutField(uint16_t tag, std::string_view payload) {
    PutU16(tag);
    PutU32(static_cast<uint32_t>(payload.size()));
    PutBytes(payload);
  }

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void PutLe(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string out_;
};

/// Bounds-checked little-endian reader over a borrowed byte region.
/// Every getter returns false (and trips the sticky `failed` flag)
/// instead of reading past the end, so decoding arbitrary bytes — the
/// fuzz tests feed it exactly that — can refuse but never overrun.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (!Need(1)) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU16(uint16_t* v) {
    uint64_t raw;
    if (!GetLe(2, &raw)) return false;
    *v = static_cast<uint16_t>(raw);
    return true;
  }
  bool GetU32(uint32_t* v) {
    uint64_t raw;
    if (!GetLe(4, &raw)) return false;
    *v = static_cast<uint32_t>(raw);
    return true;
  }
  bool GetU64(uint64_t* v) { return GetLe(8, v); }
  bool GetI32(int32_t* v) {
    uint32_t raw;
    if (!GetU32(&raw)) return false;
    *v = static_cast<int32_t>(raw);
    return true;
  }
  bool GetI64(int64_t* v) {
    uint64_t raw;
    if (!GetU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }
  bool GetF64(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetBytes(size_t n, std::string_view* out) {
    if (!Need(n)) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }
  bool Skip(size_t n) {
    if (!Need(n)) return false;
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool failed() const { return failed_; }

 private:
  bool Need(size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }
  bool GetLe(int bytes, uint64_t* v) {
    if (!Need(static_cast<size_t>(bytes))) return false;
    uint64_t out = 0;
    for (int i = 0; i < bytes; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += static_cast<size_t>(bytes);
    *v = out;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace mmdb::net

#endif  // MMDB_NET_WIRE_H_
