#ifndef MMDB_NET_CLIENT_H_
#define MMDB_NET_CLIENT_H_

#include <string>

#include "core/query_service.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/result.h"

namespace mmdb::net {

/// Client-side knobs.
struct ClientOptions {
  /// Upper bound on one response frame.
  size_t max_frame_bytes = 16 * 1024 * 1024;
  /// Extra wait past the request's own deadline before the client gives
  /// up on the socket locally (the server is expected to answer
  /// DeadlineExceeded itself; the grace covers a dead server). 0 waits
  /// forever.
  double deadline_grace_seconds = 2.0;
};

/// A blocking remote handle to a `QueryServer`: `Execute` takes the
/// *identical* `QueryRequest` struct the embedded `QueryService` takes
/// and returns the identical `QueryResult` — same ids, same order, same
/// stats — so call sites switch between linking the database in-process
/// and querying it over TCP by changing one object.
///
/// One `Client` is one connection and is NOT thread-safe (RPCs are
/// serialized on the socket); open one client per thread. Move-only.
/// Any transport error closes the connection (`connected()` turns
/// false); reconnect by constructing a new client.
class Client {
 public:
  Client() = default;
  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Result<Client> Connect(const std::string& host, int port,
                                ClientOptions options = {});

  bool connected() const { return socket_.valid(); }

  /// Runs one query remotely. `request.deadline` travels as remaining
  /// milliseconds and is enforced by the server exactly like an
  /// embedded deadline; `request.cancel` is local-only (closing the
  /// client cancels server-side via the disconnect watcher).
  Result<QueryResult> Execute(const QueryRequest& request);

  /// Renders the server-side execution plan for `request` without
  /// running it — the same text `ExplainQuery` produces embedded.
  Result<std::string> Explain(const QueryRequest& request);

  /// The server's quantizer shape and collection size — enough for a
  /// remote caller to parse color expressions (`ParseQuery`) with the
  /// same bins the server scans.
  Result<ServerInfo> GetInfo();

  /// Round-trips a ping frame.
  Status Ping();

  void Close() { socket_.Close(); }

 private:
  /// Sends `payload` and reads the next frame into `response_buffer_`;
  /// drops the connection on transport failure.
  Result<Frame> RoundTrip(std::string_view payload);

  Socket socket_;
  ClientOptions options_;
  std::string response_buffer_;
};

}  // namespace mmdb::net

#endif  // MMDB_NET_CLIENT_H_
