#ifndef MMDB_NET_CLIENT_H_
#define MMDB_NET_CLIENT_H_

#include <string>

#include "core/query_service.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/result.h"

namespace mmdb::net {

/// Client-side knobs.
struct ClientOptions {
  /// Upper bound on one response frame.
  size_t max_frame_bytes = 16 * 1024 * 1024;
  /// Extra wait past the request's own deadline before the client gives
  /// up on the socket locally (the server is expected to answer
  /// DeadlineExceeded itself; the grace covers a dead server). 0 waits
  /// forever.
  double deadline_grace_seconds = 2.0;
  /// Transparent reconnection on transient transport failure (connect
  /// refused, ECONNRESET, a server restart between requests): how many
  /// times `Connect` / an RPC will re-dial before giving up. 0 keeps
  /// the PR-5 behavior — one connection, fail fast. Each re-dial counts
  /// in `mmdb_net_client_reconnects_total`. Queries are read-only, so a
  /// reconnect-and-resend never double-applies anything.
  int connect_retries = 0;
  /// First re-dial delay; grows by `retry_backoff_multiplier` per
  /// attempt and is jittered by ±`retry_jitter_fraction` so a fleet of
  /// clients re-dialing a restarted shard spreads out instead of
  /// stampeding (the PR-4 storage retry idiom).
  double retry_backoff_seconds = 0.02;
  double retry_backoff_multiplier = 2.0;
  double retry_jitter_fraction = 0.25;
};

/// Out-slot for `Execute`: whether the answer covered the whole corpus,
/// plus the typed per-shard errors when it did not (the protocol v3
/// partial-result trailer a scatter-gather coordinator emits). A
/// single-store server always reports `complete == true`.
struct Completeness {
  bool complete = true;
  std::vector<WireShardError> shard_errors;
};

/// A blocking remote handle to a `QueryServer`: `Execute` takes the
/// *identical* `QueryRequest` struct the embedded `QueryService` takes
/// and returns the identical `QueryResult` — same ids, same order, same
/// stats — so call sites switch between linking the database in-process
/// and querying it over TCP by changing one object.
///
/// One `Client` is one connection and is NOT thread-safe (RPCs are
/// serialized on the socket); open one client per thread. Move-only.
/// Any transport error closes the connection (`connected()` turns
/// false); reconnect by constructing a new client.
class Client {
 public:
  Client() = default;
  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Result<Client> Connect(const std::string& host, int port,
                                ClientOptions options = {});

  bool connected() const { return socket_.valid(); }

  /// Runs one query remotely. `request.deadline` travels as remaining
  /// milliseconds and is enforced by the server exactly like an
  /// embedded deadline; `request.cancel` is local-only (closing the
  /// client cancels server-side via the disconnect watcher).
  ///
  /// `completeness` (optional) receives the v3 partial-result trailer:
  /// against a sharded coordinator a degraded answer comes back OK with
  /// `complete == false` and the failed shards itemized — never as a
  /// hung socket or a silently truncated id stream.
  Result<QueryResult> Execute(const QueryRequest& request,
                              Completeness* completeness = nullptr);

  /// Renders the server-side execution plan for `request` without
  /// running it — the same text `ExplainQuery` produces embedded.
  Result<std::string> Explain(const QueryRequest& request);

  /// The server's quantizer shape and collection size — enough for a
  /// remote caller to parse color expressions (`ParseQuery`) with the
  /// same bins the server scans.
  Result<ServerInfo> GetInfo();

  /// Round-trips a ping frame.
  Status Ping();

  /// Probes the server's serving state (protocol v3). Sharded servers
  /// also report per-shard circuit-breaker states.
  Result<HealthInfo> Health();

  void Close() { socket_.Close(); }

 private:
  /// Sends `payload` and reads the next frame into `response_buffer_`;
  /// drops the connection on transport failure.
  Result<Frame> RoundTrip(std::string_view payload);

  /// One Execute attempt on the current connection.
  Result<QueryResult> ExecuteOnce(const QueryRequest& request,
                                  Completeness* completeness);

  /// Re-dials the remembered endpoint (counted in
  /// `mmdb_net_client_reconnects_total`).
  Status Reconnect();

  /// Sleeps the jittered exponential-backoff delay before re-dial
  /// number `retry` (1-based).
  void SleepBackoff(int retry) const;

  Socket socket_;
  ClientOptions options_;
  std::string host_;
  int port_ = 0;
  std::string response_buffer_;
};

}  // namespace mmdb::net

#endif  // MMDB_NET_CLIENT_H_
