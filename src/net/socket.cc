#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

namespace mmdb::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Resolves host:port to IPv4/IPv6 socket addresses.
Result<int> OpenAndDo(const std::string& host, int port, bool listen_mode,
                      int backlog) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (listen_mode) hints.ai_flags = AI_PASSIVE;
  addrinfo* found = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_text.c_str(), &hints, &found);
  if (rc != 0) {
    return Status::IoError("getaddrinfo(" + host + "): " +
                           ::gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses resolved for " + host);
  int fd = -1;
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError(Errno("socket"));
      continue;
    }
    if (listen_mode) {
      int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
          ::listen(fd, backlog) == 0) {
        break;
      }
      last = Status::IoError(Errno("bind/listen"));
    } else {
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      last = Status::IoError(Errno("connect to " + host + ":" + port_text));
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) return last;
  return fd;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::ConnectTcp(const std::string& host, int port) {
  MMDB_ASSIGN_OR_RETURN(int fd, OpenAndDo(host, port, false, 0));
  // RPCs are small request/response exchanges; Nagle only adds latency.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

Status Socket::SendAll(const void* data, size_t n) {
  if (!valid()) return Status::IoError("send on closed socket");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that went away must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("send"));
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t n, bool* clean_close) {
  if (clean_close != nullptr) *clean_close = false;
  if (!valid()) return Status::IoError("recv on closed socket");
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("receive timed out");
      }
      return Status::IoError(Errno("recv"));
    }
    if (rc == 0) {
      if (got == 0 && clean_close != nullptr) {
        *clean_close = true;
        return Status::OK();
      }
      return Status::IoError("connection closed mid-message");
    }
    got += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status Socket::SetRecvTimeout(double seconds) {
  if (!valid()) return Status::IoError("setsockopt on closed socket");
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    long usec =
        std::lround((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    // lround can land exactly on one second (e.g. 6.9999999 rounds to
    // 1000000 µs), which SO_RCVTIMEO rejects with EDOM — carry it.
    if (usec >= 1000000) {
      tv.tv_sec += 1;
      usec = 0;
    }
    tv.tv_usec = static_cast<suseconds_t>(usec);
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IoError(Errno("setsockopt(SO_RCVTIMEO)"));
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Result<ListenSocket> ListenSocket::Listen(const std::string& host, int port,
                                          int backlog) {
  MMDB_ASSIGN_OR_RETURN(int fd, OpenAndDo(host, port, true, backlog));
  ListenSocket listener;
  listener.fd_ = fd;
  // Recover the kernel-chosen port for the ephemeral (port 0) case.
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    if (addr.ss_family == AF_INET) {
      listener.port_ =
          ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
    } else if (addr.ss_family == AF_INET6) {
      listener.port_ =
          ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
    }
  }
  if (listener.port_ == 0) listener.port_ = port;
  return listener;
}

Result<Socket> ListenSocket::AcceptWithTimeout(double timeout_seconds,
                                               bool* timed_out) {
  *timed_out = false;
  if (!valid()) return Status::IoError("accept on closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  const int rc =
      ::poll(&pfd, 1, static_cast<int>(std::lround(timeout_seconds * 1e3)));
  if (rc < 0) {
    if (errno == EINTR) {
      *timed_out = true;
      return Status::IoError("accept interrupted");
    }
    return Status::IoError(Errno("poll(listen)"));
  }
  if (rc == 0) {
    *timed_out = true;
    return Status::IoError("accept timed out");
  }
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      *timed_out = true;
      return Status::IoError("accept raced a dropped connection");
    }
    return Status::IoError(Errno("accept"));
  }
  int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(conn);
}

void ListenSocket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WriteFrame(Socket& socket, std::string_view payload) {
  char prefix[kLengthPrefixBytes];
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (size_t i = 0; i < kLengthPrefixBytes; ++i) {
    prefix[i] = static_cast<char>((length >> (8 * i)) & 0xff);
  }
  MMDB_RETURN_IF_ERROR(socket.SendAll(prefix, sizeof(prefix)));
  return socket.SendAll(payload.data(), payload.size());
}

Status ReadFrame(Socket& socket, size_t max_frame_bytes,
                 std::string* payload, bool* closed) {
  if (closed != nullptr) *closed = false;
  char prefix[kLengthPrefixBytes];
  MMDB_RETURN_IF_ERROR(socket.RecvAll(prefix, sizeof(prefix), closed));
  if (closed != nullptr && *closed) return Status::OK();
  uint32_t length = 0;
  for (size_t i = 0; i < kLengthPrefixBytes; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i]))
              << (8 * i);
  }
  if (length == 0) {
    return Status::InvalidArgument("zero-length frame");
  }
  if (length > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(length) +
        " bytes exceeds the limit of " + std::to_string(max_frame_bytes));
  }
  payload->resize(length);
  return socket.RecvAll(payload->data(), length, nullptr);
}

}  // namespace mmdb::net
