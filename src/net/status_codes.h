#ifndef MMDB_NET_STATUS_CODES_H_
#define MMDB_NET_STATUS_CODES_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace mmdb::net {

/// The wire representation of a `StatusCode`. Values are part of the
/// protocol and MUST never be renumbered — only appended. They are
/// deliberately decoupled from the in-memory enum so the library can
/// reorder or extend `StatusCode` without breaking old peers.
enum class WireStatusCode : uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCorruption = 5,
  kIoError = 6,
  kResourceExhausted = 7,
  kNotSupported = 8,
  kInternal = 9,
  kDeadlineExceeded = 10,
  kCancelled = 11,
  kDataLoss = 12,
  /// v3 appended: an unavailable shard/replica/peer (circuit open or
  /// unreachable) behind a coordinator's typed per-shard errors.
  kUnavailable = 13,
  /// A peer sent a code this build does not know (it is newer). Never
  /// produced by `ToWireCode`.
  kUnknown = 0xffff,
};

/// Maps an in-memory status code onto the wire. The switch is exhaustive
/// with no default case, so adding a `StatusCode` without extending this
/// table fails the build (-Wswitch -Werror) instead of silently mapping
/// to `kUnknown`.
WireStatusCode ToWireCode(StatusCode code);

/// Maps a wire code back to the in-memory enum. Codes from a newer peer
/// that this build does not know decode as `StatusCode::kInternal` (the
/// message still carries the peer's text).
StatusCode FromWireCode(uint16_t wire_code);

/// Reconstructs a `Status` from its wire form. `wire_code` must be
/// non-OK (an OK wire status has no error frame to travel in).
Status StatusFromWire(uint16_t wire_code, std::string message);

}  // namespace mmdb::net

#endif  // MMDB_NET_STATUS_CODES_H_
