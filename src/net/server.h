#ifndef MMDB_NET_SERVER_H_
#define MMDB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.h"
#include "core/executor.h"
#include "core/query_service.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace mmdb::shard {
class Coordinator;
}  // namespace mmdb::shard

namespace mmdb::net {

/// Sizing and placement of a `QueryServer`.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; `QueryServer::port()` reports it.
  int port = 0;
  /// Connection tasks run thread-per-connection on a PR-1 `Executor`:
  /// this many connections are served concurrently, further ones queue
  /// until a slot frees (an accepted-but-queued connection sees connect
  /// succeed and its first response stall). Size it at the expected
  /// concurrent-connection count.
  int connection_threads = 8;
  /// Upper bound on a single frame in either direction. Larger inbound
  /// declarations are rejected and the connection dropped (the framing
  /// cannot be trusted past an oversized length).
  size_t max_frame_bytes = 16 * 1024 * 1024;
  /// Period of the disconnect watcher's poll over in-flight
  /// connections; bounds how fast a dropped client cancels its query.
  double watch_interval_seconds = 0.005;
};

/// The network face of a `QueryService`: accepts length-prefixed
/// protocol frames (net/protocol.h), decodes each `kExecuteRequest`
/// into the *same* `QueryRequest` struct the embedded path uses, runs
/// it through the service — admission control, deadlines (propagated
/// from the wire `deadline_ms` field), metrics, the works — and streams
/// the result back as id chunks plus a stats trailer.
///
/// Lifecycle extras the wire adds on top of the service:
///  * client disconnect cancels the in-flight query: a watcher thread
///    polls serving connections for hangup and trips the per-request
///    `CancelToken`, so an abandoned query stops burning the pool;
///  * malformed frames get a typed error back (and count in
///    `mmdb_net_decode_errors_total`); structurally broken framing
///    drops the connection.
///
/// The database and service must outlive the server. `Stop()` (or
/// destruction) drains: no new connections, open ones are shut down,
/// and every connection task joins before Stop returns.
class QueryServer {
 public:
  /// Cumulative per-server counters (the registry mirrors them into
  /// `mmdb_net_*` metrics process-wide).
  struct Stats {
    int64_t connections_accepted = 0;
    int64_t active_connections = 0;
    int64_t requests = 0;
    int64_t decode_errors = 0;
    int64_t bytes_received = 0;
    int64_t bytes_sent = 0;
  };

  QueryServer(const MultimediaDatabase* db, QueryService* service,
              ServerOptions options = {});
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;
  ~QueryServer();

  /// Binds, listens, and starts the acceptor + watcher threads. Fails
  /// if the address is unavailable or the server already started.
  Status Start();

  /// Stops accepting, shuts down open connections, joins everything.
  /// Idempotent.
  void Stop();

  /// Routes every query through a scatter-gather `shard::Coordinator`
  /// instead of the local service: answers are the coordinator's merged
  /// global-id results, and a degraded answer streams with the protocol
  /// v3 partial-result trailer (`complete=false` + typed per-shard
  /// errors). The coordinator must outlive the server; call before
  /// `Start` (not synchronized against in-flight RPCs). Explain/info
  /// keep answering from the local database, which in sharded serving
  /// is the mirror source holding the same corpus.
  void AttachCoordinator(shard::Coordinator* coordinator) {
    coordinator_ = coordinator;
  }

  /// The bound port (after a successful `Start`).
  int port() const { return port_; }
  const std::string& host() const { return options_.host; }

  Stats GetStats() const;

 private:
  /// One in-flight RPC whose socket the watcher is guarding. The token
  /// is shared: the watcher's snapshot may outlive the RPC by one poll
  /// round, so it must keep the token alive to (harmlessly) cancel it.
  struct Watched {
    int fd;
    std::shared_ptr<CancelToken> token;
  };

  void AcceptLoop();
  void WatchLoop();
  void ServeConnection(std::shared_ptr<Socket> socket);
  /// Handles one decoded frame; false ends the connection.
  bool HandleFrame(Socket& socket, std::string_view payload);
  bool HandleExecute(Socket& socket, const struct Frame& frame);
  bool HandleExplain(Socket& socket, const struct Frame& frame);
  /// Best-effort error reply; false if the socket is gone.
  bool SendError(Socket& socket, const Status& status);
  Status SendTracked(Socket& socket, std::string_view payload);

  const MultimediaDatabase* db_;
  QueryService* service_;
  /// Non-null in sharded serving mode (see `AttachCoordinator`).
  shard::Coordinator* coordinator_ = nullptr;
  const ServerOptions options_;

  ListenSocket listener_;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::thread watcher_;
  std::unique_ptr<Executor> connections_;

  std::mutex mu_;
  std::set<int> open_fds_;
  std::vector<Watched> watched_;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> active_connections_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> decode_errors_{0};
  std::atomic<int64_t> bytes_received_{0};
  std::atomic<int64_t> bytes_sent_{0};

  obs::Counter* connections_total_;
  obs::Counter* requests_total_;
  obs::Counter* bytes_rx_total_;
  obs::Counter* bytes_tx_total_;
  obs::Counter* decode_errors_total_;
  obs::Histogram* rpc_latency_;
};

}  // namespace mmdb::net

#endif  // MMDB_NET_SERVER_H_
