#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <span>
#include <utility>

#include "core/database.h"
#include "core/plan.h"
#include "net/protocol.h"
#include "net/status_codes.h"
#include "shard/coordinator.h"
#include "util/stopwatch.h"

#ifndef POLLRDHUP
#define POLLRDHUP 0  // Non-Linux fallback; POLLHUP/POLLERR still fire.
#endif

namespace mmdb::net {

namespace {

/// Ids per kResultChunk frame: big enough to amortize framing, small
/// enough that a huge result streams instead of ballooning one frame.
constexpr size_t kIdsPerChunk = 512;

constexpr double kAcceptPollSeconds = 0.1;

}  // namespace

QueryServer::QueryServer(const MultimediaDatabase* db, QueryService* service,
                         ServerOptions options)
    : db_(db), service_(service), options_(std::move(options)) {
  obs::Registry& registry = obs::Registry::Default();
  connections_total_ = registry.GetCounter(
      "mmdb_net_connections_total",
      "TCP connections accepted by the query server.");
  requests_total_ = registry.GetCounter(
      "mmdb_net_requests_total", "Query RPCs received over the wire.");
  bytes_rx_total_ = registry.GetCounter(
      "mmdb_net_bytes_received_total",
      "Bytes received by the query server (framing included).");
  bytes_tx_total_ = registry.GetCounter(
      "mmdb_net_bytes_sent_total",
      "Bytes sent by the query server (framing included).");
  decode_errors_total_ = registry.GetCounter(
      "mmdb_net_decode_errors_total",
      "Frames rejected as malformed (bad magic/framing/fields).");
  rpc_latency_ = registry.GetHistogram(
      "mmdb_net_rpc_latency_seconds",
      "Wall time of one query RPC, request decode to response flush.");
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (started_.exchange(true)) {
    return Status::AlreadyExists("server already started");
  }
  MMDB_ASSIGN_OR_RETURN(
      listener_,
      ListenSocket::Listen(options_.host, options_.port));
  port_ = listener_.port();
  connections_ = std::make_unique<Executor>(
      std::max(1, options_.connection_threads));
  stopping_.store(false);
  watcher_ = std::thread([this] { WatchLoop(); });
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  if (!started_.load() || stopping_.exchange(true)) {
    // Never started, or another Stop already ran/running: still join if
    // that Stop was ours re-entered via the destructor.
    if (acceptor_.joinable()) acceptor_.join();
    if (watcher_.joinable()) watcher_.join();
    return;
  }
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  {
    // Wake every connection task blocked in ReadFrame; the tasks
    // themselves close their fds on the way out.
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (connections_ != nullptr) connections_->Shutdown();
  if (watcher_.joinable()) watcher_.join();
}

QueryServer::Stats QueryServer::GetStats() const {
  Stats stats;
  stats.connections_accepted = connections_accepted_.load();
  stats.active_connections = active_connections_.load();
  stats.requests = requests_.load();
  stats.decode_errors = decode_errors_.load();
  stats.bytes_received = bytes_received_.load();
  stats.bytes_sent = bytes_sent_.load();
  return stats;
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load()) {
    bool timed_out = false;
    Result<Socket> accepted =
        listener_.AcceptWithTimeout(kAcceptPollSeconds, &timed_out);
    if (!accepted.ok()) {
      if (timed_out) continue;
      break;  // Listener broken (closed or fatal error): stop accepting.
    }
    connections_accepted_.fetch_add(1);
    connections_total_->Increment();
    active_connections_.fetch_add(1);
    auto socket = std::make_shared<Socket>(std::move(accepted).value());
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_fds_.insert(socket->fd());
    }
    connections_->Submit([this, socket] { ServeConnection(socket); });
  }
}

void QueryServer::WatchLoop() {
  const auto interval = std::chrono::duration<double>(
      std::max(0.001, options_.watch_interval_seconds));
  while (!stopping_.load()) {
    std::vector<Watched> snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshot = watched_;
    }
    if (!snapshot.empty()) {
      std::vector<pollfd> fds;
      fds.reserve(snapshot.size());
      for (const Watched& w : snapshot) {
        fds.push_back(pollfd{w.fd, POLLRDHUP, 0});
      }
      if (::poll(fds.data(), fds.size(), 0) > 0) {
        for (size_t i = 0; i < fds.size(); ++i) {
          if (fds[i].revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) {
            snapshot[i].token->Cancel();
          }
        }
      }
    }
    std::this_thread::sleep_for(interval);
  }
}

Status QueryServer::SendTracked(Socket& socket, std::string_view payload) {
  Status status = WriteFrame(socket, payload);
  if (status.ok()) {
    const int64_t framed =
        static_cast<int64_t>(payload.size() + kLengthPrefixBytes);
    bytes_sent_.fetch_add(framed);
    bytes_tx_total_->Increment(framed);
  }
  return status;
}

bool QueryServer::SendError(Socket& socket, const Status& status) {
  return SendTracked(socket, EncodeError(status)).ok();
}

void QueryServer::ServeConnection(std::shared_ptr<Socket> socket) {
  std::string payload;
  while (!stopping_.load()) {
    bool closed = false;
    Status read = ReadFrame(*socket, options_.max_frame_bytes, &payload,
                            &closed);
    if (!read.ok()) {
      if (read.code() == StatusCode::kInvalidArgument) {
        // Oversized/zero length: framing is untrustworthy, answer once
        // and drop the connection.
        decode_errors_.fetch_add(1);
        decode_errors_total_->Increment();
        SendError(*socket, read);
      }
      break;
    }
    if (closed) break;
    const int64_t framed =
        static_cast<int64_t>(payload.size() + kLengthPrefixBytes);
    bytes_received_.fetch_add(framed);
    bytes_rx_total_->Increment(framed);
    if (!HandleFrame(*socket, payload)) break;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_fds_.erase(socket->fd());
  }
  socket->Close();
  active_connections_.fetch_sub(1);
}

bool QueryServer::HandleFrame(Socket& socket, std::string_view payload) {
  Result<Frame> frame = ParseFrame(payload);
  if (!frame.ok()) {
    decode_errors_.fetch_add(1);
    decode_errors_total_->Increment();
    SendError(socket, frame.status());
    return false;  // Bad magic/header: not speaking our protocol.
  }
  switch (frame->type()) {
    case FrameType::kExecuteRequest:
      return HandleExecute(socket, *frame);
    case FrameType::kExplainRequest:
      return HandleExplain(socket, *frame);
    case FrameType::kPing:
      return SendTracked(socket, EncodePong()).ok();
    case FrameType::kInfoRequest: {
      ServerInfo info;
      info.quantizer_divisions = db_->quantizer().divisions();
      info.color_space = static_cast<uint8_t>(db_->quantizer().space());
      info.image_count = db_->collection().BinaryCount() +
                         db_->collection().EditedCount();
      info.protocol_version = kProtocolVersion;
      return SendTracked(socket, EncodeInfoResponse(info)).ok();
    }
    case FrameType::kHealthRequest: {
      HealthInfo health;
      health.serving = stopping_.load() ? 0 : 1;
      if (coordinator_ != nullptr) {
        health.shard_states = coordinator_->health().WireStates();
      }
      return SendTracked(socket, EncodeHealthResponse(health)).ok();
    }
    case FrameType::kResultChunk:
    case FrameType::kResultDone:
    case FrameType::kError:
    case FrameType::kInfoResponse:
    case FrameType::kPong:
    case FrameType::kExplainResponse:
    case FrameType::kHealthResponse:
      // Response types arriving at the server: a confused peer. Typed
      // error, connection stays up (framing is intact).
      return SendError(
          socket, Status::InvalidArgument("response frame sent to server"));
  }
  // A frame type minted after this build: report, keep serving — a vN
  // server must not hang up on a v(N+1) client probing capabilities.
  return SendError(socket,
                   Status::NotSupported(
                       "unknown frame type " +
                       std::to_string(frame->raw_type) +
                       " (client newer than this server?)"));
}

bool QueryServer::HandleExecute(Socket& socket, const Frame& frame) {
  Stopwatch watch;
  Result<QueryRequest> decoded = DecodeExecuteRequest(frame);
  if (!decoded.ok()) {
    decode_errors_.fetch_add(1);
    decode_errors_total_->Increment();
    return SendError(socket, decoded.status());
  }
  requests_.fetch_add(1);
  requests_total_->Increment();

  // Wire the disconnect watcher to this RPC: if the client goes away
  // mid-query, the poll loop trips this token and the processors'
  // cooperative checks stop the scan.
  auto disconnect = std::make_shared<CancelToken>();
  QueryRequest request = std::move(decoded).value();
  request.cancel = disconnect.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    watched_.push_back(Watched{socket.fd(), disconnect});
  }
  // In sharded serving mode the coordinator fans the request out and
  // merges; a degraded answer comes back OK with completeness metadata
  // for the v3 trailer instead of an error.
  Result<QueryResult> result = Status::Internal("unreached");
  bool complete = true;
  std::vector<WireShardError> shard_errors;
  if (coordinator_ != nullptr) {
    Result<shard::ShardedResult> sharded = coordinator_->Execute(request);
    if (sharded.ok()) {
      complete = sharded->complete;
      shard_errors.reserve(sharded->shard_errors.size());
      for (const shard::ShardError& error : sharded->shard_errors) {
        WireShardError wire;
        wire.shard = error.shard;
        wire.wire_code = static_cast<uint16_t>(ToWireCode(error.status.code()));
        wire.message = error.status.message();
        shard_errors.push_back(std::move(wire));
      }
      result = std::move(sharded->result);
    } else {
      result = sharded.status();
    }
  } else {
    result = service_->Execute(request);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    watched_.erase(
        std::remove_if(watched_.begin(), watched_.end(),
                       [&](const Watched& w) {
                         return w.token == disconnect;
                       }),
        watched_.end());
  }

  bool alive;
  if (!result.ok()) {
    alive = SendError(socket, result.status());
  } else {
    alive = true;
    const std::vector<ObjectId>& ids = result->ids;
    for (size_t offset = 0; alive && offset < ids.size();
         offset += kIdsPerChunk) {
      const size_t count = std::min(kIdsPerChunk, ids.size() - offset);
      alive = SendTracked(socket,
                          EncodeResultChunk(std::span<const ObjectId>(
                              ids.data() + offset, count)))
                  .ok();
    }
    if (alive) {
      alive = SendTracked(socket,
                          EncodeResultDone(result->stats, ids.size(),
                                           result->matches, complete,
                                           shard_errors))
                  .ok();
    }
  }
  rpc_latency_->Record(watch.ElapsedSeconds());
  return alive;
}

bool QueryServer::HandleExplain(Socket& socket, const Frame& frame) {
  Result<QueryRequest> decoded = DecodeExecuteRequest(frame);
  if (!decoded.ok()) {
    decode_errors_.fetch_add(1);
    decode_errors_total_->Increment();
    return SendError(socket, decoded.status());
  }
  requests_.fetch_add(1);
  requests_total_->Increment();
  Result<std::string> plan = ExplainQuery(*db_, *decoded);
  if (!plan.ok()) return SendError(socket, plan.status());
  return SendTracked(socket, EncodeExplainResponse(*plan)).ok();
}

}  // namespace mmdb::net
