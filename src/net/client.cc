#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace mmdb::net {

namespace {

obs::Counter* ReconnectsTotal() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "mmdb_net_client_reconnects_total",
      "Re-dial attempts made by net::Client after a transient connect "
      "failure or a dropped connection (ECONNRESET, server restart).");
  return counter;
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, int port,
                               ClientOptions options) {
  Client client;
  client.options_ = options;
  client.host_ = host;
  client.port_ = port;
  Result<Socket> socket = Socket::ConnectTcp(host, port);
  for (int retry = 1; !socket.ok() && retry <= options.connect_retries;
       ++retry) {
    client.SleepBackoff(retry);
    ReconnectsTotal()->Increment();
    socket = Socket::ConnectTcp(host, port);
  }
  MMDB_ASSIGN_OR_RETURN(client.socket_, std::move(socket));
  return client;
}

void Client::SleepBackoff(int retry) const {
  // The PR-4 storage retry idiom (storage/disk_manager.cc): exponential
  // growth per attempt, jittered so synchronized clients of a restarted
  // server spread out instead of re-dialing in lockstep.
  double delay = options_.retry_backoff_seconds;
  for (int i = 1; i < retry; ++i) delay *= options_.retry_backoff_multiplier;
  if (options_.retry_jitter_fraction > 0.0) {
    thread_local std::mt19937_64 rng(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) ^
        0x6d6d64625f6e6574ULL);
    std::uniform_real_distribution<double> jitter(
        1.0 - options_.retry_jitter_fraction,
        1.0 + options_.retry_jitter_fraction);
    delay *= jitter(rng);
  }
  if (delay > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

Status Client::Reconnect() {
  Close();
  ReconnectsTotal()->Increment();
  MMDB_ASSIGN_OR_RETURN(socket_, Socket::ConnectTcp(host_, port_));
  return Status::OK();
}

Result<Frame> Client::RoundTrip(std::string_view payload) {
  if (!connected()) {
    // A previous RPC dropped the connection (or the caller closed it):
    // transparently re-dial when the options allow it, so long-lived
    // clients survive a server restart between requests.
    if (options_.connect_retries <= 0 || host_.empty()) {
      return Status::IoError("client is not connected");
    }
    Status redial = Reconnect();
    for (int retry = 1; !redial.ok() && retry <= options_.connect_retries;
         ++retry) {
      SleepBackoff(retry);
      redial = Reconnect();
    }
    MMDB_RETURN_IF_ERROR(redial);
  }
  Status sent = WriteFrame(socket_, payload);
  if (!sent.ok()) {
    Close();
    return sent;
  }
  Status read = ReadFrame(socket_, options_.max_frame_bytes,
                          &response_buffer_, nullptr);
  if (!read.ok()) {
    Close();
    return read;
  }
  Result<Frame> frame = ParseFrame(response_buffer_);
  if (!frame.ok()) Close();  // Peer is not speaking our protocol.
  return frame;
}

Result<QueryResult> Client::Execute(const QueryRequest& request,
                                    Completeness* completeness) {
  Result<QueryResult> result = ExecuteOnce(request, completeness);
  // Retry only transport-level failures — those drop the connection
  // (`connected()` turns false). A typed error frame from the server
  // leaves the stream intact and is the RPC's real answer, never
  // retried. Queries are read-only, so a resend is safe.
  for (int retry = 1;
       !result.ok() && !connected() && retry <= options_.connect_retries;
       ++retry) {
    SleepBackoff(retry);
    if (!Reconnect().ok()) continue;
    result = ExecuteOnce(request, completeness);
  }
  return result;
}

Result<QueryResult> Client::ExecuteOnce(const QueryRequest& request,
                                        Completeness* completeness) {
  if (completeness != nullptr) *completeness = Completeness{};
  if (!connected()) {
    return Status::IoError("client is not connected");
  }
  // Bound the local wait by the request deadline plus grace, so a dead
  // server cannot park the caller past the deadline it asked for.
  const bool timed = !request.deadline.IsInfinite() &&
                     options_.deadline_grace_seconds > 0;
  if (timed) {
    MMDB_RETURN_IF_ERROR(socket_.SetRecvTimeout(
        std::max(0.0, request.deadline.RemainingSeconds()) +
        options_.deadline_grace_seconds));
  }
  Status sent = WriteFrame(socket_, EncodeExecuteRequest(request));
  if (!sent.ok()) {
    Close();
    return sent;
  }
  QueryResult result;
  for (;;) {
    Status read = ReadFrame(socket_, options_.max_frame_bytes,
                            &response_buffer_, nullptr);
    if (!read.ok()) {
      Close();
      return read;
    }
    Result<Frame> frame = ParseFrame(response_buffer_);
    if (!frame.ok()) {
      Close();
      return frame.status();
    }
    switch (frame->type()) {
      case FrameType::kResultChunk:
        MMDB_RETURN_IF_ERROR(DecodeResultChunk(*frame, &result.ids));
        continue;
      case FrameType::kResultDone: {
        MMDB_ASSIGN_OR_RETURN(ResultDone done, DecodeResultDone(*frame));
        if (done.total_ids != result.ids.size()) {
          Close();
          return Status::Internal(
              "result stream truncated: trailer declares " +
              std::to_string(done.total_ids) + " ids, received " +
              std::to_string(result.ids.size()));
        }
        result.stats = done.stats;
        if (!done.matches.empty()) {
          if (done.matches.size() != result.ids.size()) {
            Close();
            return Status::Internal(
                "interval trailer carries " +
                std::to_string(done.matches.size()) + " entries for " +
                std::to_string(result.ids.size()) + " ids");
          }
          result.matches = std::move(done.matches);
          for (size_t i = 0; i < result.matches.size(); ++i) {
            result.matches[i].id = result.ids[i];
          }
        }
        if (completeness != nullptr) {
          completeness->complete = done.complete;
          completeness->shard_errors = std::move(done.shard_errors);
        }
        if (timed) MMDB_RETURN_IF_ERROR(socket_.SetRecvTimeout(0));
        return result;
      }
      case FrameType::kError: {
        Status error;
        MMDB_RETURN_IF_ERROR(DecodeError(*frame, &error));
        // The RPC failed but the stream is intact: the connection stays
        // usable for the next request.
        if (timed) MMDB_RETURN_IF_ERROR(socket_.SetRecvTimeout(0));
        return error;
      }
      default:
        Close();
        return Status::Internal("unexpected frame type " +
                                std::to_string(frame->raw_type) +
                                " inside a result stream");
    }
  }
}

Result<std::string> Client::Explain(const QueryRequest& request) {
  MMDB_ASSIGN_OR_RETURN(Frame frame,
                        RoundTrip(EncodeExplainRequest(request)));
  if (frame.type() == FrameType::kError) {
    Status error;
    MMDB_RETURN_IF_ERROR(DecodeError(frame, &error));
    return error;
  }
  if (frame.type() != FrameType::kExplainResponse) {
    Close();
    return Status::Internal("expected an explain response, got frame type " +
                            std::to_string(frame.raw_type));
  }
  return DecodeExplainResponse(frame);
}

Result<ServerInfo> Client::GetInfo() {
  MMDB_ASSIGN_OR_RETURN(Frame frame, RoundTrip(EncodeInfoRequest()));
  if (frame.type() == FrameType::kError) {
    Status error;
    MMDB_RETURN_IF_ERROR(DecodeError(frame, &error));
    return error;
  }
  if (frame.type() != FrameType::kInfoResponse) {
    Close();
    return Status::Internal("expected an info response, got frame type " +
                            std::to_string(frame.raw_type));
  }
  return DecodeInfoResponse(frame);
}

Status Client::Ping() {
  Result<Frame> frame = RoundTrip(EncodePing());
  if (!frame.ok()) return frame.status();
  if (frame->type() != FrameType::kPong) {
    Close();
    return Status::Internal("expected a pong, got frame type " +
                            std::to_string(frame->raw_type));
  }
  return Status::OK();
}

Result<HealthInfo> Client::Health() {
  MMDB_ASSIGN_OR_RETURN(Frame frame, RoundTrip(EncodeHealthRequest()));
  if (frame.type() == FrameType::kError) {
    Status error;
    MMDB_RETURN_IF_ERROR(DecodeError(frame, &error));
    return error;
  }
  if (frame.type() != FrameType::kHealthResponse) {
    Close();
    return Status::Internal("expected a health response, got frame type " +
                            std::to_string(frame.raw_type));
  }
  return DecodeHealthResponse(frame);
}

}  // namespace mmdb::net
