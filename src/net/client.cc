#include "net/client.h"

#include <algorithm>
#include <string>
#include <utility>

namespace mmdb::net {

Result<Client> Client::Connect(const std::string& host, int port,
                               ClientOptions options) {
  Client client;
  client.options_ = options;
  MMDB_ASSIGN_OR_RETURN(client.socket_, Socket::ConnectTcp(host, port));
  return client;
}

Result<Frame> Client::RoundTrip(std::string_view payload) {
  if (!connected()) {
    return Status::IoError("client is not connected");
  }
  Status sent = WriteFrame(socket_, payload);
  if (!sent.ok()) {
    Close();
    return sent;
  }
  Status read = ReadFrame(socket_, options_.max_frame_bytes,
                          &response_buffer_, nullptr);
  if (!read.ok()) {
    Close();
    return read;
  }
  Result<Frame> frame = ParseFrame(response_buffer_);
  if (!frame.ok()) Close();  // Peer is not speaking our protocol.
  return frame;
}

Result<QueryResult> Client::Execute(const QueryRequest& request) {
  if (!connected()) {
    return Status::IoError("client is not connected");
  }
  // Bound the local wait by the request deadline plus grace, so a dead
  // server cannot park the caller past the deadline it asked for.
  const bool timed = !request.deadline.IsInfinite() &&
                     options_.deadline_grace_seconds > 0;
  if (timed) {
    MMDB_RETURN_IF_ERROR(socket_.SetRecvTimeout(
        std::max(0.0, request.deadline.RemainingSeconds()) +
        options_.deadline_grace_seconds));
  }
  Status sent = WriteFrame(socket_, EncodeExecuteRequest(request));
  if (!sent.ok()) {
    Close();
    return sent;
  }
  QueryResult result;
  for (;;) {
    Status read = ReadFrame(socket_, options_.max_frame_bytes,
                            &response_buffer_, nullptr);
    if (!read.ok()) {
      Close();
      return read;
    }
    Result<Frame> frame = ParseFrame(response_buffer_);
    if (!frame.ok()) {
      Close();
      return frame.status();
    }
    switch (frame->type()) {
      case FrameType::kResultChunk:
        MMDB_RETURN_IF_ERROR(DecodeResultChunk(*frame, &result.ids));
        continue;
      case FrameType::kResultDone: {
        MMDB_ASSIGN_OR_RETURN(ResultDone done, DecodeResultDone(*frame));
        if (done.total_ids != result.ids.size()) {
          Close();
          return Status::Internal(
              "result stream truncated: trailer declares " +
              std::to_string(done.total_ids) + " ids, received " +
              std::to_string(result.ids.size()));
        }
        result.stats = done.stats;
        if (!done.matches.empty()) {
          if (done.matches.size() != result.ids.size()) {
            Close();
            return Status::Internal(
                "interval trailer carries " +
                std::to_string(done.matches.size()) + " entries for " +
                std::to_string(result.ids.size()) + " ids");
          }
          result.matches = std::move(done.matches);
          for (size_t i = 0; i < result.matches.size(); ++i) {
            result.matches[i].id = result.ids[i];
          }
        }
        if (timed) MMDB_RETURN_IF_ERROR(socket_.SetRecvTimeout(0));
        return result;
      }
      case FrameType::kError: {
        Status error;
        MMDB_RETURN_IF_ERROR(DecodeError(*frame, &error));
        // The RPC failed but the stream is intact: the connection stays
        // usable for the next request.
        if (timed) MMDB_RETURN_IF_ERROR(socket_.SetRecvTimeout(0));
        return error;
      }
      default:
        Close();
        return Status::Internal("unexpected frame type " +
                                std::to_string(frame->raw_type) +
                                " inside a result stream");
    }
  }
}

Result<std::string> Client::Explain(const QueryRequest& request) {
  MMDB_ASSIGN_OR_RETURN(Frame frame,
                        RoundTrip(EncodeExplainRequest(request)));
  if (frame.type() == FrameType::kError) {
    Status error;
    MMDB_RETURN_IF_ERROR(DecodeError(frame, &error));
    return error;
  }
  if (frame.type() != FrameType::kExplainResponse) {
    Close();
    return Status::Internal("expected an explain response, got frame type " +
                            std::to_string(frame.raw_type));
  }
  return DecodeExplainResponse(frame);
}

Result<ServerInfo> Client::GetInfo() {
  MMDB_ASSIGN_OR_RETURN(Frame frame, RoundTrip(EncodeInfoRequest()));
  if (frame.type() == FrameType::kError) {
    Status error;
    MMDB_RETURN_IF_ERROR(DecodeError(frame, &error));
    return error;
  }
  if (frame.type() != FrameType::kInfoResponse) {
    Close();
    return Status::Internal("expected an info response, got frame type " +
                            std::to_string(frame.raw_type));
  }
  return DecodeInfoResponse(frame);
}

Status Client::Ping() {
  Result<Frame> frame = RoundTrip(EncodePing());
  if (!frame.ok()) return frame.status();
  if (frame->type() != FrameType::kPong) {
    Close();
    return Status::Internal("expected a pong, got frame type " +
                            std::to_string(frame->raw_type));
  }
  return Status::OK();
}

}  // namespace mmdb::net
