#include "net/status_codes.h"

#include <utility>

namespace mmdb::net {

WireStatusCode ToWireCode(StatusCode code) {
  // No default: a new StatusCode must be added here (and to
  // FromWireCode) or the build fails under -Wswitch -Werror.
  switch (code) {
    case StatusCode::kOk:
      return WireStatusCode::kOk;
    case StatusCode::kInvalidArgument:
      return WireStatusCode::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireStatusCode::kNotFound;
    case StatusCode::kAlreadyExists:
      return WireStatusCode::kAlreadyExists;
    case StatusCode::kOutOfRange:
      return WireStatusCode::kOutOfRange;
    case StatusCode::kCorruption:
      return WireStatusCode::kCorruption;
    case StatusCode::kIoError:
      return WireStatusCode::kIoError;
    case StatusCode::kResourceExhausted:
      return WireStatusCode::kResourceExhausted;
    case StatusCode::kNotSupported:
      return WireStatusCode::kNotSupported;
    case StatusCode::kInternal:
      return WireStatusCode::kInternal;
    case StatusCode::kDeadlineExceeded:
      return WireStatusCode::kDeadlineExceeded;
    case StatusCode::kCancelled:
      return WireStatusCode::kCancelled;
    case StatusCode::kDataLoss:
      return WireStatusCode::kDataLoss;
    case StatusCode::kUnavailable:
      return WireStatusCode::kUnavailable;
  }
  return WireStatusCode::kUnknown;  // Unreachable for valid enum values.
}

StatusCode FromWireCode(uint16_t wire_code) {
  switch (static_cast<WireStatusCode>(wire_code)) {
    case WireStatusCode::kOk:
      return StatusCode::kOk;
    case WireStatusCode::kInvalidArgument:
      return StatusCode::kInvalidArgument;
    case WireStatusCode::kNotFound:
      return StatusCode::kNotFound;
    case WireStatusCode::kAlreadyExists:
      return StatusCode::kAlreadyExists;
    case WireStatusCode::kOutOfRange:
      return StatusCode::kOutOfRange;
    case WireStatusCode::kCorruption:
      return StatusCode::kCorruption;
    case WireStatusCode::kIoError:
      return StatusCode::kIoError;
    case WireStatusCode::kResourceExhausted:
      return StatusCode::kResourceExhausted;
    case WireStatusCode::kNotSupported:
      return StatusCode::kNotSupported;
    case WireStatusCode::kInternal:
      return StatusCode::kInternal;
    case WireStatusCode::kDeadlineExceeded:
      return StatusCode::kDeadlineExceeded;
    case WireStatusCode::kCancelled:
      return StatusCode::kCancelled;
    case WireStatusCode::kDataLoss:
      return StatusCode::kDataLoss;
    case WireStatusCode::kUnavailable:
      return StatusCode::kUnavailable;
    case WireStatusCode::kUnknown:
      return StatusCode::kInternal;
  }
  // A genuinely unknown numeric value from a newer peer.
  return StatusCode::kInternal;
}

Status StatusFromWire(uint16_t wire_code, std::string message) {
  StatusCode code = FromWireCode(wire_code);
  if (code == StatusCode::kOk) {
    // An error frame carrying kOk is itself malformed.
    return Status::Internal("error frame carried an OK status code");
  }
  return Status(code, std::move(message));
}

}  // namespace mmdb::net
