#ifndef MMDB_NET_PROTOCOL_H_
#define MMDB_NET_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/query.h"
#include "core/query_service.h"
#include "util/result.h"

namespace mmdb::net {

/// The one versioned request/response schema shared by the embedded and
/// the remote path. A frame is
///
/// ```
/// u32 magic "MMDB" | u16 version | u16 frame type | tagged fields...
/// field := u16 tag | u32 length | payload[length]
/// ```
///
/// (the length prefix that precedes a frame on a socket is transport
/// framing, `socket.h`'s job, not part of the frame itself).
///
/// Versioning policy:
///  * The version field announces the *sender's* protocol revision; it
///    is informational, not a gate. Decoders accept any version >= 1.
///  * Compatibility comes from the field tags: a decoder reads the tags
///    it knows and skips the rest, so a v(N+1) peer may append fields
///    (or whole frame types) and a vN peer still interoperates.
///  * Existing tags, frame types, and wire status codes are never
///    renumbered or re-typed — only appended.
inline constexpr uint32_t kMagic = 0x42444d4d;  // "MMDB" read little-endian.
/// v2 appended: similarity payloads (tag 5 on kExecuteRequest), the
/// distance-interval result trailer (tag 3 on kResultDone), the explain
/// frames (types 9/10), and wire method code 5 (planned). v1 peers
/// interoperate untouched — every addition is a new tag, frame type, or
/// code.
///
/// v3 appended: the partial-result trailer (tags 4/5 on kResultDone —
/// a `complete` flag plus typed per-shard errors from a scatter-gather
/// coordinator), the health-probe frames (types 11/12), and wire status
/// code 13 (Unavailable). A v2 peer skips the new trailer tags and sees
/// the merged ids/stats exactly as before — partiality degrades to
/// silence only for peers that predate the concept, never for current
/// ones.
inline constexpr uint16_t kProtocolVersion = 3;
inline constexpr uint16_t kMinProtocolVersion = 1;

/// Frame header size: magic + version + type.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Frame types. Appended-only, like everything else on the wire.
enum class FrameType : uint16_t {
  /// Client -> server: run one `QueryRequest`.
  kExecuteRequest = 1,
  /// Server -> client: a slice of a result's object ids (zero or more
  /// per query, streamed in processor order).
  kResultChunk = 2,
  /// Server -> client: end of a successful result stream — the
  /// `QueryStats` plus the total id count, for stream integrity.
  kResultDone = 3,
  /// Server -> client: the query (or the frame before it) failed; the
  /// payload reconstructs the typed `Status`.
  kError = 4,
  /// Client -> server: describe yourself (no fields).
  kInfoRequest = 5,
  /// Server -> client: quantizer shape and collection size, so a remote
  /// client can parse color expressions exactly like an embedded one.
  kInfoResponse = 6,
  /// Liveness probe and its echo.
  kPing = 7,
  kPong = 8,
  /// Client -> server: render the execution plan for a `QueryRequest`
  /// without running it. Carries the same tagged fields as
  /// kExecuteRequest.
  kExplainRequest = 9,
  /// Server -> client: the plan text.
  kExplainResponse = 10,
  /// Client -> server: liveness + serving-state probe (no fields). The
  /// shard coordinator uses it to test an ejected shard before letting
  /// it back into fan-out; unlike kPing the response carries state.
  kHealthRequest = 11,
  /// Server -> client: serving state, and per-shard breaker states when
  /// the server fronts a sharded corpus.
  kHealthResponse = 12,
};

/// A decoded frame header plus its raw tagged-field region. Frame-type
/// specific decoders consume `fields`.
struct Frame {
  uint16_t version = kProtocolVersion;
  /// Raw on-wire type — kept numeric so an unknown (newer) type can be
  /// answered with a typed error instead of a closed connection.
  uint16_t raw_type = 0;
  std::string_view fields;

  FrameType type() const { return static_cast<FrameType>(raw_type); }
};

/// Field tags, per frame type. Tag numbers are only unique within their
/// frame type.
namespace tag {
// kExecuteRequest (and kExplainRequest, which shares its schema)
inline constexpr uint16_t kMethod = 1;      ///< u8 wire method code.
inline constexpr uint16_t kRange = 2;       ///< u32 bin, f64 min, f64 max.
inline constexpr uint16_t kConjuncts = 3;   ///< u32 count + count triples.
inline constexpr uint16_t kDeadlineMs = 4;  ///< u64 relative ms; absent = none.
inline constexpr uint16_t kSimilarity = 5;  ///< u32 k, u32 bins, bins i64s.
// kResultChunk
inline constexpr uint16_t kIds = 1;  ///< packed u64 object ids.
// kResultDone
inline constexpr uint16_t kStats = 1;     ///< packed i64 work counters.
inline constexpr uint16_t kTotalIds = 2;  ///< u64 ids across all chunks.
inline constexpr uint16_t kIntervals = 3;  ///< per id: f64 lo, f64 hi, u8
                                           ///< exact — aligned with the id
                                           ///< stream (similarity only).
inline constexpr uint16_t kComplete = 4;   ///< u8 flag; absent means 1
                                           ///< (a v2 peer's streams are
                                           ///< always complete).
inline constexpr uint16_t kShardErrors = 5;  ///< u32 count, then per error:
                                             ///< u32 shard, u16 wire code,
                                             ///< u32 len, UTF-8 message.
// kExplainResponse
inline constexpr uint16_t kPlanText = 1;  ///< UTF-8 plan rendering.
// kHealthResponse
inline constexpr uint16_t kServing = 1;      ///< u8: 1 while serving.
inline constexpr uint16_t kShardStates = 2;  ///< u32 count + count u8
                                             ///< `ShardWireState`s, by
                                             ///< shard index (sharded
                                             ///< servers only).
// kError
inline constexpr uint16_t kCode = 1;     ///< u16 WireStatusCode.
inline constexpr uint16_t kMessage = 2;  ///< UTF-8 text.
// kInfoResponse
inline constexpr uint16_t kDivisions = 1;      ///< i32 quantizer divisions.
inline constexpr uint16_t kColorSpace = 2;     ///< u8 ColorSpace value.
inline constexpr uint16_t kImageCount = 3;     ///< u64 stored images.
inline constexpr uint16_t kServerVersion = 4;  ///< u16 protocol version.
}  // namespace tag

/// One shard's typed failure inside a partial result, as it crosses the
/// wire: which shard, the wire form of its `Status`, and the message.
struct WireShardError {
  uint32_t shard = 0;
  uint16_t wire_code = 0;
  std::string message;

  /// The reconstructed in-memory status.
  Status ToStatus() const;
};

/// On-wire circuit-breaker state of one shard (kHealthResponse). Values
/// are protocol constants — append-only like every other code space.
enum class ShardWireState : uint8_t {
  kServing = 0,    ///< Breaker closed, shard in fan-out.
  kEjected = 1,    ///< Breaker open, shard skipped until probed.
  kProbing = 2,    ///< Half-open: one trial request in flight.
};

/// What `kHealthResponse` carries.
struct HealthInfo {
  /// 1 while the server is accepting queries.
  uint8_t serving = 0;
  /// Per-shard breaker states, empty for an unsharded server.
  std::vector<uint8_t> shard_states;
};

/// What `kInfoResponse` carries.
struct ServerInfo {
  int32_t quantizer_divisions = 0;
  uint8_t color_space = 0;
  uint64_t image_count = 0;
  uint16_t protocol_version = 0;
};

/// End-of-stream record of a successful query. For similarity queries
/// `matches` carries one `[distance_lo, distance_hi]` interval per
/// streamed id, in id-stream order, with `SimilarityMatch::id` left to
/// the caller to zip back in from the chunks.
struct ResultDone {
  QueryStats stats;
  uint64_t total_ids = 0;
  std::vector<SimilarityMatch> matches;
  /// False when a coordinator answered from a subset of shards; the
  /// failed shards are itemized in `shard_errors`. Defaults true — a
  /// single-store server never sends the tag.
  bool complete = true;
  std::vector<WireShardError> shard_errors;
};

/// Splits a payload into header + field region, validating magic and
/// minimum version. Newer versions are accepted (see the policy above).
/// The returned frame borrows `payload`, which must stay alive.
Result<Frame> ParseFrame(std::string_view payload);

// --- Encoders (full frame payloads, without the transport length) -----

/// Encodes `request` into a kExecuteRequest frame. The request's
/// `Deadline` (absolute, steady-clock) travels as *remaining*
/// milliseconds — the only representation that survives machines with
/// unrelated clocks; an infinite deadline travels as field absence. The
/// caller-local `cancel` pointer does not cross the wire (the server
/// installs its own disconnect-driven token). `version` is overridable
/// for compatibility tests.
std::string EncodeExecuteRequest(const QueryRequest& request,
                                 uint16_t version = kProtocolVersion);

std::string EncodeResultChunk(std::span<const ObjectId> ids);
/// `matches` (when non-empty) becomes the interval trailer; intervals
/// travel as raw IEEE-754 bit patterns, so a loopback round trip is
/// bit-identical to the embedded result. `complete=false` (v3) appends
/// the partial-result trailer: the flag plus `shard_errors` itemizing
/// which shards failed and why.
std::string EncodeResultDone(const QueryStats& stats, uint64_t total_ids,
                             std::span<const SimilarityMatch> matches = {},
                             bool complete = true,
                             std::span<const WireShardError> shard_errors = {});
/// `status` must be non-OK.
std::string EncodeError(const Status& status);
std::string EncodeInfoRequest();
std::string EncodeInfoResponse(const ServerInfo& info);
std::string EncodePing();
std::string EncodePong();
/// Same tagged fields as `EncodeExecuteRequest`, under the
/// kExplainRequest frame type.
std::string EncodeExplainRequest(const QueryRequest& request,
                                 uint16_t version = kProtocolVersion);
std::string EncodeExplainResponse(std::string_view plan_text);
std::string EncodeHealthRequest();
std::string EncodeHealthResponse(const HealthInfo& info);

// --- Decoders (frame-type specific, over Frame::fields) ---------------

/// Rebuilds the `QueryRequest` a vN-or-newer peer encoded. Unknown tags
/// are skipped; a request that does not carry exactly one of the range /
/// conjuncts / similarity payload tags, or an unknown method code, is
/// InvalidArgument. Also decodes kExplainRequest frames (same schema).
Result<QueryRequest> DecodeExecuteRequest(const Frame& frame);

/// Appends the chunk's ids onto `*ids`.
Status DecodeResultChunk(const Frame& frame, std::vector<ObjectId>* ids);

Result<ResultDone> DecodeResultDone(const Frame& frame);

/// Reconstructs the typed `Status` an error frame carries into
/// `*carried`. The returned status is about the *decode* itself, which
/// can fail on a malformed frame.
Status DecodeError(const Frame& frame, Status* carried);

Result<ServerInfo> DecodeInfoResponse(const Frame& frame);

/// Extracts the plan text of a kExplainResponse frame.
Result<std::string> DecodeExplainResponse(const Frame& frame);

Result<HealthInfo> DecodeHealthResponse(const Frame& frame);

/// The wire code for a `QueryMethod` and back. Like status codes these
/// are append-only protocol constants decoupled from the enum.
uint8_t QueryMethodToWire(QueryMethod method);
Result<QueryMethod> QueryMethodFromWire(uint8_t wire_method);

}  // namespace mmdb::net

#endif  // MMDB_NET_PROTOCOL_H_
