#ifndef MMDB_MMDB_INTERNAL_H_
#define MMDB_MMDB_INTERNAL_H_

/// Engine internals behind the public umbrella (`mmdb.h`): the concrete
/// query processors and their support machinery, the index structures,
/// the edit-script transforms, and the storage engine.
///
/// These headers are stable enough to build the library's own tools,
/// tests, and benchmarks, but they are not the supported application
/// surface — types here may change shape between releases without the
/// wire- and API-compatibility guarantees `mmdb.h` carries. Issue
/// queries through `QueryService` (local) or `net::Client` (remote)
/// instead of constructing processors directly; both execute the same
/// `QueryRequest` and return the same `QueryResult`.

// The access-path processors (instantiate, RBM, BWM, indexed BWM,
// parallel RBM, planned) and the machinery they share. Reach them
// through `QueryService` / `MultimediaDatabase::RunRange` — direct
// construction is deprecated as public API.
#include "core/bounds.h"
#include "core/bwm.h"
#include "core/executor.h"
#include "core/instantiate.h"
#include "core/parallel.h"
#include "core/plan.h"
#include "core/query_processor.h"
#include "core/rbm.h"
#include "core/rules.h"

// Index structures.
#include "index/histogram_index.h"
#include "index/indexed_bwm.h"
#include "index/rtree.h"

// Edit-script internals: binary serialization, delta encoding, and the
// script optimizer (the facade applies these on insert).
#include "editops/delta.h"
#include "editops/optimize.h"
#include "editops/serialize.h"

// Storage engine: page file, catalog, and object store (the facade owns
// these; embed directly only to build storage-level tooling).
#include "storage/catalog.h"
#include "storage/object_store.h"

#endif  // MMDB_MMDB_INTERNAL_H_
