#ifndef MMDB_DATASETS_GENERATORS_H_
#define MMDB_DATASETS_GENERATORS_H_

#include <string>
#include <vector>

#include "image/image.h"
#include "util/random.h"

namespace mmdb {

/// A generated dataset image with a human-readable label (used by the
/// examples and by EXPERIMENTS.md narratives).
struct GeneratedImage {
  Image image;
  std::string label;
};

/// Synthetic stand-ins for the paper's two web-scraped datasets and for
/// the road-sign application motivating its introduction. All generators
/// are deterministic in the supplied RNG, so every experiment is
/// reproducible from its seed.
///
/// The statistical property the experiments depend on — a handful of
/// saturated colors covering large uniform regions, so color histograms
/// discriminate well — matches the real flag/helmet/sign imagery.
namespace datasets {

/// World-flag-like images (horizontal/vertical tricolors and bicolors,
/// Nordic crosses, cantons); default 120x80 (3:2-ish).
std::vector<GeneratedImage> MakeFlagImages(int count, Rng& rng,
                                           int32_t width = 120,
                                           int32_t height = 80);

/// A fixed set of recognizable real-world flag renderings (France,
/// Italy, Germany, Japan, Sweden, ...), each labeled with its country.
/// Deterministic — no RNG — so examples and docs can name what they
/// retrieve, the way the paper's flag dataset could.
std::vector<GeneratedImage> MakeWorldFlags(int32_t width = 120,
                                           int32_t height = 80);

/// College-football-helmet-like images (shell ellipse, facemask, center
/// stripe, circular logo over a neutral background); default 96x96.
std::vector<GeneratedImage> MakeHelmetImages(int count, Rng& rng,
                                             int32_t side = 96);

/// Road-sign images (stop octagon, yield triangle, warning diamond,
/// speed-limit disc, info rectangle) over sky/grass/asphalt backdrops —
/// the autonomous-driving application from the paper's introduction.
std::vector<GeneratedImage> MakeRoadSignImages(int count, Rng& rng,
                                               int32_t side = 96);

/// The saturated palette colors a dataset's designs draw from; range
/// queries in the benchmarks target the histogram bins of these colors.
std::vector<Rgb> FlagPalette();
std::vector<Rgb> HelmetPalette();
std::vector<Rgb> RoadSignPalette();

}  // namespace datasets
}  // namespace mmdb

#endif  // MMDB_DATASETS_GENERATORS_H_
