#include "datasets/generators.h"

#include <algorithm>

#include "image/draw.h"

namespace mmdb {
namespace datasets {

namespace {

/// Picks `n` distinct colors from `palette`.
std::vector<Rgb> PickDistinct(const std::vector<Rgb>& palette, size_t n,
                              Rng& rng) {
  std::vector<Rgb> pool = palette;
  std::vector<Rgb> out;
  for (size_t i = 0; i < n && !pool.empty(); ++i) {
    const size_t pick = static_cast<size_t>(rng.Uniform(pool.size()));
    out.push_back(pool[pick]);
    pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
  }
  return out;
}

}  // namespace

std::vector<Rgb> FlagPalette() {
  return {colors::kRed,    colors::kWhite, colors::kBlue,  colors::kGreen,
          colors::kYellow, colors::kBlack, colors::kOrange};
}

std::vector<Rgb> HelmetPalette() {
  return {colors::kMaroon, colors::kNavy,   colors::kGold,  colors::kSilver,
          colors::kOrange, colors::kPurple, colors::kWhite, colors::kBlack,
          colors::kRed,    colors::kGreen};
}

std::vector<Rgb> RoadSignPalette() {
  return {colors::kRed,  colors::kWhite, colors::kYellow,
          colors::kBlue, colors::kGreen, colors::kBlack};
}

std::vector<GeneratedImage> MakeFlagImages(int count, Rng& rng,
                                           int32_t width, int32_t height) {
  const std::vector<Rgb> palette = FlagPalette();
  std::vector<GeneratedImage> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Image flag(width, height);
    const Rect full = flag.Bounds();
    switch (rng.Uniform(5)) {
      case 0: {  // Horizontal tricolor (France-rotated, Germany, ...).
        const std::vector<Rgb> c = PickDistinct(palette, 3, rng);
        draw::HorizontalStripes(flag, full, c);
        out.push_back({std::move(flag), "flag:h-tricolor"});
        break;
      }
      case 1: {  // Vertical tricolor (France, Italy, ...).
        const std::vector<Rgb> c = PickDistinct(palette, 3, rng);
        draw::VerticalStripes(flag, full, c);
        out.push_back({std::move(flag), "flag:v-tricolor"});
        break;
      }
      case 2: {  // Bicolor with canton (US-like).
        const std::vector<Rgb> c = PickDistinct(palette, 3, rng);
        draw::HorizontalStripes(flag, full, {c[0], c[1], c[0], c[1], c[0]});
        flag.Fill(Rect(0, 0, width * 2 / 5, height * 2 / 5), c[2]);
        out.push_back({std::move(flag), "flag:canton"});
        break;
      }
      case 3: {  // Nordic cross.
        const std::vector<Rgb> c = PickDistinct(palette, 2, rng);
        flag.Fill(c[0]);
        draw::Cross(flag, full, width * 2 / 5, height / 2,
                    std::max(4, height / 6), c[1]);
        out.push_back({std::move(flag), "flag:nordic-cross"});
        break;
      }
      default: {  // Disc on field (Japan, Bangladesh, ...).
        const std::vector<Rgb> c = PickDistinct(palette, 2, rng);
        flag.Fill(c[0]);
        draw::FilledCircle(flag, width / 2, height / 2, height / 3, c[1]);
        out.push_back({std::move(flag), "flag:disc"});
        break;
      }
    }
  }
  return out;
}

std::vector<GeneratedImage> MakeWorldFlags(int32_t width, int32_t height) {
  using draw::Cross;
  using draw::FilledCircle;
  using draw::HorizontalStripes;
  using draw::VerticalStripes;
  std::vector<GeneratedImage> out;
  auto add = [&](const std::string& name, auto&& paint) {
    Image flag(width, height);
    paint(flag);
    out.push_back({std::move(flag), "flag:" + name});
  };
  const Rect full = Rect::Full(width, height);

  add("france", [&](Image& f) {
    VerticalStripes(f, full, {colors::kBlue, colors::kWhite, colors::kRed});
  });
  add("italy", [&](Image& f) {
    VerticalStripes(f, full, {colors::kGreen, colors::kWhite, colors::kRed});
  });
  add("germany", [&](Image& f) {
    HorizontalStripes(f, full,
                      {colors::kBlack, colors::kRed, colors::kGold});
  });
  add("netherlands", [&](Image& f) {
    HorizontalStripes(f, full, {colors::kRed, colors::kWhite, colors::kBlue});
  });
  add("japan", [&](Image& f) {
    f.Fill(colors::kWhite);
    FilledCircle(f, width / 2, height / 2, height * 3 / 10, colors::kRed);
  });
  add("sweden", [&](Image& f) {
    f.Fill(colors::kBlue);
    Cross(f, full, width * 2 / 5, height / 2, height / 5, colors::kYellow);
  });
  add("denmark", [&](Image& f) {
    f.Fill(colors::kRed);
    Cross(f, full, width * 2 / 5, height / 2, height / 6, colors::kWhite);
  });
  add("ireland", [&](Image& f) {
    VerticalStripes(f, full,
                    {colors::kGreen, colors::kWhite, colors::kOrange});
  });
  add("ukraine", [&](Image& f) {
    HorizontalStripes(f, full, {colors::kBlue, colors::kYellow});
  });
  add("poland", [&](Image& f) {
    HorizontalStripes(f, full, {colors::kWhite, colors::kRed});
  });
  add("nigeria", [&](Image& f) {
    VerticalStripes(f, full,
                    {colors::kGreen, colors::kWhite, colors::kGreen});
  });
  add("usa", [&](Image& f) {
    HorizontalStripes(f, full,
                      {colors::kRed, colors::kWhite, colors::kRed,
                       colors::kWhite, colors::kRed, colors::kWhite,
                       colors::kRed});
    f.Fill(Rect(0, 0, width * 2 / 5, height * 4 / 7), colors::kNavy);
  });
  return out;
}

std::vector<GeneratedImage> MakeHelmetImages(int count, Rng& rng,
                                             int32_t side) {
  const std::vector<Rgb> palette = HelmetPalette();
  std::vector<GeneratedImage> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Shell, logo, facemask, stripe colors (all distinct).
    const std::vector<Rgb> c = PickDistinct(palette, 4, rng);
    Image helmet(side, side, colors::kWhite);  // Studio background.
    // Shell: large ellipse occupying most of the frame.
    draw::FilledEllipse(
        helmet, Rect(side / 10, side / 8, side * 9 / 10, side * 7 / 8), c[0]);
    // Center stripe.
    if (rng.Bernoulli(0.7)) {
      helmet.Fill(Rect(side * 9 / 20, side / 8, side * 11 / 20, side / 2),
                  c[3]);
    }
    // Facemask: bars at the lower right.
    const int32_t bar = std::max(2, side / 24);
    for (int b = 0; b < 3; ++b) {
      const int32_t y = side * 5 / 8 + b * 3 * bar / 2;
      draw::ThickLine(helmet, side / 2, y, side * 19 / 20, y, bar, c[2]);
    }
    // Team logo: disc on the shell side.
    draw::FilledCircle(helmet, side * 2 / 5, side / 2, side / 7, c[1]);
    out.push_back({std::move(helmet), "helmet"});
  }
  return out;
}

std::vector<GeneratedImage> MakeRoadSignImages(int count, Rng& rng,
                                               int32_t side) {
  std::vector<GeneratedImage> out;
  out.reserve(static_cast<size_t>(count));
  const Rgb backdrops[] = {colors::kSkyBlue, colors::kGrassGreen,
                           colors::kSilver, colors::kNavy};
  for (int i = 0; i < count; ++i) {
    Image sign(side, side,
               backdrops[rng.Uniform(std::size(backdrops))]);
    const Rect box(side / 6, side / 6, side * 5 / 6, side * 5 / 6);
    const Rect inner(side / 4, side / 4, side * 3 / 4, side * 3 / 4);
    switch (rng.Uniform(5)) {
      case 0:  // Stop sign: red octagon, white legend band.
        draw::FilledOctagon(sign, box, colors::kRed);
        sign.Fill(Rect(side / 4, side * 7 / 16, side * 3 / 4, side * 9 / 16),
                  colors::kWhite);
        out.push_back({std::move(sign), "sign:stop"});
        break;
      case 1:  // Yield: white triangle with red border effect.
        draw::FilledTriangle(sign, box, /*point_up=*/false, colors::kRed);
        draw::FilledTriangle(sign, inner, /*point_up=*/false, colors::kWhite);
        out.push_back({std::move(sign), "sign:yield"});
        break;
      case 2:  // Warning: yellow diamond with black glyph.
        draw::FilledDiamond(sign, box, colors::kYellow);
        sign.Fill(Rect(side * 7 / 16, side / 3, side * 9 / 16, side * 2 / 3),
                  colors::kBlack);
        out.push_back({std::move(sign), "sign:warning"});
        break;
      case 3:  // Speed limit: white disc with red ring.
        draw::FilledCircle(sign, side / 2, side / 2, side / 3, colors::kRed);
        draw::FilledCircle(sign, side / 2, side / 2, side / 4,
                           colors::kWhite);
        out.push_back({std::move(sign), "sign:speed-limit"});
        break;
      default:  // Information: blue rectangle with white glyph.
        sign.Fill(box, colors::kBlue);
        sign.Fill(Rect(side * 7 / 16, side / 3, side * 9 / 16, side * 2 / 3),
                  colors::kWhite);
        out.push_back({std::move(sign), "sign:info"});
        break;
    }
  }
  return out;
}

}  // namespace datasets
}  // namespace mmdb
