#ifndef MMDB_DATASETS_RECIPES_H_
#define MMDB_DATASETS_RECIPES_H_

#include <string>
#include <vector>

#include "editops/edit_ops.h"
#include "image/color.h"

namespace mmdb {
namespace datasets {

/// A named augmentation recipe: an edit script plus a human-readable tag
/// ("dusk", "washed", ...).
struct AugmentationRecipe {
  std::string name;
  EditScript script;
};

/// Standard augmentation families for the false-negative scenarios the
/// paper motivates (Section 2): lighting shifts, blur, crops, and
/// thumbnails, all expressed as bound-widening edit sequences over a
/// `width` x `height` base image.
///
/// * `dusk` — saturated palette colors darkened (Modify per color pair);
/// * `washed` — Gaussian + box blur (motion / rain);
/// * `center-crop` — the middle ~60% extracted (Define + Merge NULL);
/// * `thumbnail` — whole-image 0.5x scale (Mutate);
/// * `shifted` — content translated by a quarter frame (rigid Mutate).
///
/// `darken_pairs` supplies the dusk recipe's (daylight, dusk) color
/// pairs; pass the dataset's palette mapping. All recipes classify as
/// bound-widening, so BWM clusters them under the base image.
std::vector<AugmentationRecipe> StandardAugmentations(
    ObjectId base_id, int32_t width, int32_t height,
    const std::vector<std::pair<Rgb, Rgb>>& darken_pairs);

/// The default daylight->dusk pairs for the built-in palettes.
std::vector<std::pair<Rgb, Rgb>> DefaultDarkenPairs();

}  // namespace datasets
}  // namespace mmdb

#endif  // MMDB_DATASETS_RECIPES_H_
