#include "datasets/augment.h"

#include <algorithm>
#include <cmath>

namespace mmdb {
namespace datasets {

namespace {

/// Symbolic canvas tracker mirroring the editor's dimension/DR semantics,
/// so generated coordinates are always valid without touching pixels.
struct CanvasTracker {
  int32_t width;
  int32_t height;
  Rect dr;

  Rect Bounds() const { return Rect::Full(width, height); }
};

DefineOp RandomDefine(CanvasTracker& canvas, Rng& rng) {
  // A non-empty sub-rectangle, biased toward mid-sized regions.
  const int32_t w = static_cast<int32_t>(
      rng.UniformInt(std::max(1, canvas.width / 8), canvas.width));
  const int32_t h = static_cast<int32_t>(
      rng.UniformInt(std::max(1, canvas.height / 8), canvas.height));
  const int32_t x = static_cast<int32_t>(rng.UniformInt(0, canvas.width - w));
  const int32_t y =
      static_cast<int32_t>(rng.UniformInt(0, canvas.height - h));
  DefineOp op{Rect(x, y, x + w, y + h)};
  canvas.dr = op.region.Intersect(canvas.Bounds());
  return op;
}

ModifyOp RandomModify(const std::vector<Rgb>& palette, Rng& rng) {
  ModifyOp op;
  op.old_color = palette[rng.Uniform(palette.size())];
  do {
    op.new_color = palette[rng.Uniform(palette.size())];
  } while (op.new_color == op.old_color && palette.size() > 1);
  return op;
}

MutateOp RandomWideningMutate(const CanvasTracker& canvas, Rng& rng) {
  if (rng.Bernoulli(0.5)) {  // Small translation of the DR.
    const double dx = static_cast<double>(
        rng.UniformInt(-canvas.width / 4, canvas.width / 4));
    const double dy = static_cast<double>(
        rng.UniformInt(-canvas.height / 4, canvas.height / 4));
    return MutateOp::Translation(dx, dy);
  }
  // Rotation about the DR center (rigid body).
  static constexpr double kAngles[] = {0.5235987755982988,   // 30 deg
                                       1.5707963267948966,   // 90 deg
                                       3.141592653589793};   // 180 deg
  const double angle = kAngles[rng.Uniform(3)];
  const double cx = (canvas.dr.x0 + canvas.dr.x1) / 2.0;
  const double cy = (canvas.dr.y0 + canvas.dr.y1) / 2.0;
  return MutateOp::Rotation(angle, cx, cy);
}

}  // namespace

EditScript MakeRandomScript(ObjectId base_id, int32_t width, int32_t height,
                            bool all_widening, int op_count,
                            const std::vector<Rgb>& palette,
                            const std::vector<MergeTarget>& merge_targets,
                            Rng& rng) {
  EditScript script;
  script.base_id = base_id;
  CanvasTracker canvas{width, height, Rect::Full(width, height)};

  // For non-widening scripts, reserve one slot for the Merge-into-target.
  const int merge_slot =
      all_widening || merge_targets.empty()
          ? -1
          : static_cast<int>(rng.Uniform(static_cast<uint64_t>(
                std::max(1, op_count))));

  for (int i = 0; i < op_count; ++i) {
    if (i == merge_slot) {
      const MergeTarget& target =
          merge_targets[rng.Uniform(merge_targets.size())];
      MergeOp op;
      op.target = target.id;
      // Paste somewhere that overlaps the target.
      op.x = static_cast<int32_t>(
          rng.UniformInt(-canvas.dr.Width() / 2, target.width - 1));
      op.y = static_cast<int32_t>(
          rng.UniformInt(-canvas.dr.Height() / 2, target.height - 1));
      script.ops.emplace_back(op);
      canvas = CanvasTracker{target.width, target.height,
                             Rect::Full(target.width, target.height)};
      continue;
    }
    switch (rng.Uniform(6)) {
      case 0:
        script.ops.emplace_back(RandomDefine(canvas, rng));
        break;
      case 1:
        script.ops.emplace_back(RandomModify(palette, rng));
        break;
      case 2:
        script.ops.emplace_back(rng.Bernoulli(0.5)
                                    ? CombineOp::BoxBlur()
                                    : CombineOp::GaussianBlur());
        break;
      case 3: {  // Rigid-body or whole-image-scale Mutate.
        // The scale branch emits two ops; never let it jump the slot
        // reserved for the Merge-into-target.
        if (rng.Bernoulli(0.25) && canvas.width <= 256 &&
            canvas.height <= 256 && i + 1 != merge_slot &&
            i + 1 < op_count) {
          // Whole-image scale: needs the DR to cover the canvas.
          script.ops.emplace_back(DefineOp{canvas.Bounds()});
          canvas.dr = canvas.Bounds();
          const bool up = rng.Bernoulli(0.5);
          const double s = up ? 2.0 : 0.5;
          script.ops.emplace_back(MutateOp::Scale(s, s));
          canvas.width = static_cast<int32_t>(std::lround(canvas.width * s));
          canvas.height =
              static_cast<int32_t>(std::lround(canvas.height * s));
          canvas.dr = canvas.Bounds();
          ++i;  // The Define consumed a slot too.
        } else {
          script.ops.emplace_back(RandomWideningMutate(canvas, rng));
        }
        break;
      }
      case 4: {  // Merge(NULL): crop the DR out (always non-empty).
        if (canvas.dr.Empty()) {
          script.ops.emplace_back(DefineOp{canvas.Bounds()});
          canvas.dr = canvas.Bounds();
          break;
        }
        script.ops.emplace_back(MergeOp{});  // Null target.
        canvas = CanvasTracker{canvas.dr.Width(), canvas.dr.Height(),
                               Rect::Full(canvas.dr.Width(),
                                          canvas.dr.Height())};
        break;
      }
      default:
        script.ops.emplace_back(RandomModify(palette, rng));
        break;
    }
  }
  // Pad in case the scale branch overshot the loop counter.
  while (static_cast<int>(script.ops.size()) < op_count) {
    script.ops.emplace_back(RandomModify(palette, rng));
  }
  return script;
}

std::vector<Rgb> PaletteFor(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kFlags:
      return FlagPalette();
    case DatasetKind::kHelmets:
      return HelmetPalette();
    case DatasetKind::kRoadSigns:
      return RoadSignPalette();
  }
  return FlagPalette();
}

Result<DatasetStats> BuildAugmentedDatabase(MultimediaDatabase* db,
                                            const DatasetSpec& spec) {
  if (spec.total_images <= 0) {
    return Status::InvalidArgument("total_images must be positive");
  }
  if (spec.edited_fraction < 0.0 || spec.edited_fraction >= 1.0) {
    return Status::InvalidArgument("edited_fraction must be in [0, 1)");
  }
  if (spec.base_fraction <= 0.0 || spec.base_fraction > 1.0) {
    return Status::InvalidArgument("base_fraction must be in (0, 1]");
  }
  Rng rng(spec.seed);
  const int base_count = std::max(
      1, static_cast<int>(std::lround(spec.total_images *
                                      spec.base_fraction)));
  const int variant_count = spec.total_images - base_count;
  // Storage policy: this many variants are stored as edit sequences, the
  // rest are materialized and stored conventionally.
  const int script_count =
      std::min(variant_count,
               static_cast<int>(std::lround(spec.total_images *
                                            spec.edited_fraction)));

  std::vector<GeneratedImage> images;
  switch (spec.kind) {
    case DatasetKind::kFlags:
      images = MakeFlagImages(base_count, rng);
      break;
    case DatasetKind::kHelmets:
      images = MakeHelmetImages(base_count, rng);
      break;
    case DatasetKind::kRoadSigns:
      images = MakeRoadSignImages(base_count, rng);
      break;
  }

  DatasetStats stats;
  std::vector<MergeTarget> targets;
  std::vector<std::pair<int32_t, int32_t>> dims;
  for (const GeneratedImage& generated : images) {
    MMDB_ASSIGN_OR_RETURN(ObjectId id,
                          db->InsertBinaryImage(generated.image));
    stats.binary_ids.push_back(id);
    stats.base_ids.push_back(id);
    targets.push_back(
        {id, generated.image.width(), generated.image.height()});
    dims.emplace_back(generated.image.width(), generated.image.height());
  }

  const std::vector<Rgb> palette = PaletteFor(spec.kind);
  const ImageResolver pixels = db->MakePixelResolver();
  const Editor editor(pixels);
  for (int i = 0; i < variant_count; ++i) {
    const size_t base_pos = rng.Uniform(stats.base_ids.size());
    const bool widening = rng.Bernoulli(spec.widening_probability);
    const int op_count =
        static_cast<int>(rng.UniformInt(spec.min_ops, spec.max_ops));
    const EditScript script = MakeRandomScript(
        stats.base_ids[base_pos], dims[base_pos].first,
        dims[base_pos].second, widening, op_count, palette, targets, rng);
    if (i < script_count) {
      // Stored as a sequence of editing operations.
      MMDB_ASSIGN_OR_RETURN(ObjectId id, db->InsertEditedImage(script));
      stats.edited_ids.push_back(id);
      stats.total_ops += static_cast<int64_t>(script.ops.size());
      if (RuleEngine::IsAllBoundWidening(script)) {
        ++stats.widening_only;
      } else {
        ++stats.non_widening;
      }
    } else {
      // Materialized: instantiated once and stored conventionally, with
      // its histogram extracted like any binary image.
      MMDB_ASSIGN_OR_RETURN(Image base_image,
                            pixels(stats.base_ids[base_pos]));
      MMDB_ASSIGN_OR_RETURN(Image variant,
                            editor.Instantiate(base_image, script));
      MMDB_ASSIGN_OR_RETURN(ObjectId id, db->InsertBinaryImage(variant));
      stats.binary_ids.push_back(id);
      stats.materialized_ids.push_back(id);
    }
  }
  return stats;
}

std::vector<RangeQuery> MakeRangeWorkload(const ColorQuantizer& quantizer,
                                          const std::vector<Rgb>& palette,
                                          int count, Rng& rng) {
  std::vector<RangeQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    RangeQuery query;
    query.bin = quantizer.BinOf(palette[rng.Uniform(palette.size())]);
    // "At least X%"-style windows: a lower bound in [0%, 35%] with a
    // width in [30%, 65%] — wide enough that stored originals satisfy a
    // healthy share of queries, which is the regime the paper's
    // evaluation exercises (BWM's cluster skip fires on base hits).
    query.min_fraction = rng.UniformDouble(0.0, 0.3);
    query.max_fraction =
        std::min(1.0, query.min_fraction + rng.UniformDouble(0.4, 0.85));
    out.push_back(query);
  }
  return out;
}

std::vector<RangeQuery> MakeGroundedRangeWorkload(
    const AugmentedCollection& collection, const ColorQuantizer& quantizer,
    const std::vector<Rgb>& palette, int count, Rng& rng) {
  std::vector<RangeQuery> out;
  out.reserve(static_cast<size_t>(count));
  const std::vector<ObjectId>& binaries = collection.binary_ids();
  for (int i = 0; i < count; ++i) {
    if (binaries.empty() || rng.Bernoulli(0.3)) {
      // Uniform palette window (often misses everything).
      RangeQuery query;
      query.bin = quantizer.BinOf(palette[rng.Uniform(palette.size())]);
      query.min_fraction = rng.UniformDouble(0.0, 0.3);
      query.max_fraction =
          std::min(1.0, query.min_fraction + rng.UniformDouble(0.4, 0.85));
      out.push_back(query);
      continue;
    }
    // Grounded: window around a fraction observed in a stored image.
    const BinaryImageInfo* example =
        collection.FindBinary(binaries[rng.Uniform(binaries.size())]);
    // Pick one of the image's substantial bins.
    std::vector<BinIndex> heavy;
    for (BinIndex bin = 0; bin < quantizer.BinCount(); ++bin) {
      if (example->histogram.Fraction(bin) >= 0.1) heavy.push_back(bin);
    }
    RangeQuery query;
    if (heavy.empty()) {
      query.bin = quantizer.BinOf(palette[rng.Uniform(palette.size())]);
      query.min_fraction = 0.0;
      query.max_fraction = rng.UniformDouble(0.4, 1.0);
    } else {
      query.bin = heavy[rng.Uniform(heavy.size())];
      const double f = example->histogram.Fraction(query.bin);
      query.min_fraction =
          std::max(0.0, f - rng.UniformDouble(0.05, 0.35));
      query.max_fraction =
          std::min(1.0, f + rng.UniformDouble(0.05, 0.35));
    }
    out.push_back(query);
  }
  return out;
}

}  // namespace datasets
}  // namespace mmdb
