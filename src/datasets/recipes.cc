#include "datasets/recipes.h"

namespace mmdb {
namespace datasets {

std::vector<std::pair<Rgb, Rgb>> DefaultDarkenPairs() {
  return {{colors::kRed, colors::kMaroon},
          {colors::kYellow, colors::kGold},
          {colors::kSkyBlue, colors::kNavy},
          {colors::kBlue, colors::kNavy},
          {colors::kWhite, colors::kSilver}};
}

std::vector<AugmentationRecipe> StandardAugmentations(
    ObjectId base_id, int32_t width, int32_t height,
    const std::vector<std::pair<Rgb, Rgb>>& darken_pairs) {
  std::vector<AugmentationRecipe> recipes;

  {
    AugmentationRecipe dusk;
    dusk.name = "dusk";
    dusk.script.base_id = base_id;
    for (const auto& [day, evening] : darken_pairs) {
      dusk.script.ops.emplace_back(ModifyOp{day, evening});
    }
    recipes.push_back(std::move(dusk));
  }
  {
    AugmentationRecipe washed;
    washed.name = "washed";
    washed.script.base_id = base_id;
    washed.script.ops.emplace_back(CombineOp::GaussianBlur());
    washed.script.ops.emplace_back(CombineOp::BoxBlur());
    recipes.push_back(std::move(washed));
  }
  {
    AugmentationRecipe crop;
    crop.name = "center-crop";
    crop.script.base_id = base_id;
    crop.script.ops.emplace_back(
        DefineOp{Rect(width / 5, height / 5, width * 4 / 5,
                      height * 4 / 5)});
    crop.script.ops.emplace_back(MergeOp{});
    recipes.push_back(std::move(crop));
  }
  {
    AugmentationRecipe thumbnail;
    thumbnail.name = "thumbnail";
    thumbnail.script.base_id = base_id;
    thumbnail.script.ops.emplace_back(MutateOp::Scale(0.5, 0.5));
    recipes.push_back(std::move(thumbnail));
  }
  {
    AugmentationRecipe shifted;
    shifted.name = "shifted";
    shifted.script.base_id = base_id;
    shifted.script.ops.emplace_back(
        DefineOp{Rect(0, 0, width * 3 / 4, height * 3 / 4)});
    shifted.script.ops.emplace_back(
        MutateOp::Translation(width / 4.0, height / 4.0));
    recipes.push_back(std::move(shifted));
  }
  return recipes;
}

}  // namespace datasets
}  // namespace mmdb
