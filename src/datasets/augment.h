#ifndef MMDB_DATASETS_AUGMENT_H_
#define MMDB_DATASETS_AUGMENT_H_

#include <vector>

#include "core/database.h"
#include "core/query.h"
#include "datasets/generators.h"
#include "editops/edit_ops.h"
#include "util/random.h"
#include "util/result.h"

namespace mmdb {
namespace datasets {

/// Dimensions of a stored image a random script may Merge into.
struct MergeTarget {
  ObjectId id = kInvalidObjectId;
  int32_t width = 0;
  int32_t height = 0;
};

/// Generates a random but always-valid edit script of `op_count`
/// operations over a `width` x `height` base image.
///
/// When `all_widening` is true the script draws only from operations
/// whose rules are bound-widening (Define / Combine / Modify / Mutate /
/// Merge-NULL); otherwise at least one Merge into a real target is
/// included, which is exactly what lands the image in BWM's Unclassified
/// Component. `palette` supplies Modify's color pairs; `merge_targets`
/// must be non-empty when `all_widening` is false.
EditScript MakeRandomScript(ObjectId base_id, int32_t width, int32_t height,
                            bool all_widening, int op_count,
                            const std::vector<Rgb>& palette,
                            const std::vector<MergeTarget>& merge_targets,
                            Rng& rng);

/// Which synthetic dataset to build.
enum class DatasetKind { kFlags, kHelmets, kRoadSigns };

/// Shape of an augmented database, mirroring the paper's Table 2
/// parameters and its Figures 3/4 experimental design.
///
/// The logical dataset is fixed: `base_fraction * total_images` original
/// images plus derived variants filling the rest. `edited_fraction` is
/// the figures' x-axis — the percentage of images *stored as sequences
/// of editing operations*; the remaining variants are materialized at
/// build time and stored conventionally (with extracted histograms),
/// exactly like the storage decision the paper sweeps.
struct DatasetSpec {
  DatasetKind kind = DatasetKind::kFlags;
  int total_images = 400;
  /// Fraction of images stored as edit sequences (clamped so originals
  /// stay conventional).
  double edited_fraction = 0.8;
  /// Fraction of images that are original (non-derived) base images.
  double base_fraction = 0.1;
  int min_ops = 3;
  int max_ops = 9;
  /// Probability an edited image uses only bound-widening operations.
  double widening_probability = 0.8;
  uint64_t seed = 42;
};

/// What was actually built (the measured Table 2 row).
struct DatasetStats {
  /// Everything stored conventionally: originals + materialized variants.
  std::vector<ObjectId> binary_ids;
  /// Original (non-derived) images; a prefix view of `binary_ids`.
  std::vector<ObjectId> base_ids;
  /// Variants materialized to rasters at build time.
  std::vector<ObjectId> materialized_ids;
  /// Variants stored as edit sequences.
  std::vector<ObjectId> edited_ids;
  int64_t total_ops = 0;
  int widening_only = 0;
  int non_widening = 0;

  double AvgOpsPerEdited() const {
    return edited_ids.empty()
               ? 0.0
               : static_cast<double>(total_ops) /
                     static_cast<double>(edited_ids.size());
  }
};

/// Populates `db` (which must be empty) with a `spec`-shaped augmented
/// dataset: original images from the chosen generator, plus derived
/// variants — each stored either as a random edit script or (per the
/// storage-policy fraction) materialized and stored conventionally.
Result<DatasetStats> BuildAugmentedDatabase(MultimediaDatabase* db,
                                            const DatasetSpec& spec);

/// The palette the given dataset kind draws from.
std::vector<Rgb> PaletteFor(DatasetKind kind);

/// A workload of color range queries ("at least X% <palette color>")
/// targeting the bins the dataset actually populates.
std::vector<RangeQuery> MakeRangeWorkload(const ColorQuantizer& quantizer,
                                          const std::vector<Rgb>& palette,
                                          int count, Rng& rng);

/// A workload grounded in the stored images, the way CBIR queries arise
/// in practice: most queries are derived from a stored image's actual
/// color distribution ("find things that are about this red", with a
/// window around the observed fraction), the rest are uniform palette
/// windows. Grounded queries give the realistic base-image hit rates the
/// paper's evaluation exercises.
std::vector<RangeQuery> MakeGroundedRangeWorkload(
    const AugmentedCollection& collection, const ColorQuantizer& quantizer,
    const std::vector<Rgb>& palette, int count, Rng& rng);

}  // namespace datasets
}  // namespace mmdb

#endif  // MMDB_DATASETS_AUGMENT_H_
