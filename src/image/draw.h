#ifndef MMDB_IMAGE_DRAW_H_
#define MMDB_IMAGE_DRAW_H_

#include <vector>

#include "image/image.h"

namespace mmdb {

/// Rasterization primitives used by the synthetic dataset generators
/// (`src/datasets/`). All drawing is clipped to the image.
namespace draw {

/// Fills the axis-aligned ellipse inscribed in `box`.
void FilledEllipse(Image& image, const Rect& box, Rgb color);

/// Fills a circle centered at (cx, cy) with radius `r`.
void FilledCircle(Image& image, int32_t cx, int32_t cy, int32_t r, Rgb color);

/// Draws a 1px-stepped thick line from (x0,y0) to (x1,y1).
void ThickLine(Image& image, int32_t x0, int32_t y0, int32_t x1, int32_t y1,
               int32_t thickness, Rgb color);

/// Fills the convex polygon with the given vertices (scanline fill; also
/// correct for non-convex simple polygons via even-odd rule).
void FilledPolygon(Image& image, const std::vector<Point>& vertices,
                   Rgb color);

/// Fills an upright isosceles triangle inscribed in `box`, apex at the top
/// when `point_up`, at the bottom otherwise. (Road-sign shapes.)
void FilledTriangle(Image& image, const Rect& box, bool point_up, Rgb color);

/// Fills the regular octagon inscribed in `box`. (Stop-sign shape.)
void FilledOctagon(Image& image, const Rect& box, Rgb color);

/// Fills the diamond (45°-rotated square) inscribed in `box`. (Warning-sign
/// shape.)
void FilledDiamond(Image& image, const Rect& box, Rgb color);

/// Draws horizontal stripes of equal height covering `box`, cycling through
/// `stripe_colors` top to bottom.
void HorizontalStripes(Image& image, const Rect& box,
                       const std::vector<Rgb>& stripe_colors);

/// Draws vertical stripes of equal width covering `box`, cycling left to
/// right.
void VerticalStripes(Image& image, const Rect& box,
                     const std::vector<Rgb>& stripe_colors);

/// Draws a Nordic-style cross over `box`: a vertical bar centered at
/// `cross_x` and a horizontal bar centered at `cross_y`, both `arm`
/// pixels thick.
void Cross(Image& image, const Rect& box, int32_t cross_x, int32_t cross_y,
           int32_t arm, Rgb color);

}  // namespace draw
}  // namespace mmdb

#endif  // MMDB_IMAGE_DRAW_H_
