#ifndef MMDB_IMAGE_IMAGE_H_
#define MMDB_IMAGE_IMAGE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "image/color.h"
#include "image/geometry.h"
#include "util/result.h"
#include "util/status.h"

namespace mmdb {

/// An in-memory RGB8 raster.
///
/// This is the binary representation of the MMDBMS's image objects, the
/// output of the instantiation engine, and the input to color histogram
/// extraction. Row-major storage, (0,0) at the top-left.
class Image {
 public:
  /// Constructs an empty (0x0) image.
  Image() = default;

  /// Constructs a `width` x `height` image filled with `fill`.
  Image(int32_t width, int32_t height, Rgb fill = Rgb());

  Image(const Image&) = default;
  Image& operator=(const Image&) = default;
  Image(Image&&) noexcept = default;
  Image& operator=(Image&&) noexcept = default;

  int32_t width() const { return width_; }
  int32_t height() const { return height_; }
  /// Total number of pixels (the paper's `imagesize`).
  int64_t PixelCount() const {
    return static_cast<int64_t>(width_) * height_;
  }
  bool Empty() const { return PixelCount() == 0; }
  Rect Bounds() const { return Rect::Full(width_, height_); }

  /// Unchecked pixel access; (x, y) must be within bounds.
  const Rgb& At(int32_t x, int32_t y) const {
    assert(Bounds().Contains(x, y));
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  Rgb& At(int32_t x, int32_t y) {
    assert(Bounds().Contains(x, y));
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }

  /// Bounds-checked pixel read; returns `fallback` outside the image.
  Rgb GetOr(int32_t x, int32_t y, Rgb fallback) const {
    return Bounds().Contains(x, y) ? At(x, y) : fallback;
  }

  /// Fills `rect` (clipped to the image) with `color`.
  void Fill(const Rect& rect, Rgb color);
  /// Fills the whole image.
  void Fill(Rgb color) { Fill(Bounds(), color); }

  /// Counts pixels equal to `color` within `rect` (clipped).
  int64_t CountColor(Rgb color, const Rect& rect) const;
  int64_t CountColor(Rgb color) const { return CountColor(color, Bounds()); }

  /// Raw row-major pixel storage.
  const std::vector<Rgb>& pixels() const { return pixels_; }
  std::vector<Rgb>& pixels() { return pixels_; }

  /// Exact pixel-wise equality (dimensions and contents).
  friend bool operator==(const Image& a, const Image& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.pixels_ == b.pixels_;
  }

 private:
  int32_t width_ = 0;
  int32_t height_ = 0;
  std::vector<Rgb> pixels_;
};

}  // namespace mmdb

#endif  // MMDB_IMAGE_IMAGE_H_
