#include "image/color.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mmdb {

std::string Rgb::ToHexString() const {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

Hsv RgbToHsv(const Rgb& rgb) {
  const double r = rgb.r / 255.0;
  const double g = rgb.g / 255.0;
  const double b = rgb.b / 255.0;
  const double mx = std::max({r, g, b});
  const double mn = std::min({r, g, b});
  const double delta = mx - mn;

  Hsv out;
  out.v = mx;
  out.s = mx > 0.0 ? delta / mx : 0.0;
  if (delta <= 0.0) {
    out.h = 0.0;
  } else if (mx == r) {
    out.h = 60.0 * std::fmod((g - b) / delta, 6.0);
  } else if (mx == g) {
    out.h = 60.0 * ((b - r) / delta + 2.0);
  } else {
    out.h = 60.0 * ((r - g) / delta + 4.0);
  }
  if (out.h < 0.0) out.h += 360.0;
  return out;
}

Rgb HsvToRgb(const Hsv& hsv) {
  const double c = hsv.v * hsv.s;
  const double hp = hsv.h / 60.0;
  const double x = c * (1.0 - std::fabs(std::fmod(hp, 2.0) - 1.0));
  double r = 0, g = 0, b = 0;
  if (hp < 1) {
    r = c, g = x;
  } else if (hp < 2) {
    r = x, g = c;
  } else if (hp < 3) {
    g = c, b = x;
  } else if (hp < 4) {
    g = x, b = c;
  } else if (hp < 5) {
    r = x, b = c;
  } else {
    r = c, b = x;
  }
  const double m = hsv.v - c;
  auto to8 = [](double v) {
    return static_cast<uint8_t>(std::lround(std::clamp(v, 0.0, 1.0) * 255.0));
  };
  return Rgb(to8(r + m), to8(g + m), to8(b + m));
}

namespace {

// D65 reference white in XYZ and the derived u'/v' chromaticity.
constexpr double kXn = 0.95047;
constexpr double kYn = 1.0;
constexpr double kZn = 1.08883;
const double kUnPrime = 4.0 * kXn / (kXn + 15.0 * kYn + 3.0 * kZn);
const double kVnPrime = 9.0 * kYn / (kXn + 15.0 * kYn + 3.0 * kZn);

double SrgbToLinear(uint8_t v8) {
  const double c = v8 / 255.0;
  return c <= 0.04045 ? c / 12.92 : std::pow((c + 0.055) / 1.055, 2.4);
}

uint8_t LinearToSrgb(double c) {
  c = std::clamp(c, 0.0, 1.0);
  const double srgb =
      c <= 0.0031308 ? 12.92 * c : 1.055 * std::pow(c, 1.0 / 2.4) - 0.055;
  return static_cast<uint8_t>(std::lround(std::clamp(srgb, 0.0, 1.0) * 255));
}

}  // namespace

Luv RgbToLuv(const Rgb& rgb) {
  const double r = SrgbToLinear(rgb.r);
  const double g = SrgbToLinear(rgb.g);
  const double b = SrgbToLinear(rgb.b);
  const double x = 0.4124564 * r + 0.3575761 * g + 0.1804375 * b;
  const double y = 0.2126729 * r + 0.7151522 * g + 0.0721750 * b;
  const double z = 0.0193339 * r + 0.1191920 * g + 0.9503041 * b;

  Luv out;
  const double y_ratio = y / kYn;
  constexpr double kEpsilon = 216.0 / 24389.0;  // (6/29)^3.
  constexpr double kKappa = 24389.0 / 27.0;     // (29/3)^3.
  out.l = y_ratio > kEpsilon ? 116.0 * std::cbrt(y_ratio) - 16.0
                             : kKappa * y_ratio;
  const double denom = x + 15.0 * y + 3.0 * z;
  const double u_prime = denom > 1e-12 ? 4.0 * x / denom : kUnPrime;
  const double v_prime = denom > 1e-12 ? 9.0 * y / denom : kVnPrime;
  out.u = 13.0 * out.l * (u_prime - kUnPrime);
  out.v = 13.0 * out.l * (v_prime - kVnPrime);
  return out;
}

Rgb LuvToRgb(const Luv& luv) {
  if (luv.l <= 0.0) return Rgb(0, 0, 0);
  constexpr double kKappa = 24389.0 / 27.0;
  const double y =
      luv.l > 8.0 ? kYn * std::pow((luv.l + 16.0) / 116.0, 3.0)
                  : kYn * luv.l / kKappa;
  const double u_prime = luv.u / (13.0 * luv.l) + kUnPrime;
  const double v_prime = luv.v / (13.0 * luv.l) + kVnPrime;
  double x = 0.0, z = 0.0;
  if (v_prime > 1e-12) {
    x = y * 9.0 * u_prime / (4.0 * v_prime);
    z = y * (12.0 - 3.0 * u_prime - 20.0 * v_prime) / (4.0 * v_prime);
  }
  const double r = 3.2404542 * x - 1.5371385 * y - 0.4985314 * z;
  const double g = -0.9692660 * x + 1.8760108 * y + 0.0415560 * z;
  const double b = 0.0556434 * x - 0.2040259 * y + 1.0572252 * z;
  return Rgb(LinearToSrgb(r), LinearToSrgb(g), LinearToSrgb(b));
}

}  // namespace mmdb
