#ifndef MMDB_IMAGE_COLOR_H_
#define MMDB_IMAGE_COLOR_H_

#include <cstdint>
#include <string>

namespace mmdb {

/// A 24-bit RGB color, the pixel type of the image substrate and the
/// parameter type of the Modify editing operation.
struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  constexpr Rgb() = default;
  constexpr Rgb(uint8_t red, uint8_t green, uint8_t blue)
      : r(red), g(green), b(blue) {}

  friend constexpr bool operator==(const Rgb& a, const Rgb& b) {
    return a.r == b.r && a.g == b.g && a.b == b.b;
  }

  /// Packs into 0x00RRGGBB for hashing/serialization.
  constexpr uint32_t Packed() const {
    return (static_cast<uint32_t>(r) << 16) | (static_cast<uint32_t>(g) << 8) |
           static_cast<uint32_t>(b);
  }
  static constexpr Rgb FromPacked(uint32_t p) {
    return Rgb(static_cast<uint8_t>(p >> 16), static_cast<uint8_t>(p >> 8),
               static_cast<uint8_t>(p));
  }

  /// Renders as "#rrggbb".
  std::string ToHexString() const;
};

/// HSV triple with h in [0, 360), s and v in [0, 1]; provided for the
/// alternative quantizer mentioned in the paper (Section 3.1).
struct Hsv {
  double h = 0.0;
  double s = 0.0;
  double v = 0.0;
};

/// Converts RGB to HSV.
Hsv RgbToHsv(const Rgb& rgb);

/// Converts HSV back to RGB (inverse of `RgbToHsv` up to rounding).
Rgb HsvToRgb(const Hsv& hsv);

/// CIE L*u*v* triple (D65 white point): l in [0, 100], u roughly in
/// [-134, 220], v roughly in [-140, 122]. The third color model the
/// paper names for histogram quantization (Section 3.1).
struct Luv {
  double l = 0.0;
  double u = 0.0;
  double v = 0.0;
};

/// Converts sRGB to CIE L*u*v* (through linearization and XYZ).
Luv RgbToLuv(const Rgb& rgb);

/// Converts CIE L*u*v* back to sRGB, clamping out-of-gamut values
/// (inverse of `RgbToLuv` up to 8-bit rounding for in-gamut colors).
Rgb LuvToRgb(const Luv& luv);

/// A small named palette used by the synthetic dataset generators; these
/// are the saturated colors that dominate real flags, helmets, and road
/// signs.
namespace colors {
inline constexpr Rgb kBlack{0, 0, 0};
inline constexpr Rgb kWhite{255, 255, 255};
inline constexpr Rgb kRed{204, 0, 0};
inline constexpr Rgb kGreen{0, 140, 69};
inline constexpr Rgb kBlue{0, 56, 168};
inline constexpr Rgb kYellow{255, 204, 0};
inline constexpr Rgb kOrange{243, 112, 33};
inline constexpr Rgb kPurple{79, 38, 131};
inline constexpr Rgb kMaroon{110, 38, 57};
inline constexpr Rgb kNavy{12, 35, 64};
inline constexpr Rgb kGold{200, 155, 60};
inline constexpr Rgb kSilver{170, 175, 178};
inline constexpr Rgb kSkyBlue{135, 206, 235};
inline constexpr Rgb kGrassGreen{86, 125, 70};
}  // namespace colors

}  // namespace mmdb

#endif  // MMDB_IMAGE_COLOR_H_
