#ifndef MMDB_IMAGE_GEOMETRY_H_
#define MMDB_IMAGE_GEOMETRY_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace mmdb {

/// Integer pixel coordinate. `x` grows rightwards, `y` downwards.
struct Point {
  int32_t x = 0;
  int32_t y = 0;

  friend constexpr bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Half-open axis-aligned pixel rectangle [x0, x1) x [y0, y1).
///
/// The Define editing operation selects a `Rect` as the Defined Region; an
/// empty rectangle (x0 >= x1 or y0 >= y1) selects no pixels.
struct Rect {
  int32_t x0 = 0;
  int32_t y0 = 0;
  int32_t x1 = 0;
  int32_t y1 = 0;

  constexpr Rect() = default;
  constexpr Rect(int32_t left, int32_t top, int32_t right, int32_t bottom)
      : x0(left), y0(top), x1(right), y1(bottom) {}

  /// Rectangle covering a full `width` x `height` image.
  static constexpr Rect Full(int32_t width, int32_t height) {
    return Rect(0, 0, width, height);
  }

  constexpr int32_t Width() const { return x1 > x0 ? x1 - x0 : 0; }
  constexpr int32_t Height() const { return y1 > y0 ? y1 - y0 : 0; }
  constexpr int64_t Area() const {
    return static_cast<int64_t>(Width()) * Height();
  }
  constexpr bool Empty() const { return Width() == 0 || Height() == 0; }

  constexpr bool Contains(int32_t x, int32_t y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }
  constexpr bool Contains(const Rect& other) const {
    return other.Empty() ||
           (other.x0 >= x0 && other.x1 <= x1 && other.y0 >= y0 &&
            other.y1 <= y1);
  }

  /// Intersection; empty if disjoint.
  constexpr Rect Intersect(const Rect& other) const {
    Rect r(std::max(x0, other.x0), std::max(y0, other.y0),
           std::min(x1, other.x1), std::min(y1, other.y1));
    if (r.Empty()) return Rect();
    return r;
  }

  friend constexpr bool operator==(const Rect& a, const Rect& b) {
    return a.x0 == b.x0 && a.y0 == b.y0 && a.x1 == b.x1 && a.y1 == b.y1;
  }

  std::string ToString() const {
    return "[" + std::to_string(x0) + "," + std::to_string(y0) + ")x[" +
           std::to_string(x1) + "," + std::to_string(y1) + ")";
  }
};

}  // namespace mmdb

#endif  // MMDB_IMAGE_GEOMETRY_H_
