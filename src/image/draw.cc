#include "image/draw.h"

#include <algorithm>
#include <cmath>

namespace mmdb {
namespace draw {

void FilledEllipse(Image& image, const Rect& box, Rgb color) {
  if (box.Empty()) return;
  const double cx = (box.x0 + box.x1 - 1) / 2.0;
  const double cy = (box.y0 + box.y1 - 1) / 2.0;
  const double rx = std::max(0.5, box.Width() / 2.0);
  const double ry = std::max(0.5, box.Height() / 2.0);
  const Rect clip = box.Intersect(image.Bounds());
  for (int32_t y = clip.y0; y < clip.y1; ++y) {
    const double dy = (y - cy) / ry;
    for (int32_t x = clip.x0; x < clip.x1; ++x) {
      const double dx = (x - cx) / rx;
      if (dx * dx + dy * dy <= 1.0) image.At(x, y) = color;
    }
  }
}

void FilledCircle(Image& image, int32_t cx, int32_t cy, int32_t r, Rgb color) {
  FilledEllipse(image, Rect(cx - r, cy - r, cx + r + 1, cy + r + 1), color);
}

void ThickLine(Image& image, int32_t x0, int32_t y0, int32_t x1, int32_t y1,
               int32_t thickness, Rgb color) {
  const double len = std::hypot(static_cast<double>(x1 - x0),
                                static_cast<double>(y1 - y0));
  const int steps = std::max(1, static_cast<int>(std::ceil(len)) * 2);
  const int32_t half = std::max(0, thickness / 2);
  for (int i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / steps;
    const int32_t x = static_cast<int32_t>(std::lround(x0 + t * (x1 - x0)));
    const int32_t y = static_cast<int32_t>(std::lround(y0 + t * (y1 - y0)));
    image.Fill(Rect(x - half, y - half, x + half + 1, y + half + 1), color);
  }
}

void FilledPolygon(Image& image, const std::vector<Point>& vertices,
                   Rgb color) {
  if (vertices.size() < 3) return;
  int32_t ymin = vertices[0].y, ymax = vertices[0].y;
  for (const Point& v : vertices) {
    ymin = std::min(ymin, v.y);
    ymax = std::max(ymax, v.y);
  }
  ymin = std::max(ymin, 0);
  ymax = std::min(ymax, image.height() - 1);
  const size_t n = vertices.size();
  std::vector<double> xs;
  for (int32_t y = ymin; y <= ymax; ++y) {
    xs.clear();
    const double yc = y + 0.5;  // Sample scanlines at pixel centers.
    for (size_t i = 0; i < n; ++i) {
      const Point& a = vertices[i];
      const Point& b = vertices[(i + 1) % n];
      if ((a.y <= yc && b.y > yc) || (b.y <= yc && a.y > yc)) {
        const double t = (yc - a.y) / static_cast<double>(b.y - a.y);
        xs.push_back(a.x + t * (b.x - a.x));
      }
    }
    std::sort(xs.begin(), xs.end());
    for (size_t i = 0; i + 1 < xs.size(); i += 2) {
      const int32_t sx = std::max(0, static_cast<int32_t>(std::ceil(xs[i])));
      const int32_t ex =
          std::min(image.width() - 1,
                   static_cast<int32_t>(std::floor(xs[i + 1])));
      for (int32_t x = sx; x <= ex; ++x) image.At(x, y) = color;
    }
  }
}

void FilledTriangle(Image& image, const Rect& box, bool point_up, Rgb color) {
  if (box.Empty()) return;
  const int32_t midx = (box.x0 + box.x1) / 2;
  std::vector<Point> pts;
  if (point_up) {
    pts = {{midx, box.y0}, {box.x1 - 1, box.y1 - 1}, {box.x0, box.y1 - 1}};
  } else {
    pts = {{box.x0, box.y0}, {box.x1 - 1, box.y0}, {midx, box.y1 - 1}};
  }
  FilledPolygon(image, pts, color);
}

void FilledOctagon(Image& image, const Rect& box, Rgb color) {
  if (box.Empty()) return;
  const int32_t w = box.Width(), h = box.Height();
  // Corner cut = side/(1+sqrt 2) of the inscribed square approximation.
  const int32_t cx = static_cast<int32_t>(w * 0.2929);
  const int32_t cy = static_cast<int32_t>(h * 0.2929);
  const std::vector<Point> pts = {
      {box.x0 + cx, box.y0},     {box.x1 - 1 - cx, box.y0},
      {box.x1 - 1, box.y0 + cy}, {box.x1 - 1, box.y1 - 1 - cy},
      {box.x1 - 1 - cx, box.y1 - 1}, {box.x0 + cx, box.y1 - 1},
      {box.x0, box.y1 - 1 - cy}, {box.x0, box.y0 + cy}};
  FilledPolygon(image, pts, color);
}

void FilledDiamond(Image& image, const Rect& box, Rgb color) {
  if (box.Empty()) return;
  const int32_t midx = (box.x0 + box.x1) / 2;
  const int32_t midy = (box.y0 + box.y1) / 2;
  const std::vector<Point> pts = {{midx, box.y0},
                                  {box.x1 - 1, midy},
                                  {midx, box.y1 - 1},
                                  {box.x0, midy}};
  FilledPolygon(image, pts, color);
}

void HorizontalStripes(Image& image, const Rect& box,
                       const std::vector<Rgb>& stripe_colors) {
  if (box.Empty() || stripe_colors.empty()) return;
  const size_t n = stripe_colors.size();
  const int32_t h = box.Height();
  for (size_t i = 0; i < n; ++i) {
    const int32_t y0 = box.y0 + static_cast<int32_t>(i * h / n);
    const int32_t y1 = box.y0 + static_cast<int32_t>((i + 1) * h / n);
    image.Fill(Rect(box.x0, y0, box.x1, y1), stripe_colors[i]);
  }
}

void VerticalStripes(Image& image, const Rect& box,
                     const std::vector<Rgb>& stripe_colors) {
  if (box.Empty() || stripe_colors.empty()) return;
  const size_t n = stripe_colors.size();
  const int32_t w = box.Width();
  for (size_t i = 0; i < n; ++i) {
    const int32_t x0 = box.x0 + static_cast<int32_t>(i * w / n);
    const int32_t x1 = box.x0 + static_cast<int32_t>((i + 1) * w / n);
    image.Fill(Rect(x0, box.y0, x1, box.y1), stripe_colors[i]);
  }
}

void Cross(Image& image, const Rect& box, int32_t cross_x, int32_t cross_y,
           int32_t arm, Rgb color) {
  const int32_t half = std::max(1, arm / 2);
  image.Fill(Rect(cross_x - half, box.y0, cross_x + half, box.y1), color);
  image.Fill(Rect(box.x0, cross_y - half, box.x1, cross_y + half), color);
}

}  // namespace draw
}  // namespace mmdb
