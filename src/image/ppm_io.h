#ifndef MMDB_IMAGE_PPM_IO_H_
#define MMDB_IMAGE_PPM_IO_H_

#include <string>

#include "image/image.h"
#include "util/result.h"

namespace mmdb {

/// Codec for the Netpbm PPM formats (text `P3` and binary `P6`).
///
/// The paper's prototype used the pbmplus package to move images through
/// the text-based ppm format; this module is our from-scratch equivalent,
/// so any image in the system can be exported for inspection and external
/// rasters can be ingested.
enum class PpmFormat {
  kText,    // "P3": ASCII decimal samples.
  kBinary,  // "P6": raw bytes.
};

/// Serializes `image` in the given PPM format. Maxval is always 255.
std::string EncodePpm(const Image& image, PpmFormat format);

/// Parses a PPM (`P3` or `P6`) or PGM (`P2` or `P5`) byte buffer —
/// grayscale samples expand to grey RGB pixels. Comments (`#`) are
/// honored in headers. Returns Corruption on malformed input,
/// NotSupported for other Netpbm magic numbers, and InvalidArgument for
/// maxval outside [1, 255].
Result<Image> DecodePpm(const std::string& data);

/// Serializes `image` as a PGM (`P5` binary or `P2` text) grayscale
/// raster using Rec. 601 luma — the lossy export for grayscale
/// consumers.
std::string EncodePgm(const Image& image, PpmFormat format);

/// Writes `image` to `path`. Binary format unless `format` says otherwise.
Status WritePpmFile(const Image& image, const std::string& path,
                    PpmFormat format = PpmFormat::kBinary);

/// Reads a PPM image from `path`.
Result<Image> ReadPpmFile(const std::string& path);

}  // namespace mmdb

#endif  // MMDB_IMAGE_PPM_IO_H_
