#include "image/editor.h"

#include <algorithm>
#include <cmath>

namespace mmdb {

Editor::Editor(ImageResolver resolver) : resolver_(std::move(resolver)) {}

Editor::State Editor::InitialState(Image base) {
  State state;
  state.defined_region = base.Bounds();
  state.canvas = std::move(base);
  return state;
}

Result<Image> Editor::Instantiate(const Image& base,
                                  const EditScript& script) const {
  State state = InitialState(base);
  for (const EditOp& op : script.ops) {
    MMDB_RETURN_IF_ERROR(ApplyOp(op, &state));
  }
  return std::move(state.canvas);
}

Status Editor::ApplyOp(const EditOp& op, State* state) const {
  return std::visit(
      [this, state](const auto& concrete) -> Status {
        using T = std::decay_t<decltype(concrete)>;
        if constexpr (std::is_same_v<T, DefineOp>) {
          return ApplyDefine(concrete, state);
        } else if constexpr (std::is_same_v<T, CombineOp>) {
          return ApplyCombine(concrete, state);
        } else if constexpr (std::is_same_v<T, ModifyOp>) {
          return ApplyModify(concrete, state);
        } else if constexpr (std::is_same_v<T, MutateOp>) {
          return ApplyMutate(concrete, state);
        } else {
          return ApplyMerge(concrete, state);
        }
      },
      op);
}

Status Editor::ApplyDefine(const DefineOp& op, State* state) const {
  state->defined_region = op.region.Intersect(state->canvas.Bounds());
  return Status::OK();
}

Status Editor::ApplyCombine(const CombineOp& op, State* state) const {
  const double weight_sum = op.WeightSum();
  if (weight_sum == 0.0) return Status::OK();  // Defined as a no-op.
  const Image snapshot = state->canvas;
  const Rect dr = state->defined_region;
  Image& canvas = state->canvas;
  for (int32_t y = dr.y0; y < dr.y1; ++y) {
    for (int32_t x = dr.x0; x < dr.x1; ++x) {
      double r = 0, g = 0, b = 0;
      int k = 0;
      for (int32_t dy = -1; dy <= 1; ++dy) {
        for (int32_t dx = -1; dx <= 1; ++dx, ++k) {
          // Neighbors outside the canvas clamp to the nearest edge pixel.
          const int32_t nx = std::clamp(x + dx, 0, snapshot.width() - 1);
          const int32_t ny = std::clamp(y + dy, 0, snapshot.height() - 1);
          const Rgb& p = snapshot.At(nx, ny);
          const double w = op.weights[static_cast<size_t>(k)];
          r += w * p.r;
          g += w * p.g;
          b += w * p.b;
        }
      }
      auto quantize = [weight_sum](double v) {
        return static_cast<uint8_t>(
            std::clamp(std::lround(v / weight_sum), 0L, 255L));
      };
      canvas.At(x, y) = Rgb(quantize(r), quantize(g), quantize(b));
    }
  }
  return Status::OK();
}

Status Editor::ApplyModify(const ModifyOp& op, State* state) const {
  const Rect dr = state->defined_region;
  Image& canvas = state->canvas;
  for (int32_t y = dr.y0; y < dr.y1; ++y) {
    for (int32_t x = dr.x0; x < dr.x1; ++x) {
      if (canvas.At(x, y) == op.old_color) canvas.At(x, y) = op.new_color;
    }
  }
  return Status::OK();
}

Status Editor::ApplyMutate(const MutateOp& op, State* state) const {
  const Rect dr = state->defined_region;
  Image& canvas = state->canvas;
  const bool full_canvas = dr == canvas.Bounds();

  if (full_canvas && op.IsPureScale()) {
    // Whole-image resize with nearest-neighbor resampling; this is the
    // Table 1 "DR contains image" scaling case.
    const double sx = op.m[0];
    const double sy = op.m[4];
    const int32_t new_w =
        static_cast<int32_t>(std::lround(canvas.width() * sx));
    const int32_t new_h =
        static_cast<int32_t>(std::lround(canvas.height() * sy));
    Image resized(new_w, new_h);
    for (int32_t y = 0; y < new_h; ++y) {
      const int32_t src_y = std::clamp(
          static_cast<int32_t>(std::floor((y + 0.5) / sy)), 0,
          canvas.height() - 1);
      for (int32_t x = 0; x < new_w; ++x) {
        const int32_t src_x = std::clamp(
            static_cast<int32_t>(std::floor((x + 0.5) / sx)), 0,
            canvas.width() - 1);
        resized.At(x, y) = canvas.At(src_x, src_y);
      }
    }
    state->canvas = std::move(resized);
    state->defined_region = state->canvas.Bounds();
    return Status::OK();
  }

  // General case: stamp the transformed copy of the DR over the canvas.
  // Destination pixels whose preimage lands inside the DR are overwritten;
  // everything else (including vacated DR pixels) keeps its value. Canvas
  // size is unchanged.
  const std::optional<MutateOp> inverse = op.Inverse();
  if (!inverse.has_value()) {
    return Status::InvalidArgument("Mutate: singular matrix " +
                                   op.ToString());
  }
  if (dr.Empty()) return Status::OK();

  // Bounding box of the transformed DR corners, clipped to the canvas.
  double min_x = 1e30, min_y = 1e30, max_x = -1e30, max_y = -1e30;
  const double corner_xs[2] = {static_cast<double>(dr.x0),
                               static_cast<double>(dr.x1)};
  const double corner_ys[2] = {static_cast<double>(dr.y0),
                               static_cast<double>(dr.y1)};
  for (double cx : corner_xs) {
    for (double cy : corner_ys) {
      double tx, ty;
      if (!op.Apply(cx, cy, &tx, &ty)) {
        return Status::InvalidArgument("Mutate: degenerate projection");
      }
      min_x = std::min(min_x, tx);
      min_y = std::min(min_y, ty);
      max_x = std::max(max_x, tx);
      max_y = std::max(max_y, ty);
    }
  }
  const Rect dest =
      Rect(static_cast<int32_t>(std::floor(min_x)),
           static_cast<int32_t>(std::floor(min_y)),
           static_cast<int32_t>(std::ceil(max_x)) + 1,
           static_cast<int32_t>(std::ceil(max_y)) + 1)
          .Intersect(canvas.Bounds());

  const Image snapshot = canvas;
  for (int32_t y = dest.y0; y < dest.y1; ++y) {
    for (int32_t x = dest.x0; x < dest.x1; ++x) {
      double sx_f, sy_f;
      if (!inverse->Apply(x + 0.5, y + 0.5, &sx_f, &sy_f)) continue;
      const int32_t src_x = static_cast<int32_t>(std::floor(sx_f));
      const int32_t src_y = static_cast<int32_t>(std::floor(sy_f));
      if (dr.Contains(src_x, src_y)) {
        canvas.At(x, y) = snapshot.At(src_x, src_y);
      }
    }
  }
  return Status::OK();
}

Status Editor::ApplyMerge(const MergeOp& op, State* state) const {
  const Rect dr = state->defined_region;
  if (op.IsNullTarget()) {
    // Extract the DR as the new image.
    if (dr.Empty()) {
      return Status::InvalidArgument("Merge(NULL): empty Defined Region");
    }
    Image extracted(dr.Width(), dr.Height());
    for (int32_t y = dr.y0; y < dr.y1; ++y) {
      for (int32_t x = dr.x0; x < dr.x1; ++x) {
        extracted.At(x - dr.x0, y - dr.y0) = state->canvas.At(x, y);
      }
    }
    state->canvas = std::move(extracted);
    state->defined_region = state->canvas.Bounds();
    return Status::OK();
  }

  if (!resolver_) {
    return Status::InvalidArgument(
        "Merge: no image resolver configured for target " +
        std::to_string(*op.target));
  }
  MMDB_ASSIGN_OR_RETURN(Image target, resolver_(*op.target));
  // Paste the DR into the target with its top-left at (op.x, op.y),
  // clipped to the target canvas.
  for (int32_t y = dr.y0; y < dr.y1; ++y) {
    for (int32_t x = dr.x0; x < dr.x1; ++x) {
      const int32_t tx = op.x + (x - dr.x0);
      const int32_t ty = op.y + (y - dr.y0);
      if (target.Bounds().Contains(tx, ty)) {
        target.At(tx, ty) = state->canvas.At(x, y);
      }
    }
  }
  state->canvas = std::move(target);
  state->defined_region = state->canvas.Bounds();
  return Status::OK();
}

}  // namespace mmdb
