#ifndef MMDB_IMAGE_EDITOR_H_
#define MMDB_IMAGE_EDITOR_H_

#include <functional>

#include "editops/edit_ops.h"
#include "image/image.h"
#include "util/result.h"

namespace mmdb {

/// Resolves an image object id to its pixels. Used by the editor to fetch
/// Merge targets (and by query processors to fetch base images).
using ImageResolver = std::function<Result<Image>(ObjectId)>;

/// The instantiation engine: executes edit scripts against real pixels.
///
/// This is the expensive path the paper's RBM/BWM methods exist to avoid
/// at query time — but the system still needs it to materialize an edited
/// image for display, and the test suite uses it as the ground truth that
/// the rule-derived histogram bounds must always contain.
class Editor {
 public:
  /// `resolver` fetches Merge targets; may be empty if scripts contain no
  /// non-null Merge (executing one then fails with InvalidArgument).
  explicit Editor(ImageResolver resolver = nullptr);

  /// Instantiates `script` starting from `base` (which must be the image
  /// identified by `script.base_id`). Runs every op in order.
  Result<Image> Instantiate(const Image& base, const EditScript& script) const;

  /// Execution state: the working canvas plus the current Defined Region.
  struct State {
    Image canvas;
    /// Current DR in canvas coordinates; always clipped to the canvas.
    Rect defined_region;
  };

  /// Initial state for executing a script over `base`: the DR defaults to
  /// the full canvas, per the operation model.
  static State InitialState(Image base);

  /// Applies a single operation to `state`. Exposed so tests and the rule
  /// engine validation can single-step scripts.
  Status ApplyOp(const EditOp& op, State* state) const;

 private:
  Status ApplyDefine(const DefineOp& op, State* state) const;
  Status ApplyCombine(const CombineOp& op, State* state) const;
  Status ApplyModify(const ModifyOp& op, State* state) const;
  Status ApplyMutate(const MutateOp& op, State* state) const;
  Status ApplyMerge(const MergeOp& op, State* state) const;

  ImageResolver resolver_;
};

}  // namespace mmdb

#endif  // MMDB_IMAGE_EDITOR_H_
