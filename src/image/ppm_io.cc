#include "image/ppm_io.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mmdb {

namespace {

/// Incremental tokenizer over PPM header/text bodies that skips whitespace
/// and `#` comments, per the Netpbm specification.
class PpmScanner {
 public:
  explicit PpmScanner(const std::string& data) : data_(data) {}

  /// Skips whitespace and comments; returns false at end of input.
  bool SkipSpace() {
    while (pos_ < data_.size()) {
      const char c = data_[pos_];
      if (c == '#') {
        while (pos_ < data_.size() && data_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        return true;
      }
    }
    return false;
  }

  /// Reads a non-negative decimal integer.
  Result<int64_t> NextInt() {
    if (!SkipSpace()) return Status::Corruption("ppm: unexpected end of data");
    if (!std::isdigit(static_cast<unsigned char>(data_[pos_]))) {
      return Status::Corruption("ppm: expected integer");
    }
    int64_t value = 0;
    while (pos_ < data_.size() &&
           std::isdigit(static_cast<unsigned char>(data_[pos_]))) {
      value = value * 10 + (data_[pos_] - '0');
      if (value > (int64_t{1} << 40)) {
        return Status::Corruption("ppm: integer overflow in header");
      }
      ++pos_;
    }
    return value;
  }

  /// Consumes exactly one whitespace byte (the separator before P6 raster
  /// data).
  Status ConsumeOneWhitespace() {
    if (pos_ >= data_.size() ||
        !std::isspace(static_cast<unsigned char>(data_[pos_]))) {
      return Status::Corruption("ppm: missing raster separator");
    }
    ++pos_;
    return Status::OK();
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

std::string EncodePpm(const Image& image, PpmFormat format) {
  std::string out;
  const int64_t n = image.PixelCount();
  if (format == PpmFormat::kBinary) {
    out.reserve(32 + static_cast<size_t>(n) * 3);
    out += "P6\n";
    out += std::to_string(image.width()) + " " +
           std::to_string(image.height()) + "\n255\n";
    for (const Rgb& p : image.pixels()) {
      out.push_back(static_cast<char>(p.r));
      out.push_back(static_cast<char>(p.g));
      out.push_back(static_cast<char>(p.b));
    }
    return out;
  }
  std::ostringstream os;
  os << "P3\n"
     << image.width() << " " << image.height() << "\n255\n";
  int on_line = 0;
  for (const Rgb& p : image.pixels()) {
    os << static_cast<int>(p.r) << ' ' << static_cast<int>(p.g) << ' '
       << static_cast<int>(p.b);
    // Netpbm recommends lines no longer than 70 chars; 4 triples fit.
    if (++on_line == 4) {
      os << '\n';
      on_line = 0;
    } else {
      os << ' ';
    }
  }
  if (on_line != 0) os << '\n';
  return os.str();
}

std::string EncodePgm(const Image& image, PpmFormat format) {
  auto luma = [](const Rgb& p) {
    return static_cast<uint8_t>(
        std::lround(0.299 * p.r + 0.587 * p.g + 0.114 * p.b));
  };
  if (format == PpmFormat::kBinary) {
    std::string out;
    out.reserve(32 + static_cast<size_t>(image.PixelCount()));
    out += "P5\n";
    out += std::to_string(image.width()) + " " +
           std::to_string(image.height()) + "\n255\n";
    for (const Rgb& p : image.pixels()) {
      out.push_back(static_cast<char>(luma(p)));
    }
    return out;
  }
  std::ostringstream os;
  os << "P2\n" << image.width() << " " << image.height() << "\n255\n";
  int on_line = 0;
  for (const Rgb& p : image.pixels()) {
    os << static_cast<int>(luma(p));
    if (++on_line == 12) {
      os << '\n';
      on_line = 0;
    } else {
      os << ' ';
    }
  }
  if (on_line != 0) os << '\n';
  return os.str();
}

Result<Image> DecodePpm(const std::string& data) {
  if (data.size() < 2 || data[0] != 'P') {
    return Status::Corruption("ppm: missing magic number");
  }
  const char kind = data[1];
  if (kind != '2' && kind != '3' && kind != '5' && kind != '6') {
    return Status::NotSupported(std::string("ppm: unsupported magic P") +
                                kind);
  }
  const bool grayscale = kind == '2' || kind == '5';
  const int channels = grayscale ? 1 : 3;
  // Parse the header after the 2-byte magic.
  const std::string rest = data.substr(2);
  PpmScanner s(rest);
  MMDB_ASSIGN_OR_RETURN(int64_t width, s.NextInt());
  MMDB_ASSIGN_OR_RETURN(int64_t height, s.NextInt());
  MMDB_ASSIGN_OR_RETURN(int64_t maxval, s.NextInt());
  if (width < 0 || height < 0 || width > 1 << 20 || height > 1 << 20) {
    return Status::Corruption("ppm: implausible dimensions");
  }
  if (maxval < 1 || maxval > 255) {
    return Status::InvalidArgument("ppm: only maxval in [1,255] supported");
  }
  Image image(static_cast<int32_t>(width), static_cast<int32_t>(height));
  const int64_t samples = width * height * channels;
  if (kind == '3' || kind == '2') {
    for (int64_t i = 0; i < samples; ++i) {
      MMDB_ASSIGN_OR_RETURN(int64_t v, s.NextInt());
      if (v > maxval) return Status::Corruption("ppm: sample above maxval");
      const int64_t pix = i / channels;
      Rgb& p = image.pixels()[static_cast<size_t>(pix)];
      const uint8_t byte = static_cast<uint8_t>(v * 255 / maxval);
      if (grayscale) {
        p = Rgb(byte, byte, byte);
      } else if (i % 3 == 0) {
        p.r = byte;
      } else if (i % 3 == 1) {
        p.g = byte;
      } else {
        p.b = byte;
      }
    }
    return image;
  }
  // P5/P6: one whitespace byte then raw raster.
  MMDB_RETURN_IF_ERROR(s.ConsumeOneWhitespace());
  const size_t raster_start = 2 + s.pos();
  if (data.size() - raster_start < static_cast<size_t>(samples)) {
    return Status::Corruption("ppm: truncated raster");
  }
  auto scale = [maxval](uint8_t v) {
    return static_cast<uint8_t>(static_cast<int64_t>(v) * 255 / maxval);
  };
  for (int64_t pix = 0; pix < width * height; ++pix) {
    const size_t off =
        raster_start + static_cast<size_t>(pix) * channels;
    Rgb& p = image.pixels()[static_cast<size_t>(pix)];
    if (grayscale) {
      const uint8_t g = scale(static_cast<uint8_t>(data[off]));
      p = Rgb(g, g, g);
    } else {
      p.r = scale(static_cast<uint8_t>(data[off]));
      p.g = scale(static_cast<uint8_t>(data[off + 1]));
      p.b = scale(static_cast<uint8_t>(data[off + 2]));
    }
  }
  return image;
}

Status WritePpmFile(const Image& image, const std::string& path,
                    PpmFormat format) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  const std::string data = EncodePpm(image, format);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Image> ReadPpmFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DecodePpm(buf.str());
}

}  // namespace mmdb
