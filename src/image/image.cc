#include "image/image.h"

namespace mmdb {

Image::Image(int32_t width, int32_t height, Rgb fill)
    : width_(width > 0 ? width : 0),
      height_(height > 0 ? height : 0),
      pixels_(static_cast<size_t>(width_) * height_, fill) {}

void Image::Fill(const Rect& rect, Rgb color) {
  const Rect r = rect.Intersect(Bounds());
  for (int32_t y = r.y0; y < r.y1; ++y) {
    for (int32_t x = r.x0; x < r.x1; ++x) {
      At(x, y) = color;
    }
  }
}

int64_t Image::CountColor(Rgb color, const Rect& rect) const {
  const Rect r = rect.Intersect(Bounds());
  int64_t count = 0;
  for (int32_t y = r.y0; y < r.y1; ++y) {
    for (int32_t x = r.x0; x < r.x1; ++x) {
      if (At(x, y) == color) ++count;
    }
  }
  return count;
}

}  // namespace mmdb
