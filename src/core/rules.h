#ifndef MMDB_CORE_RULES_H_
#define MMDB_CORE_RULES_H_

#include <functional>

#include "core/quantizer.h"
#include "editops/edit_ops.h"
#include "util/result.h"

namespace mmdb {

/// Fidelity options for the rule engine.
///
/// The paper's Table 1 states its Combine rule as "no change" and its
/// Mutate rigid-body rule as exactly +/- |DR|. Both are idealizations: a
/// blur can move pixels across histogram-bin boundaries, and nearest-
/// neighbor rasterization of a rotated region can overwrite slightly more
/// than |DR| pixels. The default (sound) mode widens those rules just
/// enough that the computed bounds *provably* contain the instantiated
/// value (the property suite checks this against the pixel engine);
/// `paper_strict = true` reproduces Table 1 verbatim instead. The
/// bound-widening classification — and therefore all BWM behaviour — is
/// identical in both modes.
struct RuleOptions {
  bool paper_strict = false;
};

/// Bounds on one histogram bin of a merge target: `[hb_min, hb_max]`
/// pixels out of `size`, with exact canvas dimensions.
struct TargetBounds {
  int64_t hb_min = 0;
  int64_t hb_max = 0;
  int64_t size = 0;
  int32_t width = 0;
  int32_t height = 0;
};

/// Resolves a Merge target id to its bin bounds for the queried bin. For a
/// binary target this is the exact stored histogram value (min == max);
/// for an edited target the caller may recurse through the rule engine.
using TargetBoundsResolver =
    std::function<Result<TargetBounds>(ObjectId, BinIndex)>;

/// The paper's rule state: minimum and maximum number of pixels that may
/// be in bin HB (`hb_min`, `hb_max`), plus the total pixel count. We also
/// track the exact canvas dimensions and the current Defined Region —
/// both are derivable from the script without touching pixels, and they
/// make |DR| and resize arithmetic exact.
struct RuleState {
  int64_t hb_min = 0;
  int64_t hb_max = 0;
  int64_t size = 0;
  int32_t width = 0;
  int32_t height = 0;
  Rect defined_region;

  Rect CanvasBounds() const { return Rect::Full(width, height); }
  /// Pixels in the current DR (the paper's |DR|).
  int64_t DrSize() const { return defined_region.Area(); }
};

/// Applies the paper's Table 1 rules, one editing operation at a time,
/// without instantiating any pixels.
class RuleEngine {
 public:
  explicit RuleEngine(ColorQuantizer quantizer, RuleOptions options = {});

  const ColorQuantizer& quantizer() const { return quantizer_; }
  const RuleOptions& options() const { return options_; }

  /// True iff the rule for `op` is bound-widening (Section 4): it can only
  /// widen the percentage range [hb_min/size, hb_max/size]. Per the paper:
  /// Define/Combine/Modify/Mutate always; Merge iff its target is NULL.
  static bool IsBoundWidening(const EditOp& op);

  /// True iff every operation in `script` has a bound-widening rule — the
  /// condition for membership in BWM's Main component.
  static bool IsAllBoundWidening(const EditScript& script);

  /// Initial rule state for an edited image whose referenced base image
  /// has `hb_count` pixels in the queried bin out of `width` x `height`.
  static RuleState InitialState(int64_t hb_count, int32_t width,
                                int32_t height);

  /// Applies the rule for `op` to `state` for the queried bin `hb`.
  /// `resolver` is consulted only for Merge with a non-null target.
  Status ApplyRule(const EditOp& op, BinIndex hb,
                   const TargetBoundsResolver& resolver,
                   RuleState* state) const;

 private:
  void ApplyDefine(const DefineOp& op, RuleState* state) const;
  void ApplyCombine(const CombineOp& op, RuleState* state) const;
  void ApplyModify(const ModifyOp& op, BinIndex hb, RuleState* state) const;
  void ApplyMutate(const MutateOp& op, RuleState* state) const;
  Status ApplyMerge(const MergeOp& op, BinIndex hb,
                    const TargetBoundsResolver& resolver,
                    RuleState* state) const;

  /// Widens bounds by up to `changed` pixels changing bin membership.
  static void WidenBy(int64_t changed, RuleState* state);

  ColorQuantizer quantizer_;
  RuleOptions options_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_RULES_H_
