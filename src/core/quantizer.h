#ifndef MMDB_CORE_QUANTIZER_H_
#define MMDB_CORE_QUANTIZER_H_

#include <cstdint>
#include <string>

#include "image/color.h"

namespace mmdb {

/// Index of a color histogram bin (the paper's `HB`).
using BinIndex = int32_t;

/// Color model whose space the quantizer divides. Per the paper (Section
/// 3.1), histograms are built by "uniformly quantizing the space of a
/// color model such as RGB, HSV, or Luv".
enum class ColorSpace : uint8_t {
  kRgb = 0,
  kHsv = 1,
  kLuv = 2,
};

/// Returns "RGB" / "HSV" / "Luv".
std::string_view ColorSpaceName(ColorSpace space);

/// Uniform quantizer of a color space.
///
/// `divisions = 4` over RGB gives the 64-bin histogram used as the
/// repo-wide default. In HSV mode the hue circle [0, 360), saturation
/// [0, 1], and value [0, 1] are each divided uniformly instead — better
/// aligned with perceptual similarity for saturated palettes.
class ColorQuantizer {
 public:
  /// Creates a quantizer with `divisions` cells per axis (so
  /// `divisions`^3 bins). Values outside [1, 256] are clamped.
  explicit ColorQuantizer(int32_t divisions = 4,
                          ColorSpace space = ColorSpace::kRgb);

  /// Number of divisions per axis.
  int32_t divisions() const { return divisions_; }

  /// The color model being quantized.
  ColorSpace space() const { return space_; }

  /// Total number of bins (`divisions`^3), the histogram dimensionality.
  int32_t BinCount() const { return divisions_ * divisions_ * divisions_; }

  /// Maps a color to its bin.
  BinIndex BinOf(const Rgb& color) const;

  /// A representative color inside `bin` (useful for visualization and
  /// for picking the query bin for "25% blue"-style queries). In RGB
  /// mode it always maps back to `bin` under `BinOf`; in HSV mode that
  /// holds for saturated, bright bins (low-saturation bins collapse
  /// toward gray, where hue is ill-defined at 8-bit precision).
  Rgb BinCenter(BinIndex bin) const;

  /// Debug rendering like "bin 42 = center #3f7fbf".
  std::string DescribeBin(BinIndex bin) const;

  friend bool operator==(const ColorQuantizer& a, const ColorQuantizer& b) {
    return a.divisions_ == b.divisions_ && a.space_ == b.space_;
  }

 private:
  int32_t AxisCell(uint8_t v) const {
    // Uniform partition of [0, 256) into `divisions_` cells.
    return static_cast<int32_t>(v) * divisions_ / 256;
  }
  /// Uniform partition of [0, 1] (upper end inclusive) into cells.
  int32_t UnitCell(double v) const;

  int32_t divisions_;
  ColorSpace space_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_QUANTIZER_H_
