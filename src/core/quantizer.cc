#include "core/quantizer.h"

#include <algorithm>
#include <cmath>

namespace mmdb {

std::string_view ColorSpaceName(ColorSpace space) {
  switch (space) {
    case ColorSpace::kRgb:
      return "RGB";
    case ColorSpace::kHsv:
      return "HSV";
    case ColorSpace::kLuv:
      return "Luv";
  }
  return "Unknown";
}

ColorQuantizer::ColorQuantizer(int32_t divisions, ColorSpace space)
    : divisions_(std::clamp(divisions, 1, 256)), space_(space) {}

int32_t ColorQuantizer::UnitCell(double v) const {
  const int32_t cell = static_cast<int32_t>(v * divisions_);
  return std::clamp(cell, 0, divisions_ - 1);
}

namespace {
// Uniform quantization window for the L*u*v* axes; sRGB colors stay
// comfortably within these ranges.
constexpr double kLuvLMax = 100.0;
constexpr double kLuvUMin = -134.0, kLuvUMax = 220.0;
constexpr double kLuvVMin = -140.0, kLuvVMax = 122.0;
}  // namespace

BinIndex ColorQuantizer::BinOf(const Rgb& color) const {
  switch (space_) {
    case ColorSpace::kRgb: {
      const int32_t r = AxisCell(color.r);
      const int32_t g = AxisCell(color.g);
      const int32_t b = AxisCell(color.b);
      return (r * divisions_ + g) * divisions_ + b;
    }
    case ColorSpace::kHsv: {
      const Hsv hsv = RgbToHsv(color);
      const int32_t h = UnitCell(hsv.h / 360.0);
      const int32_t s = UnitCell(hsv.s);
      const int32_t v = UnitCell(hsv.v);
      return (h * divisions_ + s) * divisions_ + v;
    }
    case ColorSpace::kLuv: {
      const Luv luv = RgbToLuv(color);
      const int32_t l = UnitCell(luv.l / kLuvLMax);
      const int32_t u =
          UnitCell((luv.u - kLuvUMin) / (kLuvUMax - kLuvUMin));
      const int32_t v =
          UnitCell((luv.v - kLuvVMin) / (kLuvVMax - kLuvVMin));
      return (l * divisions_ + u) * divisions_ + v;
    }
  }
  return 0;
}

Rgb ColorQuantizer::BinCenter(BinIndex bin) const {
  const int32_t c2 = bin % divisions_;
  const int32_t c1 = (bin / divisions_) % divisions_;
  const int32_t c0 = bin / (divisions_ * divisions_);
  if (space_ == ColorSpace::kRgb) {
    auto center = [this](int32_t cell) {
      const int32_t lo = cell * 256 / divisions_;
      const int32_t hi = (cell + 1) * 256 / divisions_;
      return static_cast<uint8_t>(std::min(255, (lo + hi) / 2));
    };
    return Rgb(center(c0), center(c1), center(c2));
  }
  auto unit_center = [this](int32_t cell) {
    return (cell + 0.5) / divisions_;
  };
  if (space_ == ColorSpace::kHsv) {
    Hsv hsv;
    hsv.h = unit_center(c0) * 360.0;
    hsv.s = unit_center(c1);
    hsv.v = unit_center(c2);
    return HsvToRgb(hsv);
  }
  Luv luv;
  luv.l = unit_center(c0) * kLuvLMax;
  luv.u = kLuvUMin + unit_center(c1) * (kLuvUMax - kLuvUMin);
  luv.v = kLuvVMin + unit_center(c2) * (kLuvVMax - kLuvVMin);
  return LuvToRgb(luv);
}

std::string ColorQuantizer::DescribeBin(BinIndex bin) const {
  return "bin " + std::to_string(bin) + " = center " +
         BinCenter(bin).ToHexString();
}

}  // namespace mmdb
