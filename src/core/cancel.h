#ifndef MMDB_CORE_CANCEL_H_
#define MMDB_CORE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "core/query.h"
#include "util/status.h"

namespace mmdb {

/// An absolute point in time a query must finish by, over
/// `std::chrono::steady_clock`. Default-constructed deadlines are
/// infinite (never expire), so carrying one everywhere costs nothing on
/// the unlimited path.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() = default;

  /// Expires `seconds` from now (<= 0 is already expired).
  static Deadline After(double seconds) {
    Deadline d;
    d.finite_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  /// The earlier of two deadlines (an infinite one never wins).
  static Deadline Earliest(const Deadline& a, const Deadline& b) {
    if (!a.finite_) return b;
    if (!b.finite_) return a;
    return a.at_ <= b.at_ ? a : b;
  }

  bool IsInfinite() const { return !finite_; }

  bool Expired() const { return finite_ && Clock::now() >= at_; }

  /// Seconds until expiry; negative once expired, +infinity when
  /// infinite.
  double RemainingSeconds() const {
    if (!finite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

  /// Carves a sub-deadline out of `parent`: expires once `fraction` of
  /// the parent's *remaining* time has elapsed. An infinite parent stays
  /// infinite; an expired one yields an already-expired budget. The
  /// scatter-gather coordinator uses this to give every shard a slice of
  /// the query deadline while reserving the tail for the merge.
  static Deadline Budget(const Deadline& parent, double fraction) {
    if (parent.IsInfinite()) return parent;
    double remaining = parent.RemainingSeconds();
    if (remaining < 0.0) remaining = 0.0;
    return After(remaining * fraction);
  }

  Clock::time_point time_point() const { return at_; }

 private:
  bool finite_ = false;
  Clock::time_point at_{};
};

/// A cooperative cancellation flag. The caller keeps the token and calls
/// `Cancel()`; query code polls it at cheap natural boundaries. Safe to
/// share across threads (one writer, any number of pollers).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Out-of-band record of an interrupted query's partial progress: the
/// work counters and results accumulated up to the check that tripped.
/// The error `Status` itself stays typed and message-only; callers that
/// want the partial picture hang one of these off the `QueryContext`.
struct QueryInterrupt {
  /// True once the query was cut short (deadline or cancellation).
  bool partial = false;
  /// Why: kDeadlineExceeded or kCancelled.
  StatusCode reason = StatusCode::kOk;
  /// Matches found before the interrupt.
  int64_t results_so_far = 0;
  /// Work counters up to the interrupt (images examined etc.).
  QueryStats stats;
};

/// Per-query execution limits, threaded through every `QueryProcessor`.
/// A default-constructed context imposes none — that is the facade's
/// legacy single-argument path, and it must stay result- and
/// performance-identical to the pre-robustness code.
struct QueryContext {
  /// Caller-owned per-query cancel token; may be null.
  const CancelToken* cancel = nullptr;
  /// Second token cancelling a whole batch at once; may be null.
  const CancelToken* batch_cancel = nullptr;
  /// When the query must give up.
  Deadline deadline;
  /// Cooperative checks consult the tokens every time but the clock only
  /// every `check_stride`-th time (steady_clock::now is the expensive
  /// part of a check).
  int check_stride = 64;
  /// Optional out-slot the processor fills with partial progress when
  /// the query is interrupted; may be null.
  QueryInterrupt* interrupt = nullptr;

  /// True iff any limit is set (the enforcement fast-path gate).
  bool HasLimits() const {
    return cancel != nullptr || batch_cancel != nullptr ||
           !deadline.IsInfinite();
  }
};

/// The cooperative check itself: one `CancelCheck` per scan (or per scan
/// chunk — the stride countdown is not thread-safe), `Check()` called at
/// every natural boundary. Once tripped it stays tripped, so a deep call
/// chain reports the same typed status at every level.
class CancelCheck {
 public:
  explicit CancelCheck(const QueryContext& ctx)
      : ctx_(&ctx),
        enabled_(ctx.HasLimits()),
        countdown_(ctx.check_stride) {}

  /// OK, or DeadlineExceeded / Cancelled once a limit trips (sticky).
  Status Check() {
    if (!enabled_) return Status::OK();
    return CheckSlow();
  }

  /// This check when limits are set, null otherwise — for handing to
  /// optional deep-layer check points (e.g. the per-operation rule-walk
  /// check) so the unlimited path keeps paying nothing.
  CancelCheck* enabled_or_null() { return enabled_ ? this : nullptr; }

  bool enabled() const { return enabled_; }

 private:
  Status CheckSlow();

  const QueryContext* ctx_;
  bool enabled_;
  bool tripped_ = false;
  Status trip_status_;
  int countdown_;
};

/// True for the two cooperative-interrupt codes.
inline bool IsInterruptStatus(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kCancelled;
}

/// Funnel for every processor error path: when `status` is an interrupt
/// and the context carries an out-slot, records `partial`'s progress
/// (ids found so far, work counters) into it. Returns `status` unchanged
/// either way, so non-interrupt errors flow through untouched.
Status AnnotateInterrupt(const QueryContext& ctx, const QueryResult& partial,
                         Status status);

/// RAII thread-local publication of the active query's limits, so layers
/// the context is not threaded through (the buffer pool → disk manager
/// read path) can still honor per-page deadline/cancellation checks.
/// Scopes nest (a query within a query restores the outer one).
class CancelScope {
 public:
  explicit CancelScope(const QueryContext& ctx);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  /// The innermost installed context, or null.
  static const QueryContext* Current();

 private:
  const QueryContext* prev_;
};

/// Checks the thread's installed `CancelScope` context (tokens and
/// clock, unstrided — callers are per-page, already coarse). OK when no
/// scope is installed or no limit tripped.
Status CheckScopedCancel();

}  // namespace mmdb

#endif  // MMDB_CORE_CANCEL_H_
