#ifndef MMDB_CORE_QUERY_SERVICE_H_
#define MMDB_CORE_QUERY_SERVICE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <span>
#include <variant>
#include <vector>

#include "core/admission.h"
#include "core/cancel.h"
#include "core/database.h"
#include "core/executor.h"
#include "core/query.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace mmdb {

/// Sizing of a `QueryService`.
struct QueryServiceOptions {
  /// Threads a batch may occupy (pool workers plus the calling thread).
  /// 0 means `std::thread::hardware_concurrency()`.
  int threads = 0;
  /// Admission control: with `admission.max_in_flight > 0` every query
  /// passes the gate before executing, and overload produces fast typed
  /// ResourceExhausted rejections per the configured policy.
  AdmissionOptions admission;
};

/// The payload of one query: exactly one of the three query shapes. A
/// `std::variant` makes the old "neither set / both set" misuse states
/// unrepresentable — a default-constructed request is a valid match-all
/// range query.
using QueryPayload =
    std::variant<RangeQuery, ConjunctiveQuery, SimilarityQuery>;

/// One query of a batch: a range, conjunctive, or top-k similarity query
/// plus the access path to answer it with (similarity ignores `method` —
/// it always runs the interval-bounded scan). Build with the factory
/// helpers; inspect with `kind()` and the typed accessors.
struct QueryRequest {
  QueryMethod method = QueryMethod::kBwm;
  QueryPayload payload;
  /// Per-query deadline (infinite by default). Combined with the batch
  /// deadline; the earlier one wins.
  Deadline deadline;
  /// Optional caller-owned cancel token; must outlive the batch.
  const CancelToken* cancel = nullptr;

  QueryKind kind() const { return static_cast<QueryKind>(payload.index()); }

  /// Typed payload access: non-null exactly when `kind()` matches.
  const RangeQuery* range() const {
    return std::get_if<RangeQuery>(&payload);
  }
  const ConjunctiveQuery* conjunctive() const {
    return std::get_if<ConjunctiveQuery>(&payload);
  }
  const SimilarityQuery* similarity() const {
    return std::get_if<SimilarityQuery>(&payload);
  }

  static QueryRequest Range(RangeQuery query,
                            QueryMethod method = QueryMethod::kBwm) {
    QueryRequest request;
    request.method = method;
    request.payload = std::move(query);
    return request;
  }
  static QueryRequest Conjunctive(ConjunctiveQuery query,
                                  QueryMethod method = QueryMethod::kBwm) {
    QueryRequest request;
    request.method = method;
    request.payload = std::move(query);
    return request;
  }
  static QueryRequest Similarity(SimilarityQuery query) {
    QueryRequest request;
    request.payload = std::move(query);
    return request;
  }
};

/// Batch-wide limits for `ExecuteBatch`: one deadline and one cancel
/// token covering every query of the batch (each combines with the
/// per-request limits).
struct BatchOptions {
  Deadline deadline;
  const CancelToken* cancel = nullptr;
};

/// The serving layer over a `MultimediaDatabase`: a persistent worker
/// pool executes batches of independent read queries concurrently, and
/// every query feeds a per-query observability record into service-level
/// counters.
///
/// Concurrency contract (inherited from the facade): the query paths
/// read only in-memory structures, so any number of `ExecuteBatch` /
/// `Execute` calls may run at once — but mutations of the underlying
/// database (`Insert*`, `DeleteImage`, `Flush`) must remain externally
/// serialized against them, exactly as for direct facade queries.
/// `QueryMethod::kInstantiate` touches the object store and is safe in a
/// batch only over an in-memory store (the facade documents the same
/// boundary).
class QueryService {
 public:
  /// Per-query observability record: what one query cost and how much
  /// work each side of the scan did (Main-cluster accepts are
  /// `stats.edited_images_skipped`; RBM fallbacks inside BWM are
  /// `stats.edited_images_bounded`).
  struct QueryObservation {
    QueryMethod method = QueryMethod::kBwm;
    bool ok = false;
    QueryKind kind = QueryKind::kRange;
    double wall_seconds = 0.0;
    int64_t results = 0;
    QueryStats stats;
    /// The error code when `!ok` (kOk otherwise).
    StatusCode error_code = StatusCode::kOk;
    /// Interrupted mid-scan (deadline or cancellation) with partial
    /// progress recorded in `stats` / `results`.
    bool partial = false;
    /// Rejected by the admission gate before executing.
    bool rejected = false;
  };

  /// Distribution summary of one access path's per-query wall time,
  /// derived from a fixed-bucket histogram (percentiles are interpolated
  /// within the owning bucket, Prometheus-style).
  struct LatencySummary {
    int64_t count = 0;
    double total_seconds = 0.0;
    double p50_seconds = 0.0;
    double p95_seconds = 0.0;
    double max_seconds = 0.0;
  };

  /// Cumulative counters since construction (or `ResetCounters`).
  struct CounterSnapshot {
    int64_t batches = 0;
    int64_t queries = 0;
    int64_t range_queries = 0;
    int64_t conjunctive_queries = 0;
    int64_t similarity_queries = 0;
    int64_t failed_queries = 0;
    /// Failures by lifecycle cause (all also count in `failed_queries`).
    int64_t deadline_exceeded = 0;
    int64_t cancelled_queries = 0;
    int64_t admission_rejected = 0;
    /// Interrupted queries that reported partial progress.
    int64_t partial_queries = 0;
    int64_t results_returned = 0;
    /// Work counters summed over every successful query.
    QueryStats stats;
    double total_query_seconds = 0.0;
    double max_query_seconds = 0.0;
    /// Successful + failed queries per access path.
    std::map<QueryMethod, int64_t> queries_per_method;
    /// Per-access-path latency distributions (only paths that ran).
    std::map<QueryMethod, LatencySummary> method_latency;
    /// Executor handoffs since the last `ResetCounters`: how many tasks
    /// went through the pool queue vs ran inline, and how long queued
    /// tasks waited for a worker. `max_queue_wait_seconds` is since pool
    /// construction (the pool tracks a single running max).
    int64_t pool_tasks = 0;
    int64_t inline_tasks = 0;
    double total_queue_wait_seconds = 0.0;
    double max_queue_wait_seconds = 0.0;

    /// Renders the snapshot as an aligned counter table.
    void PrintTo(std::ostream& os) const;
  };

  /// The service keeps a pointer to `db`; the database must outlive it
  /// (and outlive any batch in flight).
  explicit QueryService(const MultimediaDatabase* db,
                        QueryServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Joins the pool (graceful `Shutdown`).
  ~QueryService();

  /// Runs every request concurrently across the pool and returns one
  /// result per request, in request order — each byte-identical to what
  /// a serial `RunRange` / `RunConjunctive` facade call would return
  /// (including result order, which every processor keeps
  /// deterministic). The calling thread participates in the work, so a
  /// zero-worker service still answers every query, serially.
  std::vector<Result<QueryResult>> ExecuteBatch(
      std::span<const QueryRequest> requests);

  /// As above under batch-wide limits: `options.deadline` bounds every
  /// query of the batch and `options.cancel` cancels them all at once.
  /// Timed-out / cancelled queries return typed statuses
  /// (DeadlineExceeded / Cancelled); admission-gate rejections return
  /// ResourceExhausted without executing.
  std::vector<Result<QueryResult>> ExecuteBatch(
      std::span<const QueryRequest> requests, const BatchOptions& options);

  /// Convenience: a one-request batch.
  Result<QueryResult> Execute(const QueryRequest& request);

  /// The admission gate, or null when `admission.max_in_flight == 0`.
  const AdmissionController* admission() const { return admission_.get(); }

  /// Drains in-flight work and joins the workers. Batches submitted
  /// afterwards still complete, on the calling thread. Idempotent.
  void Shutdown();

  /// Maximum threads a batch can occupy (pool workers + the caller).
  int threads() const { return executor_.worker_count() + 1; }

  /// A consistent copy of the service counters.
  CounterSnapshot Snapshot() const;

  /// Zeroes the service counters.
  void ResetCounters();

 private:
  /// Per-access-path latency instruments: a service-local histogram that
  /// `Snapshot` summarizes (and `ResetCounters` zeroes), plus the shared
  /// registry histogram `mmdb_query_latency_seconds{method=...}` the same
  /// value is mirrored into.
  struct MethodLatency {
    std::unique_ptr<obs::Histogram> local;
    obs::Histogram* registry = nullptr;
  };

  /// Validates + runs one request and returns its observation record.
  /// `parent_span_id` links the per-query span (which runs on a pool
  /// worker) to the batch span opened on the submitting thread.
  QueryObservation RunOne(const QueryRequest& request,
                          const BatchOptions& options,
                          Result<QueryResult>* out,
                          uint64_t parent_span_id) const;
  void Record(const QueryObservation& observation);

  const MultimediaDatabase* db_;
  Executor executor_;
  /// Present iff `options.admission.max_in_flight > 0`.
  std::unique_ptr<AdmissionController> admission_;
  /// Keyed by the closed QueryMethod enum; built once in the
  /// constructor, so concurrent lookups need no lock.
  std::map<QueryMethod, MethodLatency> method_latency_;
  mutable std::mutex counters_mu_;
  CounterSnapshot counters_;
  /// queue_wait_stats() reading at construction / last ResetCounters;
  /// Snapshot reports the delta.
  Executor::QueueWaitStats wait_baseline_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_QUERY_SERVICE_H_
