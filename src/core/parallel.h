#ifndef MMDB_CORE_PARALLEL_H_
#define MMDB_CORE_PARALLEL_H_

#include "core/collection.h"
#include "core/query.h"
#include "core/rules.h"
#include "util/result.h"

namespace mmdb {

/// Multi-threaded Rule-Based Method scan (beyond-paper extension).
///
/// The per-edited-image BOUNDS folds are independent, so the scan
/// partitions the edited images into contiguous chunks and bounds each
/// chunk on its own thread (each with its own merge-target resolver —
/// the resolvers' cycle-detection state is not shareable). Results are
/// concatenated in chunk order, making the output deterministic and
/// identical to the serial `RbmQueryProcessor` (the tests enforce both).
class ParallelRbmQueryProcessor {
 public:
  /// `threads` <= 1 degenerates to the serial scan. Referents must
  /// outlive the processor.
  ParallelRbmQueryProcessor(const AugmentedCollection* collection,
                            const RuleEngine* engine, int threads);

  /// Runs `query` with the configured parallelism.
  Result<QueryResult> RunRange(const RangeQuery& query) const;

  int threads() const { return threads_; }

 private:
  const AugmentedCollection* collection_;
  const RuleEngine* engine_;
  int threads_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_PARALLEL_H_
