#ifndef MMDB_CORE_PARALLEL_H_
#define MMDB_CORE_PARALLEL_H_

#include <memory>

#include "core/collection.h"
#include "core/executor.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "core/rules.h"
#include "util/result.h"

namespace mmdb {

/// Engine-internal header (`mmdb_internal.h`): applications reach this
/// access path as `QueryMethod::kParallelRbm` through `QueryService` or
/// the facade; constructing the processor directly is deprecated as
/// public API.
///
/// Multi-threaded Rule-Based Method scan (beyond-paper extension).
///
/// The per-edited-image BOUNDS folds are independent, so the scan
/// partitions the edited images into contiguous chunks and bounds each
/// chunk as one `Executor` task (each with its own merge-target
/// resolver — the resolvers' cycle-detection state is not shareable).
/// Results are concatenated in chunk order, making the output
/// deterministic and identical to the serial `RbmQueryProcessor` (the
/// tests enforce both, for range and conjunctive queries alike).
///
/// Unlike the original implementation, no threads are created per query:
/// chunks run on a persistent pool — either one this processor owns or a
/// shared `Executor` (the facade's, when dispatched as
/// `QueryMethod::kParallelRbm`). The submitting thread always works on
/// chunks too (`Executor::ParallelFor`), so a saturated or shut-down pool
/// degrades to a serial scan instead of stalling.
class ParallelRbmQueryProcessor : public QueryProcessor {
 public:
  /// Owns a private pool sized for `threads`-way parallelism (the caller
  /// counts as one, so `threads - 1` workers are started; `threads` <= 1
  /// degenerates to a serial scan). Referents must outlive the processor.
  ParallelRbmQueryProcessor(const AugmentedCollection* collection,
                            const RuleEngine* engine, int threads);

  /// Runs chunks on `executor` (not owned; must outlive the processor)
  /// instead of a private pool.
  ParallelRbmQueryProcessor(const AugmentedCollection* collection,
                            const RuleEngine* engine, Executor* executor);

  using QueryProcessor::RunConjunctive;
  using QueryProcessor::RunRange;

  /// Runs `query` with the configured parallelism. Each chunk checks
  /// `ctx`'s limits per image (with its own check state — the stride
  /// countdown is not shareable across threads); an interrupt stops every
  /// chunk and the merged partial progress is reported via
  /// `ctx.interrupt`.
  Result<QueryResult> RunRange(const RangeQuery& query,
                               const QueryContext& ctx) const override;

  /// Conjunctive variant, same chunking and the same deterministic
  /// chunk-order guarantee.
  Result<QueryResult> RunConjunctive(const ConjunctiveQuery& query,
                                     const QueryContext& ctx) const override;

  /// Maximum threads a scan can occupy (pool workers + the caller).
  int threads() const { return executor_->worker_count() + 1; }

 private:
  /// Scans all edited images chunk-parallel; `bound_one` evaluates one
  /// edited image (appending to ids/stats of its chunk). Merges every
  /// chunk's output (so interrupted scans still report partial work),
  /// returning the first hard error, else the first interrupt status.
  template <typename BoundFn>
  Status ScanEdited(const QueryContext& ctx, QueryResult* result,
                    const BoundFn& bound_one) const;

  const AugmentedCollection* collection_;
  const RuleEngine* engine_;
  std::unique_ptr<Executor> owned_executor_;
  Executor* executor_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_PARALLEL_H_
