#ifndef MMDB_CORE_QUERY_PARSER_H_
#define MMDB_CORE_QUERY_PARSER_H_

#include <string>
#include <variant>

#include "core/quantizer.h"
#include "core/query.h"
#include "util/result.h"

namespace mmdb {

/// Parses a human-readable color predicate expression into a
/// `ConjunctiveQuery` — the textual form of the paper's example query
/// "Retrieve all images that are at least 25% blue":
///
/// ```
/// color('#0038a8') >= 0.25
/// color(12) <= 0.1
/// color('blue') >= 25%
/// color('#cc0000') between 0.2 and 0.6
/// color('#0038a8') >= 0.25 and color('#ffffff') <= 0.1
/// ```
///
/// Grammar (case-insensitive keywords, whitespace-insensitive):
///   query    := predicate ( "and" predicate )*
///   predicate:= "color" "(" colorref ")" constraint
///   colorref := "'#rrggbb'" | "#rrggbb" | "'name'" | name | bin-index
///   constraint := ">=" number | "<=" number | "==" number
///               | "between" number "and" number
///
/// Fractions may be written as decimals (0.25) or percentages (25%).
/// Colors are resolved to bins with `quantizer`; `name` is one of the
/// basic CSS color keywords (black, white, red, green, blue, yellow,
/// cyan, magenta, gray, orange, purple, brown, pink, navy, teal,
/// olive, maroon, lime, silver, aqua, fuchsia).
Result<ConjunctiveQuery> ParseQuery(const std::string& text,
                                    const ColorQuantizer& quantizer);

/// Either shape a query expression can take.
using ParsedQuery = std::variant<ConjunctiveQuery, SimilarityQuery>;

/// Parses the full expression grammar: either the predicate
/// conjunction above, or a top-k similarity request
///
/// ```
/// nearest('blue', 10)
/// nearest(#0038a8, 5)
/// nearest(12, 3)
/// ```
///
///   expr  := query | "nearest" "(" colorref "," k ")"
///
/// `nearest` builds a single-bin query histogram (all mass in the
/// resolved bin) and asks for the `k` closest images by bounded L1
/// distance. The result round-trips: `ToString()` of either
/// alternative re-parses to an equivalent query.
Result<ParsedQuery> ParseQueryExpression(const std::string& text,
                                         const ColorQuantizer& quantizer);

}  // namespace mmdb

#endif  // MMDB_CORE_QUERY_PARSER_H_
