#ifndef MMDB_CORE_QUERY_PARSER_H_
#define MMDB_CORE_QUERY_PARSER_H_

#include <string>

#include "core/quantizer.h"
#include "core/query.h"
#include "util/result.h"

namespace mmdb {

/// Parses a human-readable color predicate expression into a
/// `ConjunctiveQuery` — the textual form of the paper's example query
/// "Retrieve all images that are at least 25% blue":
///
/// ```
/// color('#0038a8') >= 0.25
/// color(12) <= 0.1
/// color('#cc0000') between 0.2 and 0.6
/// color('#0038a8') >= 0.25 and color('#ffffff') <= 0.1
/// ```
///
/// Grammar (case-insensitive keywords, whitespace-insensitive):
///   query    := predicate ( "and" predicate )*
///   predicate:= "color" "(" colorref ")" constraint
///   colorref := "'#rrggbb'" | "#rrggbb" | bin-index
///   constraint := ">=" number | "<=" number | "==" number
///               | "between" number "and" number
///
/// Fractions may be written as decimals (0.25) or percentages (25%).
/// Colors are resolved to bins with `quantizer`.
Result<ConjunctiveQuery> ParseQuery(const std::string& text,
                                    const ColorQuantizer& quantizer);

}  // namespace mmdb

#endif  // MMDB_CORE_QUERY_PARSER_H_
