#ifndef MMDB_CORE_HISTOGRAM_H_
#define MMDB_CORE_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/quantizer.h"
#include "image/image.h"

namespace mmdb {

/// A color histogram: per-bin pixel counts plus the total pixel count.
///
/// This is the color-feature signature the MMDBMS extracts from every
/// conventionally stored (binary) image at insertion time. Each bin holds
/// the number of pixels whose color quantizes to that bin; `Fraction(bin)`
/// is the percentage-of-pixels value that range queries test.
class ColorHistogram {
 public:
  /// An all-zero histogram with `bin_count` bins.
  explicit ColorHistogram(int32_t bin_count = 0)
      : counts_(static_cast<size_t>(bin_count), 0) {}

  int32_t BinCount() const { return static_cast<int32_t>(counts_.size()); }

  /// Pixel count in `bin`.
  int64_t Count(BinIndex bin) const {
    return counts_[static_cast<size_t>(bin)];
  }
  /// Mutable access used by extraction.
  void Add(BinIndex bin, int64_t delta) {
    counts_[static_cast<size_t>(bin)] += delta;
    total_ += delta;
  }

  /// Total pixels (the paper's `imagesize`).
  int64_t Total() const { return total_; }

  /// Fraction of pixels in `bin`, in [0, 1]; 0 for an empty image.
  double Fraction(BinIndex bin) const {
    return total_ > 0 ? static_cast<double>(Count(bin)) / total_ : 0.0;
  }

  /// All per-bin fractions (the normalized n-dimensional histogram used by
  /// the similarity functions).
  std::vector<double> Normalized() const;

  const std::vector<int64_t>& counts() const { return counts_; }

  std::string ToString() const;

  friend bool operator==(const ColorHistogram& a, const ColorHistogram& b) {
    return a.counts_ == b.counts_;
  }

 private:
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Extracts the color histogram of `image` under `quantizer`. This is the
/// expensive feature-extraction step the paper's methods avoid re-running
/// on edited images.
ColorHistogram ExtractHistogram(const Image& image,
                                const ColorQuantizer& quantizer);

/// Histogram Intersection similarity (paper Eq. 1, Swain & Ballard):
/// sum_i min(x_i, y_i) over normalized histograms. In [0, 1]; 1 iff equal.
/// Histograms must have the same bin count.
double HistogramIntersection(const ColorHistogram& x, const ColorHistogram& y);

/// L_p distance between normalized histograms (paper Eq. 2):
/// (sum_i |x_i - y_i|^p)^(1/p). `p` >= 1.
double LpDistance(const ColorHistogram& x, const ColorHistogram& y, double p);

/// L1 (Manhattan) distance, the most common special case.
double L1Distance(const ColorHistogram& x, const ColorHistogram& y);

/// L2 (Euclidean) distance.
double L2Distance(const ColorHistogram& x, const ColorHistogram& y);

}  // namespace mmdb

#endif  // MMDB_CORE_HISTOGRAM_H_
