#include "core/cancel.h"

namespace mmdb {

namespace {

/// The innermost `CancelScope` context on this thread.
thread_local const QueryContext* g_scope_ctx = nullptr;

Status TokenStatus(const QueryContext& ctx) {
  if ((ctx.cancel != nullptr && ctx.cancel->Cancelled()) ||
      (ctx.batch_cancel != nullptr && ctx.batch_cancel->Cancelled())) {
    return Status::Cancelled("query cancelled by caller");
  }
  return Status::OK();
}

}  // namespace

Status CancelCheck::CheckSlow() {
  if (tripped_) return trip_status_;
  // Tokens are one relaxed-ish atomic load each — checked every call.
  Status status = TokenStatus(*ctx_);
  if (status.ok()) {
    // The clock is the expensive part; consult it every stride-th call.
    if (--countdown_ > 0) return Status::OK();
    countdown_ = ctx_->check_stride > 0 ? ctx_->check_stride : 1;
    if (ctx_->deadline.Expired()) {
      status = Status::DeadlineExceeded("query deadline exceeded");
    }
  }
  if (!status.ok()) {
    tripped_ = true;
    trip_status_ = status;
  }
  return status;
}

Status AnnotateInterrupt(const QueryContext& ctx, const QueryResult& partial,
                         Status status) {
  if (ctx.interrupt != nullptr && IsInterruptStatus(status)) {
    ctx.interrupt->partial = true;
    ctx.interrupt->reason = status.code();
    ctx.interrupt->results_so_far = static_cast<int64_t>(partial.ids.size());
    ctx.interrupt->stats = partial.stats;
  }
  return status;
}

CancelScope::CancelScope(const QueryContext& ctx) : prev_(g_scope_ctx) {
  // Publishing a no-limit context would make every page read pay a token
  // load for nothing; the scope only installs contexts with teeth.
  g_scope_ctx = ctx.HasLimits() ? &ctx : prev_;
}

CancelScope::~CancelScope() { g_scope_ctx = prev_; }

const QueryContext* CancelScope::Current() { return g_scope_ctx; }

Status CheckScopedCancel() {
  const QueryContext* ctx = g_scope_ctx;
  if (ctx == nullptr) return Status::OK();
  MMDB_RETURN_IF_ERROR(TokenStatus(*ctx));
  if (ctx->deadline.Expired()) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

}  // namespace mmdb
