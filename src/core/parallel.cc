#include "core/parallel.h"

#include <algorithm>
#include <thread>

#include "core/bounds.h"
#include "core/rbm.h"

namespace mmdb {

ParallelRbmQueryProcessor::ParallelRbmQueryProcessor(
    const AugmentedCollection* collection, const RuleEngine* engine,
    int threads)
    : collection_(collection),
      engine_(engine),
      threads_(std::max(1, threads)) {}

Result<QueryResult> ParallelRbmQueryProcessor::RunRange(
    const RangeQuery& query) const {
  if (threads_ <= 1) {
    RbmQueryProcessor serial(collection_, engine_);
    return serial.RunRange(query);
  }

  QueryResult result;
  // Binary images: cheap exact checks, done inline.
  for (ObjectId id : collection_->binary_ids()) {
    const BinaryImageInfo* binary = collection_->FindBinary(id);
    ++result.stats.binary_images_checked;
    if (query.Satisfies(binary->histogram.Fraction(query.bin))) {
      result.ids.push_back(id);
    }
  }

  // Edited images: partition into contiguous chunks, one thread each.
  const std::vector<ObjectId>& edited = collection_->edited_ids();
  const size_t n = edited.size();
  const size_t worker_count =
      std::min<size_t>(static_cast<size_t>(threads_), std::max<size_t>(n, 1));
  struct ChunkOutput {
    std::vector<ObjectId> ids;
    QueryStats stats;
    Status status;
  };
  std::vector<ChunkOutput> outputs(worker_count);
  std::vector<std::thread> workers;
  workers.reserve(worker_count);

  for (size_t w = 0; w < worker_count; ++w) {
    const size_t begin = n * w / worker_count;
    const size_t end = n * (w + 1) / worker_count;
    workers.emplace_back([this, &edited, &query, begin, end,
                          output = &outputs[w]] {
      // Per-thread resolver: its cycle-detection state is not shareable.
      const TargetBoundsResolver resolver =
          collection_->MakeTargetResolver(*engine_);
      for (size_t i = begin; i < end; ++i) {
        const EditedImageInfo* info = collection_->FindEdited(edited[i]);
        const BinaryImageInfo* base =
            collection_->FindBinary(info->script.base_id);
        if (base == nullptr) {
          output->status = Status::Corruption(
              "edited image " + std::to_string(edited[i]) +
              " references missing base");
          return;
        }
        Result<FractionBounds> bounds = ComputeBounds(
            *engine_, info->script, query.bin,
            base->histogram.Count(query.bin), base->width, base->height,
            resolver);
        if (!bounds.ok()) {
          output->status = bounds.status();
          return;
        }
        ++output->stats.edited_images_bounded;
        output->stats.rules_applied +=
            static_cast<int64_t>(info->script.ops.size());
        if (bounds->Overlaps(query.min_fraction, query.max_fraction)) {
          output->ids.push_back(edited[i]);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (ChunkOutput& output : outputs) {
    MMDB_RETURN_IF_ERROR(output.status);
    result.ids.insert(result.ids.end(), output.ids.begin(),
                      output.ids.end());
    result.stats += output.stats;
  }
  return result;
}

}  // namespace mmdb
