#include "core/parallel.h"

#include <algorithm>
#include <vector>

#include "core/bounds.h"
#include "obs/trace.h"

namespace mmdb {

namespace {

obs::SpanCategory* ScanSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("parallel_rbm.scan");
  return category;
}

}  // namespace

ParallelRbmQueryProcessor::ParallelRbmQueryProcessor(
    const AugmentedCollection* collection, const RuleEngine* engine,
    int threads)
    : collection_(collection),
      engine_(engine),
      owned_executor_(std::make_unique<Executor>(std::max(1, threads) - 1)),
      executor_(owned_executor_.get()) {}

ParallelRbmQueryProcessor::ParallelRbmQueryProcessor(
    const AugmentedCollection* collection, const RuleEngine* engine,
    Executor* executor)
    : collection_(collection), engine_(engine), executor_(executor) {}

template <typename BoundFn>
Status ParallelRbmQueryProcessor::ScanEdited(const QueryContext& ctx,
                                             QueryResult* result,
                                             const BoundFn& bound_one) const {
  const std::vector<ObjectId>& edited = collection_->edited_ids();
  const size_t n = edited.size();
  if (n == 0) return Status::OK();
  const size_t chunk_count =
      std::min(static_cast<size_t>(threads()), n);

  struct ChunkOutput {
    std::vector<ObjectId> ids;
    QueryStats stats;
    Status status;
  };
  std::vector<ChunkOutput> outputs(chunk_count);

  executor_->ParallelFor(chunk_count, [&](size_t w) {
    const size_t begin = n * w / chunk_count;
    const size_t end = n * (w + 1) / chunk_count;
    ChunkOutput& output = outputs[w];
    // Per-chunk resolver: its cycle-detection state is not shareable.
    const TargetBoundsResolver resolver =
        collection_->MakeTargetResolver(*engine_);
    // Per-chunk check: the stride countdown is not thread-safe either.
    CancelCheck check(ctx);
    for (size_t i = begin; i < end; ++i) {
      output.status = check.Check();
      if (!output.status.ok()) return;
      const EditedImageInfo* info = collection_->FindEdited(edited[i]);
      const BinaryImageInfo* base =
          collection_->FindBinary(info->script.base_id);
      if (base == nullptr) {
        output.status = Status::Corruption(
            "edited image " + std::to_string(edited[i]) +
            " references missing base");
        return;
      }
      output.status = bound_one(resolver, &check, *info, *base, &output.ids,
                                &output.stats);
      if (!output.status.ok()) return;
    }
  });

  // Merge every chunk (an interrupted scan still reports all partial
  // work); hard errors outrank interrupts.
  Status interrupt_status;
  for (ChunkOutput& output : outputs) {
    result->ids.insert(result->ids.end(), output.ids.begin(),
                       output.ids.end());
    result->stats += output.stats;
    if (!output.status.ok()) {
      if (!IsInterruptStatus(output.status)) return output.status;
      if (interrupt_status.ok()) interrupt_status = output.status;
    }
  }
  return interrupt_status;
}

Result<QueryResult> ParallelRbmQueryProcessor::RunRange(
    const RangeQuery& query, const QueryContext& ctx) const {
  obs::Span scan_span(ScanSpan());
  QueryResult result;
  CancelCheck check(ctx);
  // Binary images: cheap exact checks, done inline.
  for (ObjectId id : collection_->binary_ids()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    const BinaryImageInfo* binary = collection_->FindBinary(id);
    ++result.stats.binary_images_checked;
    if (query.Satisfies(binary->histogram.Fraction(query.bin))) {
      result.ids.push_back(id);
    }
  }

  Status scan = ScanEdited(
      ctx, &result,
      [&](const TargetBoundsResolver& resolver, CancelCheck* chunk_check,
          const EditedImageInfo& info, const BinaryImageInfo& base,
          std::vector<ObjectId>* ids, QueryStats* stats) -> Status {
        MMDB_ASSIGN_OR_RETURN(
            FractionBounds bounds,
            ComputeBounds(*engine_, info.script, query.bin,
                          base.histogram.Count(query.bin), base.width,
                          base.height, resolver,
                          chunk_check->enabled_or_null()));
        ++stats->edited_images_bounded;
        stats->rules_applied += static_cast<int64_t>(info.script.ops.size());
        if (bounds.Overlaps(query.min_fraction, query.max_fraction)) {
          ids->push_back(info.id);
        }
        return Status::OK();
      });
  MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, scan));
  return result;
}

Result<QueryResult> ParallelRbmQueryProcessor::RunConjunctive(
    const ConjunctiveQuery& query, const QueryContext& ctx) const {
  obs::Span scan_span(ScanSpan());
  QueryResult result;
  CancelCheck check(ctx);
  for (ObjectId id : collection_->binary_ids()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    const BinaryImageInfo* binary = collection_->FindBinary(id);
    ++result.stats.binary_images_checked;
    if (query.Satisfies(
            [&](BinIndex bin) { return binary->histogram.Fraction(bin); })) {
      result.ids.push_back(id);
    }
  }

  Status scan = ScanEdited(
      ctx, &result,
      [&](const TargetBoundsResolver& resolver, CancelCheck* chunk_check,
          const EditedImageInfo& info, const BinaryImageInfo& base,
          std::vector<ObjectId>* ids, QueryStats* stats) -> Status {
        bool candidate = true;
        for (const RangeQuery& conjunct : query.conjuncts) {
          MMDB_ASSIGN_OR_RETURN(
              FractionBounds bounds,
              ComputeBounds(*engine_, info.script, conjunct.bin,
                            base.histogram.Count(conjunct.bin), base.width,
                            base.height, resolver,
                            chunk_check->enabled_or_null()));
          stats->rules_applied +=
              static_cast<int64_t>(info.script.ops.size());
          if (!bounds.Overlaps(conjunct.min_fraction,
                               conjunct.max_fraction)) {
            candidate = false;
            break;
          }
        }
        ++stats->edited_images_bounded;
        if (candidate) ids->push_back(info.id);
        return Status::OK();
      });
  MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, scan));
  return result;
}

}  // namespace mmdb
