#include "core/instantiate.h"

namespace mmdb {

InstantiationQueryProcessor::InstantiationQueryProcessor(
    const AugmentedCollection* collection, const ColorQuantizer* quantizer,
    ImageResolver pixels)
    : collection_(collection),
      quantizer_(quantizer),
      pixels_(std::move(pixels)),
      editor_(pixels_) {}

Result<Image> InstantiationQueryProcessor::Materialize(
    const EditedImageInfo& info) const {
  MMDB_ASSIGN_OR_RETURN(Image base, pixels_(info.script.base_id));
  return editor_.Instantiate(base, info.script);
}

Result<ColorHistogram> InstantiationQueryProcessor::ExactHistogram(
    const EditedImageInfo& info) const {
  MMDB_ASSIGN_OR_RETURN(Image image, Materialize(info));
  return ExtractHistogram(image, *quantizer_);
}

/// Computes the exact histogram of edited image `id`, routing Corruption
/// into the quarantine instead of up the call chain. Returns OK with
/// `*skipped = true` when the image must be excluded from the answer.
Status InstantiationQueryProcessor::HistogramOrQuarantine(
    ObjectId id, const EditedImageInfo& info, ColorHistogram* hist,
    bool* skipped) const {
  *skipped = false;
  if (quarantine_.contains && quarantine_.contains(id)) {
    *skipped = true;
    return Status::OK();
  }
  Result<ColorHistogram> exact = ExactHistogram(info);
  if (!exact.ok()) {
    if (exact.status().code() == StatusCode::kCorruption) {
      if (quarantine_.add) quarantine_.add(id);
      *skipped = true;
      return Status::OK();
    }
    if (exact.status().code() == StatusCode::kIoError &&
        quarantine_.record_io_failure && quarantine_.record_io_failure(id)) {
      // The circuit breaker tripped: the owner has quarantined the image,
      // so this query (and all later ones) skips it instead of failing.
      *skipped = true;
      return Status::OK();
    }
    return exact.status();
  }
  *hist = *std::move(exact);
  return Status::OK();
}

Result<QueryResult> InstantiationQueryProcessor::RunRange(
    const RangeQuery& query, const QueryContext& ctx) const {
  QueryResult result;
  CancelCheck check(ctx);
  for (ObjectId id : collection_->binary_ids()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    const BinaryImageInfo* binary = collection_->FindBinary(id);
    ++result.stats.binary_images_checked;
    if (query.Satisfies(binary->histogram.Fraction(query.bin))) {
      result.ids.push_back(id);
    }
  }
  for (ObjectId id : collection_->edited_ids()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    const EditedImageInfo* edited = collection_->FindEdited(id);
    ColorHistogram hist;
    bool skipped = false;
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(
        ctx, result, HistogramOrQuarantine(id, *edited, &hist, &skipped)));
    if (skipped) {
      ++result.stats.corrupt_images_skipped;
      continue;
    }
    ++result.stats.images_instantiated;
    if (query.Satisfies(hist.Fraction(query.bin))) {
      result.ids.push_back(id);
    }
  }
  return result;
}

Result<QueryResult> InstantiationQueryProcessor::RunConjunctive(
    const ConjunctiveQuery& query, const QueryContext& ctx) const {
  QueryResult result;
  CancelCheck check(ctx);
  for (ObjectId id : collection_->binary_ids()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    const BinaryImageInfo* binary = collection_->FindBinary(id);
    ++result.stats.binary_images_checked;
    if (query.Satisfies([&](BinIndex bin) {
          return binary->histogram.Fraction(bin);
        })) {
      result.ids.push_back(id);
    }
  }
  for (ObjectId id : collection_->edited_ids()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    const EditedImageInfo* edited = collection_->FindEdited(id);
    ColorHistogram hist;
    bool skipped = false;
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(
        ctx, result, HistogramOrQuarantine(id, *edited, &hist, &skipped)));
    if (skipped) {
      ++result.stats.corrupt_images_skipped;
      continue;
    }
    ++result.stats.images_instantiated;
    if (query.Satisfies(
            [&](BinIndex bin) { return hist.Fraction(bin); })) {
      result.ids.push_back(id);
    }
  }
  return result;
}

}  // namespace mmdb
