#ifndef MMDB_CORE_DATABASE_H_
#define MMDB_CORE_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/breaker.h"
#include "core/bwm.h"
#include "core/cancel.h"
#include "core/collection.h"
#include "core/instantiate.h"
#include "core/quantizer.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "core/rbm.h"
#include "core/rules.h"
#include "index/histogram_index.h"
#include "image/editor.h"
#include "image/image.h"
#include "storage/catalog.h"
#include "storage/object_store.h"
#include "util/result.h"

namespace mmdb {

class CorpusStats;  // core/plan.h; cached here, collected there.

/// Configuration for opening a `MultimediaDatabase`.
struct DatabaseOptions {
  /// Page file path; empty opens a volatile in-memory database (the
  /// configuration the paper's performance evaluation uses).
  std::string path;
  /// Buffer pool frames for a disk-backed database.
  size_t pool_pages = 256;
  /// Divisions per color axis of the quantizer (ignored when reopening
  /// an existing database, whose persisted value wins).
  int32_t quantizer_divisions = 4;
  /// Color model the quantizer divides (also persisted; the stored value
  /// wins on reopen).
  ColorSpace color_space = ColorSpace::kRgb;
  /// Rule engine fidelity (see `RuleOptions`).
  RuleOptions rule_options;
  /// Threads the shared query executor may occupy (pool workers plus the
  /// querying thread); drives `QueryMethod::kParallelRbm`. 0 means
  /// `std::thread::hardware_concurrency()`. The pool is started lazily on
  /// the first parallel query, never for purely serial use.
  int query_threads = 0;
  /// Environment for all raw file I/O of a disk-backed database (null =
  /// `Env::Default()`); tests pass a `FaultInjectingEnv`. Must outlive
  /// the database. Ignored when `path` is empty.
  Env* env = nullptr;
};

/// How a range query is processed.
enum class QueryMethod {
  /// Materialize every edited image and re-extract features (baseline).
  kInstantiate,
  /// Rule-Based Method: fold Table 1 rules over every edit script
  /// ("w/out data structure" in the paper's figures).
  kRbm,
  /// Bound-Widening Method: RBM plus the Main/Unclassified data structure
  /// ("with data structure").
  kBwm,
  /// BWM with the binary-image side answered by the histogram R-tree
  /// (the conventional access path of Section 4's opening) instead of a
  /// linear histogram scan. Same result sets as kBwm.
  kBwmIndexed,
  /// RBM with the edited-image scan chunked across the database's
  /// persistent worker pool (beyond-paper). Same result sets — and the
  /// same result *order* — as kRbm.
  kParallelRbm,
  /// Cost-based planning (src/core/plan.h): selectivity-ordered
  /// conjuncts, a per-predicate access-path choice calibrated from the
  /// paper's Fig 3/4 crossover, and a driver-plus-residual-filter
  /// execution. Same result *sets* as kRbm / kBwm; result order follows
  /// the driving predicate's scan.
  kPlanned,
};

/// Human-readable method name ("rbm", "bwm", ...), for tables and logs.
std::string_view QueryMethodName(QueryMethod method);

/// The augmented multimedia database facade.
///
/// Owns the object store (rasters, scripts, catalog rows), the in-memory
/// `AugmentedCollection` the query processors scan, and the BWM index,
/// keeping all three consistent as images are inserted. Binary images get
/// their color histogram extracted exactly once, at insertion; edited
/// images are stored purely as operation sequences and are only ever
/// instantiated on explicit retrieval (or by the kInstantiate baseline).
///
/// Thread safety: mutations (`Insert*`, `DeleteImage`, `Flush`) require
/// external serialization. The rule-based query paths (`RunRange` /
/// `RunConjunctive` with kRbm / kBwm / kBwmIndexed) and the similarity
/// searcher read only in-memory structures and may run concurrently from
/// any number of threads between mutations. Paths that touch the object
/// store (`GetImage`, kInstantiate, `VerifyIntegrity`) are concurrency-
/// safe only on an in-memory store; the disk store's buffer pool is
/// single-threaded.
class Executor;

class MultimediaDatabase {
 public:
  /// Builds a fresh processor for one query method against one database.
  /// Called once per query (processors carry per-instance resolver
  /// scratch state and are cheap to build), from any thread.
  using QueryProcessorFactory =
      std::function<std::unique_ptr<QueryProcessor>(const MultimediaDatabase&)>;

  /// Opens (creating or reloading) a database per `options`.
  static Result<std::unique_ptr<MultimediaDatabase>> Open(
      DatabaseOptions options = {});

  MultimediaDatabase(const MultimediaDatabase&) = delete;
  MultimediaDatabase& operator=(const MultimediaDatabase&) = delete;

  ~MultimediaDatabase();

  /// Stores a conventional (binary) image; extracts and catalogs its
  /// histogram. Returns the new object id.
  Result<ObjectId> InsertBinaryImage(const Image& image);

  /// Stores an edited image as its operation sequence. The referenced
  /// base image and every Merge target must already be stored. Returns
  /// the new object id.
  Result<ObjectId> InsertEditedImage(const EditScript& script);

  /// Retrieves an image's pixels, instantiating it when it is stored as
  /// an edit sequence.
  Result<Image> GetImage(ObjectId id) const;

  /// Answers a color range query with the chosen method. All three
  /// methods agree on binary images; kRbm and kBwm return identical
  /// result sets, a superset of kInstantiate's (no false negatives).
  Result<QueryResult> RunRange(const RangeQuery& query,
                               QueryMethod method) const;

  /// As above, under `ctx`'s limits (deadline, cancel tokens): the
  /// processor checks cooperatively and returns DeadlineExceeded /
  /// Cancelled with partial progress in `ctx.interrupt` when one trips.
  /// The context is also published thread-locally (`CancelScope`) so the
  /// storage read path honors it per page.
  Result<QueryResult> RunRange(const RangeQuery& query, QueryMethod method,
                               const QueryContext& ctx) const;

  /// Answers a conjunction of range predicates ("at least 25% blue AND
  /// at most 10% red") with the chosen method; same cross-method
  /// guarantees as `RunRange`.
  Result<QueryResult> RunConjunctive(const ConjunctiveQuery& query,
                                     QueryMethod method) const;

  /// Conjunctive variant under `ctx`'s limits.
  Result<QueryResult> RunConjunctive(const ConjunctiveQuery& query,
                                     QueryMethod method,
                                     const QueryContext& ctx) const;

  /// Answers a top-k nearest-histogram query: exact L1 distances for
  /// binary images, provable `[distance_lo, distance_hi]` intervals for
  /// edited ones (no instantiation), returning the candidate set that
  /// provably contains the true k nearest — in `QueryResult::matches`,
  /// with `ids` mirroring the match order.
  Result<QueryResult> RunSimilarity(const SimilarityQuery& query) const;

  /// Similarity variant under `ctx`'s limits.
  Result<QueryResult> RunSimilarity(const SimilarityQuery& query,
                                    const QueryContext& ctx) const;

  /// Builds a fresh `QueryProcessor` for `method` from the process-wide
  /// method→factory registry (`RunRange` / `RunConjunctive` dispatch
  /// through this). The processor borrows this database's in-memory
  /// read state and must not outlive it.
  ///
  /// Engine-internal: applications should issue queries through
  /// `QueryService` (or the `Run*` facade calls), which add deadlines,
  /// cancellation, admission control, and per-query observability on top
  /// of the same processors. Holding a processor across mutations is
  /// undefined; the serving layers never do.
  Result<std::unique_ptr<QueryProcessor>> MakeProcessor(
      QueryMethod method) const;

  /// Corpus statistics the query planner estimates selectivity from
  /// (`QueryMethod::kPlanned`, `--explain`), collected lazily on first
  /// use and cached until the next insert or delete. Thread-safe; the
  /// returned snapshot stays valid after later mutations. Staleness only
  /// skews cost estimates — the planned residual filter is exact — so a
  /// reader racing a mutation at worst plans against the previous corpus.
  std::shared_ptr<const CorpusStats> PlannerStats() const;

  /// Registers (or replaces) the factory behind `method`, letting new
  /// access paths plug into every facade and `QueryService` dispatch
  /// without editing either. Process-wide; thread-safe.
  static void RegisterQueryMethod(QueryMethod method,
                                  QueryProcessorFactory factory);

  /// The lazily started persistent worker pool shared by this database's
  /// parallel query paths (`QueryMethod::kParallelRbm`). Sized by
  /// `DatabaseOptions::query_threads`.
  Executor* shared_executor() const;

  /// Removes an image object. An edited image is always removable; a
  /// binary image is removable only while no stored edited image
  /// references it as its base or as a Merge target (FailedPrecondition
  /// is reported as InvalidArgument with the referencing id).
  Status DeleteImage(ObjectId id);

  /// Expands a result id set with the Section 2 connection semantics:
  /// for every matched edited image, its referenced base image is added
  /// (a user searching for op(x) should also see x).
  std::vector<ObjectId> ExpandWithConnections(
      const std::vector<ObjectId>& ids) const;

  /// Convenience: the histogram bin a color falls into.
  BinIndex BinOf(const Rgb& color) const { return quantizer_.BinOf(color); }

  const ColorQuantizer& quantizer() const { return quantizer_; }
  const RuleEngine& rule_engine() const { return rule_engine_; }
  const AugmentedCollection& collection() const { return collection_; }
  const BwmIndex& bwm_index() const { return bwm_index_; }
  /// R-tree over the binary images' histogram signatures, kept in sync
  /// by inserts and deletes; drives `QueryMethod::kBwmIndexed`.
  const HistogramIndex& histogram_index() const { return histogram_index_; }
  const ObjectStore& object_store() const { return *store_; }

  /// Resolver that loads (and instantiates, for edited ids) pixels from
  /// the store; used by the editor for Merge targets and by examples.
  ImageResolver MakePixelResolver() const;

  /// Persists buffered pages and the catalog metadata.
  Status Flush();

  /// Results of an integrity scan.
  struct IntegrityReport {
    int64_t binary_images_checked = 0;
    int64_t edited_images_checked = 0;
    int64_t rasters_verified = 0;
    int64_t scripts_verified = 0;
  };

  /// True iff `id` has been quarantined as corrupt (its stored raster,
  /// script, or catalog row failed checksum verification or decoding).
  bool IsQuarantined(ObjectId id) const;

  /// Marks `id` as corrupt. Const because query processors (which borrow
  /// the database read-only) discover corruption lazily; the set is
  /// internally synchronized.
  void QuarantineImage(ObjectId id) const;

  /// The quarantined ids, ascending.
  std::vector<ObjectId> QuarantinedImages() const;

  /// Callbacks binding this database's quarantine set and per-image I/O
  /// circuit breaker, for wiring into an `InstantiationQueryProcessor`.
  /// `record_io_failure` counts a transient read failure against the
  /// breaker and quarantines the image once it trips.
  QuarantineHooks MakeQuarantineHooks() const;

  /// The per-image I/O circuit breaker behind `MakeQuarantineHooks`.
  const CircuitBreaker& circuit_breaker() const { return breaker_; }

  /// Cross-checks the in-memory state against the object store: every
  /// binary image's raster must exist, decode, and match its cataloged
  /// dimensions (and, when `deep_pixels` is set, re-extract to the
  /// cataloged histogram); every edited image's stored script must decode
  /// to the in-memory one with a valid base and valid merge targets; and
  /// the BWM index must hold exactly the bound-widening scripts in its
  /// Main component. Returns the first inconsistency as an error.
  Result<IntegrityReport> VerifyIntegrity(bool deep_pixels = false) const;

 private:
  explicit MultimediaDatabase(DatabaseOptions options);

  Status LoadExisting();
  Status PersistMeta();
  /// Recursive pixel resolution behind `MakePixelResolver`; `in_flight`
  /// guards against merge-target cycles.
  Result<Image> ResolvePixels(ObjectId id, std::set<ObjectId>* in_flight) const;
  /// Runs `body` inside an object-store batch, aborting it on failure.
  Status WithBatch(const std::function<Status()>& body);
  Result<ObjectId> NextId();
  Status ValidateScript(const EditScript& script) const;

  DatabaseOptions options_;
  mutable std::once_flag executor_once_;
  mutable std::unique_ptr<Executor> query_executor_;
  /// Ids whose stored blobs are known-corrupt; queries skip them instead
  /// of failing. Guarded by `quarantine_mu_` (processors may add from
  /// their querying thread while others read).
  mutable std::mutex quarantine_mu_;
  mutable std::set<ObjectId> quarantine_;
  /// Per-image transient-I/O failure counter; trips into `quarantine_`.
  mutable CircuitBreaker breaker_;
  /// Lazily collected planner statistics (see `PlannerStats`), guarded by
  /// `planner_stats_mu_` and invalidated by epoch: every successful
  /// mutation bumps `mutation_epoch_`, and the cache rebuilds when its
  /// recorded epoch falls behind.
  mutable std::mutex planner_stats_mu_;
  mutable std::shared_ptr<const CorpusStats> planner_stats_;
  mutable uint64_t planner_stats_epoch_ = 0;
  std::atomic<uint64_t> mutation_epoch_{1};
  std::unique_ptr<ObjectStore> store_;
  ColorQuantizer quantizer_;
  RuleEngine rule_engine_;
  AugmentedCollection collection_;
  BwmIndex bwm_index_;
  HistogramIndex histogram_index_;
  CatalogMeta meta_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_DATABASE_H_
