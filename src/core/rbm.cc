#include "core/rbm.h"

#include "core/bounds.h"
#include "obs/trace.h"

namespace mmdb {

namespace {

obs::SpanCategory* ScanSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("rbm.scan");
  return category;
}

/// Fine-grained span around one per-image BOUNDS rule fold — RBM pays
/// this for every edited image, which is exactly the cost BWM avoids on
/// its Main-cluster accepts.
obs::SpanCategory* RuleWalkSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("rbm.rule_walk", obs::SpanDetail::kFine);
  return category;
}

}  // namespace

RbmQueryProcessor::RbmQueryProcessor(const AugmentedCollection* collection,
                                     const RuleEngine* engine)
    : collection_(collection),
      engine_(engine),
      resolver_(collection->MakeTargetResolver(*engine)) {}

Result<QueryResult> RbmQueryProcessor::RunRange(const RangeQuery& query,
                                                const QueryContext& ctx) const {
  obs::Span scan_span(ScanSpan());
  QueryResult result;
  CancelCheck check(ctx);
  // Binary images: the stored histogram answers the query exactly.
  for (ObjectId id : collection_->binary_ids()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    const BinaryImageInfo* binary = collection_->FindBinary(id);
    ++result.stats.binary_images_checked;
    if (query.Satisfies(binary->histogram.Fraction(query.bin))) {
      result.ids.push_back(id);
    }
  }
  // Edited images: apply the rule for every operation of every script.
  for (ObjectId id : collection_->edited_ids()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    obs::Span walk_span(RuleWalkSpan());
    const EditedImageInfo* edited = collection_->FindEdited(id);
    const BinaryImageInfo* base =
        collection_->FindBinary(edited->script.base_id);
    if (base == nullptr) {
      return Status::Corruption("edited image " + std::to_string(id) +
                                " references missing base");
    }
    Result<FractionBounds> bounds =
        ComputeBounds(*engine_, edited->script, query.bin,
                      base->histogram.Count(query.bin), base->width,
                      base->height, resolver_, check.enabled_or_null());
    if (!bounds.ok()) return AnnotateInterrupt(ctx, result, bounds.status());
    ++result.stats.edited_images_bounded;
    result.stats.rules_applied +=
        static_cast<int64_t>(edited->script.ops.size());
    if (bounds->Overlaps(query.min_fraction, query.max_fraction)) {
      result.ids.push_back(id);
    }
  }
  return result;
}

Result<QueryResult> RbmQueryProcessor::RunConjunctive(
    const ConjunctiveQuery& query, const QueryContext& ctx) const {
  obs::Span scan_span(ScanSpan());
  QueryResult result;
  CancelCheck check(ctx);
  for (ObjectId id : collection_->binary_ids()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    const BinaryImageInfo* binary = collection_->FindBinary(id);
    ++result.stats.binary_images_checked;
    if (query.Satisfies([&](BinIndex bin) {
          return binary->histogram.Fraction(bin);
        })) {
      result.ids.push_back(id);
    }
  }
  for (ObjectId id : collection_->edited_ids()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    obs::Span walk_span(RuleWalkSpan());
    const EditedImageInfo* edited = collection_->FindEdited(id);
    const BinaryImageInfo* base =
        collection_->FindBinary(edited->script.base_id);
    if (base == nullptr) {
      return Status::Corruption("edited image " + std::to_string(id) +
                                " references missing base");
    }
    bool candidate = true;
    for (const RangeQuery& conjunct : query.conjuncts) {
      Result<FractionBounds> bounds =
          ComputeBounds(*engine_, edited->script, conjunct.bin,
                        base->histogram.Count(conjunct.bin), base->width,
                        base->height, resolver_, check.enabled_or_null());
      if (!bounds.ok()) return AnnotateInterrupt(ctx, result, bounds.status());
      result.stats.rules_applied +=
          static_cast<int64_t>(edited->script.ops.size());
      if (!bounds->Overlaps(conjunct.min_fraction, conjunct.max_fraction)) {
        candidate = false;
        break;
      }
    }
    ++result.stats.edited_images_bounded;
    if (candidate) result.ids.push_back(id);
  }
  return result;
}

}  // namespace mmdb
