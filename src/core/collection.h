#ifndef MMDB_CORE_COLLECTION_H_
#define MMDB_CORE_COLLECTION_H_

#include <map>
#include <vector>

#include "core/histogram.h"
#include "core/rules.h"
#include "editops/edit_ops.h"
#include "util/result.h"

namespace mmdb {

/// Catalog entry for a conventionally stored (binary) image: its extracted
/// color histogram and dimensions. Pixels live in the object store, not
/// here — query processing never needs them.
struct BinaryImageInfo {
  ObjectId id = kInvalidObjectId;
  int32_t width = 0;
  int32_t height = 0;
  ColorHistogram histogram;
};

/// Catalog entry for an edited image stored as a sequence of editing
/// operations.
struct EditedImageInfo {
  ObjectId id = kInvalidObjectId;
  EditScript script;
};

/// The in-memory description of an augmented image database: every binary
/// image's signature plus every edited image's operation sequence, with
/// the base->edited connections the paper's Section 2 requires the MMDBMS
/// to maintain.
///
/// This is the structure the RBM and BWM query processors scan. It is
/// deliberately pixel-free; the `MultimediaDatabase` facade keeps it in
/// sync with the backing object store.
class AugmentedCollection {
 public:
  /// Registers a binary image. Fails with AlreadyExists on duplicate ids.
  Status AddBinary(BinaryImageInfo info);

  /// Registers an edited image. Its `script.base_id` must identify a
  /// binary image already present.
  Status AddEdited(EditedImageInfo info);

  /// Removes an edited image. NotFound when absent.
  Status RemoveEdited(ObjectId id);

  /// Removes a binary image; fails with InvalidArgument while any stored
  /// edited image still references it as its base.
  Status RemoveBinary(ObjectId id);

  /// Lookup; nullptr when absent.
  const BinaryImageInfo* FindBinary(ObjectId id) const;
  const EditedImageInfo* FindEdited(ObjectId id) const;

  /// All binary images in insertion order.
  const std::vector<ObjectId>& binary_ids() const { return binary_order_; }
  /// All edited images in insertion order.
  const std::vector<ObjectId>& edited_ids() const { return edited_order_; }

  /// Edited images derived from base `base_id` (the stored connection
  /// between x and op(x)).
  const std::vector<ObjectId>& EditedOf(ObjectId base_id) const;

  size_t BinaryCount() const { return binary_order_.size(); }
  size_t EditedCount() const { return edited_order_.size(); }

  /// Builds the resolver the rule engine uses for Merge targets: a binary
  /// target yields its exact stored bin count; an edited target recurses
  /// through the rules (with cycle protection).
  TargetBoundsResolver MakeTargetResolver(const RuleEngine& engine) const;

 private:
  std::map<ObjectId, BinaryImageInfo> binaries_;
  std::map<ObjectId, EditedImageInfo> editeds_;
  std::map<ObjectId, std::vector<ObjectId>> base_to_edited_;
  std::vector<ObjectId> binary_order_;
  std::vector<ObjectId> edited_order_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_COLLECTION_H_
