#include "core/bwm.h"

#include <algorithm>

#include "core/bounds.h"
#include "obs/trace.h"

namespace mmdb {

namespace {

obs::SpanCategory* ScanSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("bwm.scan");
  return category;
}

/// Fine-grained span around one Main-cluster wholesale accept (paper
/// Figure 2, step 4.2) — the cheap side of the BWM split.
obs::SpanCategory* ClusterAcceptSpan() {
  static obs::SpanCategory* const category = obs::Tracer::Default().Intern(
      "bwm.cluster_accept", obs::SpanDetail::kFine);
  return category;
}

/// Fine-grained span around one per-image BOUNDS rule fold (step 4.3 /
/// step 5) — the expensive RBM-fallback side.
obs::SpanCategory* RuleWalkSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("bwm.rule_walk", obs::SpanDetail::kFine);
  return category;
}

}  // namespace

void BwmIndex::InsertBinary(ObjectId id) {
  main_.try_emplace(id);  // Sorted by key; cluster starts empty.
}

void BwmIndex::InsertEdited(const EditedImageInfo& info) {
  // Figure 1, step 3: scan the operations; one non-bound-widening rule
  // sends the image to the Unclassified Component.
  if (!RuleEngine::IsAllBoundWidening(info.script)) {
    unclassified_.push_back(info.id);
    return;
  }
  // Figure 1, step 5: append to the cluster of the referenced base image.
  std::vector<ObjectId>& cluster = main_[info.script.base_id];
  // Keep E_list sorted so lookups stay cheap (paper Section 4.1).
  cluster.insert(std::upper_bound(cluster.begin(), cluster.end(), info.id),
                 info.id);
  ++main_edited_count_;
}

void BwmIndex::RemoveEdited(ObjectId id, ObjectId base_id) {
  if (const auto it = main_.find(base_id); it != main_.end()) {
    const auto pos =
        std::lower_bound(it->second.begin(), it->second.end(), id);
    if (pos != it->second.end() && *pos == id) {
      it->second.erase(pos);
      --main_edited_count_;
      return;
    }
  }
  const auto pos = std::find(unclassified_.begin(), unclassified_.end(), id);
  if (pos != unclassified_.end()) unclassified_.erase(pos);
}

void BwmIndex::RemoveBinary(ObjectId id) {
  const auto it = main_.find(id);
  if (it != main_.end() && it->second.empty()) main_.erase(it);
}

std::vector<BwmIndex::Cluster> BwmIndex::MainClusters() const {
  std::vector<Cluster> out;
  out.reserve(main_.size());
  for (const auto& [base_id, edited_ids] : main_) {
    out.push_back(Cluster{base_id, edited_ids});
  }
  return out;
}

BwmQueryProcessor::BwmQueryProcessor(const AugmentedCollection* collection,
                                     const BwmIndex* index,
                                     const RuleEngine* engine)
    : collection_(collection),
      index_(index),
      engine_(engine),
      resolver_(collection->MakeTargetResolver(*engine)) {}

Result<QueryResult> BwmQueryProcessor::RunRange(const RangeQuery& query,
                                                const QueryContext& ctx) const {
  obs::Span scan_span(ScanSpan());
  QueryResult result;
  CancelCheck check(ctx);

  auto bound_and_collect = [&](ObjectId edited_id) -> Status {
    MMDB_RETURN_IF_ERROR(check.Check());
    obs::Span walk_span(RuleWalkSpan());
    const EditedImageInfo* edited = collection_->FindEdited(edited_id);
    if (edited == nullptr) {
      return Status::Corruption("BWM index references missing edited image " +
                                std::to_string(edited_id));
    }
    const BinaryImageInfo* base =
        collection_->FindBinary(edited->script.base_id);
    if (base == nullptr) {
      return Status::Corruption("edited image " + std::to_string(edited_id) +
                                " references missing base");
    }
    MMDB_ASSIGN_OR_RETURN(
        FractionBounds bounds,
        ComputeBounds(*engine_, edited->script, query.bin,
                      base->histogram.Count(query.bin), base->width,
                      base->height, resolver_, check.enabled_or_null()));
    ++result.stats.edited_images_bounded;
    result.stats.rules_applied +=
        static_cast<int64_t>(edited->script.ops.size());
    if (bounds.Overlaps(query.min_fraction, query.max_fraction)) {
      result.ids.push_back(edited_id);
    }
    return Status::OK();
  };

  // Figure 2, step 4: walk the Main Component clusters.
  for (const auto& [base_id, edited_ids] : index_->main_map()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    const BinaryImageInfo* base = collection_->FindBinary(base_id);
    if (base == nullptr) {
      return Status::Corruption("BWM cluster references missing base " +
                                std::to_string(base_id));
    }
    ++result.stats.binary_images_checked;
    if (query.Satisfies(base->histogram.Fraction(query.bin))) {
      // Step 4.2: the base satisfies the query, so every edited image in
      // the cluster does too — no rules applied.
      obs::Span accept_span(ClusterAcceptSpan());
      result.ids.push_back(base_id);
      result.ids.insert(result.ids.end(), edited_ids.begin(),
                        edited_ids.end());
      result.stats.edited_images_skipped +=
          static_cast<int64_t>(edited_ids.size());
    } else {
      // Step 4.3: fall back to the BOUNDS computation per cluster member.
      for (ObjectId edited_id : edited_ids) {
        MMDB_RETURN_IF_ERROR(
            AnnotateInterrupt(ctx, result, bound_and_collect(edited_id)));
      }
    }
  }

  // Figure 2, step 5: the Unclassified Component always pays full price.
  for (ObjectId edited_id : index_->Unclassified()) {
    MMDB_RETURN_IF_ERROR(
        AnnotateInterrupt(ctx, result, bound_and_collect(edited_id)));
  }
  return result;
}

Result<QueryResult> BwmQueryProcessor::RunConjunctive(
    const ConjunctiveQuery& query, const QueryContext& ctx) const {
  obs::Span scan_span(ScanSpan());
  QueryResult result;
  CancelCheck check(ctx);

  auto bound_and_collect = [&](ObjectId edited_id) -> Status {
    MMDB_RETURN_IF_ERROR(check.Check());
    obs::Span walk_span(RuleWalkSpan());
    const EditedImageInfo* edited = collection_->FindEdited(edited_id);
    if (edited == nullptr) {
      return Status::Corruption("BWM index references missing edited image " +
                                std::to_string(edited_id));
    }
    const BinaryImageInfo* base =
        collection_->FindBinary(edited->script.base_id);
    if (base == nullptr) {
      return Status::Corruption("edited image " + std::to_string(edited_id) +
                                " references missing base");
    }
    bool candidate = true;
    for (const RangeQuery& conjunct : query.conjuncts) {
      MMDB_ASSIGN_OR_RETURN(
          FractionBounds bounds,
          ComputeBounds(*engine_, edited->script, conjunct.bin,
                        base->histogram.Count(conjunct.bin), base->width,
                        base->height, resolver_, check.enabled_or_null()));
      result.stats.rules_applied +=
          static_cast<int64_t>(edited->script.ops.size());
      if (!bounds.Overlaps(conjunct.min_fraction, conjunct.max_fraction)) {
        candidate = false;
        break;
      }
    }
    ++result.stats.edited_images_bounded;
    if (candidate) result.ids.push_back(edited_id);
    return Status::OK();
  };

  for (const auto& [base_id, edited_ids] : index_->main_map()) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, result, check.Check()));
    const BinaryImageInfo* base = collection_->FindBinary(base_id);
    if (base == nullptr) {
      return Status::Corruption("BWM cluster references missing base " +
                                std::to_string(base_id));
    }
    ++result.stats.binary_images_checked;
    if (query.Satisfies(
            [&](BinIndex bin) { return base->histogram.Fraction(bin); })) {
      obs::Span accept_span(ClusterAcceptSpan());
      result.ids.push_back(base_id);
      result.ids.insert(result.ids.end(), edited_ids.begin(),
                        edited_ids.end());
      result.stats.edited_images_skipped +=
          static_cast<int64_t>(edited_ids.size());
    } else {
      for (ObjectId edited_id : edited_ids) {
        MMDB_RETURN_IF_ERROR(
            AnnotateInterrupt(ctx, result, bound_and_collect(edited_id)));
      }
    }
  }
  for (ObjectId edited_id : index_->Unclassified()) {
    MMDB_RETURN_IF_ERROR(
        AnnotateInterrupt(ctx, result, bound_and_collect(edited_id)));
  }
  return result;
}

}  // namespace mmdb
