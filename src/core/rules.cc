#include "core/rules.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mmdb {

namespace {

/// Exact per-cell sampling counts of the editor's nearest-neighbor resize
/// along one axis: returns, for the axis scaled by `s` from `old_extent`
/// to `new_extent`, the minimum and maximum number of destination samples
/// that hit any single source cell. O(new_extent) integer arithmetic; no
/// pixel access.
void AxisReplication(int32_t old_extent, int32_t new_extent, double s,
                     int64_t* min_hits, int64_t* max_hits) {
  if (old_extent <= 0 || new_extent <= 0) {
    *min_hits = 0;
    *max_hits = 0;
    return;
  }
  std::vector<int64_t> hits(static_cast<size_t>(old_extent), 0);
  for (int32_t x = 0; x < new_extent; ++x) {
    const int32_t src = std::clamp(
        static_cast<int32_t>(std::floor((x + 0.5) / s)), 0, old_extent - 1);
    ++hits[static_cast<size_t>(src)];
  }
  *min_hits = hits[0];
  *max_hits = hits[0];
  for (int64_t h : hits) {
    *min_hits = std::min(*min_hits, h);
    *max_hits = std::max(*max_hits, h);
  }
}

/// Destination bounding box of `dr` under matrix `op`, clipped to the
/// canvas — mirrors `Editor::ApplyMutate`'s stamp region exactly.
Rect MutateDestBox(const MutateOp& op, const Rect& dr, const Rect& canvas) {
  double min_x = 1e30, min_y = 1e30, max_x = -1e30, max_y = -1e30;
  const double corner_xs[2] = {static_cast<double>(dr.x0),
                               static_cast<double>(dr.x1)};
  const double corner_ys[2] = {static_cast<double>(dr.y0),
                               static_cast<double>(dr.y1)};
  for (double cx : corner_xs) {
    for (double cy : corner_ys) {
      double tx, ty;
      if (!op.Apply(cx, cy, &tx, &ty)) return canvas;  // Degenerate: worst
                                                       // case, whole canvas.
      min_x = std::min(min_x, tx);
      min_y = std::min(min_y, ty);
      max_x = std::max(max_x, tx);
      max_y = std::max(max_y, ty);
    }
  }
  return Rect(static_cast<int32_t>(std::floor(min_x)),
              static_cast<int32_t>(std::floor(min_y)),
              static_cast<int32_t>(std::ceil(max_x)) + 1,
              static_cast<int32_t>(std::ceil(max_y)) + 1)
      .Intersect(canvas);
}

}  // namespace

RuleEngine::RuleEngine(ColorQuantizer quantizer, RuleOptions options)
    : quantizer_(quantizer), options_(options) {}

bool RuleEngine::IsBoundWidening(const EditOp& op) {
  switch (GetOpType(op)) {
    case EditOpType::kDefine:
    case EditOpType::kCombine:
    case EditOpType::kModify:
    case EditOpType::kMutate:
      return true;
    case EditOpType::kMerge:
      return std::get<MergeOp>(op).IsNullTarget();
  }
  return false;
}

bool RuleEngine::IsAllBoundWidening(const EditScript& script) {
  for (const EditOp& op : script.ops) {
    if (!IsBoundWidening(op)) return false;
  }
  return true;
}

RuleState RuleEngine::InitialState(int64_t hb_count, int32_t width,
                                   int32_t height) {
  RuleState state;
  state.hb_min = hb_count;
  state.hb_max = hb_count;
  state.width = width;
  state.height = height;
  state.size = static_cast<int64_t>(width) * height;
  state.defined_region = Rect::Full(width, height);
  return state;
}

Status RuleEngine::ApplyRule(const EditOp& op, BinIndex hb,
                             const TargetBoundsResolver& resolver,
                             RuleState* state) const {
  switch (GetOpType(op)) {
    case EditOpType::kDefine:
      ApplyDefine(std::get<DefineOp>(op), state);
      return Status::OK();
    case EditOpType::kCombine:
      ApplyCombine(std::get<CombineOp>(op), state);
      return Status::OK();
    case EditOpType::kModify:
      ApplyModify(std::get<ModifyOp>(op), hb, state);
      return Status::OK();
    case EditOpType::kMutate:
      ApplyMutate(std::get<MutateOp>(op), state);
      return Status::OK();
    case EditOpType::kMerge:
      return ApplyMerge(std::get<MergeOp>(op), hb, resolver, state);
  }
  return Status::Internal("unknown edit op type");
}

void RuleEngine::WidenBy(int64_t changed, RuleState* state) {
  state->hb_min = std::max<int64_t>(0, state->hb_min - changed);
  state->hb_max = std::min(state->size, state->hb_max + changed);
}

void RuleEngine::ApplyDefine(const DefineOp& op, RuleState* state) const {
  state->defined_region = op.region.Intersect(state->CanvasBounds());
}

void RuleEngine::ApplyCombine(const CombineOp& op, RuleState* state) const {
  if (op.WeightSum() == 0.0) return;  // Editor treats this as a no-op.
  if (options_.paper_strict) return;  // Table 1: "No change" for Combine.
  // Sound mode: a blur can move every DR pixel across a bin boundary.
  WidenBy(state->DrSize(), state);
}

void RuleEngine::ApplyModify(const ModifyOp& op, BinIndex hb,
                             RuleState* state) const {
  const int64_t dr = state->DrSize();
  if (quantizer_.BinOf(op.new_color) == hb) {
    // Table 1 row 1: recolored pixels may enter bin HB.
    state->hb_max = std::min(state->size, state->hb_max + dr);
  } else if (quantizer_.BinOf(op.old_color) == hb) {
    // Table 1 row 2: pixels of the old color may leave bin HB.
    state->hb_min = std::max<int64_t>(0, state->hb_min - dr);
  }
  // Table 1 row 3: neither color maps to HB — no change.
}

void RuleEngine::ApplyMutate(const MutateOp& op, RuleState* state) const {
  const bool full_canvas = state->defined_region == state->CanvasBounds();

  if (full_canvas && op.IsPureScale()) {
    // Table 1 "DR contains image": the canvas is resized. Dimensions (and
    // hence the total pixel count) are exact in both modes.
    const double sx = op.m[0];
    const double sy = op.m[4];
    const int32_t new_w =
        static_cast<int32_t>(std::lround(state->width * sx));
    const int32_t new_h =
        static_cast<int32_t>(std::lround(state->height * sy));
    if (options_.paper_strict) {
      // Multiply the bin bounds by M11 * M22 verbatim.
      const double factor = sx * sy;
      state->hb_min = static_cast<int64_t>(std::llround(state->hb_min * factor));
      state->hb_max = static_cast<int64_t>(std::llround(state->hb_max * factor));
    } else {
      // Sound mode: bracket the nearest-neighbor replication factor per
      // source pixel exactly (integer scales collapse to k^2 exactly).
      int64_t fx_min, fx_max, fy_min, fy_max;
      AxisReplication(state->width, new_w, sx, &fx_min, &fx_max);
      AxisReplication(state->height, new_h, sy, &fy_min, &fy_max);
      state->hb_min = state->hb_min * fx_min * fy_min;
      state->hb_max = state->hb_max * fx_max * fy_max;
    }
    state->width = new_w;
    state->height = new_h;
    state->size = static_cast<int64_t>(new_w) * new_h;
    state->hb_min = std::clamp<int64_t>(state->hb_min, 0, state->size);
    state->hb_max = std::clamp<int64_t>(state->hb_max, state->hb_min,
                                        state->size);
    state->defined_region = state->CanvasBounds();
    return;
  }

  // Stamp semantics: only pixels inside the clipped destination box can
  // change, and at most ~|DR| of them have preimages inside the DR.
  const Rect dest =
      MutateDestBox(op, state->defined_region, state->CanvasBounds());
  int64_t changed;
  if (op.IsRigidBody()) {
    // Table 1 "Rigid Body": adjust by |DR| — plus, in sound mode, a
    // rasterization slack bounded by the region perimeter.
    const int64_t slack =
        options_.paper_strict
            ? 0
            : 2 * (2 * (state->defined_region.Width() +
                        state->defined_region.Height())) +
                  16;
    changed = std::min(dest.Area(), state->DrSize() + slack);
  } else {
    // General affine stamp (not covered by Table 1): anything in the
    // destination box may change.
    changed = dest.Area();
  }
  WidenBy(changed, state);
}

Status RuleEngine::ApplyMerge(const MergeOp& op, BinIndex hb,
                              const TargetBoundsResolver& resolver,
                              RuleState* state) const {
  const int64_t dr = state->DrSize();
  if (op.IsNullTarget()) {
    // Table 1 "Target is NULL": the DR is extracted as the new image.
    //   min' = max(0, |DR| - (E - HBmin)),  max' = min(HBmax, |DR|).
    state->hb_min = std::max<int64_t>(0, dr - (state->size - state->hb_min));
    state->hb_max = std::min(state->hb_max, dr);
    state->width = state->defined_region.Width();
    state->height = state->defined_region.Height();
    state->size = dr;
    state->defined_region = state->CanvasBounds();
    return Status::OK();
  }

  if (!resolver) {
    return Status::InvalidArgument(
        "Merge rule: no target resolver for target " +
        std::to_string(*op.target));
  }
  MMDB_ASSIGN_OR_RETURN(TargetBounds target, resolver(*op.target, hb));
  // Paste region in target coordinates, clipped to the target canvas —
  // mirrors Editor::ApplyMerge.
  const Rect paste = Rect(op.x, op.y, op.x + state->defined_region.Width(),
                          op.y + state->defined_region.Height())
                         .Intersect(Rect::Full(target.width, target.height));
  const int64_t overlap = paste.Area();
  // DR pixels that land on the target contribute between
  // max(0, HBmin - E + overlap) and min(HBmax, overlap); surviving target
  // pixels contribute between max(0, T_HBmin - overlap) and
  // min(T_HBmax, T - overlap). (This is the paper's "Target is Not NULL"
  // row with pasting clipped to the target canvas; see DESIGN.md.)
  const int64_t paste_min =
      std::max<int64_t>(0, state->hb_min - state->size + overlap);
  const int64_t paste_max = std::min(state->hb_max, overlap);
  const int64_t keep_min = std::max<int64_t>(0, target.hb_min - overlap);
  const int64_t keep_max = std::min(target.hb_max, target.size - overlap);
  state->hb_min = paste_min + keep_min;
  state->hb_max = paste_max + keep_max;
  state->width = target.width;
  state->height = target.height;
  state->size = target.size;
  state->hb_min = std::clamp<int64_t>(state->hb_min, 0, state->size);
  state->hb_max =
      std::clamp<int64_t>(state->hb_max, state->hb_min, state->size);
  state->defined_region = state->CanvasBounds();
  return Status::OK();
}

}  // namespace mmdb
