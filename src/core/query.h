#ifndef MMDB_CORE_QUERY_H_
#define MMDB_CORE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/quantizer.h"
#include "editops/edit_ops.h"

namespace mmdb {

/// A color range query: "retrieve all images whose fraction of pixels in
/// histogram bin `bin` lies in [min_fraction, max_fraction]" — e.g. the
/// paper's "Retrieve all images that are at least 25% blue" is
/// `{BinOf(blue), 0.25, 1.0}`. Both endpoints are inclusive.
struct RangeQuery {
  BinIndex bin = 0;
  double min_fraction = 0.0;
  double max_fraction = 1.0;

  /// True iff a fraction value satisfies the query.
  bool Satisfies(double fraction) const {
    return fraction >= min_fraction && fraction <= max_fraction;
  }

  std::string ToString() const {
    return "RangeQuery(bin=" + std::to_string(bin) + ", [" +
           std::to_string(min_fraction) + ", " +
           std::to_string(max_fraction) + "])";
  }
};

/// A conjunction of range predicates over distinct bins, e.g. "at least
/// 25% blue AND at most 10% red". An image satisfies the query iff it
/// satisfies every conjunct.
struct ConjunctiveQuery {
  std::vector<RangeQuery> conjuncts;

  /// True iff the fractions (indexed by bin) satisfy every conjunct.
  template <typename FractionFn>
  bool Satisfies(FractionFn&& fraction_of_bin) const {
    for (const RangeQuery& conjunct : conjuncts) {
      if (!conjunct.Satisfies(fraction_of_bin(conjunct.bin))) return false;
    }
    return true;
  }

  std::string ToString() const {
    std::string out = "Conjunctive(";
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (i) out += " AND ";
      out += conjuncts[i].ToString();
    }
    return out + ")";
  }
};

/// Work counters reported by the query processors; the performance
/// evaluation reads these alongside wall-clock time to explain *why* BWM
/// is faster (rules skipped, scripts never touched).
struct QueryStats {
  /// Binary images whose stored histogram was consulted.
  int64_t binary_images_checked = 0;
  /// Edited images for which the BOUNDS algorithm ran.
  int64_t edited_images_bounded = 0;
  /// Edited images accepted from a Main-component cluster without touching
  /// their operations (BWM only).
  int64_t edited_images_skipped = 0;
  /// Individual operation rules applied across all BOUNDS runs.
  int64_t rules_applied = 0;
  /// Edited images instantiated (InstantiationMethod only).
  int64_t images_instantiated = 0;
  /// Images excluded from the answer because their stored blob (raster or
  /// edit script) failed checksum verification; the query still succeeds
  /// over the readable remainder.
  int64_t corrupt_images_skipped = 0;

  QueryStats& operator+=(const QueryStats& other) {
    binary_images_checked += other.binary_images_checked;
    edited_images_bounded += other.edited_images_bounded;
    edited_images_skipped += other.edited_images_skipped;
    rules_applied += other.rules_applied;
    images_instantiated += other.images_instantiated;
    corrupt_images_skipped += other.corrupt_images_skipped;
    return *this;
  }
};

/// A query answer: matching object ids (binary and edited, in processor
/// order) plus the work counters.
struct QueryResult {
  std::vector<ObjectId> ids;
  QueryStats stats;
};

}  // namespace mmdb

#endif  // MMDB_CORE_QUERY_H_
