#ifndef MMDB_CORE_QUERY_H_
#define MMDB_CORE_QUERY_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/histogram.h"
#include "core/quantizer.h"
#include "editops/edit_ops.h"

namespace mmdb {

/// Formats a fraction with enough digits to round-trip through `strtod`
/// exactly — `ToString()` renderings below are re-parseable by
/// `ParseQuery` without changing the query they denote.
inline std::string FormatFraction(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// A color range query: "retrieve all images whose fraction of pixels in
/// histogram bin `bin` lies in [min_fraction, max_fraction]" — e.g. the
/// paper's "Retrieve all images that are at least 25% blue" is
/// `{BinOf(blue), 0.25, 1.0}`. Both endpoints are inclusive.
struct RangeQuery {
  BinIndex bin = 0;
  double min_fraction = 0.0;
  double max_fraction = 1.0;

  /// True iff a fraction value satisfies the query.
  bool Satisfies(double fraction) const {
    return fraction >= min_fraction && fraction <= max_fraction;
  }

  /// Rendered in the `ParseQuery` grammar, so the output re-parses to an
  /// equivalent query: `color(12) between 0.25 and 1`.
  std::string ToString() const {
    return "color(" + std::to_string(bin) + ") between " +
           FormatFraction(min_fraction) + " and " +
           FormatFraction(max_fraction);
  }
};

/// A conjunction of range predicates over distinct bins, e.g. "at least
/// 25% blue AND at most 10% red". An image satisfies the query iff it
/// satisfies every conjunct.
struct ConjunctiveQuery {
  std::vector<RangeQuery> conjuncts;

  /// True iff the fractions (indexed by bin) satisfy every conjunct.
  template <typename FractionFn>
  bool Satisfies(FractionFn&& fraction_of_bin) const {
    for (const RangeQuery& conjunct : conjuncts) {
      if (!conjunct.Satisfies(fraction_of_bin(conjunct.bin))) return false;
    }
    return true;
  }

  /// Rendered in the `ParseQuery` grammar (conjuncts joined by `and`),
  /// so the output re-parses to an equivalent query.
  std::string ToString() const {
    std::string out;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (i) out += " and ";
      out += conjuncts[i].ToString();
    }
    return out;
  }
};

/// A top-k nearest-histogram query: "retrieve the k stored images whose
/// color histogram is closest (L1) to this one". Over an augmented
/// database the answer carries provable `[distance_lo, distance_hi]`
/// intervals — exact for binary images, rule-derived for edited ones —
/// and is the candidate set that provably contains the true k nearest.
struct SimilarityQuery {
  /// The query signature; its bin count must match the database
  /// quantizer.
  ColorHistogram histogram;
  uint32_t k = 10;

  /// Rendered in the `ParseQuery` grammar when the histogram has a
  /// single occupied bin (`nearest(12, 10)`); a multi-bin signature has
  /// no grammar form and renders descriptively.
  std::string ToString() const {
    BinIndex occupied = 0;
    int occupied_bins = 0;
    for (BinIndex bin = 0; bin < histogram.BinCount(); ++bin) {
      if (histogram.Count(bin) > 0) {
        occupied = bin;
        ++occupied_bins;
      }
    }
    if (occupied_bins == 1) {
      return "nearest(" + std::to_string(occupied) + ", " +
             std::to_string(k) + ")";
    }
    return "nearest(<" + std::to_string(histogram.BinCount()) +
           "-bin histogram>, " + std::to_string(k) + ")";
  }
};

/// One similarity-search answer. For binary images the L1 distance to the
/// query is exact (`lo == hi`); for edited images it is an interval
/// derived from the per-bin rule bounds without instantiation.
struct SimilarityMatch {
  ObjectId id = kInvalidObjectId;
  double distance_lo = 0.0;
  double distance_hi = 0.0;
  bool exact = false;

  /// Conservative sort key (optimistic distance).
  double Optimistic() const { return distance_lo; }
};

/// The three shapes a query payload can take. Doubles as the label of
/// per-kind metrics (`QueryKindName`).
enum class QueryKind { kRange, kConjunctive, kSimilarity };

inline const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRange:
      return "range";
    case QueryKind::kConjunctive:
      return "conjunctive";
    case QueryKind::kSimilarity:
      return "similarity";
  }
  return "unknown";
}

/// Work counters reported by the query processors; the performance
/// evaluation reads these alongside wall-clock time to explain *why* BWM
/// is faster (rules skipped, scripts never touched).
struct QueryStats {
  /// Binary images whose stored histogram was consulted.
  int64_t binary_images_checked = 0;
  /// Edited images for which the BOUNDS algorithm ran.
  int64_t edited_images_bounded = 0;
  /// Edited images accepted from a Main-component cluster without touching
  /// their operations (BWM only).
  int64_t edited_images_skipped = 0;
  /// Individual operation rules applied across all BOUNDS runs.
  int64_t rules_applied = 0;
  /// Edited images instantiated (InstantiationMethod only).
  int64_t images_instantiated = 0;
  /// Images excluded from the answer because their stored blob (raster or
  /// edit script) failed checksum verification; the query still succeeds
  /// over the readable remainder.
  int64_t corrupt_images_skipped = 0;

  QueryStats& operator+=(const QueryStats& other) {
    binary_images_checked += other.binary_images_checked;
    edited_images_bounded += other.edited_images_bounded;
    edited_images_skipped += other.edited_images_skipped;
    rules_applied += other.rules_applied;
    images_instantiated += other.images_instantiated;
    corrupt_images_skipped += other.corrupt_images_skipped;
    return *this;
  }
};

/// A query answer: matching object ids (binary and edited, in processor
/// order) plus the work counters. Similarity queries additionally fill
/// `matches` with one distance interval per id, in the same order.
struct QueryResult {
  std::vector<ObjectId> ids;
  /// Empty for range / conjunctive queries; parallel to `ids` for
  /// similarity queries.
  std::vector<SimilarityMatch> matches;
  QueryStats stats;
};

}  // namespace mmdb

#endif  // MMDB_CORE_QUERY_H_
