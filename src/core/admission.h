#ifndef MMDB_CORE_ADMISSION_H_
#define MMDB_CORE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string_view>

#include "core/cancel.h"
#include "util/result.h"
#include "util/status.h"

namespace mmdb {

/// What happens to an arriving query when every execution slot is taken.
enum class AdmissionPolicy {
  /// Wait (bounded by `block_timeout_seconds` and the query's deadline)
  /// for a slot; time out with a typed rejection.
  kBlock,
  /// Queue the arrival; when the waiter queue is full, evict the oldest
  /// waiter with ResourceExhausted so fresh traffic keeps flowing.
  kShedOldest,
  /// Reject the arrival immediately with ResourceExhausted.
  kRejectNew,
};

/// Stable lowercase policy name ("block", "shed-oldest", "reject-new").
std::string_view AdmissionPolicyName(AdmissionPolicy policy);

/// Sizing and policy of an `AdmissionController`.
struct AdmissionOptions {
  /// Queries allowed to execute at once. 0 disables admission control
  /// entirely (the gate admits everything and keeps no state).
  int max_in_flight = 0;
  /// Waiters allowed to queue beyond the in-flight slots (kBlock and
  /// kShedOldest). An arrival beyond this is rejected (kBlock) or sheds
  /// the oldest waiter (kShedOldest).
  int max_queued = 16;
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
  /// kBlock: the longest an arrival may wait for a slot.
  double block_timeout_seconds = 1.0;
};

/// A bounded-concurrency gate with a configurable overload policy.
/// Overload never grows an unbounded queue: every arrival either gets a
/// slot, waits in a bounded FIFO, or is rejected fast with a typed
/// `Status` — and a shed waiter is woken immediately, so shedding takes
/// microseconds, not a queue drain.
///
/// Emits `mmdb_admission_admitted_total`, `mmdb_admission_rejected_total`
/// (labeled by reason: queue-full / timeout / shed) and the
/// `mmdb_admission_in_flight` gauge.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;
  ~AdmissionController();

  /// An RAII execution slot; releasing it hands the slot to the oldest
  /// waiter, if any.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept : owner_(other.owner_) {
      other.owner_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* owner) : owner_(owner) {}
    void Release() {
      if (owner_ != nullptr) {
        owner_->Release();
        owner_ = nullptr;
      }
    }
    AdmissionController* owner_ = nullptr;
  };

  /// Admits the caller or rejects it per the configured policy. A finite
  /// `deadline` bounds a kBlock wait (expiry surfaces as
  /// DeadlineExceeded, matching what the query itself would return).
  Result<Ticket> Admit(const Deadline& deadline = {});

  /// Queries currently holding a slot.
  int in_flight() const;
  /// Arrivals currently waiting for a slot.
  int queued() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  /// One parked arrival. The slot handoff happens under the mutex: a
  /// releaser marks the oldest waiter admitted instead of freeing its
  /// own slot, so a slot can never leak between release and wake-up.
  struct Waiter {
    bool admitted = false;
    bool shed = false;
  };

  void Release();

  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable slot_freed_;
  std::deque<Waiter*> waiters_;
  int in_flight_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_CORE_ADMISSION_H_
