#ifndef MMDB_CORE_BREAKER_H_
#define MMDB_CORE_BREAKER_H_

#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "editops/edit_ops.h"

namespace mmdb {

/// A per-image I/O circuit breaker. Each transient-read failure that
/// survives the retry loop counts against the image; at `trip_threshold`
/// failures the breaker opens for that image and stays open — the caller
/// is expected to quarantine it so later queries skip it instead of
/// burning the full retry budget on a page that keeps failing.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(int trip_threshold = 3)
      : trip_threshold_(trip_threshold) {}
  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Records one I/O failure for `id`. Returns true exactly once, on the
  /// failure that trips the breaker; later failures for an open breaker
  /// return false (the image should already be quarantined).
  bool RecordFailure(ObjectId id);

  /// True iff the breaker has opened for `id`.
  bool IsOpen(ObjectId id) const;

  /// Recorded failures for `id` (for tests and stats).
  int FailureCount(ObjectId id) const;

  int trip_threshold() const { return trip_threshold_; }

 private:
  const int trip_threshold_;
  mutable std::mutex mu_;
  std::unordered_map<ObjectId, int> failures_;
  std::unordered_set<ObjectId> open_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_BREAKER_H_
