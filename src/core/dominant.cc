#include "core/dominant.h"

#include <algorithm>
#include <map>

#include "core/bounds.h"

namespace mmdb {

std::vector<DominantColor> ExtractDominantColors(
    const ColorHistogram& histogram, int max_colors, double min_fraction) {
  std::vector<DominantColor> out;
  for (BinIndex bin = 0; bin < histogram.BinCount(); ++bin) {
    const double fraction = histogram.Fraction(bin);
    if (fraction >= min_fraction) out.push_back({bin, fraction});
  }
  std::sort(out.begin(), out.end(),
            [](const DominantColor& a, const DominantColor& b) {
              if (a.fraction != b.fraction) return a.fraction > b.fraction;
              return a.bin < b.bin;
            });
  if (max_colors >= 0 && out.size() > static_cast<size_t>(max_colors)) {
    out.resize(static_cast<size_t>(max_colors));
  }
  return out;
}

double DominantColorSimilarity(const std::vector<DominantColor>& a,
                               const std::vector<DominantColor>& b) {
  std::map<BinIndex, double> b_fractions;
  for (const DominantColor& color : b) b_fractions[color.bin] = color.fraction;
  double intersection = 0.0;
  for (const DominantColor& color : a) {
    const auto it = b_fractions.find(color.bin);
    if (it != b_fractions.end()) {
      intersection += std::min(color.fraction, it->second);
    }
  }
  // Normalize by the smaller total mass so identical sets score 1.
  double mass_a = 0.0, mass_b = 0.0;
  for (const DominantColor& color : a) mass_a += color.fraction;
  for (const DominantColor& color : b) mass_b += color.fraction;
  const double denom = std::min(mass_a, mass_b);
  return denom > 0.0 ? intersection / denom : (a.empty() && b.empty() ? 1.0
                                                                      : 0.0);
}

Result<DominantCandidates> ClassifyDominantBins(
    const AugmentedCollection& collection, const RuleEngine& engine,
    const EditedImageInfo& edited, double min_fraction) {
  const BinaryImageInfo* base = collection.FindBinary(edited.script.base_id);
  if (base == nullptr) {
    return Status::Corruption("edited image " + std::to_string(edited.id) +
                              " references missing base");
  }
  const TargetBoundsResolver resolver = collection.MakeTargetResolver(engine);
  DominantCandidates out;
  for (BinIndex bin = 0; bin < engine.quantizer().BinCount(); ++bin) {
    MMDB_ASSIGN_OR_RETURN(
        FractionBounds bounds,
        ComputeBounds(engine, edited.script, bin,
                      base->histogram.Count(bin), base->width, base->height,
                      resolver));
    if (bounds.min_fraction >= min_fraction) out.must.push_back(bin);
    if (bounds.max_fraction >= min_fraction) out.may.push_back(bin);
  }
  return out;
}

}  // namespace mmdb
