#ifndef MMDB_CORE_EXECUTOR_H_
#define MMDB_CORE_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mmdb {

/// A fixed-size worker pool with a FIFO task queue.
///
/// Replaces the spawn-and-join-per-query threading the parallel scan used
/// to do: the workers are started once and reused by every query routed
/// through the pool, so steady-state query cost contains no thread
/// creation. `worker_count` may be zero, in which case every task runs
/// inline on the thread that hands it over — the degenerate serial pool.
///
/// Shutdown is graceful: tasks already queued are drained before the
/// workers join, and work handed in after shutdown runs inline on the
/// caller instead of being dropped. That "never drop, degrade to inline"
/// rule is what makes `ParallelFor` safe to call from anywhere, including
/// from a task that is itself running on this pool (see below).
class Executor {
 public:
  /// Starts `worker_count` (clamped at >= 0) persistent workers.
  explicit Executor(int worker_count);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Drains and joins (`Shutdown`).
  ~Executor();

  /// Enqueues `task` for a worker. After `Shutdown` (or on a pool with
  /// zero workers) the task runs inline before the call returns.
  void Submit(std::function<void()> task);

  /// Runs `body(0) .. body(count - 1)`, returning when all calls have
  /// finished. Iterations are claimed from a shared counter by up to
  /// `worker_count` helper tasks *and by the calling thread*, so the loop
  /// always makes progress — even when every worker is busy (the caller
  /// just runs every iteration itself), which makes nested use from pool
  /// tasks deadlock-free. Effective parallelism is `worker_count + 1`.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  /// Drains the queue, joins the workers, and flips the pool to inline
  /// execution. Idempotent; safe to race with `Submit`.
  void Shutdown();

  /// Workers this pool was built with (0 for an inline pool).
  int worker_count() const { return worker_count_; }

  /// Cumulative queue-wait observability: how long tasks sat in the FIFO
  /// between `Submit` and the moment a worker picked them up. Inline
  /// executions (zero-worker pool, post-shutdown handoff) never wait and
  /// are counted separately. Also aggregated into the
  /// `mmdb_executor_queue_wait_seconds` registry histogram.
  struct QueueWaitStats {
    int64_t pool_tasks = 0;    ///< Tasks that went through the queue.
    int64_t inline_tasks = 0;  ///< Tasks run inline on the caller.
    double total_wait_seconds = 0.0;
    double max_wait_seconds = 0.0;
  };
  QueueWaitStats queue_wait_stats() const;

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();
  void RecordQueueWait(std::chrono::steady_clock::time_point enqueued);

  const int worker_count_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<QueuedTask> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
  std::atomic<int64_t> pool_tasks_{0};
  std::atomic<int64_t> inline_tasks_{0};
  std::atomic<int64_t> wait_nanos_total_{0};
  std::atomic<int64_t> wait_nanos_max_{0};
};

}  // namespace mmdb

#endif  // MMDB_CORE_EXECUTOR_H_
