#ifndef MMDB_CORE_EXECUTOR_H_
#define MMDB_CORE_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mmdb {

/// A fixed-size worker pool with a FIFO task queue.
///
/// Replaces the spawn-and-join-per-query threading the parallel scan used
/// to do: the workers are started once and reused by every query routed
/// through the pool, so steady-state query cost contains no thread
/// creation. `worker_count` may be zero, in which case every task runs
/// inline on the thread that hands it over — the degenerate serial pool.
///
/// Shutdown is graceful: tasks already queued are drained before the
/// workers join, and work handed in after shutdown runs inline on the
/// caller instead of being dropped. That "never drop, degrade to inline"
/// rule is what makes `ParallelFor` safe to call from anywhere, including
/// from a task that is itself running on this pool (see below).
class Executor {
 public:
  /// Starts `worker_count` (clamped at >= 0) persistent workers.
  explicit Executor(int worker_count);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Drains and joins (`Shutdown`).
  ~Executor();

  /// Enqueues `task` for a worker. After `Shutdown` (or on a pool with
  /// zero workers) the task runs inline before the call returns.
  void Submit(std::function<void()> task);

  /// Runs `body(0) .. body(count - 1)`, returning when all calls have
  /// finished. Iterations are claimed from a shared counter by up to
  /// `worker_count` helper tasks *and by the calling thread*, so the loop
  /// always makes progress — even when every worker is busy (the caller
  /// just runs every iteration itself), which makes nested use from pool
  /// tasks deadlock-free. Effective parallelism is `worker_count + 1`.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  /// Drains the queue, joins the workers, and flips the pool to inline
  /// execution. Idempotent; safe to race with `Submit`.
  void Shutdown();

  /// Workers this pool was built with (0 for an inline pool).
  int worker_count() const { return worker_count_; }

 private:
  void WorkerLoop();

  const int worker_count_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_EXECUTOR_H_
