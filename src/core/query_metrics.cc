#include "core/query_metrics.h"

#include <map>
#include <string>

#include "core/database.h"
#include "obs/metrics.h"

namespace mmdb {

namespace {

struct MethodInstruments {
  obs::Counter* range_queries = nullptr;
  obs::Counter* conjunctive_queries = nullptr;
  obs::Counter* similarity_queries = nullptr;
  obs::Counter* failures = nullptr;
  obs::Counter* results = nullptr;
  obs::Counter* binary_checked = nullptr;
  obs::Counter* bounds_runs = nullptr;
  obs::Counter* cluster_skips = nullptr;
  obs::Counter* rules_applied = nullptr;
  obs::Counter* instantiations = nullptr;
  obs::Counter* corrupt_skips = nullptr;
};

MethodInstruments BuildInstruments(const std::string& name) {
  obs::Registry& registry = obs::Registry::Default();
  MethodInstruments instruments;
  instruments.range_queries = registry.GetCounter(
      "mmdb_queries_total", "Queries answered, by access path and kind.",
      {{"method", name}, {"kind", "range"}});
  instruments.conjunctive_queries = registry.GetCounter(
      "mmdb_queries_total", "Queries answered, by access path and kind.",
      {{"method", name}, {"kind", "conjunctive"}});
  instruments.similarity_queries = registry.GetCounter(
      "mmdb_queries_total", "Queries answered, by access path and kind.",
      {{"method", name}, {"kind", "similarity"}});
  instruments.failures = registry.GetCounter(
      "mmdb_query_failures_total", "Queries that returned an error.",
      {{"method", name}});
  instruments.results = registry.GetCounter(
      "mmdb_query_results_total", "Result ids returned to callers.",
      {{"method", name}});
  instruments.binary_checked = registry.GetCounter(
      "mmdb_query_binary_images_checked_total",
      "Binary images whose stored histogram was consulted.",
      {{"method", name}});
  instruments.bounds_runs = registry.GetCounter(
      "mmdb_query_bounds_runs_total",
      "Edited images for which the BOUNDS rule fold ran.",
      {{"method", name}});
  instruments.cluster_skips = registry.GetCounter(
      "mmdb_query_cluster_skips_total",
      "Edited images accepted from a BWM Main cluster without touching "
      "their operations.",
      {{"method", name}});
  instruments.rules_applied = registry.GetCounter(
      "mmdb_query_rules_applied_total",
      "Individual operation rules applied across all BOUNDS runs.",
      {{"method", name}});
  instruments.instantiations = registry.GetCounter(
      "mmdb_query_instantiations_total",
      "Edited images materialized by the instantiation baseline.",
      {{"method", name}});
  instruments.corrupt_skips = registry.GetCounter(
      "mmdb_query_corrupt_images_skipped_total",
      "Images excluded from answers because their stored blob failed "
      "verification.",
      {{"method", name}});
  return instruments;
}

/// One instrument set per access path, interned on first use. QueryMethod
/// is a closed enum, so the whole table is built once (thread-safe magic
/// static) and lookups after that are lock-free.
const MethodInstruments& InstrumentsFor(QueryMethod method) {
  static const std::map<QueryMethod, MethodInstruments>* const table = [] {
    auto* out = new std::map<QueryMethod, MethodInstruments>();
    for (QueryMethod m :
         {QueryMethod::kInstantiate, QueryMethod::kRbm, QueryMethod::kBwm,
          QueryMethod::kBwmIndexed, QueryMethod::kParallelRbm,
          QueryMethod::kPlanned}) {
      out->emplace(m, BuildInstruments(std::string(QueryMethodName(m))));
    }
    return out;
  }();
  return table->at(method);
}

/// Similarity queries have no access-path choice; they get their own
/// instrument set under `method="similarity"`.
const MethodInstruments& SimilarityInstruments() {
  static const MethodInstruments* const instruments =
      new MethodInstruments(BuildInstruments("similarity"));
  return *instruments;
}

}  // namespace

void RecordQueryMetrics(QueryMethod method, QueryKind kind,
                        const Result<QueryResult>& result) {
  if constexpr (!obs::kObsEnabled) {
    (void)method;
    (void)kind;
    (void)result;
    return;
  }
  const MethodInstruments& instruments = kind == QueryKind::kSimilarity
                                             ? SimilarityInstruments()
                                             : InstrumentsFor(method);
  switch (kind) {
    case QueryKind::kRange:
      instruments.range_queries->Increment();
      break;
    case QueryKind::kConjunctive:
      instruments.conjunctive_queries->Increment();
      break;
    case QueryKind::kSimilarity:
      instruments.similarity_queries->Increment();
      break;
  }
  if (!result.ok()) {
    static obs::Counter* const deadline_exceeded =
        obs::Registry::Default().GetCounter(
            "mmdb_query_deadline_exceeded_total",
            "Queries cut short because their deadline expired.");
    static obs::Counter* const cancelled = obs::Registry::Default().GetCounter(
        "mmdb_query_cancelled_total",
        "Queries cut short by a caller's cancel token.");
    instruments.failures->Increment();
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded->Increment();
    } else if (result.status().code() == StatusCode::kCancelled) {
      cancelled->Increment();
    }
    return;
  }
  const QueryStats& stats = result->stats;
  instruments.results->Increment(static_cast<int64_t>(result->ids.size()));
  instruments.binary_checked->Increment(stats.binary_images_checked);
  instruments.bounds_runs->Increment(stats.edited_images_bounded);
  instruments.cluster_skips->Increment(stats.edited_images_skipped);
  instruments.rules_applied->Increment(stats.rules_applied);
  instruments.instantiations->Increment(stats.images_instantiated);
  instruments.corrupt_skips->Increment(stats.corrupt_images_skipped);
}

}  // namespace mmdb
