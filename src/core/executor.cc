#include "core/executor.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace mmdb {

Executor::Executor(int worker_count)
    : worker_count_(std::max(0, worker_count)) {
  workers_.reserve(static_cast<size_t>(worker_count_));
  for (int i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Graceful drain: even while shutting down, queued tasks run.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void Executor::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutting_down_ && worker_count_ > 0) {
      queue_.push_back(std::move(task));
      lock.unlock();
      work_available_.notify_one();
      return;
    }
  }
  task();  // Inline pool, or shut down: never drop work.
}

void Executor::ParallelFor(size_t count,
                           const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (count == 1) {
    body(0);
    return;
  }

  // Shared claim/completion state. Helper tasks may still sit in the
  // queue after the loop finishes (the caller can claim every iteration
  // first), so the state is shared_ptr-owned and the late helpers see an
  // already-exhausted counter and return immediately.
  struct LoopState {
    std::function<void(size_t)> body;
    size_t count;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<LoopState>();
  state->body = body;
  state->count = count;

  const auto run = [](const std::shared_ptr<LoopState>& s) {
    for (size_t i = s->next.fetch_add(1); i < s->count;
         i = s->next.fetch_add(1)) {
      s->body(i);
      if (s->done.fetch_add(1) + 1 == s->count) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->all_done.notify_all();
      }
    }
  };

  const size_t helpers =
      std::min(static_cast<size_t>(worker_count_), count - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, run] { run(state); });
  }
  run(state);  // The caller participates: progress needs no free worker.

  std::unique_lock<std::mutex> lock(state->mu);
  state->all_done.wait(
      lock, [&] { return state->done.load() == state->count; });
}

void Executor::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    to_join.swap(workers_);  // Claimed by exactly one caller.
  }
  work_available_.notify_all();
  for (std::thread& worker : to_join) worker.join();
}

}  // namespace mmdb
