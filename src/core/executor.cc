#include "core/executor.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace mmdb {

namespace {

/// Queue-wait latency aggregated across every executor in the process
/// (per-pool totals live in Executor::queue_wait_stats).
obs::Histogram* QueueWaitHistogram() {
  static obs::Histogram* const histogram =
      obs::Registry::Default().GetHistogram(
          "mmdb_executor_queue_wait_seconds",
          "Time tasks spent queued before a pool worker picked them up.");
  return histogram;
}

}  // namespace

Executor::Executor(int worker_count)
    : worker_count_(std::max(0, worker_count)) {
  workers_.reserve(static_cast<size_t>(worker_count_));
  for (int i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

void Executor::RecordQueueWait(
    std::chrono::steady_clock::time_point enqueued) {
  if constexpr (!obs::kObsEnabled) {
    (void)enqueued;
    pool_tasks_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int64_t wait_nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - enqueued)
          .count();
  pool_tasks_.fetch_add(1, std::memory_order_relaxed);
  wait_nanos_total_.fetch_add(wait_nanos, std::memory_order_relaxed);
  int64_t observed_max = wait_nanos_max_.load(std::memory_order_relaxed);
  while (observed_max < wait_nanos &&
         !wait_nanos_max_.compare_exchange_weak(observed_max, wait_nanos,
                                                std::memory_order_relaxed)) {
  }
  QueueWaitHistogram()->Record(static_cast<double>(wait_nanos) * 1e-9);
}

Executor::QueueWaitStats Executor::queue_wait_stats() const {
  QueueWaitStats stats;
  stats.pool_tasks = pool_tasks_.load(std::memory_order_relaxed);
  stats.inline_tasks = inline_tasks_.load(std::memory_order_relaxed);
  stats.total_wait_seconds =
      static_cast<double>(wait_nanos_total_.load(std::memory_order_relaxed)) *
      1e-9;
  stats.max_wait_seconds =
      static_cast<double>(wait_nanos_max_.load(std::memory_order_relaxed)) *
      1e-9;
  return stats;
}

void Executor::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Graceful drain: even while shutting down, queued tasks run.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RecordQueueWait(task.enqueued);
    task.fn();
  }
}

void Executor::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutting_down_ && worker_count_ > 0) {
      queue_.push_back(
          QueuedTask{std::move(task), std::chrono::steady_clock::now()});
      lock.unlock();
      work_available_.notify_one();
      return;
    }
  }
  inline_tasks_.fetch_add(1, std::memory_order_relaxed);
  task();  // Inline pool, or shut down: never drop work.
}

void Executor::ParallelFor(size_t count,
                           const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (count == 1) {
    body(0);
    return;
  }

  // Shared claim/completion state. Helper tasks may still sit in the
  // queue after the loop finishes (the caller can claim every iteration
  // first), so the state is shared_ptr-owned and the late helpers see an
  // already-exhausted counter and return immediately.
  struct LoopState {
    std::function<void(size_t)> body;
    size_t count;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<LoopState>();
  state->body = body;
  state->count = count;

  const auto run = [](const std::shared_ptr<LoopState>& s) {
    for (size_t i = s->next.fetch_add(1); i < s->count;
         i = s->next.fetch_add(1)) {
      s->body(i);
      if (s->done.fetch_add(1) + 1 == s->count) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->all_done.notify_all();
      }
    }
  };

  const size_t helpers =
      std::min(static_cast<size_t>(worker_count_), count - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, run] { run(state); });
  }
  run(state);  // The caller participates: progress needs no free worker.

  std::unique_lock<std::mutex> lock(state->mu);
  state->all_done.wait(
      lock, [&] { return state->done.load() == state->count; });
}

void Executor::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    to_join.swap(workers_);  // Claimed by exactly one caller.
  }
  work_available_.notify_all();
  for (std::thread& worker : to_join) worker.join();
  // The workers drain the queue before exiting, but make the
  // completed-never-dropped guarantee structural: run anything still
  // queued inline (e.g. a second Shutdown caller racing the first joins
  // nothing, yet must not strand work either).
  for (;;) {
    QueuedTask task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    inline_tasks_.fetch_add(1, std::memory_order_relaxed);
    task.fn();
  }
}

}  // namespace mmdb
