#ifndef MMDB_CORE_SIMILARITY_H_
#define MMDB_CORE_SIMILARITY_H_

#include <vector>

#include "core/cancel.h"
#include "core/collection.h"
#include "core/histogram.h"
#include "core/query.h"  // SimilarityMatch lives with the query model.
#include "core/rules.h"
#include "util/result.h"

namespace mmdb {

/// Similarity (nearest-neighbor) search over an augmented database — the
/// extension the paper lists as future work (Section 6).
///
/// Binary images are ranked by exact L1 histogram distance. For edited
/// images the searcher folds the Table 1 rules once per histogram bin to
/// get per-bin fraction intervals, then derives a provable interval
/// [distance_lo, distance_hi] on the L1 distance. The k-NN result is the
/// candidate set that provably contains the true k nearest images:
/// every image whose optimistic distance does not exceed the k-th best
/// guaranteed distance.
class SimilaritySearcher {
 public:
  /// Referents must outlive the searcher.
  SimilaritySearcher(const AugmentedCollection* collection,
                     const RuleEngine* engine);

  /// Per-bin fraction intervals for an edited image (one BOUNDS fold per
  /// bin).
  Result<std::pair<std::vector<double>, std::vector<double>>> AllBinBounds(
      const EditedImageInfo& info) const;

  /// Interval on the L1 distance between `query` (normalized fractions)
  /// and an edited image with per-bin fraction bounds [lo, hi].
  static SimilarityMatch DistanceInterval(
      ObjectId id, const std::vector<double>& query_fractions,
      const std::vector<double>& lo, const std::vector<double>& hi);

  /// k-NN candidate search (see class comment). Results are sorted by
  /// optimistic distance; `stats` counts the rule work performed.
  /// `context` (when limited) is honored cooperatively at per-image
  /// boundaries, same contract as the range-query processors.
  Result<std::vector<SimilarityMatch>> Knn(
      const ColorHistogram& query, size_t k, QueryStats* stats = nullptr,
      const QueryContext& context = {}) const;

  /// Answer of a similarity range query ("everything within L1 distance
  /// `radius` of the query"). `certain` images provably qualify
  /// (distance upper bound <= radius); `candidates` may qualify (lower
  /// bound <= radius < upper bound) and would need instantiation to
  /// settle. Together they contain every true match — the same
  /// no-false-negative contract as the color range queries.
  struct RangeAnswer {
    std::vector<SimilarityMatch> certain;
    std::vector<SimilarityMatch> candidates;
  };

  /// Runs a similarity range query without instantiating anything.
  Result<RangeAnswer> WithinDistance(const ColorHistogram& query,
                                     double radius,
                                     QueryStats* stats = nullptr) const;

 private:
  const AugmentedCollection* collection_;
  const RuleEngine* engine_;
  TargetBoundsResolver resolver_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_SIMILARITY_H_
