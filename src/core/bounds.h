#ifndef MMDB_CORE_BOUNDS_H_
#define MMDB_CORE_BOUNDS_H_

#include "core/cancel.h"
#include "core/rules.h"
#include "editops/edit_ops.h"
#include "util/result.h"

namespace mmdb {

/// Bounds on the fraction of pixels of an image that map to a histogram
/// bin: the paper's range [BOUNDmin/imagesize, BOUNDmax/imagesize].
struct FractionBounds {
  double min_fraction = 0.0;
  double max_fraction = 0.0;

  /// True iff this range intersects [lo, hi] — i.e. the image *may*
  /// satisfy the query; disjoint ranges prove it cannot (no false
  /// negatives, paper Section 3.2).
  bool Overlaps(double lo, double hi) const {
    return max_fraction >= lo && min_fraction <= hi;
  }
};

/// The BOUNDS algorithm: computes fraction bounds for histogram bin `hb`
/// of the edited image described by `script`, by folding the Table 1
/// rules over every operation. Requires the referenced base image's exact
/// bin count and dimensions (both read from the catalog, never from
/// pixels).
///
/// `resolver` is consulted only for Merge operations with non-null
/// targets.
///
/// A non-null `check` is consulted between operations, so a long edit
/// script honors deadlines and cancellation mid-walk (the interrupt
/// status propagates out like any rule error).
Result<FractionBounds> ComputeBounds(const RuleEngine& engine,
                                     const EditScript& script, BinIndex hb,
                                     int64_t base_hb_count,
                                     int32_t base_width, int32_t base_height,
                                     const TargetBoundsResolver& resolver,
                                     CancelCheck* check = nullptr);

/// As `ComputeBounds`, but returns the final raw rule state (pixel-count
/// bounds, exact size and dimensions) for callers that need more than the
/// fractions (e.g. the recursive merge-target resolver).
Result<RuleState> ComputeRuleState(const RuleEngine& engine,
                                   const EditScript& script, BinIndex hb,
                                   int64_t base_hb_count, int32_t base_width,
                                   int32_t base_height,
                                   const TargetBoundsResolver& resolver,
                                   CancelCheck* check = nullptr);

/// Converts a final rule state to fraction bounds ([0, 0] for an empty
/// image).
FractionBounds ToFractionBounds(const RuleState& state);

}  // namespace mmdb

#endif  // MMDB_CORE_BOUNDS_H_
