#ifndef MMDB_CORE_DOMINANT_H_
#define MMDB_CORE_DOMINANT_H_

#include <vector>

#include "core/collection.h"
#include "core/histogram.h"
#include "core/rules.h"
#include "util/result.h"

namespace mmdb {

/// A dominant color of an image: a histogram bin holding at least a
/// threshold fraction of the pixels. Dominant-color sets are the
/// "representation of color without histograms" the paper's Section 6
/// flags for further testing — a handful of (bin, fraction) pairs
/// instead of a full n-dimensional vector.
struct DominantColor {
  BinIndex bin = 0;
  double fraction = 0.0;

  friend bool operator==(const DominantColor&, const DominantColor&) =
      default;
};

/// Extracts the dominant colors of `histogram`: every bin with fraction
/// >= `min_fraction`, strongest first, capped at `max_colors`.
std::vector<DominantColor> ExtractDominantColors(
    const ColorHistogram& histogram, int max_colors = 8,
    double min_fraction = 0.05);

/// Similarity of two dominant-color sets in [0, 1]: the histogram
/// intersection restricted to the kept bins (1 for identical sets, 0 for
/// disjoint ones).
double DominantColorSimilarity(const std::vector<DominantColor>& a,
                               const std::vector<DominantColor>& b);

/// Dominance classification of an edited image's bins, derived from the
/// rule bounds without instantiation: `must` lists bins whose minimum
/// possible fraction already reaches the threshold, `may` those whose
/// maximum does. The exact dominant set always satisfies
/// `must ⊆ exact ⊆ may` (checked by the property suite).
struct DominantCandidates {
  std::vector<BinIndex> must;
  std::vector<BinIndex> may;
};

/// Computes `DominantCandidates` for an edited image in `collection`.
Result<DominantCandidates> ClassifyDominantBins(
    const AugmentedCollection& collection, const RuleEngine& engine,
    const EditedImageInfo& edited, double min_fraction = 0.05);

}  // namespace mmdb

#endif  // MMDB_CORE_DOMINANT_H_
