#ifndef MMDB_CORE_QUERY_METRICS_H_
#define MMDB_CORE_QUERY_METRICS_H_

#include "core/query.h"
#include "util/result.h"

namespace mmdb {

enum class QueryMethod;

/// Mirrors one facade query's outcome into the default metrics registry,
/// labeled by access path: `mmdb_queries_total{method,kind}`,
/// `mmdb_query_failures_total`, `mmdb_query_results_total`, and the
/// per-method work counters re-expressing `QueryStats`
/// (`mmdb_query_rules_applied_total`, `mmdb_query_cluster_skips_total`,
/// `mmdb_query_bounds_runs_total`, ...). Called once per query by
/// `MultimediaDatabase::RunRange` / `RunConjunctive` / `RunSimilarity`,
/// so every dispatch route (facade, `QueryService`, examples) feeds the
/// same instruments. Similarity queries have no access-path choice, so
/// they record under their own `method="similarity"` label and `method`
/// is ignored.
///
/// The per-method instrument set is interned once per process; the per
/// call cost is a handful of relaxed atomic adds.
void RecordQueryMetrics(QueryMethod method, QueryKind kind,
                        const Result<QueryResult>& result);

}  // namespace mmdb

#endif  // MMDB_CORE_QUERY_METRICS_H_
