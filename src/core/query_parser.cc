#include "core/query_parser.h"

#include <cctype>
#include <cstdlib>

namespace mmdb {

namespace {

/// Basic CSS color keywords the grammar accepts as a colorref.
struct NamedColor {
  const char* name;
  uint32_t packed;  ///< 0xrrggbb.
};
constexpr NamedColor kNamedColors[] = {
    {"black", 0x000000},  {"white", 0xffffff},   {"red", 0xff0000},
    {"green", 0x008000},  {"blue", 0x0000ff},    {"yellow", 0xffff00},
    {"cyan", 0x00ffff},   {"magenta", 0xff00ff}, {"gray", 0x808080},
    {"orange", 0xffa500}, {"purple", 0x800080},  {"brown", 0xa52a2a},
    {"pink", 0xffc0cb},   {"navy", 0x000080},    {"teal", 0x008080},
    {"olive", 0x808000},  {"maroon", 0x800000},  {"lime", 0x00ff00},
    {"silver", 0xc0c0c0}, {"aqua", 0x00ffff},    {"fuchsia", 0xff00ff},
};

/// Hand-rolled tokenizer/recursive-descent parser for the predicate
/// grammar in the header.
class Parser {
 public:
  Parser(const std::string& text, const ColorQuantizer& quantizer)
      : text_(text), quantizer_(quantizer) {}

  Result<ConjunctiveQuery> Parse() {
    ConjunctiveQuery query;
    MMDB_ASSIGN_OR_RETURN(RangeQuery first, ParsePredicate());
    query.conjuncts.push_back(first);
    SkipSpace();
    while (!AtEnd()) {
      MMDB_RETURN_IF_ERROR(ExpectKeyword("and"));
      MMDB_ASSIGN_OR_RETURN(RangeQuery next, ParsePredicate());
      query.conjuncts.push_back(next);
      SkipSpace();
    }
    return query;
  }

  Result<ParsedQuery> ParseExpression() {
    if (PeekKeyword("nearest")) {
      MMDB_ASSIGN_OR_RETURN(SimilarityQuery nearest, ParseNearest());
      if (!AtEnd()) return Error("trailing input after nearest(...)");
      return ParsedQuery(std::move(nearest));
    }
    MMDB_ASSIGN_OR_RETURN(ConjunctiveQuery query, Parse());
    return ParsedQuery(std::move(query));
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }
  Status Error(const std::string& why) {
    return Status::InvalidArgument("query parse error at offset " +
                                   std::to_string(pos_) + ": " + why);
  }

  /// Consumes `keyword` case-insensitively.
  Status ExpectKeyword(const std::string& keyword) {
    SkipSpace();
    if (pos_ + keyword.size() > text_.size()) {
      return Error("expected '" + keyword + "'");
    }
    for (size_t i = 0; i < keyword.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          keyword[i]) {
        return Error("expected '" + keyword + "'");
      }
    }
    pos_ += keyword.size();
    return Status::OK();
  }

  /// True when `keyword` is next (case-insensitive), without consuming.
  bool PeekKeyword(const std::string& keyword) {
    SkipSpace();
    if (pos_ + keyword.size() > text_.size()) return false;
    for (size_t i = 0; i < keyword.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          keyword[i]) {
        return false;
      }
    }
    return true;
  }

  Status ExpectChar(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  bool TryChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// A decimal fraction (0.25) or percentage (25%).
  Result<double> ParseFraction() {
    SkipSpace();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return Error("expected a number");
    pos_ += static_cast<size_t>(end - start);
    if (TryChar('%')) return value / 100.0;
    return value;
  }

  /// '#rrggbb' (optionally quoted) or a decimal bin index.
  Result<BinIndex> ParseColorRef() {
    SkipSpace();
    const bool quoted = TryChar('\'') || TryChar('"');
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '#') {
      if (pos_ + 7 > text_.size()) return Error("truncated #rrggbb color");
      char* end = nullptr;
      const long packed =
          std::strtol(text_.c_str() + pos_ + 1, &end, 16);
      if (end != text_.c_str() + pos_ + 7) {
        return Error("malformed #rrggbb color");
      }
      pos_ += 7;
      if (quoted && !TryChar('\'') && !TryChar('"')) {
        return Error("unterminated quoted color");
      }
      return quantizer_.BinOf(Rgb::FromPacked(static_cast<uint32_t>(packed)));
    }
    if (pos_ < text_.size() &&
        std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      // Named CSS color.
      std::string name;
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        name.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(text_[pos_]))));
        ++pos_;
      }
      if (quoted && !TryChar('\'') && !TryChar('"')) {
        return Error("unterminated quoted color");
      }
      for (const NamedColor& color : kNamedColors) {
        if (name == color.name) {
          return quantizer_.BinOf(Rgb::FromPacked(color.packed));
        }
      }
      return Error("unknown color name '" + name + "'");
    }
    // Bin index.
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const long bin = std::strtol(start, &end, 10);
    if (end == start) return Error("expected a color or bin index");
    pos_ += static_cast<size_t>(end - start);
    if (quoted && !TryChar('\'') && !TryChar('"')) {
      return Error("unterminated quoted color");
    }
    if (bin < 0 || bin >= quantizer_.BinCount()) {
      return Error("bin index out of range");
    }
    return static_cast<BinIndex>(bin);
  }

  /// nearest '(' colorref ',' k ')'
  Result<SimilarityQuery> ParseNearest() {
    MMDB_RETURN_IF_ERROR(ExpectKeyword("nearest"));
    MMDB_RETURN_IF_ERROR(ExpectChar('('));
    MMDB_ASSIGN_OR_RETURN(BinIndex bin, ParseColorRef());
    MMDB_RETURN_IF_ERROR(ExpectChar(','));
    SkipSpace();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const long k = std::strtol(start, &end, 10);
    if (end == start) return Error("expected a result count k");
    pos_ += static_cast<size_t>(end - start);
    if (k <= 0) return Error("k must be positive");
    MMDB_RETURN_IF_ERROR(ExpectChar(')'));

    SimilarityQuery query;
    query.histogram = ColorHistogram(quantizer_.BinCount());
    query.histogram.Add(bin, 1);
    query.k = static_cast<uint32_t>(k);
    return query;
  }

  Result<RangeQuery> ParsePredicate() {
    MMDB_RETURN_IF_ERROR(ExpectKeyword("color"));
    MMDB_RETURN_IF_ERROR(ExpectChar('('));
    MMDB_ASSIGN_OR_RETURN(BinIndex bin, ParseColorRef());
    MMDB_RETURN_IF_ERROR(ExpectChar(')'));

    RangeQuery query;
    query.bin = bin;
    SkipSpace();
    if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=' &&
        (text_[pos_] == '>' || text_[pos_] == '<' || text_[pos_] == '=')) {
      const char op = text_[pos_];
      pos_ += 2;
      MMDB_ASSIGN_OR_RETURN(double value, ParseFraction());
      if (value < 0.0 || value > 1.0) {
        return Error("fraction must be within [0, 1]");
      }
      if (op == '>') {
        query.min_fraction = value;
        query.max_fraction = 1.0;
      } else if (op == '<') {
        query.min_fraction = 0.0;
        query.max_fraction = value;
      } else {
        query.min_fraction = query.max_fraction = value;
      }
      return query;
    }
    MMDB_RETURN_IF_ERROR(ExpectKeyword("between"));
    MMDB_ASSIGN_OR_RETURN(double lo, ParseFraction());
    MMDB_RETURN_IF_ERROR(ExpectKeyword("and"));
    MMDB_ASSIGN_OR_RETURN(double hi, ParseFraction());
    if (lo < 0.0 || hi > 1.0 || lo > hi) {
      return Error("invalid between range");
    }
    query.min_fraction = lo;
    query.max_fraction = hi;
    return query;
  }

  const std::string& text_;
  const ColorQuantizer& quantizer_;
  size_t pos_ = 0;
};

}  // namespace

Result<ConjunctiveQuery> ParseQuery(const std::string& text,
                                    const ColorQuantizer& quantizer) {
  Parser parser(text, quantizer);
  return parser.Parse();
}

Result<ParsedQuery> ParseQueryExpression(const std::string& text,
                                         const ColorQuantizer& quantizer) {
  Parser parser(text, quantizer);
  return parser.ParseExpression();
}

}  // namespace mmdb
