#include "core/breaker.h"

#include "obs/metrics.h"

namespace mmdb {

namespace {

obs::Counter* TripsCounter() {
  static obs::Counter* counter = obs::Registry::Default().GetCounter(
      "mmdb_breaker_trips_total",
      "Per-image I/O circuit breakers tripped open");
  return counter;
}

obs::Gauge* OpenGauge() {
  static obs::Gauge* gauge = obs::Registry::Default().GetGauge(
      "mmdb_breaker_open_images",
      "Images whose I/O circuit breaker is currently open");
  return gauge;
}

}  // namespace

bool CircuitBreaker::RecordFailure(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_.count(id) != 0) return false;
  int count = ++failures_[id];
  if (count < trip_threshold_) return false;
  open_.insert(id);
  TripsCounter()->Increment();
  OpenGauge()->Set(static_cast<double>(open_.size()));
  return true;
}

bool CircuitBreaker::IsOpen(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_.count(id) != 0;
}

int CircuitBreaker::FailureCount(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = failures_.find(id);
  return it == failures_.end() ? 0 : it->second;
}

}  // namespace mmdb
