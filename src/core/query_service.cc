#include "core/query_service.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb {

namespace {

int ResolveThreads(const QueryServiceOptions& options) {
  const int threads = options.threads > 0
                          ? options.threads
                          : static_cast<int>(
                                std::thread::hardware_concurrency());
  return std::max(1, threads);
}

}  // namespace

QueryService::QueryService(const MultimediaDatabase* db,
                           QueryServiceOptions options)
    : db_(db), executor_(ResolveThreads(options) - 1) {}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { executor_.Shutdown(); }

QueryService::QueryObservation QueryService::RunOne(
    const QueryRequest& request, Result<QueryResult>* out) const {
  QueryObservation observation;
  observation.method = request.method;
  observation.conjunctive = request.conjunctive.has_value();

  Stopwatch watch;
  if (request.range.has_value() == request.conjunctive.has_value()) {
    *out = Status::InvalidArgument(
        "QueryRequest must hold exactly one of a range or a conjunctive "
        "query");
  } else if (request.range.has_value()) {
    *out = db_->RunRange(*request.range, request.method);
  } else {
    *out = db_->RunConjunctive(*request.conjunctive, request.method);
  }
  observation.wall_seconds = watch.ElapsedSeconds();
  observation.ok = out->ok();
  if (out->ok()) {
    observation.results = static_cast<int64_t>((*out)->ids.size());
    observation.stats = (*out)->stats;
  }
  return observation;
}

void QueryService::Record(const QueryObservation& observation) {
  std::lock_guard<std::mutex> lock(counters_mu_);
  ++counters_.queries;
  ++counters_.queries_per_method[observation.method];
  if (observation.conjunctive) {
    ++counters_.conjunctive_queries;
  } else {
    ++counters_.range_queries;
  }
  if (observation.ok) {
    counters_.results_returned += observation.results;
    counters_.stats += observation.stats;
  } else {
    ++counters_.failed_queries;
  }
  counters_.total_query_seconds += observation.wall_seconds;
  counters_.max_query_seconds =
      std::max(counters_.max_query_seconds, observation.wall_seconds);
}

std::vector<Result<QueryResult>> QueryService::ExecuteBatch(
    std::span<const QueryRequest> requests) {
  std::vector<Result<QueryResult>> results(
      requests.size(), Result<QueryResult>(Status::Internal("not executed")));
  executor_.ParallelFor(requests.size(), [&](size_t i) {
    Record(RunOne(requests[i], &results[i]));
  });
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.batches;
  }
  return results;
}

Result<QueryResult> QueryService::Execute(const QueryRequest& request) {
  std::vector<Result<QueryResult>> results =
      ExecuteBatch(std::span<const QueryRequest>(&request, 1));
  return std::move(results.front());
}

QueryService::CounterSnapshot QueryService::Snapshot() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

void QueryService::ResetCounters() {
  std::lock_guard<std::mutex> lock(counters_mu_);
  counters_ = CounterSnapshot();
}

void QueryService::CounterSnapshot::PrintTo(std::ostream& os) const {
  TablePrinter table({"counter", "value"});
  table.AddRow({"batches", TablePrinter::Cell(batches)});
  table.AddRow({"queries", TablePrinter::Cell(queries)});
  table.AddRow({"  range", TablePrinter::Cell(range_queries)});
  table.AddRow({"  conjunctive", TablePrinter::Cell(conjunctive_queries)});
  for (const auto& [method, count] : queries_per_method) {
    table.AddRow({"  method " + std::string(QueryMethodName(method)),
                  TablePrinter::Cell(count)});
  }
  table.AddRow({"failed queries", TablePrinter::Cell(failed_queries)});
  table.AddRow({"results returned", TablePrinter::Cell(results_returned)});
  table.AddRow(
      {"binary images checked",
       TablePrinter::Cell(stats.binary_images_checked)});
  table.AddRow({"edited images bounded (RBM fallbacks)",
                TablePrinter::Cell(stats.edited_images_bounded)});
  table.AddRow({"edited images skipped (Main-cluster accepts)",
                TablePrinter::Cell(stats.edited_images_skipped)});
  table.AddRow({"rules applied", TablePrinter::Cell(stats.rules_applied)});
  table.AddRow(
      {"images instantiated", TablePrinter::Cell(stats.images_instantiated)});
  table.AddRow({"corrupt images skipped",
                TablePrinter::Cell(stats.corrupt_images_skipped)});
  table.AddRow(
      {"total query seconds", TablePrinter::Cell(total_query_seconds, 6)});
  table.AddRow(
      {"max query seconds", TablePrinter::Cell(max_query_seconds, 6)});
  table.AddRow(
      {"avg query seconds",
       TablePrinter::Cell(
           queries == 0 ? 0.0
                        : total_query_seconds / static_cast<double>(queries),
           6)});
  table.Print(os);
}

}  // namespace mmdb
