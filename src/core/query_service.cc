#include "core/query_service.h"

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <variant>

#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb {

namespace {

int ResolveThreads(const QueryServiceOptions& options) {
  const int threads = options.threads > 0
                          ? options.threads
                          : static_cast<int>(
                                std::thread::hardware_concurrency());
  return std::max(1, threads);
}

obs::SpanCategory* BatchSpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("query_service.batch");
  return category;
}

obs::SpanCategory* QuerySpan() {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("query_service.query");
  return category;
}

constexpr QueryMethod kAllMethods[] = {
    QueryMethod::kInstantiate, QueryMethod::kRbm,
    QueryMethod::kBwm,         QueryMethod::kBwmIndexed,
    QueryMethod::kParallelRbm, QueryMethod::kPlanned};

}  // namespace

QueryService::QueryService(const MultimediaDatabase* db,
                           QueryServiceOptions options)
    : db_(db), executor_(ResolveThreads(options) - 1) {
  if (options.admission.max_in_flight > 0) {
    admission_ = std::make_unique<AdmissionController>(options.admission);
  }
  for (QueryMethod method : kAllMethods) {
    MethodLatency latency;
    latency.local = std::make_unique<obs::Histogram>();
    latency.registry = obs::Registry::Default().GetHistogram(
        "mmdb_query_latency_seconds",
        "Per-query wall time through QueryService, by access path.",
        {{"method", std::string(QueryMethodName(method))}});
    method_latency_.emplace(method, std::move(latency));
  }
  wait_baseline_ = executor_.queue_wait_stats();
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { executor_.Shutdown(); }

QueryService::QueryObservation QueryService::RunOne(
    const QueryRequest& request, const BatchOptions& options,
    Result<QueryResult>* out, uint64_t parent_span_id) const {
  QueryObservation observation;
  observation.method = request.method;
  observation.kind = request.kind();

  obs::Span span(QuerySpan(), parent_span_id);
  Stopwatch watch;
  const Deadline deadline =
      Deadline::Earliest(request.deadline, options.deadline);
  QueryInterrupt interrupt;
  QueryContext ctx;
  ctx.cancel = request.cancel;
  ctx.batch_cancel = options.cancel;
  ctx.deadline = deadline;
  ctx.interrupt = &interrupt;

  // The gate is passed per query, deadline-bounded, so an overloaded
  // service sheds or rejects instead of queueing unboundedly.
  AdmissionController::Ticket ticket;
  bool admitted = true;
  if (admission_ != nullptr) {
    Result<AdmissionController::Ticket> admit = admission_->Admit(deadline);
    if (!admit.ok()) {
      *out = admit.status();
      admitted = false;
      observation.rejected = true;
    } else {
      ticket = std::move(admit).value();
    }
  }
  if (admitted) {
    // The variant payload makes "neither / both set" unrepresentable, so
    // dispatch is a total visit.
    *out = std::visit(
        [&](const auto& query) -> Result<QueryResult> {
          using T = std::decay_t<decltype(query)>;
          if constexpr (std::is_same_v<T, RangeQuery>) {
            return db_->RunRange(query, request.method, ctx);
          } else if constexpr (std::is_same_v<T, ConjunctiveQuery>) {
            return db_->RunConjunctive(query, request.method, ctx);
          } else {
            return db_->RunSimilarity(query, ctx);
          }
        },
        request.payload);
  }
  observation.wall_seconds = watch.ElapsedSeconds();
  observation.ok = out->ok();
  if (out->ok()) {
    observation.results = static_cast<int64_t>((*out)->ids.size());
    observation.stats = (*out)->stats;
  } else {
    observation.error_code = out->status().code();
    if (interrupt.partial) {
      observation.partial = true;
      observation.results = interrupt.results_so_far;
      observation.stats = interrupt.stats;
    }
  }
  return observation;
}

void QueryService::Record(const QueryObservation& observation) {
  // The histogram pair is lock-free; only the scalar counters need the
  // mutex.
  auto latency = method_latency_.find(observation.method);
  if (latency != method_latency_.end()) {
    latency->second.local->Record(observation.wall_seconds);
    latency->second.registry->Record(observation.wall_seconds);
  }
  std::lock_guard<std::mutex> lock(counters_mu_);
  ++counters_.queries;
  ++counters_.queries_per_method[observation.method];
  switch (observation.kind) {
    case QueryKind::kRange:
      ++counters_.range_queries;
      break;
    case QueryKind::kConjunctive:
      ++counters_.conjunctive_queries;
      break;
    case QueryKind::kSimilarity:
      ++counters_.similarity_queries;
      break;
  }
  if (observation.ok) {
    counters_.results_returned += observation.results;
    counters_.stats += observation.stats;
  } else {
    ++counters_.failed_queries;
    if (observation.error_code == StatusCode::kDeadlineExceeded) {
      ++counters_.deadline_exceeded;
    } else if (observation.error_code == StatusCode::kCancelled) {
      ++counters_.cancelled_queries;
    }
    if (observation.rejected) ++counters_.admission_rejected;
    if (observation.partial) {
      ++counters_.partial_queries;
      // Partial work is real work; keep it visible in the work counters.
      counters_.stats += observation.stats;
    }
  }
  counters_.total_query_seconds += observation.wall_seconds;
  counters_.max_query_seconds =
      std::max(counters_.max_query_seconds, observation.wall_seconds);
}

std::vector<Result<QueryResult>> QueryService::ExecuteBatch(
    std::span<const QueryRequest> requests) {
  return ExecuteBatch(requests, BatchOptions{});
}

std::vector<Result<QueryResult>> QueryService::ExecuteBatch(
    std::span<const QueryRequest> requests, const BatchOptions& options) {
  std::vector<Result<QueryResult>> results(
      requests.size(), Result<QueryResult>(Status::Internal("not executed")));
  obs::Span batch_span(BatchSpan());
  const uint64_t batch_id = batch_span.id();
  executor_.ParallelFor(requests.size(), [&, batch_id](size_t i) {
    Record(RunOne(requests[i], options, &results[i], batch_id));
  });
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.batches;
  }
  return results;
}

Result<QueryResult> QueryService::Execute(const QueryRequest& request) {
  std::vector<Result<QueryResult>> results =
      ExecuteBatch(std::span<const QueryRequest>(&request, 1));
  return std::move(results.front());
}

QueryService::CounterSnapshot QueryService::Snapshot() const {
  CounterSnapshot snapshot;
  Executor::QueueWaitStats baseline;
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    snapshot = counters_;
    baseline = wait_baseline_;
  }
  for (const auto& [method, latency] : method_latency_) {
    const obs::Histogram::Snapshot seconds = latency.local->Snap();
    if (seconds.count == 0) continue;
    LatencySummary summary;
    summary.count = seconds.count;
    summary.total_seconds = seconds.sum;
    summary.p50_seconds = seconds.Percentile(0.5);
    summary.p95_seconds = seconds.Percentile(0.95);
    summary.max_seconds = seconds.max;
    snapshot.method_latency.emplace(method, summary);
  }
  const Executor::QueueWaitStats waits = executor_.queue_wait_stats();
  snapshot.pool_tasks = waits.pool_tasks - baseline.pool_tasks;
  snapshot.inline_tasks = waits.inline_tasks - baseline.inline_tasks;
  snapshot.total_queue_wait_seconds =
      waits.total_wait_seconds - baseline.total_wait_seconds;
  snapshot.max_queue_wait_seconds = waits.max_wait_seconds;
  return snapshot;
}

void QueryService::ResetCounters() {
  for (const auto& [method, latency] : method_latency_) {
    (void)method;
    latency.local->Reset();  // The registry mirror keeps accumulating.
  }
  std::lock_guard<std::mutex> lock(counters_mu_);
  wait_baseline_ = executor_.queue_wait_stats();
  counters_ = CounterSnapshot();
}

void QueryService::CounterSnapshot::PrintTo(std::ostream& os) const {
  TablePrinter table({"counter", "value"});
  table.AddRow({"batches", TablePrinter::Cell(batches)});
  table.AddRow({"queries", TablePrinter::Cell(queries)});
  table.AddRow({"  range", TablePrinter::Cell(range_queries)});
  table.AddRow({"  conjunctive", TablePrinter::Cell(conjunctive_queries)});
  table.AddRow({"  similarity", TablePrinter::Cell(similarity_queries)});
  for (const auto& [method, count] : queries_per_method) {
    table.AddRow({"  method " + std::string(QueryMethodName(method)),
                  TablePrinter::Cell(count)});
  }
  table.AddRow({"failed queries", TablePrinter::Cell(failed_queries)});
  table.AddRow(
      {"  deadline exceeded", TablePrinter::Cell(deadline_exceeded)});
  table.AddRow({"  cancelled", TablePrinter::Cell(cancelled_queries)});
  table.AddRow(
      {"  admission rejected", TablePrinter::Cell(admission_rejected)});
  table.AddRow(
      {"partial queries (interrupted)", TablePrinter::Cell(partial_queries)});
  table.AddRow({"results returned", TablePrinter::Cell(results_returned)});
  table.AddRow(
      {"binary images checked",
       TablePrinter::Cell(stats.binary_images_checked)});
  table.AddRow({"edited images bounded (RBM fallbacks)",
                TablePrinter::Cell(stats.edited_images_bounded)});
  table.AddRow({"edited images skipped (Main-cluster accepts)",
                TablePrinter::Cell(stats.edited_images_skipped)});
  table.AddRow({"rules applied", TablePrinter::Cell(stats.rules_applied)});
  table.AddRow(
      {"images instantiated", TablePrinter::Cell(stats.images_instantiated)});
  table.AddRow({"corrupt images skipped",
                TablePrinter::Cell(stats.corrupt_images_skipped)});
  table.AddRow(
      {"total query seconds", TablePrinter::Cell(total_query_seconds, 6)});
  table.AddRow(
      {"max query seconds", TablePrinter::Cell(max_query_seconds, 6)});
  table.AddRow(
      {"avg query seconds",
       TablePrinter::Cell(
           queries == 0 ? 0.0
                        : total_query_seconds / static_cast<double>(queries),
           6)});
  for (const auto& [method, latency] : method_latency) {
    const std::string prefix =
        "  " + std::string(QueryMethodName(method)) + " ";
    table.AddRow({prefix + "p50 seconds",
                  TablePrinter::Cell(latency.p50_seconds, 6)});
    table.AddRow({prefix + "p95 seconds",
                  TablePrinter::Cell(latency.p95_seconds, 6)});
    table.AddRow({prefix + "max seconds",
                  TablePrinter::Cell(latency.max_seconds, 6)});
  }
  table.AddRow({"executor pool tasks", TablePrinter::Cell(pool_tasks)});
  table.AddRow({"executor inline tasks", TablePrinter::Cell(inline_tasks)});
  table.AddRow({"total queue wait seconds",
                TablePrinter::Cell(total_queue_wait_seconds, 6)});
  table.AddRow({"max queue wait seconds",
                TablePrinter::Cell(max_queue_wait_seconds, 6)});
  table.Print(os);
}

}  // namespace mmdb
