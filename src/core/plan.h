#ifndef MMDB_CORE_PLAN_H_
#define MMDB_CORE_PLAN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "util/result.h"

namespace mmdb {

struct QueryRequest;

/// Where a selectivity estimate came from.
enum class SelectivitySource {
  /// Exact per-bin occupancy of every stored histogram (the same
  /// signatures the histogram R-tree indexes).
  kIndex,
  /// Fractions sampled from a bounded subset of edited images' base
  /// histograms.
  kSampled,
};

inline const char* SelectivitySourceName(SelectivitySource source) {
  return source == SelectivitySource::kIndex ? "index" : "sampled";
}

/// Corpus statistics the planner estimates selectivity from: per-bin
/// fraction distributions (fixed-bucket histograms) for the binary side
/// (exact, from every stored histogram) and the edited side (sampled
/// through base histograms), plus the scan-size parameters the cost
/// model needs.
class CorpusStats {
 public:
  /// Equal-width fraction buckets per bin; in-range mass is pro-rated
  /// linearly within partial buckets.
  static constexpr int kBuckets = 32;

  /// Scans the collection once. `sample_limit` bounds the edited images
  /// sampled (their base histograms stand in for the edited fractions,
  /// which would each cost a full rule fold to bound exactly).
  static CorpusStats Collect(const MultimediaDatabase& db,
                             size_t sample_limit = 128);

  /// Estimated fraction of stored images whose `query.bin` fraction lies
  /// in [min_fraction, max_fraction]; weights the binary and edited
  /// estimates by population. Sets `*source` (when non-null) to how the
  /// dominant side was estimated.
  double Selectivity(const RangeQuery& query,
                     SelectivitySource* source = nullptr) const;

  int64_t binary_count() const { return binary_count_; }
  int64_t edited_count() const { return edited_count_; }
  /// Edited images classified into the BWM Main component, as a fraction
  /// of all edited images (drives the cluster-skip term).
  double main_fraction() const { return main_fraction_; }
  double avg_ops() const { return avg_ops_; }
  int32_t bin_count() const { return static_cast<int32_t>(binary_buckets_.size()); }

 private:
  using Buckets = std::array<int64_t, kBuckets>;

  static double BucketMass(const Buckets& buckets, int64_t total, double lo,
                           double hi);

  int64_t binary_count_ = 0;
  int64_t edited_count_ = 0;
  int64_t sampled_edited_ = 0;
  double main_fraction_ = 0.0;
  double avg_ops_ = 0.0;
  /// One fraction-distribution histogram per bin, each side.
  std::vector<Buckets> binary_buckets_;
  std::vector<Buckets> sampled_buckets_;
};

/// The relative costs the planner charges, in units of one Table 1 rule
/// application. The ratios are calibrated from the paper's Figures 3/4:
/// instantiating an edited image costs orders of magnitude more than
/// folding its rules; accepting a Main-cluster member is ~an order of
/// magnitude cheaper than one rule fold; and the R-tree pays a traversal
/// overhead that a linear histogram scan beats once a predicate stops
/// being selective (the conventional-vs-indexed crossover).
struct CostModel {
  /// One rule application during a BOUNDS fold.
  double rule_cost = 1.0;
  /// One stored-histogram fraction test (conventional binary scan).
  double histogram_probe = 0.25;
  /// Accepting one Main-component member without touching its script.
  double cluster_skip = 0.05;
  /// Visiting one R-tree node (traversal + per-result overhead).
  double index_node = 2.0;
  /// Materializing one edited image (the kInstantiate baseline).
  double instantiate_factor = 400.0;
  /// One exact residual-conjunct test on a driver survivor.
  double residual_filter = 0.25;
};

/// One conjunct's planning decision.
struct PlannedPredicate {
  RangeQuery predicate;
  /// Estimated fraction of stored images satisfying the predicate.
  double selectivity = 1.0;
  SelectivitySource source = SelectivitySource::kSampled;
  /// Access path chosen for this predicate (meaningful for the driver;
  /// residual predicates are filtered, not scanned).
  QueryMethod method = QueryMethod::kBwm;
  /// Cost-model units for this step.
  double estimated_cost = 0.0;
};

/// An ordered execution plan: `steps[0]` drives the scan with its chosen
/// access method, later steps filter the driver's survivors
/// most-selective-first.
struct QueryPlan {
  std::vector<PlannedPredicate> steps;
  /// Corpus shape the estimates were made against.
  int64_t binary_count = 0;
  int64_t edited_count = 0;
  double avg_ops = 0.0;
  double main_fraction = 0.0;
  /// Estimated images surviving the driver (feeding the first residual).
  double estimated_driver_results = 0.0;

  const PlannedPredicate& driver() const { return steps.front(); }

  /// Human-readable rendering of the plan (the `--explain` output).
  std::string Explain() const;
};

/// The cost-based planner: estimates per-predicate selectivity from
/// `CorpusStats`, orders conjuncts most-selective-first, and picks the
/// driver's access method as the cheapest of the semantics-preserving
/// candidates (kRbm / kBwm / kBwmIndexed — the conventional, clustered,
/// and indexed compositions; kInstantiate is costed for comparison but
/// never chosen, because its edited-image answers are exact rather than
/// bounded and would change the result set).
class QueryPlanner {
 public:
  QueryPlanner(CorpusStats stats, CostModel model = {});

  /// Convenience: plans against `db`'s cached corpus statistics
  /// (`MultimediaDatabase::PlannerStats`), so building a planner per
  /// query costs a snapshot copy, not a collection scan.
  explicit QueryPlanner(const MultimediaDatabase& db, CostModel model = {});

  /// Plans a conjunction (empty conjunctions are the caller's error and
  /// plan as a no-step plan).
  QueryPlan PlanConjunctive(const ConjunctiveQuery& query) const;

  /// Plans a single predicate (a one-conjunct conjunction).
  QueryPlan PlanRange(const RangeQuery& query) const;

  /// Scan cost of answering one predicate with `method` (the Fig 3/4
  /// curves in cost-model units).
  double MethodCost(QueryMethod method, double selectivity) const;

  const CorpusStats& stats() const { return stats_; }

 private:
  CorpusStats stats_;
  CostModel model_;
};

/// The `QueryMethod::kPlanned` access path: plans the query, runs the
/// driving predicate with the chosen sub-processor, then filters the
/// survivors through the residual conjuncts (exact fractions for binary
/// images, rule-fold bounds for edited ones). Returns the same result
/// *sets* as kRbm / kBwm; result order follows the driver's scan.
class PlannedQueryProcessor : public QueryProcessor {
 public:
  /// Borrows `db` (which must outlive the processor); snapshots the
  /// database's cached corpus stats at construction, so the per-query
  /// processor build stays cheap.
  explicit PlannedQueryProcessor(const MultimediaDatabase* db);

  Result<QueryResult> RunRange(const RangeQuery& query,
                               const QueryContext& ctx) const override;
  Result<QueryResult> RunConjunctive(const ConjunctiveQuery& query,
                                     const QueryContext& ctx) const override;

  const QueryPlanner& planner() const { return planner_; }

 private:
  const MultimediaDatabase* db_;
  QueryPlanner planner_;
};

/// Renders the execution strategy for any request shape: the cost-based
/// plan for range / conjunctive payloads (whatever `request.method` says,
/// with a note when the request would not use it), or the scan shape for
/// a similarity payload. Validates the payload against `db` first.
Result<std::string> ExplainQuery(const MultimediaDatabase& db,
                                 const QueryRequest& request);

}  // namespace mmdb

#endif  // MMDB_CORE_PLAN_H_
