#ifndef MMDB_CORE_QUERY_PROCESSOR_H_
#define MMDB_CORE_QUERY_PROCESSOR_H_

#include "core/cancel.h"
#include "core/query.h"
#include "util/result.h"

namespace mmdb {

/// The one interface every access path implements: instantiate, RBM, BWM,
/// indexed BWM, and the pooled parallel RBM scan are all
/// `QueryProcessor`s, and the facade dispatches to them through a
/// method→factory registry instead of a hand-rolled switch. New access
/// paths plug in by registering a factory (see
/// `MultimediaDatabase::RegisterQueryMethod`) without editing the facade.
///
/// Contract shared by every implementation:
///  - no false negatives versus the instantiate baseline;
///  - kRbm, kBwm, kBwmIndexed, and kParallelRbm return identical result
///    sets (the paper's equivalence argument, enforced by the tests);
///  - `Run*` methods are const and touch only in-memory read state, so
///    one processor is safe to use from the thread that built it while
///    other threads run their own processors. A single processor instance
///    is NOT shareable across threads (the bounds resolver's
///    cycle-detection scratch state is per-instance); build one per
///    thread, which is exactly what the facade and `QueryService` do.
/// Every processor additionally honors the limits in a `QueryContext`
/// (deadline, cancel tokens) by checking cooperatively at its natural
/// boundaries — per image scanned, per rule-walk operation, per BWM
/// cluster — and returns `DeadlineExceeded`/`Cancelled` with partial
/// progress recorded in `ctx.interrupt` when a limit trips. A
/// default-constructed context imposes no limits and takes the identical
/// code path, so the legacy single-argument overloads below stay
/// result-identical.
class QueryProcessor {
 public:
  virtual ~QueryProcessor() = default;

  /// Answers one color range query under `ctx`'s limits.
  virtual Result<QueryResult> RunRange(const RangeQuery& query,
                                       const QueryContext& ctx) const = 0;

  /// Answers a conjunction of range predicates under `ctx`'s limits.
  virtual Result<QueryResult> RunConjunctive(
      const ConjunctiveQuery& query, const QueryContext& ctx) const = 0;

  /// Legacy unlimited overloads; identical to passing an empty context.
  Result<QueryResult> RunRange(const RangeQuery& query) const {
    return RunRange(query, QueryContext{});
  }
  Result<QueryResult> RunConjunctive(const ConjunctiveQuery& query) const {
    return RunConjunctive(query, QueryContext{});
  }
};

}  // namespace mmdb

#endif  // MMDB_CORE_QUERY_PROCESSOR_H_
