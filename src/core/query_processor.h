#ifndef MMDB_CORE_QUERY_PROCESSOR_H_
#define MMDB_CORE_QUERY_PROCESSOR_H_

#include "core/query.h"
#include "util/result.h"

namespace mmdb {

/// The one interface every access path implements: instantiate, RBM, BWM,
/// indexed BWM, and the pooled parallel RBM scan are all
/// `QueryProcessor`s, and the facade dispatches to them through a
/// method→factory registry instead of a hand-rolled switch. New access
/// paths plug in by registering a factory (see
/// `MultimediaDatabase::RegisterQueryMethod`) without editing the facade.
///
/// Contract shared by every implementation:
///  - no false negatives versus the instantiate baseline;
///  - kRbm, kBwm, kBwmIndexed, and kParallelRbm return identical result
///    sets (the paper's equivalence argument, enforced by the tests);
///  - `Run*` methods are const and touch only in-memory read state, so
///    one processor is safe to use from the thread that built it while
///    other threads run their own processors. A single processor instance
///    is NOT shareable across threads (the bounds resolver's
///    cycle-detection scratch state is per-instance); build one per
///    thread, which is exactly what the facade and `QueryService` do.
class QueryProcessor {
 public:
  virtual ~QueryProcessor() = default;

  /// Answers one color range query.
  virtual Result<QueryResult> RunRange(const RangeQuery& query) const = 0;

  /// Answers a conjunction of range predicates.
  virtual Result<QueryResult> RunConjunctive(
      const ConjunctiveQuery& query) const = 0;
};

}  // namespace mmdb

#endif  // MMDB_CORE_QUERY_PROCESSOR_H_
