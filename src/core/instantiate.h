#ifndef MMDB_CORE_INSTANTIATE_H_
#define MMDB_CORE_INSTANTIATE_H_

#include "core/collection.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "image/editor.h"
#include "util/result.h"

namespace mmdb {

/// The naive baseline the paper argues against: answer queries over
/// edited images by materializing each one's pixels with the editor and
/// re-running feature extraction. Exact (no false positives either), but
/// pays the full instantiation cost the rule-based methods avoid.
///
/// The test suite uses this processor as ground truth: RBM/BWM must
/// return a superset of its edited-image matches (no false negatives)
/// and identical binary-image matches.
class InstantiationQueryProcessor : public QueryProcessor {
 public:
  /// `pixels` resolves any object id (binary images at minimum) to its
  /// raster; all referents must outlive the processor.
  InstantiationQueryProcessor(const AugmentedCollection* collection,
                              const ColorQuantizer* quantizer,
                              ImageResolver pixels);

  /// Runs `query`, instantiating every edited image.
  Result<QueryResult> RunRange(const RangeQuery& query) const override;

  /// Conjunctive variant (exact).
  Result<QueryResult> RunConjunctive(
      const ConjunctiveQuery& query) const override;

  /// Materializes one edited image (used by examples and by the facade's
  /// retrieval path).
  Result<Image> Materialize(const EditedImageInfo& info) const;

  /// Exact histogram of one edited image.
  Result<ColorHistogram> ExactHistogram(const EditedImageInfo& info) const;

 private:
  const AugmentedCollection* collection_;
  const ColorQuantizer* quantizer_;
  ImageResolver pixels_;
  Editor editor_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_INSTANTIATE_H_
