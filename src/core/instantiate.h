#ifndef MMDB_CORE_INSTANTIATE_H_
#define MMDB_CORE_INSTANTIATE_H_

#include <functional>
#include <utility>

#include "core/collection.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "image/editor.h"
#include "util/result.h"

namespace mmdb {

/// Engine-internal header (`mmdb_internal.h`): applications reach this
/// access path as `QueryMethod::kInstantiate` through `QueryService` or
/// the facade; constructing the processor directly is deprecated as
/// public API.
///
/// Callbacks letting a query processor consult and extend its owner's
/// quarantine set: images whose stored blobs failed checksum
/// verification. A quarantined image is silently excluded from answers
/// (counted in `QueryStats::corrupt_images_skipped`) instead of failing
/// the whole query. Both callbacks may be null (no quarantine).
struct QuarantineHooks {
  /// True iff `id` is already quarantined.
  std::function<bool(ObjectId)> contains;
  /// Records `id` as corrupt (called when instantiation hits Corruption).
  std::function<void(ObjectId)> add;
  /// Records one transient I/O failure for `id` against the owner's
  /// per-image circuit breaker. Returns true when the breaker has opened
  /// (the image is now quarantined and should be skipped); false keeps
  /// the failure fatal for this query. May be null (no breaker).
  std::function<bool(ObjectId)> record_io_failure;
};

/// The naive baseline the paper argues against: answer queries over
/// edited images by materializing each one's pixels with the editor and
/// re-running feature extraction. Exact (no false positives either), but
/// pays the full instantiation cost the rule-based methods avoid.
///
/// The test suite uses this processor as ground truth: RBM/BWM must
/// return a superset of its edited-image matches (no false negatives)
/// and identical binary-image matches.
///
/// Corruption tolerance: when materializing an edited image fails with
/// `Status::Corruption` (bit-flipped raster or edit-script blob), the
/// image is quarantined and skipped rather than failing the query.
class InstantiationQueryProcessor : public QueryProcessor {
 public:
  /// `pixels` resolves any object id (binary images at minimum) to its
  /// raster; all referents must outlive the processor.
  InstantiationQueryProcessor(const AugmentedCollection* collection,
                              const ColorQuantizer* quantizer,
                              ImageResolver pixels);

  /// Installs the owner's quarantine callbacks (default: none).
  void SetQuarantineHooks(QuarantineHooks hooks) {
    quarantine_ = std::move(hooks);
  }

  using QueryProcessor::RunConjunctive;
  using QueryProcessor::RunRange;

  /// Runs `query`, instantiating every edited image. Checks `ctx`'s
  /// limits per image (instantiation is the natural coarse boundary; the
  /// storage read path below adds per-page checks via `CancelScope`).
  Result<QueryResult> RunRange(const RangeQuery& query,
                               const QueryContext& ctx) const override;

  /// Conjunctive variant (exact).
  Result<QueryResult> RunConjunctive(const ConjunctiveQuery& query,
                                     const QueryContext& ctx) const override;

  /// Materializes one edited image (used by examples and by the facade's
  /// retrieval path).
  Result<Image> Materialize(const EditedImageInfo& info) const;

  /// Exact histogram of one edited image.
  Result<ColorHistogram> ExactHistogram(const EditedImageInfo& info) const;

 private:
  /// Exact histogram of edited image `id`, or `*skipped = true` when the
  /// image is (or becomes) quarantined for corruption or repeated I/O
  /// failure. Interrupt statuses (deadline/cancel) always propagate —
  /// they must never quarantine an image or trip the breaker.
  Status HistogramOrQuarantine(ObjectId id, const EditedImageInfo& info,
                               ColorHistogram* hist, bool* skipped) const;

  const AugmentedCollection* collection_;
  const ColorQuantizer* quantizer_;
  ImageResolver pixels_;
  Editor editor_;
  QuarantineHooks quarantine_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_INSTANTIATE_H_
