#include "core/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace mmdb {

std::vector<double> ColorHistogram::Normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ > 0) {
    for (size_t i = 0; i < counts_.size(); ++i) {
      out[i] = static_cast<double>(counts_[i]) / total_;
    }
  }
  return out;
}

std::string ColorHistogram::ToString() const {
  std::ostringstream os;
  os << "Histogram(total=" << total_ << ", nonzero={";
  bool first = true;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << i << ":" << counts_[i];
  }
  os << "})";
  return os.str();
}

ColorHistogram ExtractHistogram(const Image& image,
                                const ColorQuantizer& quantizer) {
  ColorHistogram hist(quantizer.BinCount());
  for (const Rgb& p : image.pixels()) {
    hist.Add(quantizer.BinOf(p), 1);
  }
  return hist;
}

double HistogramIntersection(const ColorHistogram& x,
                             const ColorHistogram& y) {
  assert(x.BinCount() == y.BinCount());
  const std::vector<double> nx = x.Normalized();
  const std::vector<double> ny = y.Normalized();
  double sum = 0.0;
  for (size_t i = 0; i < nx.size(); ++i) sum += std::min(nx[i], ny[i]);
  return sum;
}

double LpDistance(const ColorHistogram& x, const ColorHistogram& y, double p) {
  assert(x.BinCount() == y.BinCount());
  assert(p >= 1.0);
  const std::vector<double> nx = x.Normalized();
  const std::vector<double> ny = y.Normalized();
  double sum = 0.0;
  for (size_t i = 0; i < nx.size(); ++i) {
    sum += std::pow(std::fabs(nx[i] - ny[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

double L1Distance(const ColorHistogram& x, const ColorHistogram& y) {
  assert(x.BinCount() == y.BinCount());
  const std::vector<double> nx = x.Normalized();
  const std::vector<double> ny = y.Normalized();
  double sum = 0.0;
  for (size_t i = 0; i < nx.size(); ++i) sum += std::fabs(nx[i] - ny[i]);
  return sum;
}

double L2Distance(const ColorHistogram& x, const ColorHistogram& y) {
  return LpDistance(x, y, 2.0);
}

}  // namespace mmdb
