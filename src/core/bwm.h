#ifndef MMDB_CORE_BWM_H_
#define MMDB_CORE_BWM_H_

#include <map>
#include <vector>

#include "core/collection.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "core/rules.h"
#include "util/result.h"

namespace mmdb {

/// Engine-internal header (`mmdb_internal.h`): applications reach this
/// access path as `QueryMethod::kBwm` through `QueryService` or the
/// facade; constructing the processor directly is deprecated as public
/// API.
///
/// The paper's proposed data structure (Section 4.1): a Main Component of
/// `<B_id, E_list>` clusters holding the edited images whose operations
/// all have bound-widening rules, keyed by referenced base image, plus an
/// Unclassified Component for the rest.
///
/// Built incrementally via `InsertBinary` / `InsertEdited` (the paper's
/// Figure 1 insertion algorithm) as images enter the database.
class BwmIndex {
 public:
  /// Registers a newly inserted binary image, creating its (empty) Main
  /// cluster. Id lists are kept sorted per the paper.
  void InsertBinary(ObjectId id);

  /// Classifies a newly inserted edited image (Figure 1): appends it to
  /// its base's Main cluster when every operation's rule is
  /// bound-widening, to the Unclassified Component otherwise.
  void InsertEdited(const EditedImageInfo& info);

  /// Removes an edited image from whichever component holds it; no-op if
  /// absent. `base_id` must be the image's referenced base.
  void RemoveEdited(ObjectId id, ObjectId base_id);

  /// Removes a binary image's (empty) Main cluster; no-op if the cluster
  /// still has members or is absent.
  void RemoveBinary(ObjectId id);

  /// One Main Component cluster.
  struct Cluster {
    ObjectId base_id = kInvalidObjectId;
    std::vector<ObjectId> edited_ids;
  };

  /// Main Component clusters in base-id order (copies; use `main_map`
  /// for zero-copy iteration in hot paths).
  std::vector<Cluster> MainClusters() const;

  /// The Main Component keyed by base image id.
  const std::map<ObjectId, std::vector<ObjectId>>& main_map() const {
    return main_;
  }

  /// Edited images in the Unclassified Component, in insertion order.
  const std::vector<ObjectId>& Unclassified() const { return unclassified_; }

  /// Total edited images held in Main clusters.
  size_t MainEditedCount() const { return main_edited_count_; }

 private:
  std::map<ObjectId, std::vector<ObjectId>> main_;
  std::vector<ObjectId> unclassified_;
  size_t main_edited_count_ = 0;
};

/// The Bound-Widening Method (paper Section 4.2, Figure 2): processes a
/// range query using `BwmIndex`. When a cluster's base image satisfies
/// the query, every edited image in the cluster is accepted without
/// applying a single rule (their ranges start at the base's satisfying
/// value and can only widen); otherwise, and for every unclassified
/// image, it falls back to the RBM bounds computation.
///
/// Produces exactly the same result set as `RbmQueryProcessor`.
class BwmQueryProcessor : public QueryProcessor {
 public:
  /// All referents must outlive the processor.
  BwmQueryProcessor(const AugmentedCollection* collection,
                    const BwmIndex* index, const RuleEngine* engine);

  using QueryProcessor::RunConjunctive;
  using QueryProcessor::RunRange;

  /// Runs `query` ("with data structure"). Checks `ctx`'s limits per
  /// cluster (one check covers a wholesale accept) and per bounded image.
  Result<QueryResult> RunRange(const RangeQuery& query,
                               const QueryContext& ctx) const override;

  /// Conjunctive variant: a Main cluster is accepted wholesale when its
  /// base satisfies *every* conjunct (the widening argument applies
  /// per bin, so each member's per-conjunct range contains the base's
  /// satisfying value). Identical result sets to
  /// `RbmQueryProcessor::RunConjunctive`.
  Result<QueryResult> RunConjunctive(const ConjunctiveQuery& query,
                                     const QueryContext& ctx) const override;

 private:
  const AugmentedCollection* collection_;
  const BwmIndex* index_;
  const RuleEngine* engine_;
  TargetBoundsResolver resolver_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_BWM_H_
