#include "core/admission.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace mmdb {

namespace {

obs::Counter* AdmittedCounter() {
  static obs::Counter* counter = obs::Registry::Default().GetCounter(
      "mmdb_admission_admitted_total", "Queries admitted past the gate");
  return counter;
}

obs::Counter* RejectedCounter(std::string_view reason) {
  // The three rejection reasons are the only label values; resolve each
  // once.
  static obs::Counter* queue_full = obs::Registry::Default().GetCounter(
      "mmdb_admission_rejected_total",
      "Queries rejected by the admission gate", {{"reason", "queue-full"}});
  static obs::Counter* timeout = obs::Registry::Default().GetCounter(
      "mmdb_admission_rejected_total",
      "Queries rejected by the admission gate", {{"reason", "timeout"}});
  static obs::Counter* shed = obs::Registry::Default().GetCounter(
      "mmdb_admission_rejected_total",
      "Queries rejected by the admission gate", {{"reason", "shed"}});
  if (reason == "queue-full") return queue_full;
  if (reason == "timeout") return timeout;
  return shed;
}

obs::Counter* ShedCounter() {
  static obs::Counter* counter = obs::Registry::Default().GetCounter(
      "mmdb_admission_shed_total",
      "Queued queries evicted by newer arrivals (shed-oldest policy)");
  return counter;
}

obs::Gauge* InFlightGauge() {
  static obs::Gauge* gauge = obs::Registry::Default().GetGauge(
      "mmdb_admission_in_flight", "Queries currently holding an admission slot");
  return gauge;
}

}  // namespace

std::string_view AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kBlock:
      return "block";
    case AdmissionPolicy::kShedOldest:
      return "shed-oldest";
    case AdmissionPolicy::kRejectNew:
      return "reject-new";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

AdmissionController::~AdmissionController() = default;

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const Deadline& deadline) {
  if (options_.max_in_flight <= 0) return Ticket(nullptr);

  std::unique_lock<std::mutex> lock(mu_);
  if (in_flight_ < options_.max_in_flight && waiters_.empty()) {
    ++in_flight_;
    InFlightGauge()->Set(static_cast<double>(in_flight_));
    AdmittedCounter()->Increment();
    return Ticket(this);
  }

  if (options_.policy == AdmissionPolicy::kRejectNew) {
    RejectedCounter("queue-full")->Increment();
    return Status::ResourceExhausted(
        "admission: all query slots busy (reject-new policy)");
  }

  if (static_cast<int>(waiters_.size()) >= std::max(0, options_.max_queued)) {
    if (options_.policy == AdmissionPolicy::kBlock) {
      RejectedCounter("queue-full")->Increment();
      return Status::ResourceExhausted(
          "admission: waiter queue full (block policy)");
    }
    // kShedOldest: evict the oldest waiter so this arrival can queue. The
    // shed waiter wakes immediately with a typed rejection.
    Waiter* oldest = waiters_.front();
    waiters_.pop_front();
    oldest->shed = true;
    ShedCounter()->Increment();
    slot_freed_.notify_all();
  }

  Waiter self;
  waiters_.push_back(&self);
  Deadline wait_limit = Deadline::Earliest(
      deadline, Deadline::After(options_.block_timeout_seconds));
  bool timed_out = !slot_freed_.wait_until(
      lock, wait_limit.time_point(),
      [&self] { return self.admitted || self.shed; });

  if (self.admitted) {
    // The releaser already transferred its slot to us (in_flight_ was
    // never decremented on its side).
    InFlightGauge()->Set(static_cast<double>(in_flight_));
    AdmittedCounter()->Increment();
    return Ticket(this);
  }
  if (!self.shed) {
    // Still queued: remove ourselves before reporting the timeout.
    auto it = std::find(waiters_.begin(), waiters_.end(), &self);
    if (it != waiters_.end()) waiters_.erase(it);
  }
  if (self.shed) {
    RejectedCounter("shed")->Increment();
    return Status::ResourceExhausted(
        "admission: shed by a newer arrival (shed-oldest policy)");
  }
  if (timed_out && deadline.Expired()) {
    RejectedCounter("timeout")->Increment();
    return Status::DeadlineExceeded(
        "admission: deadline expired while waiting for a query slot");
  }
  RejectedCounter("timeout")->Increment();
  return Status::ResourceExhausted(
      "admission: timed out waiting for a query slot");
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  // Hand the slot to the oldest live waiter instead of freeing it, so no
  // newcomer can barge past the queue between release and wake-up.
  while (!waiters_.empty()) {
    Waiter* next = waiters_.front();
    waiters_.pop_front();
    if (next->shed) continue;
    next->admitted = true;
    slot_freed_.notify_all();
    return;
  }
  --in_flight_;
  InFlightGauge()->Set(static_cast<double>(in_flight_));
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(waiters_.size());
}

}  // namespace mmdb
