#include "core/collection.h"

#include <algorithm>
#include <memory>
#include <set>

#include "core/bounds.h"

namespace mmdb {

Status AugmentedCollection::AddBinary(BinaryImageInfo info) {
  if (info.id == kInvalidObjectId) {
    return Status::InvalidArgument("binary image id must be non-zero");
  }
  if (binaries_.count(info.id) || editeds_.count(info.id)) {
    return Status::AlreadyExists("object id " + std::to_string(info.id));
  }
  binary_order_.push_back(info.id);
  binaries_.emplace(info.id, std::move(info));
  return Status::OK();
}

Status AugmentedCollection::AddEdited(EditedImageInfo info) {
  if (info.id == kInvalidObjectId) {
    return Status::InvalidArgument("edited image id must be non-zero");
  }
  if (binaries_.count(info.id) || editeds_.count(info.id)) {
    return Status::AlreadyExists("object id " + std::to_string(info.id));
  }
  if (!binaries_.count(info.script.base_id)) {
    return Status::NotFound("referenced base image " +
                            std::to_string(info.script.base_id) +
                            " is not a stored binary image");
  }
  base_to_edited_[info.script.base_id].push_back(info.id);
  edited_order_.push_back(info.id);
  editeds_.emplace(info.id, std::move(info));
  return Status::OK();
}

namespace {
void EraseId(std::vector<ObjectId>& ids, ObjectId id) {
  ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
}
}  // namespace

Status AugmentedCollection::RemoveEdited(ObjectId id) {
  const auto it = editeds_.find(id);
  if (it == editeds_.end()) {
    return Status::NotFound("edited image " + std::to_string(id));
  }
  const auto connection = base_to_edited_.find(it->second.script.base_id);
  if (connection != base_to_edited_.end()) {
    EraseId(connection->second, id);
    if (connection->second.empty()) base_to_edited_.erase(connection);
  }
  EraseId(edited_order_, id);
  editeds_.erase(it);
  return Status::OK();
}

Status AugmentedCollection::RemoveBinary(ObjectId id) {
  const auto it = binaries_.find(id);
  if (it == binaries_.end()) {
    return Status::NotFound("binary image " + std::to_string(id));
  }
  if (const auto connection = base_to_edited_.find(id);
      connection != base_to_edited_.end() && !connection->second.empty()) {
    return Status::InvalidArgument(
        "binary image " + std::to_string(id) + " is still the base of " +
        std::to_string(connection->second.size()) + " edited image(s)");
  }
  EraseId(binary_order_, id);
  binaries_.erase(it);
  return Status::OK();
}

const BinaryImageInfo* AugmentedCollection::FindBinary(ObjectId id) const {
  const auto it = binaries_.find(id);
  return it == binaries_.end() ? nullptr : &it->second;
}

const EditedImageInfo* AugmentedCollection::FindEdited(ObjectId id) const {
  const auto it = editeds_.find(id);
  return it == editeds_.end() ? nullptr : &it->second;
}

const std::vector<ObjectId>& AugmentedCollection::EditedOf(
    ObjectId base_id) const {
  static const std::vector<ObjectId> kEmpty;
  const auto it = base_to_edited_.find(base_id);
  return it == base_to_edited_.end() ? kEmpty : it->second;
}

TargetBoundsResolver AugmentedCollection::MakeTargetResolver(
    const RuleEngine& engine) const {
  // The lambda owns a shared in-flight set for cycle detection so that an
  // edited image whose Merge target (transitively) references itself is
  // rejected rather than looping.
  auto in_flight = std::make_shared<std::set<ObjectId>>();
  // Self-referential: the resolver passed to ComputeRuleState for edited
  // targets is this resolver itself.
  auto self = std::make_shared<TargetBoundsResolver>();
  *self = [this, &engine, in_flight, self](
              ObjectId id, BinIndex hb) -> Result<TargetBounds> {
    if (const BinaryImageInfo* binary = FindBinary(id)) {
      TargetBounds out;
      out.hb_min = out.hb_max = binary->histogram.Count(hb);
      out.size = binary->histogram.Total();
      out.width = binary->width;
      out.height = binary->height;
      return out;
    }
    const EditedImageInfo* edited = FindEdited(id);
    if (edited == nullptr) {
      return Status::NotFound("merge target " + std::to_string(id));
    }
    if (!in_flight->insert(id).second) {
      return Status::InvalidArgument("merge target cycle through object " +
                                     std::to_string(id));
    }
    const BinaryImageInfo* base = FindBinary(edited->script.base_id);
    if (base == nullptr) {
      in_flight->erase(id);
      return Status::NotFound("base image of merge target " +
                              std::to_string(id));
    }
    Result<RuleState> state = ComputeRuleState(
        engine, edited->script, hb, base->histogram.Count(hb), base->width,
        base->height, *self);
    in_flight->erase(id);
    if (!state.ok()) return state.status();
    TargetBounds out;
    out.hb_min = state->hb_min;
    out.hb_max = state->hb_max;
    out.size = state->size;
    out.width = state->width;
    out.height = state->height;
    return out;
  };
  return *self;
}

}  // namespace mmdb
