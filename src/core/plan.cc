#include "core/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <utility>

#include "core/bounds.h"
#include "core/collection.h"
#include "core/query_service.h"
#include "core/similarity.h"

namespace mmdb {

namespace {

/// Fixed-precision helpers for the Explain rendering.
std::string Fixed(double value, int digits = 1) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

int BucketOf(double fraction) {
  const int bucket = static_cast<int>(fraction * CorpusStats::kBuckets);
  return std::clamp(bucket, 0, CorpusStats::kBuckets - 1);
}

/// Driver candidates, cheapest-first on ties (strict `<` keeps the
/// earlier entry). kInstantiate is deliberately absent: its edited-image
/// answers are exact rather than bounded, so choosing it would change
/// the planned result set.
constexpr QueryMethod kDriverCandidates[] = {
    QueryMethod::kRbm, QueryMethod::kBwm, QueryMethod::kBwmIndexed};

}  // namespace

CorpusStats CorpusStats::Collect(const MultimediaDatabase& db,
                                 size_t sample_limit) {
  CorpusStats stats;
  const AugmentedCollection& collection = db.collection();
  const int32_t bins = db.quantizer().BinCount();
  stats.binary_buckets_.assign(static_cast<size_t>(bins), Buckets{});
  stats.sampled_buckets_.assign(static_cast<size_t>(bins), Buckets{});
  stats.binary_count_ = static_cast<int64_t>(collection.BinaryCount());
  stats.edited_count_ = static_cast<int64_t>(collection.EditedCount());

  for (ObjectId id : collection.binary_ids()) {
    const BinaryImageInfo* info = collection.FindBinary(id);
    for (BinIndex bin = 0; bin < bins; ++bin) {
      ++stats.binary_buckets_[static_cast<size_t>(bin)]
                             [BucketOf(info->histogram.Fraction(bin))];
    }
  }

  int64_t total_ops = 0;
  for (ObjectId id : collection.edited_ids()) {
    const EditedImageInfo* info = collection.FindEdited(id);
    total_ops += static_cast<int64_t>(info->script.ops.size());
    if (stats.sampled_edited_ >= static_cast<int64_t>(sample_limit)) continue;
    // The base histogram stands in for the edited image's fractions; an
    // exact figure would cost a full rule fold per sampled image.
    const BinaryImageInfo* base = collection.FindBinary(info->script.base_id);
    if (base == nullptr) continue;
    ++stats.sampled_edited_;
    for (BinIndex bin = 0; bin < bins; ++bin) {
      ++stats.sampled_buckets_[static_cast<size_t>(bin)]
                              [BucketOf(base->histogram.Fraction(bin))];
    }
  }

  if (stats.edited_count_ > 0) {
    stats.avg_ops_ = static_cast<double>(total_ops) /
                     static_cast<double>(stats.edited_count_);
    stats.main_fraction_ = static_cast<double>(db.bwm_index().MainEditedCount()) /
                           static_cast<double>(stats.edited_count_);
  }
  return stats;
}

double CorpusStats::BucketMass(const Buckets& buckets, int64_t total,
                               double lo, double hi) {
  if (total <= 0) return 1.0;
  // A point query still has mass: widen it to one representable sliver so
  // equality predicates estimate as narrow, not impossible.
  hi = std::max(hi, lo + 1e-6);
  constexpr double kWidth = 1.0 / kBuckets;
  double mass = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double bucket_lo = b * kWidth;
    const double bucket_hi = bucket_lo + kWidth;
    const double overlap =
        std::min(hi, bucket_hi) - std::max(lo, bucket_lo);
    if (overlap <= 0.0) continue;
    mass += static_cast<double>(buckets[static_cast<size_t>(b)]) *
            std::min(1.0, overlap / kWidth);
  }
  return mass / static_cast<double>(total);
}

double CorpusStats::Selectivity(const RangeQuery& query,
                                SelectivitySource* source) const {
  if (source != nullptr) {
    *source = binary_count_ > 0 ? SelectivitySource::kIndex
                                : SelectivitySource::kSampled;
  }
  if (query.bin < 0 || query.bin >= bin_count()) return 1.0;
  const size_t bin = static_cast<size_t>(query.bin);
  const double lo = query.min_fraction;
  const double hi = query.max_fraction;
  const double sel_binary = BucketMass(binary_buckets_[bin], binary_count_,
                                       lo, hi);
  const double sel_edited =
      sampled_edited_ > 0
          ? BucketMass(sampled_buckets_[bin], sampled_edited_, lo, hi)
          : sel_binary;
  const double population =
      static_cast<double>(binary_count_ + edited_count_);
  if (population <= 0.0) return 1.0;
  return (sel_binary * static_cast<double>(binary_count_) +
          sel_edited * static_cast<double>(edited_count_)) /
         population;
}

QueryPlanner::QueryPlanner(CorpusStats stats, CostModel model)
    : stats_(std::move(stats)), model_(model) {}

QueryPlanner::QueryPlanner(const MultimediaDatabase& db, CostModel model)
    : QueryPlanner(*db.PlannerStats(), model) {}

double QueryPlanner::MethodCost(QueryMethod method, double selectivity) const {
  const double binary = static_cast<double>(stats_.binary_count());
  const double edited = static_cast<double>(stats_.edited_count());
  const double avg_ops = stats_.avg_ops();
  const double main = stats_.main_fraction();
  const double edited_rbm = edited * avg_ops * model_.rule_cost;
  const double edited_bwm =
      edited * (main * model_.cluster_skip +
                (1.0 - main) * avg_ops * model_.rule_cost);
  switch (method) {
    case QueryMethod::kInstantiate:
      return binary * model_.histogram_probe +
             edited * model_.instantiate_factor;
    case QueryMethod::kRbm:
    case QueryMethod::kParallelRbm:
      return binary * model_.histogram_probe + edited_rbm;
    case QueryMethod::kBwm:
      return binary * model_.histogram_probe + edited_bwm;
    case QueryMethod::kBwmIndexed:
      // R-tree descent plus per-result node visits; the linear histogram
      // scan wins this back once the predicate stops being selective —
      // the conventional-vs-indexed crossover of Fig 3/4.
      return model_.index_node *
                 (std::log2(binary + 2.0) + selectivity * binary) +
             selectivity * binary * model_.histogram_probe + edited_bwm;
    case QueryMethod::kPlanned:
      break;
  }
  // kPlanned (or anything unknown) costs what its best candidate costs.
  double best = MethodCost(kDriverCandidates[0], selectivity);
  for (QueryMethod candidate : kDriverCandidates) {
    best = std::min(best, MethodCost(candidate, selectivity));
  }
  return best;
}

QueryPlan QueryPlanner::PlanConjunctive(const ConjunctiveQuery& query) const {
  QueryPlan plan;
  plan.binary_count = stats_.binary_count();
  plan.edited_count = stats_.edited_count();
  plan.avg_ops = stats_.avg_ops();
  plan.main_fraction = stats_.main_fraction();

  plan.steps.reserve(query.conjuncts.size());
  for (const RangeQuery& conjunct : query.conjuncts) {
    PlannedPredicate step;
    step.predicate = conjunct;
    step.selectivity = stats_.Selectivity(conjunct, &step.source);
    plan.steps.push_back(step);
  }
  // Most-selective-first; stable so equal estimates keep query order.
  std::stable_sort(plan.steps.begin(), plan.steps.end(),
                   [](const PlannedPredicate& a, const PlannedPredicate& b) {
                     return a.selectivity < b.selectivity;
                   });
  if (plan.steps.empty()) return plan;

  PlannedPredicate& driver = plan.steps.front();
  driver.method = kDriverCandidates[0];
  driver.estimated_cost = MethodCost(driver.method, driver.selectivity);
  for (QueryMethod candidate : kDriverCandidates) {
    const double cost = MethodCost(candidate, driver.selectivity);
    if (cost < driver.estimated_cost) {
      driver.method = candidate;
      driver.estimated_cost = cost;
    }
  }

  const double population =
      static_cast<double>(plan.binary_count + plan.edited_count);
  plan.estimated_driver_results = driver.selectivity * population;
  double survivors = plan.estimated_driver_results;
  const double binary_share =
      population > 0.0
          ? static_cast<double>(plan.binary_count) / population
          : 0.0;
  for (size_t i = 1; i < plan.steps.size(); ++i) {
    PlannedPredicate& step = plan.steps[i];
    step.method = driver.method;  // Residuals ride the driver's scan.
    const double surviving_binary = survivors * binary_share;
    const double surviving_edited = survivors * (1.0 - binary_share);
    step.estimated_cost = surviving_binary * model_.residual_filter +
                          surviving_edited * plan.avg_ops * model_.rule_cost;
    survivors *= step.selectivity;
  }
  return plan;
}

QueryPlan QueryPlanner::PlanRange(const RangeQuery& query) const {
  ConjunctiveQuery conjunctive;
  conjunctive.conjuncts.push_back(query);
  return PlanConjunctive(conjunctive);
}

std::string QueryPlan::Explain() const {
  std::string out = "query plan (" + std::to_string(steps.size()) +
                    (steps.size() == 1 ? " predicate" : " predicates") +
                    " over " + std::to_string(binary_count) + " binary + " +
                    std::to_string(edited_count) + " edited images, avg " +
                    Fixed(avg_ops) + " ops/script, " +
                    Fixed(main_fraction * 100.0) + "% Main)\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    const PlannedPredicate& step = steps[i];
    out += "  step " + std::to_string(i + 1) + ": " +
           (i == 0 ? "scan   " : "filter ") + step.predicate.ToString() +
           "\n";
    out += "          selectivity " + Fixed(step.selectivity, 4) + " (" +
           SelectivitySourceName(step.source) + ")";
    if (i == 0) {
      out += " · method " + std::string(QueryMethodName(step.method));
    }
    out += " · est. cost " + Fixed(step.estimated_cost) + "\n";
  }
  out += "  estimated driver survivors: " +
         Fixed(estimated_driver_results) + " of " +
         std::to_string(binary_count + edited_count) + "\n";
  return out;
}

PlannedQueryProcessor::PlannedQueryProcessor(const MultimediaDatabase* db)
    : db_(db), planner_(*db) {}

Result<QueryResult> PlannedQueryProcessor::RunRange(
    const RangeQuery& query, const QueryContext& ctx) const {
  const QueryPlan plan = planner_.PlanRange(query);
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<QueryProcessor> processor,
                        db_->MakeProcessor(plan.driver().method));
  return processor->RunRange(query, ctx);
}

Result<QueryResult> PlannedQueryProcessor::RunConjunctive(
    const ConjunctiveQuery& query, const QueryContext& ctx) const {
  if (query.conjuncts.empty()) {
    return Status::InvalidArgument("conjunctive query has no conjuncts");
  }
  const QueryPlan plan = planner_.PlanConjunctive(query);
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<QueryProcessor> processor,
                        db_->MakeProcessor(plan.driver().method));
  MMDB_ASSIGN_OR_RETURN(
      QueryResult driven,
      processor->RunRange(plan.driver().predicate, ctx));
  if (plan.steps.size() == 1) return driven;

  // Residual filter over the driver's survivors: exact fractions for
  // binary images, one rule-fold bound per residual conjunct for edited
  // ones — the same per-image logic the RBM conjunctive scan applies, so
  // the planned result set equals the unplanned one.
  CancelCheck check(ctx);
  const AugmentedCollection& collection = db_->collection();
  const RuleEngine& engine = db_->rule_engine();
  const TargetBoundsResolver resolver = collection.MakeTargetResolver(engine);
  QueryResult out;
  out.stats = driven.stats;
  for (ObjectId id : driven.ids) {
    MMDB_RETURN_IF_ERROR(AnnotateInterrupt(ctx, out, check.Check()));
    if (const BinaryImageInfo* binary = collection.FindBinary(id)) {
      ++out.stats.binary_images_checked;
      bool keep = true;
      for (size_t i = 1; i < plan.steps.size() && keep; ++i) {
        const RangeQuery& predicate = plan.steps[i].predicate;
        keep = predicate.Satisfies(binary->histogram.Fraction(predicate.bin));
      }
      if (keep) out.ids.push_back(id);
      continue;
    }
    const EditedImageInfo* edited = collection.FindEdited(id);
    if (edited == nullptr) continue;  // Deleted between scan and filter.
    const BinaryImageInfo* base = collection.FindBinary(edited->script.base_id);
    if (base == nullptr) {
      return Status::Corruption("edited image " + std::to_string(id) +
                                " references missing base");
    }
    ++out.stats.edited_images_bounded;
    bool keep = true;
    for (size_t i = 1; i < plan.steps.size() && keep; ++i) {
      const RangeQuery& predicate = plan.steps[i].predicate;
      Result<FractionBounds> bounds = ComputeBounds(
          engine, edited->script, predicate.bin,
          base->histogram.Count(predicate.bin), base->width, base->height,
          resolver, check.enabled_or_null());
      if (!bounds.ok()) {
        return AnnotateInterrupt(ctx, out, bounds.status());
      }
      out.stats.rules_applied +=
          static_cast<int64_t>(edited->script.ops.size());
      keep = bounds->Overlaps(predicate.min_fraction, predicate.max_fraction);
    }
    if (keep) out.ids.push_back(id);
  }
  return out;
}

Result<std::string> ExplainQuery(const MultimediaDatabase& db,
                                 const QueryRequest& request) {
  if (const SimilarityQuery* similarity = request.similarity()) {
    if (similarity->k == 0) {
      return Status::InvalidArgument("similarity query k must be > 0");
    }
    if (similarity->histogram.BinCount() != db.quantizer().BinCount()) {
      return Status::InvalidArgument("similarity query histogram arity "
                                     "does not match the database");
    }
    const std::shared_ptr<const CorpusStats> stats_snapshot =
        db.PlannerStats();
    const CorpusStats& stats = *stats_snapshot;
    std::string out = "similarity scan (" + similarity->ToString() + ")\n";
    out += "  " + std::to_string(stats.binary_count()) +
           " binary images: exact L1 histogram distances\n";
    out += "  " + std::to_string(stats.edited_count()) +
           " edited images: provable [lo, hi] distance intervals (" +
           std::to_string(db.quantizer().BinCount()) +
           " rule folds each, avg " + Fixed(stats.avg_ops()) +
           " ops)\n";
    out += "  cutoff: k-th smallest guaranteed distance (k=" +
           std::to_string(similarity->k) + "); no false negatives\n";
    return out;
  }

  ConjunctiveQuery conjunctive;
  if (const RangeQuery* range = request.range()) {
    conjunctive.conjuncts.push_back(*range);
  } else {
    conjunctive = *request.conjunctive();
  }
  if (conjunctive.conjuncts.empty()) {
    return Status::InvalidArgument("conjunctive query has no conjuncts");
  }
  for (const RangeQuery& conjunct : conjunctive.conjuncts) {
    if (conjunct.bin < 0 || conjunct.bin >= db.quantizer().BinCount()) {
      return Status::InvalidArgument("conjunct bin out of range");
    }
    if (conjunct.min_fraction > conjunct.max_fraction) {
      return Status::InvalidArgument("conjunct range is empty");
    }
  }
  const QueryPlanner planner(db);
  std::string out = planner.PlanConjunctive(conjunctive).Explain();
  if (request.method != QueryMethod::kPlanned) {
    out += "  note: request method is '" +
           std::string(QueryMethodName(request.method)) +
           "'; the plan above runs under method 'planned'\n";
  }
  return out;
}

}  // namespace mmdb
