#ifndef MMDB_CORE_RBM_H_
#define MMDB_CORE_RBM_H_

#include "core/collection.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "core/rules.h"
#include "util/result.h"

namespace mmdb {

/// Engine-internal header (`mmdb_internal.h`): applications reach this
/// access path as `QueryMethod::kRbm` through `QueryService` or the
/// facade; constructing the processor directly is deprecated as public
/// API.
///
/// The Rule-Based Method (paper Section 3): answers a color range query
/// over an augmented database by checking every binary image's stored
/// histogram and, for every edited image, folding the Table 1 rules over
/// *all* of its editing operations to bound the queried bin.
///
/// Guarantee: no false negatives — an edited image is excluded only when
/// its computed fraction range provably cannot overlap the query range.
/// False positives are possible (the bounds are conservative), which the
/// paper accepts as the right trade-off for retrieval.
class RbmQueryProcessor : public QueryProcessor {
 public:
  /// Both referents must outlive the processor.
  RbmQueryProcessor(const AugmentedCollection* collection,
                    const RuleEngine* engine);

  using QueryProcessor::RunConjunctive;
  using QueryProcessor::RunRange;

  /// Runs `query` over the whole collection ("w/out data structure").
  /// Checks `ctx`'s limits per image and per rule-walk operation.
  Result<QueryResult> RunRange(const RangeQuery& query,
                               const QueryContext& ctx) const override;

  /// Runs a conjunctive query: an edited image stays a candidate only if
  /// its bounds overlap the range of *every* conjunct (one BOUNDS fold
  /// per conjunct). Same no-false-negative guarantee as `RunRange`.
  Result<QueryResult> RunConjunctive(const ConjunctiveQuery& query,
                                     const QueryContext& ctx) const override;

 private:
  const AugmentedCollection* collection_;
  const RuleEngine* engine_;
  TargetBoundsResolver resolver_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_RBM_H_
