#include "core/database.h"

#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <thread>

#include "core/executor.h"
#include "core/parallel.h"
#include "core/plan.h"
#include "core/query_metrics.h"
#include "core/similarity.h"
#include "editops/serialize.h"
#include "index/indexed_bwm.h"
#include "image/ppm_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mmdb {

std::string_view QueryMethodName(QueryMethod method) {
  switch (method) {
    case QueryMethod::kInstantiate:
      return "instantiate";
    case QueryMethod::kRbm:
      return "rbm";
    case QueryMethod::kBwm:
      return "bwm";
    case QueryMethod::kBwmIndexed:
      return "bwm-indexed";
    case QueryMethod::kParallelRbm:
      return "parallel-rbm";
    case QueryMethod::kPlanned:
      return "planned";
  }
  return "unknown";
}

namespace {

/// The process-wide method→factory registry behind `MakeProcessor`.
/// Reads (every query) take the shared lock; registration is rare.
struct ProcessorRegistry {
  std::shared_mutex mu;
  std::map<QueryMethod, MultimediaDatabase::QueryProcessorFactory> factories;

  static ProcessorRegistry& Instance() {
    static ProcessorRegistry* registry = [] {
      auto* r = new ProcessorRegistry();
      r->factories[QueryMethod::kInstantiate] =
          [](const MultimediaDatabase& db) -> std::unique_ptr<QueryProcessor> {
        auto processor = std::make_unique<InstantiationQueryProcessor>(
            &db.collection(), &db.quantizer(), db.MakePixelResolver());
        // A corrupt blob quarantines the image instead of failing the query.
        processor->SetQuarantineHooks(db.MakeQuarantineHooks());
        return processor;
      };
      r->factories[QueryMethod::kRbm] =
          [](const MultimediaDatabase& db) -> std::unique_ptr<QueryProcessor> {
        return std::make_unique<RbmQueryProcessor>(&db.collection(),
                                                   &db.rule_engine());
      };
      r->factories[QueryMethod::kBwm] =
          [](const MultimediaDatabase& db) -> std::unique_ptr<QueryProcessor> {
        return std::make_unique<BwmQueryProcessor>(
            &db.collection(), &db.bwm_index(), &db.rule_engine());
      };
      r->factories[QueryMethod::kBwmIndexed] =
          [](const MultimediaDatabase& db) -> std::unique_ptr<QueryProcessor> {
        return std::make_unique<IndexedBwmQueryProcessor>(
            &db.collection(), &db.bwm_index(), &db.rule_engine(),
            &db.histogram_index());
      };
      r->factories[QueryMethod::kParallelRbm] =
          [](const MultimediaDatabase& db) -> std::unique_ptr<QueryProcessor> {
        return std::make_unique<ParallelRbmQueryProcessor>(
            &db.collection(), &db.rule_engine(), db.shared_executor());
      };
      r->factories[QueryMethod::kPlanned] =
          [](const MultimediaDatabase& db) -> std::unique_ptr<QueryProcessor> {
        return std::make_unique<PlannedQueryProcessor>(&db);
      };
      return r;
    }();
    return *registry;
  }
};

/// One facade-level span site per access path (`query.bwm`, `query.rbm`,
/// ...). QueryMethod is closed, so the table is built once.
obs::SpanCategory* QuerySpanFor(QueryMethod method) {
  static const std::map<QueryMethod, obs::SpanCategory*>* const table = [] {
    auto* out = new std::map<QueryMethod, obs::SpanCategory*>();
    for (QueryMethod m :
         {QueryMethod::kInstantiate, QueryMethod::kRbm, QueryMethod::kBwm,
          QueryMethod::kBwmIndexed, QueryMethod::kParallelRbm,
          QueryMethod::kPlanned}) {
      (*out)[m] = obs::Tracer::Default().Intern(
          "query." + std::string(QueryMethodName(m)));
    }
    return out;
  }();
  auto it = table->find(method);
  return it != table->end() ? it->second : nullptr;
}

}  // namespace

Result<std::unique_ptr<QueryProcessor>> MultimediaDatabase::MakeProcessor(
    QueryMethod method) const {
  QueryProcessorFactory factory;
  {
    ProcessorRegistry& registry = ProcessorRegistry::Instance();
    std::shared_lock<std::shared_mutex> lock(registry.mu);
    auto it = registry.factories.find(method);
    if (it == registry.factories.end()) {
      return Status::InvalidArgument(
          "no query processor registered for method " +
          std::to_string(static_cast<int>(method)));
    }
    factory = it->second;
  }
  std::unique_ptr<QueryProcessor> processor = factory(*this);
  if (processor == nullptr) {
    return Status::Internal("query processor factory returned null");
  }
  return processor;
}

void MultimediaDatabase::RegisterQueryMethod(QueryMethod method,
                                             QueryProcessorFactory factory) {
  ProcessorRegistry& registry = ProcessorRegistry::Instance();
  std::unique_lock<std::shared_mutex> lock(registry.mu);
  registry.factories[method] = std::move(factory);
}

Executor* MultimediaDatabase::shared_executor() const {
  std::call_once(executor_once_, [this] {
    int threads = options_.query_threads;
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    // The querying thread participates in every scan, so the pool holds
    // one worker fewer than the parallelism target.
    query_executor_ = std::make_unique<Executor>(std::max(1, threads) - 1);
  });
  return query_executor_.get();
}

MultimediaDatabase::~MultimediaDatabase() = default;

MultimediaDatabase::MultimediaDatabase(DatabaseOptions options)
    : options_(std::move(options)),
      quantizer_(options_.quantizer_divisions, options_.color_space),
      rule_engine_(quantizer_, options_.rule_options),
      histogram_index_(quantizer_.BinCount()) {
  meta_.next_id = catalog_keys::kFirstObjectId;
  meta_.quantizer_divisions = quantizer_.divisions();
  meta_.color_space = static_cast<uint8_t>(quantizer_.space());
}

Result<std::unique_ptr<MultimediaDatabase>> MultimediaDatabase::Open(
    DatabaseOptions options) {
  std::unique_ptr<MultimediaDatabase> db(
      new MultimediaDatabase(std::move(options)));
  if (db->options_.path.empty()) {
    db->store_ = std::make_unique<MemoryObjectStore>();
  } else {
    MMDB_ASSIGN_OR_RETURN(
        db->store_,
        DiskObjectStore::Open(db->options_.path, db->options_.pool_pages,
                              /*journaled=*/true, db->options_.env));
  }
  if (db->store_->Contains(catalog_keys::kMetaKey)) {
    MMDB_RETURN_IF_ERROR(db->LoadExisting());
  } else {
    MMDB_RETURN_IF_ERROR(db->PersistMeta());
  }
  return db;
}

Status MultimediaDatabase::LoadExisting() {
  MMDB_ASSIGN_OR_RETURN(std::string meta_blob,
                        store_->Get(catalog_keys::kMetaKey));
  MMDB_ASSIGN_OR_RETURN(meta_, DecodeCatalogMeta(meta_blob));
  quantizer_ = ColorQuantizer(meta_.quantizer_divisions,
                              static_cast<ColorSpace>(meta_.color_space));
  rule_engine_ = RuleEngine(quantizer_, options_.rule_options);
  histogram_index_ = HistogramIndex(quantizer_.BinCount());

  // Catalog rows live under keys with residue 2; keys are ascending, so
  // objects reload in insertion (id) order — which keeps collection order
  // and BWM classification deterministic across reopen.
  //
  // A corrupt row or script blob quarantines that one image instead of
  // failing the open: the rest of the database stays queryable, and
  // queries report the loss via `QueryStats::corrupt_images_skipped`.
  // (Corruption of the metadata blob or of a directory page still fails
  // the open — there is no per-image blast radius to confine it to.)
  for (uint64_t key : store_->Keys()) {
    if (key % 4 != 2 || key < catalog_keys::RowKey(catalog_keys::kFirstObjectId)) {
      continue;
    }
    const ObjectId row_id = static_cast<ObjectId>((key - 2) / 4);
    Result<std::string> row_blob = store_->Get(key);
    if (!row_blob.ok()) {
      if (row_blob.status().code() != StatusCode::kCorruption) {
        return row_blob.status();
      }
      QuarantineImage(row_id);
      continue;
    }
    Result<CatalogRow> decoded = DecodeCatalogRow(*row_blob);
    if (!decoded.ok()) {
      if (decoded.status().code() != StatusCode::kCorruption) {
        return decoded.status();
      }
      QuarantineImage(row_id);
      continue;
    }
    const CatalogRow& row = *decoded;
    if (row.kind == ImageKind::kBinary) {
      BinaryImageInfo info;
      info.id = row.id;
      info.width = row.width;
      info.height = row.height;
      info.histogram = ColorHistogram(quantizer_.BinCount());
      if (static_cast<int32_t>(row.histogram_counts.size()) !=
          quantizer_.BinCount()) {
        return Status::Corruption("catalog row " + std::to_string(row.id) +
                                  ": histogram arity mismatch");
      }
      for (size_t bin = 0; bin < row.histogram_counts.size(); ++bin) {
        info.histogram.Add(static_cast<BinIndex>(bin),
                           row.histogram_counts[bin]);
      }
      MMDB_RETURN_IF_ERROR(
          histogram_index_.Insert(row.id, info.histogram));
      MMDB_RETURN_IF_ERROR(collection_.AddBinary(std::move(info)));
      bwm_index_.InsertBinary(row.id);
    } else {
      Result<std::string> script_blob =
          store_->Get(catalog_keys::ScriptKey(row.id));
      if (!script_blob.ok()) {
        if (script_blob.status().code() != StatusCode::kCorruption) {
          return script_blob.status();
        }
        QuarantineImage(row.id);
        continue;
      }
      Result<EditScript> script = DecodeEditScript(*script_blob);
      if (!script.ok()) {
        if (script.status().code() != StatusCode::kCorruption) {
          return script.status();
        }
        QuarantineImage(row.id);
        continue;
      }
      EditedImageInfo info;
      info.id = row.id;
      info.script = *std::move(script);
      bwm_index_.InsertEdited(info);
      MMDB_RETURN_IF_ERROR(collection_.AddEdited(std::move(info)));
    }
  }
  return Status::OK();
}

Status MultimediaDatabase::PersistMeta() {
  return store_->Upsert(catalog_keys::kMetaKey, EncodeCatalogMeta(meta_));
}

Status MultimediaDatabase::WithBatch(const std::function<Status()>& body) {
  MMDB_RETURN_IF_ERROR(store_->BeginBatch());
  const Status result = body();
  if (!result.ok()) {
    store_->AbortBatch().ok();  // Preserve the original error.
    return result;
  }
  return store_->CommitBatch();
}

Result<ObjectId> MultimediaDatabase::NextId() {
  const ObjectId id = meta_.next_id++;
  MMDB_RETURN_IF_ERROR(PersistMeta());
  return id;
}

Result<ObjectId> MultimediaDatabase::InsertBinaryImage(const Image& image) {
  if (image.Empty()) {
    return Status::InvalidArgument("cannot store an empty image");
  }
  ObjectId id = kInvalidObjectId;
  // The id bump, raster, and catalog row commit as one atomic batch; the
  // in-memory structures are only touched after the stores succeed.
  MMDB_RETURN_IF_ERROR(WithBatch([&]() -> Status {
    MMDB_ASSIGN_OR_RETURN(id, NextId());

    // Feature extraction happens here, once, at insertion time.
    BinaryImageInfo info;
    info.id = id;
    info.width = image.width();
    info.height = image.height();
    info.histogram = ExtractHistogram(image, quantizer_);

    CatalogRow row;
    row.id = id;
    row.kind = ImageKind::kBinary;
    row.width = info.width;
    row.height = info.height;
    row.histogram_counts = info.histogram.counts();

    MMDB_RETURN_IF_ERROR(store_->Put(catalog_keys::RasterKey(id),
                                     EncodePpm(image, PpmFormat::kBinary)));
    MMDB_RETURN_IF_ERROR(
        store_->Put(catalog_keys::RowKey(id), EncodeCatalogRow(row)));
    MMDB_RETURN_IF_ERROR(histogram_index_.Insert(id, info.histogram));
    MMDB_RETURN_IF_ERROR(collection_.AddBinary(std::move(info)));
    bwm_index_.InsertBinary(id);
    return Status::OK();
  }));
  mutation_epoch_.fetch_add(1, std::memory_order_release);
  return id;
}

Status MultimediaDatabase::ValidateScript(const EditScript& script) const {
  if (collection_.FindBinary(script.base_id) == nullptr) {
    return Status::NotFound("base image " + std::to_string(script.base_id) +
                            " is not a stored binary image");
  }
  for (const EditOp& op : script.ops) {
    if (GetOpType(op) != EditOpType::kMerge) continue;
    const MergeOp& merge = std::get<MergeOp>(op);
    if (merge.IsNullTarget()) continue;
    if (collection_.FindBinary(*merge.target) == nullptr &&
        collection_.FindEdited(*merge.target) == nullptr) {
      return Status::NotFound("merge target " + std::to_string(*merge.target) +
                              " is not stored");
    }
  }
  return Status::OK();
}

Result<ObjectId> MultimediaDatabase::InsertEditedImage(
    const EditScript& script) {
  MMDB_RETURN_IF_ERROR(ValidateScript(script));
  ObjectId id = kInvalidObjectId;
  MMDB_RETURN_IF_ERROR(WithBatch([&]() -> Status {
    MMDB_ASSIGN_OR_RETURN(id, NextId());

    CatalogRow row;
    row.id = id;
    row.kind = ImageKind::kEdited;

    MMDB_RETURN_IF_ERROR(
        store_->Put(catalog_keys::ScriptKey(id), EncodeEditScript(script)));
    MMDB_RETURN_IF_ERROR(
        store_->Put(catalog_keys::RowKey(id), EncodeCatalogRow(row)));

    EditedImageInfo info;
    info.id = id;
    info.script = script;
    bwm_index_.InsertEdited(info);  // Figure 1 insertion algorithm.
    return collection_.AddEdited(std::move(info));
  }));
  mutation_epoch_.fetch_add(1, std::memory_order_release);
  return id;
}

ImageResolver MultimediaDatabase::MakePixelResolver() const {
  // Shared in-flight set guards against merge-target cycles. Recursion
  // goes through the ResolvePixels member, not a self-capturing
  // std::function — a shared_ptr<ImageResolver> that captures itself is
  // a reference cycle and leaks the closure on every call.
  auto in_flight = std::make_shared<std::set<ObjectId>>();
  return [this, in_flight](ObjectId id) {
    return ResolvePixels(id, in_flight.get());
  };
}

Result<Image> MultimediaDatabase::ResolvePixels(
    ObjectId id, std::set<ObjectId>* in_flight) const {
  if (collection_.FindBinary(id) != nullptr) {
    MMDB_ASSIGN_OR_RETURN(std::string blob,
                          store_->Get(catalog_keys::RasterKey(id)));
    return DecodePpm(blob);
  }
  const EditedImageInfo* edited = collection_.FindEdited(id);
  if (edited == nullptr) {
    return Status::NotFound("image object " + std::to_string(id));
  }
  if (!in_flight->insert(id).second) {
    return Status::InvalidArgument("merge target cycle through object " +
                                   std::to_string(id));
  }
  Result<Image> base = ResolvePixels(edited->script.base_id, in_flight);
  if (!base.ok()) {
    in_flight->erase(id);
    return base.status();
  }
  Editor editor([this, in_flight](ObjectId target) {
    return ResolvePixels(target, in_flight);
  });
  Result<Image> out = editor.Instantiate(*base, edited->script);
  in_flight->erase(id);
  return out;
}

Result<Image> MultimediaDatabase::GetImage(ObjectId id) const {
  return MakePixelResolver()(id);
}

Result<QueryResult> MultimediaDatabase::RunRange(const RangeQuery& query,
                                                 QueryMethod method) const {
  return RunRange(query, method, QueryContext{});
}

Result<QueryResult> MultimediaDatabase::RunRange(
    const RangeQuery& query, QueryMethod method,
    const QueryContext& ctx) const {
  obs::Span span(QuerySpanFor(method));
  // Publish the limits thread-locally so the storage read path (which the
  // context is not threaded through) honors them per page.
  CancelScope scope(ctx);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (query.bin < 0 || query.bin >= quantizer_.BinCount()) {
      return Status::InvalidArgument("query bin " +
                                     std::to_string(query.bin) +
                                     " out of range");
    }
    if (query.min_fraction > query.max_fraction) {
      return Status::InvalidArgument("query range is empty");
    }
    MMDB_ASSIGN_OR_RETURN(std::unique_ptr<QueryProcessor> processor,
                          MakeProcessor(method));
    return processor->RunRange(query, ctx);
  }();
  RecordQueryMetrics(method, QueryKind::kRange, result);
  return result;
}

Result<QueryResult> MultimediaDatabase::RunConjunctive(
    const ConjunctiveQuery& query, QueryMethod method) const {
  return RunConjunctive(query, method, QueryContext{});
}

Result<QueryResult> MultimediaDatabase::RunConjunctive(
    const ConjunctiveQuery& query, QueryMethod method,
    const QueryContext& ctx) const {
  obs::Span span(QuerySpanFor(method));
  CancelScope scope(ctx);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (query.conjuncts.empty()) {
      return Status::InvalidArgument("conjunctive query has no conjuncts");
    }
    for (const RangeQuery& conjunct : query.conjuncts) {
      if (conjunct.bin < 0 || conjunct.bin >= quantizer_.BinCount()) {
        return Status::InvalidArgument("conjunct bin out of range");
      }
      if (conjunct.min_fraction > conjunct.max_fraction) {
        return Status::InvalidArgument("conjunct range is empty");
      }
    }
    MMDB_ASSIGN_OR_RETURN(std::unique_ptr<QueryProcessor> processor,
                          MakeProcessor(method));
    return processor->RunConjunctive(query, ctx);
  }();
  RecordQueryMetrics(method, QueryKind::kConjunctive, result);
  return result;
}

Result<QueryResult> MultimediaDatabase::RunSimilarity(
    const SimilarityQuery& query) const {
  return RunSimilarity(query, QueryContext{});
}

Result<QueryResult> MultimediaDatabase::RunSimilarity(
    const SimilarityQuery& query, const QueryContext& ctx) const {
  static obs::SpanCategory* const category =
      obs::Tracer::Default().Intern("query.similarity");
  obs::Span span(category);
  CancelScope scope(ctx);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (query.k == 0) {
      return Status::InvalidArgument("similarity query k must be > 0");
    }
    if (query.histogram.BinCount() != quantizer_.BinCount()) {
      return Status::InvalidArgument(
          "similarity query histogram has " +
          std::to_string(query.histogram.BinCount()) + " bins; database has " +
          std::to_string(quantizer_.BinCount()));
    }
    if (query.histogram.Total() <= 0) {
      return Status::InvalidArgument(
          "similarity query histogram is empty (no pixel mass)");
    }
    SimilaritySearcher searcher(&collection_, &rule_engine_);
    QueryResult out;
    MMDB_ASSIGN_OR_RETURN(out.matches,
                          searcher.Knn(query.histogram, query.k, &out.stats,
                                       ctx));
    out.ids.reserve(out.matches.size());
    for (const SimilarityMatch& match : out.matches) out.ids.push_back(match.id);
    return out;
  }();
  RecordQueryMetrics(QueryMethod::kBwm, QueryKind::kSimilarity, result);
  return result;
}

Status MultimediaDatabase::DeleteImage(ObjectId id) {
  if (const EditedImageInfo* edited = collection_.FindEdited(id)) {
    // Refuse while some other edited image merges into this one.
    for (ObjectId other_id : collection_.edited_ids()) {
      if (other_id == id) continue;
      const EditedImageInfo* other = collection_.FindEdited(other_id);
      for (const EditOp& op : other->script.ops) {
        if (GetOpType(op) != EditOpType::kMerge) continue;
        const MergeOp& merge = std::get<MergeOp>(op);
        if (merge.target.has_value() && *merge.target == id) {
          return Status::InvalidArgument(
              "image " + std::to_string(id) + " is a merge target of " +
              std::to_string(other_id));
        }
      }
    }
    const ObjectId base_id = edited->script.base_id;
    // Store mutations first (atomically), in-memory state after.
    MMDB_RETURN_IF_ERROR(WithBatch([&]() -> Status {
      MMDB_RETURN_IF_ERROR(store_->Delete(catalog_keys::ScriptKey(id)));
      return store_->Delete(catalog_keys::RowKey(id));
    }));
    MMDB_RETURN_IF_ERROR(collection_.RemoveEdited(id));
    bwm_index_.RemoveEdited(id, base_id);
    mutation_epoch_.fetch_add(1, std::memory_order_release);
    return Status::OK();
  }
  if (collection_.FindBinary(id) != nullptr) {
    // Refuse while referenced as a base (checked by the collection) or
    // as a merge target of any stored edited image.
    for (ObjectId other_id : collection_.edited_ids()) {
      const EditedImageInfo* other = collection_.FindEdited(other_id);
      for (const EditOp& op : other->script.ops) {
        if (GetOpType(op) != EditOpType::kMerge) continue;
        const MergeOp& merge = std::get<MergeOp>(op);
        if (merge.target.has_value() && *merge.target == id) {
          return Status::InvalidArgument(
              "image " + std::to_string(id) + " is a merge target of " +
              std::to_string(other_id));
        }
      }
    }
    const BinaryImageInfo* info = collection_.FindBinary(id);
    const HyperRect index_key =
        HyperRect::Point(info->histogram.Normalized());
    // RemoveBinary validates the no-dependents precondition; only then
    // may the derived structures change.
    MMDB_RETURN_IF_ERROR(collection_.RemoveBinary(id));
    MMDB_RETURN_IF_ERROR(histogram_index_.Remove(index_key, id));
    bwm_index_.RemoveBinary(id);
    // The in-memory structures are already mutated, so invalidate the
    // planner cache even if the store deletes below fail.
    mutation_epoch_.fetch_add(1, std::memory_order_release);
    return WithBatch([&]() -> Status {
      MMDB_RETURN_IF_ERROR(store_->Delete(catalog_keys::RasterKey(id)));
      return store_->Delete(catalog_keys::RowKey(id));
    });
  }
  return Status::NotFound("image object " + std::to_string(id));
}

std::shared_ptr<const CorpusStats> MultimediaDatabase::PlannerStats() const {
  // Read the epoch before taking the lock: a mutation landing between the
  // load and the rebuild just means one extra rebuild on the next call.
  const uint64_t epoch = mutation_epoch_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(planner_stats_mu_);
  if (planner_stats_ == nullptr || planner_stats_epoch_ != epoch) {
    planner_stats_ =
        std::make_shared<const CorpusStats>(CorpusStats::Collect(*this));
    planner_stats_epoch_ = epoch;
  }
  return planner_stats_;
}

std::vector<ObjectId> MultimediaDatabase::ExpandWithConnections(
    const std::vector<ObjectId>& ids) const {
  std::set<ObjectId> out(ids.begin(), ids.end());
  for (ObjectId id : ids) {
    if (const EditedImageInfo* edited = collection_.FindEdited(id)) {
      out.insert(edited->script.base_id);
    }
  }
  return {out.begin(), out.end()};
}

Result<MultimediaDatabase::IntegrityReport>
MultimediaDatabase::VerifyIntegrity(bool deep_pixels) const {
  IntegrityReport report;
  for (ObjectId id : collection_.binary_ids()) {
    const BinaryImageInfo* info = collection_.FindBinary(id);
    ++report.binary_images_checked;
    MMDB_ASSIGN_OR_RETURN(std::string blob,
                          store_->Get(catalog_keys::RasterKey(id)));
    MMDB_ASSIGN_OR_RETURN(Image image, DecodePpm(blob));
    ++report.rasters_verified;
    if (image.width() != info->width || image.height() != info->height) {
      return Status::Corruption("image " + std::to_string(id) +
                                ": stored raster dimensions disagree with "
                                "catalog");
    }
    if (info->histogram.Total() != image.PixelCount()) {
      return Status::Corruption("image " + std::to_string(id) +
                                ": histogram total disagrees with raster");
    }
    if (deep_pixels &&
        !(ExtractHistogram(image, quantizer_) == info->histogram)) {
      return Status::Corruption("image " + std::to_string(id) +
                                ": histogram does not match pixels");
    }
  }

  size_t widening_count = 0;
  for (ObjectId id : collection_.edited_ids()) {
    const EditedImageInfo* info = collection_.FindEdited(id);
    ++report.edited_images_checked;
    MMDB_ASSIGN_OR_RETURN(std::string blob,
                          store_->Get(catalog_keys::ScriptKey(id)));
    MMDB_ASSIGN_OR_RETURN(EditScript script, DecodeEditScript(blob));
    ++report.scripts_verified;
    if (!(script == info->script)) {
      return Status::Corruption("image " + std::to_string(id) +
                                ": stored script disagrees with memory");
    }
    MMDB_RETURN_IF_ERROR(ValidateScript(script));
    if (RuleEngine::IsAllBoundWidening(script)) ++widening_count;
  }

  if (bwm_index_.MainEditedCount() != widening_count) {
    return Status::Corruption(
        "BWM Main component holds " +
        std::to_string(bwm_index_.MainEditedCount()) +
        " images but the collection has " + std::to_string(widening_count) +
        " bound-widening scripts");
  }
  if (bwm_index_.Unclassified().size() !=
      collection_.EditedCount() - widening_count) {
    return Status::Corruption("BWM Unclassified component size mismatch");
  }
  return report;
}

bool MultimediaDatabase::IsQuarantined(ObjectId id) const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantine_.count(id) > 0;
}

void MultimediaDatabase::QuarantineImage(ObjectId id) const {
  static obs::Counter* const quarantines = obs::Registry::Default().GetCounter(
      "mmdb_quarantines_total",
      "Images quarantined after their stored blob failed verification.");
  static obs::Gauge* const quarantined = obs::Registry::Default().GetGauge(
      "mmdb_quarantined_images",
      "Images currently quarantined (excluded from query answers).");
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  if (quarantine_.insert(id).second) {
    quarantines->Increment();
    quarantined->Set(static_cast<double>(quarantine_.size()));
  }
}

std::vector<ObjectId> MultimediaDatabase::QuarantinedImages() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return {quarantine_.begin(), quarantine_.end()};
}

QuarantineHooks MultimediaDatabase::MakeQuarantineHooks() const {
  QuarantineHooks hooks;
  hooks.contains = [this](ObjectId id) { return IsQuarantined(id); };
  hooks.add = [this](ObjectId id) { QuarantineImage(id); };
  hooks.record_io_failure = [this](ObjectId id) {
    if (!breaker_.RecordFailure(id)) return breaker_.IsOpen(id);
    // The breaker just tripped: quarantine the image so every later query
    // skips it instead of re-paying the failing reads.
    QuarantineImage(id);
    return true;
  };
  return hooks;
}

Status MultimediaDatabase::Flush() {
  MMDB_RETURN_IF_ERROR(PersistMeta());
  return store_->Flush();
}

}  // namespace mmdb
