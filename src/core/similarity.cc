#include "core/similarity.h"

#include <algorithm>
#include <cmath>

#include "core/bounds.h"

namespace mmdb {

SimilaritySearcher::SimilaritySearcher(const AugmentedCollection* collection,
                                       const RuleEngine* engine)
    : collection_(collection),
      engine_(engine),
      resolver_(collection->MakeTargetResolver(*engine)) {}

Result<std::pair<std::vector<double>, std::vector<double>>>
SimilaritySearcher::AllBinBounds(const EditedImageInfo& info) const {
  const BinIndex bins = engine_->quantizer().BinCount();
  const BinaryImageInfo* base = collection_->FindBinary(info.script.base_id);
  if (base == nullptr) {
    return Status::Corruption("edited image " + std::to_string(info.id) +
                              " references missing base");
  }
  std::vector<double> lo(static_cast<size_t>(bins), 0.0);
  std::vector<double> hi(static_cast<size_t>(bins), 1.0);
  for (BinIndex bin = 0; bin < bins; ++bin) {
    MMDB_ASSIGN_OR_RETURN(
        FractionBounds bounds,
        ComputeBounds(*engine_, info.script, bin, base->histogram.Count(bin),
                      base->width, base->height, resolver_));
    lo[static_cast<size_t>(bin)] = bounds.min_fraction;
    hi[static_cast<size_t>(bin)] = bounds.max_fraction;
  }
  return std::make_pair(std::move(lo), std::move(hi));
}

SimilarityMatch SimilaritySearcher::DistanceInterval(
    ObjectId id, const std::vector<double>& query_fractions,
    const std::vector<double>& lo, const std::vector<double>& hi) {
  SimilarityMatch match;
  match.id = id;
  for (size_t i = 0; i < query_fractions.size(); ++i) {
    const double q = query_fractions[i];
    // Per-bin |x - q| is minimized at the interval point closest to q and
    // maximized at the farthest endpoint.
    double bin_lo = 0.0;
    if (q < lo[i]) {
      bin_lo = lo[i] - q;
    } else if (q > hi[i]) {
      bin_lo = q - hi[i];
    }
    const double bin_hi = std::max(std::fabs(q - lo[i]), std::fabs(q - hi[i]));
    match.distance_lo += bin_lo;
    match.distance_hi += bin_hi;
  }
  // Both histograms are distributions, so the true L1 distance is at most
  // 2 regardless of how loose the per-bin intervals are (the interval
  // model ignores the sum-to-one constraint; this clamp restores it).
  match.distance_hi = std::min(match.distance_hi, 2.0);
  return match;
}

Result<std::vector<SimilarityMatch>> SimilaritySearcher::Knn(
    const ColorHistogram& query, size_t k, QueryStats* stats,
    const QueryContext& context) const {
  CancelCheck check(context);
  const std::vector<double> query_fractions = query.Normalized();
  std::vector<SimilarityMatch> all;
  all.reserve(collection_->BinaryCount() + collection_->EditedCount());

  for (ObjectId id : collection_->binary_ids()) {
    MMDB_RETURN_IF_ERROR(check.Check());
    const BinaryImageInfo* binary = collection_->FindBinary(id);
    SimilarityMatch match;
    match.id = id;
    match.distance_lo = match.distance_hi =
        L1Distance(query, binary->histogram);
    match.exact = true;
    all.push_back(match);
    if (stats != nullptr) ++stats->binary_images_checked;
  }
  for (ObjectId id : collection_->edited_ids()) {
    MMDB_RETURN_IF_ERROR(check.Check());
    const EditedImageInfo* edited = collection_->FindEdited(id);
    MMDB_ASSIGN_OR_RETURN(auto bounds, AllBinBounds(*edited));
    all.push_back(
        DistanceInterval(id, query_fractions, bounds.first, bounds.second));
    if (stats != nullptr) {
      ++stats->edited_images_bounded;
      stats->rules_applied +=
          static_cast<int64_t>(edited->script.ops.size()) *
          engine_->quantizer().BinCount();
    }
  }

  // The k-th best *guaranteed* (upper-bound) distance caps the candidate
  // set: anything whose optimistic distance exceeds it cannot be in the
  // true top k.
  std::vector<double> guaranteed;
  guaranteed.reserve(all.size());
  for (const SimilarityMatch& match : all) {
    guaranteed.push_back(match.distance_hi);
  }
  std::sort(guaranteed.begin(), guaranteed.end());
  const double cutoff = k == 0 ? -1.0
                        : k <= guaranteed.size()
                            ? guaranteed[k - 1]
                            : std::numeric_limits<double>::infinity();

  std::vector<SimilarityMatch> out;
  for (const SimilarityMatch& match : all) {
    if (match.distance_lo <= cutoff) out.push_back(match);
  }
  std::sort(out.begin(), out.end(),
            [](const SimilarityMatch& a, const SimilarityMatch& b) {
              if (a.distance_lo != b.distance_lo) {
                return a.distance_lo < b.distance_lo;
              }
              return a.id < b.id;
            });
  return out;
}

Result<SimilaritySearcher::RangeAnswer> SimilaritySearcher::WithinDistance(
    const ColorHistogram& query, double radius, QueryStats* stats) const {
  if (radius < 0.0) {
    return Status::InvalidArgument("similarity radius must be >= 0");
  }
  const std::vector<double> query_fractions = query.Normalized();
  RangeAnswer answer;

  auto classify = [&](const SimilarityMatch& match) {
    if (match.distance_hi <= radius) {
      answer.certain.push_back(match);
    } else if (match.distance_lo <= radius) {
      answer.candidates.push_back(match);
    }
  };

  for (ObjectId id : collection_->binary_ids()) {
    const BinaryImageInfo* binary = collection_->FindBinary(id);
    SimilarityMatch match;
    match.id = id;
    match.distance_lo = match.distance_hi =
        L1Distance(query, binary->histogram);
    match.exact = true;
    classify(match);
    if (stats != nullptr) ++stats->binary_images_checked;
  }
  for (ObjectId id : collection_->edited_ids()) {
    const EditedImageInfo* edited = collection_->FindEdited(id);
    MMDB_ASSIGN_OR_RETURN(auto bounds, AllBinBounds(*edited));
    classify(
        DistanceInterval(id, query_fractions, bounds.first, bounds.second));
    if (stats != nullptr) {
      ++stats->edited_images_bounded;
      stats->rules_applied +=
          static_cast<int64_t>(edited->script.ops.size()) *
          engine_->quantizer().BinCount();
    }
  }
  auto by_distance = [](const SimilarityMatch& a, const SimilarityMatch& b) {
    if (a.distance_lo != b.distance_lo) {
      return a.distance_lo < b.distance_lo;
    }
    return a.id < b.id;
  };
  std::sort(answer.certain.begin(), answer.certain.end(), by_distance);
  std::sort(answer.candidates.begin(), answer.candidates.end(), by_distance);
  return answer;
}

}  // namespace mmdb
