#include "core/bounds.h"

namespace mmdb {

Result<RuleState> ComputeRuleState(const RuleEngine& engine,
                                   const EditScript& script, BinIndex hb,
                                   int64_t base_hb_count, int32_t base_width,
                                   int32_t base_height,
                                   const TargetBoundsResolver& resolver,
                                   CancelCheck* check) {
  RuleState state =
      RuleEngine::InitialState(base_hb_count, base_width, base_height);
  for (const EditOp& op : script.ops) {
    if (check != nullptr) MMDB_RETURN_IF_ERROR(check->Check());
    MMDB_RETURN_IF_ERROR(engine.ApplyRule(op, hb, resolver, &state));
  }
  return state;
}

FractionBounds ToFractionBounds(const RuleState& state) {
  FractionBounds bounds;
  if (state.size > 0) {
    bounds.min_fraction = static_cast<double>(state.hb_min) / state.size;
    bounds.max_fraction = static_cast<double>(state.hb_max) / state.size;
  }
  return bounds;
}

Result<FractionBounds> ComputeBounds(const RuleEngine& engine,
                                     const EditScript& script, BinIndex hb,
                                     int64_t base_hb_count,
                                     int32_t base_width, int32_t base_height,
                                     const TargetBoundsResolver& resolver,
                                     CancelCheck* check) {
  MMDB_ASSIGN_OR_RETURN(
      RuleState state,
      ComputeRuleState(engine, script, hb, base_hb_count, base_width,
                       base_height, resolver, check));
  return ToFractionBounds(state);
}

}  // namespace mmdb
