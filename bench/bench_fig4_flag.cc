// Reproduces paper Figure 4: range-query execution time vs. percentage of
// images stored as sequences of editing operations, flag data set,
// RBM ("w/out data structure") vs BWM ("with data structure").

#include "bench_common.h"

int main() {
  mmdb::bench::FigureSweepConfig config;
  config.kind = mmdb::datasets::DatasetKind::kFlags;
  config.figure_name = "Figure 4";
  config.json_name = "fig4_flag";
  // Flags carry slightly longer scripts in our augmentation mix, which is
  // the regime where the paper saw the smaller (22%) advantage.
  config.widening_probability = 0.7;
  return mmdb::bench::RunFigureSweep(config);
}
