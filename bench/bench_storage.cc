// Storage-engine characterization: throughput of the object store
// backends (memory, disk without journal, disk with the crash-consistent
// journal) and the cost breakdown of durability. Complements the paper's
// evaluation with the substrate numbers a deployment would need.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "storage/disk_manager.h"
#include "storage/object_store.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

struct RunStats {
  double put_us = 0.0;
  double get_us = 0.0;
  double delete_us = 0.0;
};

Result<RunStats> Exercise(ObjectStore& store, int ops, size_t value_bytes,
                          Rng& rng) {
  RunStats stats;
  std::string value(value_bytes, 'v');
  for (size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<char>(rng.Uniform(256));
  }
  Stopwatch watch;
  for (int i = 0; i < ops; ++i) {
    MMDB_RETURN_IF_ERROR(store.Put(static_cast<uint64_t>(i + 1), value));
  }
  stats.put_us = static_cast<double>(watch.ElapsedMicros()) / ops;

  watch.Restart();
  for (int i = 0; i < ops; ++i) {
    MMDB_ASSIGN_OR_RETURN(std::string read,
                          store.Get(static_cast<uint64_t>(i + 1)));
    if (read.size() != value.size()) {
      return Status::Internal("read size mismatch");
    }
  }
  stats.get_us = static_cast<double>(watch.ElapsedMicros()) / ops;

  watch.Restart();
  for (int i = 0; i < ops; ++i) {
    MMDB_RETURN_IF_ERROR(store.Delete(static_cast<uint64_t>(i + 1)));
  }
  stats.delete_us = static_cast<double>(watch.ElapsedMicros()) / ops;
  return stats;
}

struct PageIoStats {
  double write_us = 0.0;
  double read_us = 0.0;
};

/// Raw page-file throughput with and without CRC-32 footers, isolating
/// the checksum tax from everything the object store adds on top.
Result<PageIoStats> ExercisePages(bool checksums, int pages, Rng& rng) {
  const std::string path = "/tmp/mmdb_bench_pages.db";
  std::remove(path.c_str());
  DiskManager disk;
  MMDB_RETURN_IF_ERROR(disk.Open(path, nullptr, checksums));
  for (int i = 0; i < pages; ++i) {
    MMDB_RETURN_IF_ERROR(disk.AllocatePage().status());
  }
  Page page;
  std::string payload(kPageUsableSize, '\0');
  for (char& c : payload) c = static_cast<char>(rng.Uniform(256));
  page.WriteBytes(0, payload.data(), payload.size());

  PageIoStats stats;
  Stopwatch watch;
  for (int i = 0; i < pages; ++i) {
    MMDB_RETURN_IF_ERROR(disk.WritePage(static_cast<PageId>(i), page));
  }
  MMDB_RETURN_IF_ERROR(disk.Sync());
  stats.write_us = static_cast<double>(watch.ElapsedMicros()) / pages;

  watch.Restart();
  for (int i = 0; i < pages; ++i) {
    MMDB_RETURN_IF_ERROR(disk.ReadPage(static_cast<PageId>(i), &page));
  }
  stats.read_us = static_cast<double>(watch.ElapsedMicros()) / pages;

  MMDB_RETURN_IF_ERROR(disk.Close());
  std::remove(path.c_str());
  return stats;
}

int Run() {
  std::cout << "=== Storage engine characterization ===\n\n";
  const std::string path = "/tmp/mmdb_bench_storage.db";
  constexpr int kOps = 200;

  TablePrinter table({"backend", "blob bytes", "put us/op", "get us/op",
                      "delete us/op"});
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("storage");
  json.Key("workload").BeginObject();
  json.Key("blob_ops").Int(kOps);
  json.EndObject();
  json.Key("blob_points").BeginArray();
  auto emit_blob_point = [&json](const char* backend, size_t value_bytes,
                                 const RunStats& stats) {
    json.BeginObject();
    json.Key("backend").String(backend);
    json.Key("blob_bytes").Int(static_cast<int64_t>(value_bytes));
    json.Key("put_us_per_op").Number(stats.put_us);
    json.Key("get_us_per_op").Number(stats.get_us);
    json.Key("delete_us_per_op").Number(stats.delete_us);
    json.EndObject();
  };
  for (size_t value_bytes : {size_t{256}, size_t{16384}}) {
    Rng rng(42);
    {
      MemoryObjectStore store;
      const auto stats = Exercise(store, kOps, value_bytes, rng);
      if (!stats.ok()) return 1;
      table.AddRow({"memory", TablePrinter::Cell(value_bytes),
                    TablePrinter::Cell(stats->put_us, 2),
                    TablePrinter::Cell(stats->get_us, 2),
                    TablePrinter::Cell(stats->delete_us, 2)});
      emit_blob_point("memory", value_bytes, *stats);
    }
    for (const bool journaled : {false, true}) {
      std::remove(path.c_str());
      std::remove((path + ".journal").c_str());
      auto store = DiskObjectStore::Open(path, 256, journaled);
      if (!store.ok()) {
        std::cerr << store.status().ToString() << "\n";
        return 1;
      }
      const auto stats = Exercise(**store, kOps, value_bytes, rng);
      if (!stats.ok()) {
        std::cerr << stats.status().ToString() << "\n";
        return 1;
      }
      table.AddRow({journaled ? "disk + journal" : "disk (no journal)",
                    TablePrinter::Cell(value_bytes),
                    TablePrinter::Cell(stats->put_us, 2),
                    TablePrinter::Cell(stats->get_us, 2),
                    TablePrinter::Cell(stats->delete_us, 2)});
      emit_blob_point(journaled ? "disk_journal" : "disk", value_bytes,
                      *stats);
    }
  }
  json.EndArray();
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  table.Print(std::cout);
  std::cout << "\nThe journal's cost is the per-transaction fsync pair "
               "plus before-image writes; batched mutations (BeginBatch/"
               "CommitBatch) amortize it across a whole logical "
               "operation.\n";

  std::cout << "\n=== Page checksum overhead (raw DiskManager I/O) ===\n\n";
  constexpr int kPages = 2048;
  TablePrinter page_table(
      {"mode", "write us/page", "read us/page", "read MB/s"});
  json.Key("page_points").BeginArray();
  for (const bool checksums : {false, true}) {
    Rng rng(7);
    const auto stats = ExercisePages(checksums, kPages, rng);
    if (!stats.ok()) {
      std::cerr << stats.status().ToString() << "\n";
      return 1;
    }
    const double mb_per_s =
        stats->read_us > 0.0
            ? static_cast<double>(kPageSize) / stats->read_us
            : 0.0;
    page_table.AddRow({checksums ? "checksummed (v2)" : "unchecksummed",
                       TablePrinter::Cell(stats->write_us, 2),
                       TablePrinter::Cell(stats->read_us, 2),
                       TablePrinter::Cell(mb_per_s, 1)});
    json.BeginObject();
    json.Key("checksums").Bool(checksums);
    json.Key("pages").Int(kPages);
    json.Key("write_us_per_page").Number(stats->write_us);
    json.Key("read_us_per_page").Number(stats->read_us);
    json.Key("read_mb_per_second").Number(mb_per_s);
    json.EndObject();
  }
  page_table.Print(std::cout);
  json.EndArray();
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("storage", json.Take())) return 1;
  std::cout << "\nChecksummed pages pay one CRC-32 over " << kPageUsableSize
            << " bytes per write (stamp) and per read (verify); the table "
               "shows what that buys back in detection against the raw "
               "page path.\n";
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
