#ifndef MMDB_BENCH_BENCH_COMMON_H_
#define MMDB_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/database.h"
#include "core/query.h"
#include "datasets/augment.h"
#include "util/result.h"

namespace mmdb::bench {

/// Timing + work counters for one (database, workload, method) run.
/// Percentiles are over individual query wall times across every timed
/// round (the warm-up pass is excluded).
struct WorkloadTiming {
  double avg_query_seconds = 0.0;
  double total_seconds = 0.0;
  double p50_query_seconds = 0.0;
  double p95_query_seconds = 0.0;
  double max_query_seconds = 0.0;
  int queries = 0;
  QueryStats stats;
};

/// Runs `workload` against `db` with `method`, `repeats` times, and
/// reports the average wall-clock time per query (the metric of the
/// paper's Figures 3 and 4).
Result<WorkloadTiming> TimeWorkload(const MultimediaDatabase& db,
                                    const std::vector<RangeQuery>& workload,
                                    QueryMethod method, int repeats = 3);

/// Times several methods over the same workload with interleaved repeat
/// rounds (method A pass, method B pass, repeat), reporting the median
/// per-round time for each — robust against machine-load drift that would
/// bias back-to-back block timing. Returns one `WorkloadTiming` per
/// entry of `methods`, in order.
Result<std::vector<WorkloadTiming>> TimeMethodsInterleaved(
    const MultimediaDatabase& db, const std::vector<RangeQuery>& workload,
    const std::vector<QueryMethod>& methods, int repeats);

/// Builds a fresh in-memory augmented database for `spec`; returns the
/// database and fills `stats` (Table 2 numbers).
Result<std::unique_ptr<MultimediaDatabase>> BuildDatabase(
    const datasets::DatasetSpec& spec, datasets::DatasetStats* stats);

/// "helmet" / "flag" / "road-sign".
std::string KindName(datasets::DatasetKind kind);

/// Parameters of a Figure 3 / Figure 4 style sweep.
struct FigureSweepConfig {
  datasets::DatasetKind kind = datasets::DatasetKind::kHelmets;
  std::string figure_name = "Figure 3";
  /// When non-empty, the sweep also writes `BENCH_<json_name>.json` (see
  /// WriteBenchReport) carrying the same numbers as the stdout table.
  std::string json_name;
  int total_images = 600;
  int queries = 30;
  int repeats = 12;
  double widening_probability = 0.8;
  int min_ops = 4;
  int max_ops = 10;
  uint64_t seed = 2006;
};

/// Reproduces the paper's Figure 3/4 experiment: average range-query
/// execution time vs. the percentage of images stored as sequences of
/// editing operations, for RBM ("w/out data structure") and BWM ("with
/// data structure"). Prints the series plus the average speedup and
/// returns 0, or prints the error and returns 1.
int RunFigureSweep(const FigureSweepConfig& config);

/// Minimal streaming JSON emitter for the machine-readable bench
/// reports. Usage discipline: `Key` only inside an object, values only
/// in value position; the writer tracks separators, not validity.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view name);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Bool(bool value);
  /// Splices pre-serialized JSON (e.g. `Registry::WriteJson` output).
  JsonWriter& Raw(std::string_view json);
  std::string Take() { return out_.str(); }

 private:
  void ValuePrefix();

  std::ostringstream out_;
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// `Registry::Default().WriteJson` as a string, for embedding the
/// process's metrics into a bench report.
std::string RegistryJson();

/// Writes one timing as the fields of an open JSON object:
/// queries, total/avg/p50/p95/max seconds, and the work counters.
void AddTimingFields(JsonWriter* json, const WorkloadTiming& timing);

/// Writes `json` to `BENCH_<bench_name>.json` in the working directory
/// and announces the path on stdout. Every bench target funnels its
/// machine-readable report through here. Returns false (after printing
/// the error) when the file cannot be written.
bool WriteBenchReport(const std::string& bench_name,
                      const std::string& json);

}  // namespace mmdb::bench

#endif  // MMDB_BENCH_BENCH_COMMON_H_
