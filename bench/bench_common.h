#ifndef MMDB_BENCH_BENCH_COMMON_H_
#define MMDB_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "core/query.h"
#include "datasets/augment.h"
#include "util/result.h"

namespace mmdb::bench {

/// Timing + work counters for one (database, workload, method) run.
struct WorkloadTiming {
  double avg_query_seconds = 0.0;
  double total_seconds = 0.0;
  int queries = 0;
  QueryStats stats;
};

/// Runs `workload` against `db` with `method`, `repeats` times, and
/// reports the average wall-clock time per query (the metric of the
/// paper's Figures 3 and 4).
Result<WorkloadTiming> TimeWorkload(const MultimediaDatabase& db,
                                    const std::vector<RangeQuery>& workload,
                                    QueryMethod method, int repeats = 3);

/// Times several methods over the same workload with interleaved repeat
/// rounds (method A pass, method B pass, repeat), reporting the median
/// per-round time for each — robust against machine-load drift that would
/// bias back-to-back block timing. Returns one `WorkloadTiming` per
/// entry of `methods`, in order.
Result<std::vector<WorkloadTiming>> TimeMethodsInterleaved(
    const MultimediaDatabase& db, const std::vector<RangeQuery>& workload,
    const std::vector<QueryMethod>& methods, int repeats);

/// Builds a fresh in-memory augmented database for `spec`; returns the
/// database and fills `stats` (Table 2 numbers).
Result<std::unique_ptr<MultimediaDatabase>> BuildDatabase(
    const datasets::DatasetSpec& spec, datasets::DatasetStats* stats);

/// "helmet" / "flag" / "road-sign".
std::string KindName(datasets::DatasetKind kind);

/// Parameters of a Figure 3 / Figure 4 style sweep.
struct FigureSweepConfig {
  datasets::DatasetKind kind = datasets::DatasetKind::kHelmets;
  std::string figure_name = "Figure 3";
  int total_images = 600;
  int queries = 30;
  int repeats = 12;
  double widening_probability = 0.8;
  int min_ops = 4;
  int max_ops = 10;
  uint64_t seed = 2006;
};

/// Reproduces the paper's Figure 3/4 experiment: average range-query
/// execution time vs. the percentage of images stored as sequences of
/// editing operations, for RBM ("w/out data structure") and BWM ("with
/// data structure"). Prints the series plus the average speedup and
/// returns 0, or prints the error and returns 1.
int RunFigureSweep(const FigureSweepConfig& config);

}  // namespace mmdb::bench

#endif  // MMDB_BENCH_BENCH_COMMON_H_
