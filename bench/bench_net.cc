// Network serving overhead: loopback RPC latency and throughput of the
// wire protocol versus embedded QueryService dispatch, swept over
// concurrent connections (beyond-paper; the serving-shaped counterpart
// of bench_admission's overload sweep).
//
// The harness first proves correctness — every remote answer must be
// bit-identical (ids and work counters) to the embedded answer for the
// same request — and only then times three scenarios over the same RBM
// workload:
//   embedded - one thread calling QueryService::Execute directly; its
//              p50 is the baseline the wire overhead is judged against.
//   remote-N - N clients (N in {1, 8, 64}) each running the workload
//              over its own TCP loopback connection.
//
// The report checks the serving claim: single-connection remote p50
// stays within 2x of embedded p50 (the framing + syscall tax, not a
// redundant query execution).

#include <algorithm>
#include <iostream>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/query_service.h"
#include "net/client.h"
#include "net/server.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

constexpr int kWarmupPasses = 2;
constexpr int kEmbeddedRounds = 40;
constexpr int kQueriesPerConnection = 96;
const int kConnectionCounts[] = {1, 8, 64};

struct ScenarioResult {
  std::string name;
  int connections = 0;  // 0 = embedded.
  double wall_seconds = 0.0;
  std::vector<double> latencies;  // Per-call wall times, seconds.
  int64_t errors = 0;
};

/// Sorted-vector percentile with nearest-rank rounding (q in [0, 1]).
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index =
      static_cast<size_t>(q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

/// Every remote answer must carry the same ids and the same work
/// counters as the embedded answer — the wire moves the query, it must
/// not change it.
bool VerifyRemoteMatchesEmbedded(QueryService& service, net::Client& client,
                                 const std::vector<QueryRequest>& requests) {
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto embedded = service.Execute(requests[i]);
    const auto remote = client.Execute(requests[i]);
    if (!embedded.ok() || !remote.ok() || embedded->ids != remote->ids ||
        embedded->stats.binary_images_checked !=
            remote->stats.binary_images_checked ||
        embedded->stats.edited_images_bounded !=
            remote->stats.edited_images_bounded) {
      std::cerr << "remote answer diverges from embedded for request " << i
                << "\n";
      return false;
    }
  }
  std::cout << "correctness: " << requests.size()
            << " remote answers identical to embedded dispatch\n\n";
  return true;
}

ScenarioResult RunEmbedded(QueryService& service,
                           const std::vector<QueryRequest>& requests) {
  ScenarioResult result;
  result.name = "embedded";
  for (int pass = 0; pass < kWarmupPasses; ++pass) {
    for (const QueryRequest& request : requests) {
      if (!service.Execute(request).ok()) ++result.errors;
    }
  }
  Stopwatch wall;
  for (int round = 0; round < kEmbeddedRounds; ++round) {
    for (const QueryRequest& request : requests) {
      Stopwatch call;
      if (!service.Execute(request).ok()) ++result.errors;
      result.latencies.push_back(call.ElapsedSeconds());
    }
  }
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

ScenarioResult RunRemote(int connections, int port,
                         const std::vector<QueryRequest>& requests) {
  ScenarioResult result;
  result.name = "remote-" + std::to_string(connections);
  result.connections = connections;
  std::vector<std::vector<double>> per_thread(connections);
  std::vector<int64_t> per_thread_errors(connections, 0);
  std::latch ready(connections + 1);
  std::latch go(1);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (int t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      auto client = net::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++per_thread_errors[t];
        ready.count_down();
        go.wait();
        return;
      }
      // Per-connection warm-up (handshake, server-side page cache).
      for (const QueryRequest& request : requests) {
        if (!client->Execute(request).ok()) ++per_thread_errors[t];
      }
      ready.count_down();
      go.wait();
      for (int i = 0; i < kQueriesPerConnection; ++i) {
        // Offset by thread id so concurrent clients spread over the
        // workload instead of issuing the same query in lockstep.
        const QueryRequest& request =
            requests[(static_cast<size_t>(i) + static_cast<size_t>(t)) %
                     requests.size()];
        Stopwatch call;
        if (!client->Execute(request).ok()) ++per_thread_errors[t];
        per_thread[t].push_back(call.ElapsedSeconds());
      }
    });
  }
  ready.arrive_and_wait();
  Stopwatch wall;
  go.count_down();
  for (std::thread& thread : threads) thread.join();
  result.wall_seconds = wall.ElapsedSeconds();
  for (int t = 0; t < connections; ++t) {
    result.latencies.insert(result.latencies.end(), per_thread[t].begin(),
                            per_thread[t].end());
    result.errors += per_thread_errors[t];
  }
  return result;
}

void AddScenarioJson(bench::JsonWriter* json, const ScenarioResult& s) {
  const double queries = static_cast<double>(s.latencies.size());
  json->BeginObject();
  json->Key("scenario").String(s.name);
  json->Key("connections").Int(s.connections);
  json->Key("queries").Int(static_cast<int64_t>(s.latencies.size()));
  json->Key("errors").Int(s.errors);
  json->Key("wall_seconds").Number(s.wall_seconds);
  json->Key("queries_per_second")
      .Number(s.wall_seconds > 0 ? queries / s.wall_seconds : 0.0);
  json->Key("p50_seconds").Number(Percentile(s.latencies, 0.5));
  json->Key("p99_seconds").Number(Percentile(s.latencies, 0.99));
  json->EndObject();
}

int Run() {
  std::cout << "=== Network serving: loopback RPC vs embedded dispatch ===\n"
            << "hardware threads available: "
            << std::thread::hardware_concurrency() << "\n\n";

  datasets::DatasetSpec spec;
  spec.kind = datasets::DatasetKind::kHelmets;
  spec.total_images = 600;
  spec.edited_fraction = 0.8;
  spec.min_ops = 4;
  spec.max_ops = 10;
  spec.seed = 51001;
  auto db = bench::BuildDatabase(spec, nullptr);
  if (!db.ok()) {
    std::cerr << "dataset build failed: " << db.status().ToString() << "\n";
    return 1;
  }

  Rng rng(51005);
  const auto windows = datasets::MakeGroundedRangeWorkload(
      (*db)->collection(), (*db)->quantizer(), datasets::HelmetPalette(), 12,
      rng);
  std::vector<QueryRequest> requests;
  for (const RangeQuery& window : windows) {
    requests.push_back(QueryRequest::Range(window, QueryMethod::kRbm));
  }

  QueryService service(db->get());
  net::ServerOptions server_options;
  server_options.connection_threads = 64;
  net::QueryServer server(db->get(), &service, server_options);
  if (const Status started = server.Start(); !started.ok()) {
    std::cerr << "server start failed: " << started.ToString() << "\n";
    return 1;
  }

  {
    auto probe = net::Client::Connect("127.0.0.1", server.port());
    if (!probe.ok() ||
        !VerifyRemoteMatchesEmbedded(service, *probe, requests)) {
      server.Stop();
      return 1;
    }
  }

  std::vector<ScenarioResult> scenarios;
  scenarios.push_back(RunEmbedded(service, requests));
  for (int connections : kConnectionCounts) {
    scenarios.push_back(RunRemote(connections, server.port(), requests));
  }
  server.Stop();

  TablePrinter table({"scenario", "connections", "queries", "queries/s",
                      "p50 ms", "p99 ms", "errors"});
  for (const ScenarioResult& s : scenarios) {
    const double queries = static_cast<double>(s.latencies.size());
    std::ostringstream rps, p50, p99;
    rps.precision(1);
    rps << std::fixed << (s.wall_seconds > 0 ? queries / s.wall_seconds : 0);
    p50.precision(3);
    p50 << std::fixed << Percentile(s.latencies, 0.5) * 1e3;
    p99.precision(3);
    p99 << std::fixed << Percentile(s.latencies, 0.99) * 1e3;
    table.AddRow({s.name, std::to_string(s.connections),
                  std::to_string(s.latencies.size()), rps.str(), p50.str(),
                  p99.str(), std::to_string(s.errors)});
  }
  table.Print(std::cout);

  const double embedded_p50 = Percentile(scenarios[0].latencies, 0.5);
  const double remote1_p50 = Percentile(scenarios[1].latencies, 0.5);
  const double overhead =
      embedded_p50 > 0 ? remote1_p50 / embedded_p50 : 0.0;
  const bool within_budget = overhead <= 2.0;
  std::cout << "\nsingle-connection overhead: remote p50 "
            << remote1_p50 * 1e3 << " ms / embedded p50 "
            << embedded_p50 * 1e3 << " ms = " << overhead << "x ("
            << (within_budget ? "within" : "OVER") << " the 2x budget)\n";

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("net");
  json.Key("workload").BeginObject();
  json.Key("dataset").String("helmet");
  json.Key("total_images").Int(spec.total_images);
  json.Key("edited_fraction").Number(spec.edited_fraction);
  json.Key("method").String("rbm");
  json.Key("windows").Int(static_cast<int64_t>(windows.size()));
  json.Key("queries_per_connection").Int(kQueriesPerConnection);
  json.Key("connection_threads").Int(server_options.connection_threads);
  json.Key("hardware_threads")
      .Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.EndObject();
  json.Key("scenarios").BeginArray();
  for (const ScenarioResult& s : scenarios) AddScenarioJson(&json, s);
  json.EndArray();
  json.Key("claims").BeginObject();
  json.Key("single_connection_p50_over_embedded_p50").Number(overhead);
  json.Key("within_2x_budget").Bool(within_budget);
  json.EndObject();
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("net", json.Take())) return 1;

  std::cout << "\nExpected shape: remote-1 pays a fixed framing + syscall "
               "tax per query; remote-8 and remote-64 trade per-call "
               "latency for aggregate throughput until the service "
               "threads saturate.\n";
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
