// Observability overhead budget: cost of the metrics + tracing
// instrumentation on the BWM hot path (the most instrumented query path:
// per-query span, scan span, per-query metrics recording, and — when
// detail is on — per-cluster-accept and per-rule-walk spans).
//
// Single-build modes (this binary):
//   tracer off     — spans disabled at runtime, counters still recorded
//   default        — coarse spans + counters (the shipping configuration)
//   detail on      — plus the kFine per-item spans (debug configuration)
//
// Cross-build baseline: configure a second build with -DMMDB_OBS_OFF=ON
// and run this bench there; its BENCH_obs_overhead.json reports
// obs_compiled_in=false, and the "default" rows of the two reports are
// the <5% comparison from docs/OBSERVABILITY.md. Within one build,
// "tracer off" vs "default" brackets the span share of that overhead.

#include <iostream>
#include <string>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

int Run() {
  std::cout << "=== Observability overhead on the BWM hot path (helmet "
               "data set, 600 images, 80% edit-stored) ===\n"
            << "instrumentation compiled "
            << (obs::kObsEnabled ? "IN" : "OUT (MMDB_OBS_OFF)") << "\n\n";

  datasets::DatasetSpec spec;
  spec.kind = datasets::DatasetKind::kHelmets;
  spec.total_images = 600;
  spec.edited_fraction = 0.8;
  spec.widening_probability = 0.8;
  spec.seed = 90210;
  datasets::DatasetStats stats;
  auto db = bench::BuildDatabase(spec, &stats);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }
  Rng rng(17);
  const auto workload = datasets::MakeRangeWorkload(
      (*db)->quantizer(), datasets::HelmetPalette(), 20, rng);

  struct Mode {
    std::string name;
    bool tracer_enabled;
    bool detail_enabled;
  };
  const Mode modes[] = {
      {"tracer off", false, false},
      {"default", true, false},
      {"detail on", true, true},
  };

  TablePrinter table({"mode", "BWM ms/query", "p95 ms", "overhead vs "
                      "tracer-off %"});
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("obs_overhead");
  json.Key("obs_compiled_in").Bool(obs::kObsEnabled);
  json.Key("workload").BeginObject();
  json.Key("dataset").String("helmet");
  json.Key("total_images").Int(600);
  json.Key("edited_fraction").Number(0.8);
  json.Key("queries").Int(20);
  json.Key("repeats").Int(9);
  json.EndObject();
  json.Key("modes").BeginArray();
  double baseline = 0.0;
  int exit_code = 0;
  for (const Mode& mode : modes) {
    obs::Tracer::SetEnabled(mode.tracer_enabled);
    obs::Tracer::SetDetailEnabled(mode.detail_enabled);
    const auto timed =
        bench::TimeWorkload(**db, workload, QueryMethod::kBwm, 9);
    if (!timed.ok()) {
      std::cerr << timed.status().ToString() << "\n";
      exit_code = 1;
      break;
    }
    if (mode.name == "tracer off") baseline = timed->avg_query_seconds;
    const double overhead_pct =
        baseline > 0.0
            ? (timed->avg_query_seconds / baseline - 1.0) * 100.0
            : 0.0;
    table.AddRow({mode.name,
                  TablePrinter::Cell(timed->avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(timed->p95_query_seconds * 1e3, 4),
                  TablePrinter::Cell(overhead_pct, 2)});
    json.BeginObject();
    json.Key("mode").String(mode.name);
    json.Key("tracer_enabled").Bool(mode.tracer_enabled);
    json.Key("detail_enabled").Bool(mode.detail_enabled);
    json.Key("overhead_vs_tracer_off_pct").Number(overhead_pct);
    bench::AddTimingFields(&json, *timed);
    json.EndObject();
  }
  // Restore the shipping configuration before the registry snapshot.
  obs::Tracer::SetEnabled(true);
  obs::Tracer::SetDetailEnabled(false);
  if (exit_code != 0) return exit_code;
  table.Print(std::cout);
  json.EndArray();
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("obs_overhead", json.Take())) return 1;
  std::cout
      << "\nBudget (docs/OBSERVABILITY.md): the \"default\" row of the "
         "instrumented build must stay within 5% of the same row from a "
         "-DMMDB_OBS_OFF=ON build. Within this binary, \"tracer off\" vs "
         "\"default\" brackets the span share; \"detail on\" shows the "
         "opt-in per-cluster/per-rule cost that the default config "
         "deliberately avoids.\n";
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
