// Ablation C (DESIGN.md): BWM's cluster-skip only fires when a cluster's
// base image satisfies the query, so its advantage tracks the base-image
// hit rate. This sweep moves the query window to change selectivity.

#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

int Run() {
  std::cout << "=== Ablation C: BWM speedup vs. query selectivity (flag "
               "data set, 80% edit-stored) ===\n\n";

  datasets::DatasetSpec spec;
  spec.kind = datasets::DatasetKind::kFlags;
  spec.total_images = 500;
  spec.edited_fraction = 0.8;
  spec.widening_probability = 0.8;
  spec.seed = 555;
  datasets::DatasetStats stats;
  auto db = bench::BuildDatabase(spec, &stats);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }

  TablePrinter table({"query range", "base hit rate %", "RBM (ms/query)",
                      "BWM (ms/query)", "speedup %", "skipped"});
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("ablate_selectivity");
  json.Key("workload").BeginObject();
  json.Key("dataset").String("flag");
  json.Key("total_images").Int(500);
  json.Key("edited_fraction").Number(0.8);
  json.Key("repeats").Int(7);
  json.EndObject();
  json.Key("points").BeginArray();
  const std::vector<Rgb> palette = datasets::FlagPalette();
  struct Window {
    double lo;
    double hi;
  };
  for (const Window& window : std::initializer_list<Window>{
           {0.0, 1.0}, {0.0, 0.5}, {0.1, 0.6}, {0.3, 0.8}, {0.6, 0.9},
           {0.9, 1.0}}) {
    std::vector<RangeQuery> workload;
    for (const Rgb& color : palette) {
      RangeQuery query;
      query.bin = (*db)->BinOf(color);
      query.min_fraction = window.lo;
      query.max_fraction = window.hi;
      workload.push_back(query);
    }
    // Base hit rate: how many (query, binary) pairs satisfy.
    int64_t hits = 0, pairs = 0;
    for (const RangeQuery& query : workload) {
      for (ObjectId id : (*db)->collection().binary_ids()) {
        ++pairs;
        if (query.Satisfies(
                (*db)->collection().FindBinary(id)->histogram.Fraction(
                    query.bin))) {
          ++hits;
        }
      }
    }
    const auto timed = bench::TimeMethodsInterleaved(
        **db, workload, {QueryMethod::kRbm, QueryMethod::kBwm}, 7);
    if (!timed.ok()) {
      std::cerr << timed.status().ToString() << "\n";
      return 1;
    }
    const bench::WorkloadTiming& rbm = (*timed)[0];
    const bench::WorkloadTiming& bwm = (*timed)[1];
    const double speedup =
        (1.0 - bwm.avg_query_seconds / rbm.avg_query_seconds) * 100.0;
    table.AddRow(
        {"[" + TablePrinter::Cell(window.lo, 2) + ", " +
             TablePrinter::Cell(window.hi, 2) + "]",
         TablePrinter::Cell(100.0 * hits / pairs, 1),
         TablePrinter::Cell(rbm.avg_query_seconds * 1e3, 4),
         TablePrinter::Cell(bwm.avg_query_seconds * 1e3, 4),
         TablePrinter::Cell(speedup, 2),
         TablePrinter::Cell(bwm.stats.edited_images_skipped)});
    json.BeginObject();
    json.Key("window_min_fraction").Number(window.lo);
    json.Key("window_max_fraction").Number(window.hi);
    json.Key("base_hit_rate_pct")
        .Number(100.0 * static_cast<double>(hits) /
                static_cast<double>(pairs));
    json.Key("speedup_pct").Number(speedup);
    json.Key("rbm").BeginObject();
    bench::AddTimingFields(&json, rbm);
    json.EndObject();
    json.Key("bwm").BeginObject();
    bench::AddTimingFields(&json, bwm);
    json.EndObject();
    json.EndObject();
  }
  table.Print(std::cout);
  json.EndArray();
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("ablate_selectivity", json.Take())) return 1;
  std::cout << "\nExpected shape: the higher the base hit rate, the more "
               "clusters BWM accepts wholesale and the larger the "
               "speedup.\n";
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
