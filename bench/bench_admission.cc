// Admission control under overload: accepted-query latency and shed
// rejection speed at 2x overload, shed-oldest versus block, against an
// unloaded baseline (beyond-paper; the serving-robustness counterpart of
// bench_query_service's throughput sweep).
//
// Three scenarios over the same RBM workload:
//   unloaded  - clients == max_in_flight, kBlock: the baseline p99.
//   block-2x  - 2x clients, kBlock with a generous timeout: everything
//               is eventually admitted; queueing shows up as latency.
//   shed-2x   - 2x clients, kShedOldest with a short waiter queue:
//               excess arrivals are rejected in microseconds and the
//               accepted traffic keeps a bounded p99.
//
// The report checks the two robustness claims: shed rejections complete
// in under 1 ms, and the shed scenario's accepted p99 stays within 2x of
// the unloaded p99.

#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/query_service.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

constexpr int kMaxInFlight = 4;
constexpr int kPerClient = 60;

struct ScenarioResult {
  std::string name;
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
  int clients = 0;
  double wall_seconds = 0.0;
  std::vector<double> accepted;  // Per-call wall times, seconds.
  std::vector<double> rejected;
  int64_t errors = 0;  // Statuses that are neither ok nor rejection.
  QueryService::CounterSnapshot snapshot;
};

/// Sorted-vector percentile with nearest-rank rounding (q in [0, 1]).
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index =
      static_cast<size_t>(q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

/// `clients` threads each issue `kPerClient` single queries through the
/// gate configured by `admission`; per-call wall times are split by
/// outcome (admitted vs typed ResourceExhausted rejection).
ScenarioResult RunScenario(const std::string& name,
                           const MultimediaDatabase& db,
                           const std::vector<QueryRequest>& requests,
                           const AdmissionOptions& admission, int clients) {
  ScenarioResult result;
  result.name = name;
  result.policy = admission.policy;
  result.clients = clients;

  QueryServiceOptions options;
  options.threads = 1;  // Execute() runs inline; clients supply concurrency.
  options.admission = admission;
  QueryService service(&db, options);

  std::vector<std::vector<double>> accepted(static_cast<size_t>(clients));
  std::vector<std::vector<double>> rejected(static_cast<size_t>(clients));
  std::vector<int64_t> errors(static_cast<size_t>(clients), 0);

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const auto slot = static_cast<size_t>(c);
      for (int i = 0; i < kPerClient; ++i) {
        const QueryRequest& request =
            requests[(slot * kPerClient + static_cast<size_t>(i)) %
                     requests.size()];
        Stopwatch call;
        const auto answer = service.Execute(request);
        const double seconds = call.ElapsedSeconds();
        if (answer.ok()) {
          accepted[slot].push_back(seconds);
        } else if (answer.status().code() == StatusCode::kResourceExhausted) {
          rejected[slot].push_back(seconds);
        } else {
          ++errors[slot];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.wall_seconds = wall.ElapsedSeconds();

  for (int c = 0; c < clients; ++c) {
    const auto slot = static_cast<size_t>(c);
    result.accepted.insert(result.accepted.end(), accepted[slot].begin(),
                           accepted[slot].end());
    result.rejected.insert(result.rejected.end(), rejected[slot].begin(),
                           rejected[slot].end());
    result.errors += errors[slot];
  }
  result.snapshot = service.Snapshot();
  return result;
}

void AddScenarioJson(bench::JsonWriter* json, const ScenarioResult& r) {
  json->BeginObject();
  json->Key("scenario").String(r.name);
  json->Key("policy").String(AdmissionPolicyName(r.policy));
  json->Key("clients").Int(r.clients);
  json->Key("max_in_flight").Int(kMaxInFlight);
  json->Key("queries").Int(static_cast<int64_t>(r.clients) * kPerClient);
  json->Key("wall_seconds").Number(r.wall_seconds);
  json->Key("queries_per_second")
      .Number(static_cast<double>(r.clients) * kPerClient / r.wall_seconds);
  json->Key("accepted").BeginObject();
  json->Key("count").Int(static_cast<int64_t>(r.accepted.size()));
  json->Key("p50_seconds").Number(Percentile(r.accepted, 0.5));
  json->Key("p99_seconds").Number(Percentile(r.accepted, 0.99));
  json->EndObject();
  json->Key("rejected").BeginObject();
  json->Key("count").Int(static_cast<int64_t>(r.rejected.size()));
  json->Key("p50_seconds").Number(Percentile(r.rejected, 0.5));
  json->Key("p99_seconds").Number(Percentile(r.rejected, 0.99));
  json->EndObject();
  json->Key("errors").Int(r.errors);
  json->Key("admission_rejected").Int(r.snapshot.admission_rejected);
  json->EndObject();
}

int Run() {
  std::cout << "=== Admission control: shed vs block at 2x overload ===\n"
            << "max_in_flight " << kMaxInFlight << ", " << kPerClient
            << " queries per client, RBM access path\n\n";

  datasets::DatasetSpec spec;
  spec.kind = datasets::DatasetKind::kHelmets;
  spec.total_images = 400;
  spec.edited_fraction = 0.85;
  spec.min_ops = 6;
  spec.max_ops = 12;
  spec.seed = 52001;
  auto db = bench::BuildDatabase(spec, nullptr);
  if (!db.ok()) {
    std::cerr << "dataset build failed: " << db.status().ToString() << "\n";
    return 1;
  }

  Rng rng(52003);
  const auto windows = datasets::MakeGroundedRangeWorkload(
      (*db)->collection(), (*db)->quantizer(), datasets::HelmetPalette(), 12,
      rng);
  std::vector<QueryRequest> requests;
  for (const RangeQuery& window : windows) {
    requests.push_back(QueryRequest::Range(window, QueryMethod::kRbm));
  }

  AdmissionOptions block;
  block.max_in_flight = kMaxInFlight;
  block.policy = AdmissionPolicy::kBlock;
  block.max_queued = 2 * kMaxInFlight;
  block.block_timeout_seconds = 30.0;

  AdmissionOptions shed = block;
  shed.policy = AdmissionPolicy::kShedOldest;
  shed.max_queued = 2;

  const ScenarioResult unloaded =
      RunScenario("unloaded", **db, requests, block, kMaxInFlight);
  const ScenarioResult blocked =
      RunScenario("block-2x", **db, requests, block, 2 * kMaxInFlight);
  const ScenarioResult shedding =
      RunScenario("shed-2x", **db, requests, shed, 2 * kMaxInFlight);

  TablePrinter table({"scenario", "policy", "clients", "accepted", "shed",
                      "acc p50 ms", "acc p99 ms", "shed p99 ms",
                      "queries/s"});
  for (const ScenarioResult* r : {&unloaded, &blocked, &shedding}) {
    table.AddRow(
        {r->name, std::string(AdmissionPolicyName(r->policy)),
         TablePrinter::Cell(r->clients),
         TablePrinter::Cell(static_cast<int>(r->accepted.size())),
         TablePrinter::Cell(static_cast<int>(r->rejected.size())),
         TablePrinter::Cell(Percentile(r->accepted, 0.5) * 1e3, 4),
         TablePrinter::Cell(Percentile(r->accepted, 0.99) * 1e3, 4),
         TablePrinter::Cell(Percentile(r->rejected, 0.99) * 1e3, 4),
         TablePrinter::Cell(
             static_cast<double>(r->clients) * kPerClient / r->wall_seconds,
             1)});
  }
  table.Print(std::cout);

  // The two robustness claims this bench exists to measure.
  const double shed_reject_p99 = Percentile(shedding.rejected, 0.99);
  const bool sheds_fast =
      shedding.rejected.empty() || shed_reject_p99 < 1e-3;
  const double unloaded_p99 = Percentile(unloaded.accepted, 0.99);
  const double shed_accept_p99 = Percentile(shedding.accepted, 0.99);
  const double p99_ratio =
      unloaded_p99 > 0.0 ? shed_accept_p99 / unloaded_p99 : 0.0;
  std::cout << "\nshed rejection p99: " << shed_reject_p99 * 1e3
            << " ms (target < 1 ms) -> " << (sheds_fast ? "ok" : "SLOW")
            << "\naccepted p99 under shed vs unloaded: " << p99_ratio
            << "x (target <= 2x on an otherwise idle machine)\n";
  if (unloaded.errors + blocked.errors + shedding.errors > 0) {
    std::cerr << "unexpected non-rejection failures\n";
    return 1;
  }

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("admission");
  json.Key("workload").BeginObject();
  json.Key("dataset").String("helmet");
  json.Key("total_images").Int(spec.total_images);
  json.Key("edited_fraction").Number(spec.edited_fraction);
  json.Key("method").String("rbm");
  json.Key("max_in_flight").Int(kMaxInFlight);
  json.Key("per_client").Int(kPerClient);
  json.Key("hardware_threads")
      .Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.EndObject();
  json.Key("scenarios").BeginArray();
  AddScenarioJson(&json, unloaded);
  AddScenarioJson(&json, blocked);
  AddScenarioJson(&json, shedding);
  json.EndArray();
  json.Key("claims").BeginObject();
  json.Key("shed_rejection_p99_seconds").Number(shed_reject_p99);
  json.Key("shed_rejection_under_1ms").Bool(sheds_fast);
  json.Key("shed_accepted_p99_over_unloaded_p99").Number(p99_ratio);
  json.EndObject();
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("admission", json.Take())) return 1;

  std::cout << "\nExpected shape: block-2x admits everything but pays for "
               "queueing in accepted latency; shed-2x rejects the excess in "
               "microseconds and keeps the accepted p99 near the unloaded "
               "baseline.\n";
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
