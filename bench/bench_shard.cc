// Sharded-corpus serving: scatter-gather scaling and the cost of
// degradation (beyond-paper; the distribution-shaped counterpart of
// bench_net's loopback sweep — see docs/SHARDING.md).
//
// Two experiments over the same grounded range workload:
//
//   scaling   - the corpus mirrored across 1/2/4/8 shards, each behind
//               its own loopback QueryServer, fanned by a Coordinator;
//               per-query latency vs a single embedded store. The
//               harness first proves every fanned answer id-identical
//               to the embedded one, then times.
//   degraded  - a 2-shard corpus whose shard-0 primary sits on a
//               FaultInjectingEnv-backed page file with a tiny buffer
//               pool; before each query `StallNth(kRead)` arms a disk
//               stall far above the hedge delay, and shard 0's healthy
//               in-memory replica absorbs the hedged retry. The claim:
//               hedging keeps the degraded p99 within ~1.5x of the
//               healthy p99 on the same topology, instead of the full
//               stall surfacing at the tail.
//
// `--quick` shrinks rounds for CI; the full run is the default. Either
// way the numbers land in BENCH_shard.json.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/query_service.h"
#include "datasets/generators.h"
#include "net/server.h"
#include "shard/backend.h"
#include "shard/coordinator.h"
#include "shard/sharded_db.h"
#include "storage/env.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

const size_t kShardCounts[] = {1, 2, 4, 8};
constexpr double kStallSeconds = 1.0;
constexpr double kHedgeDelaySeconds = 0.005;

struct Scenario {
  std::string name;
  size_t shards = 0;  // 0 = embedded single store.
  std::vector<double> latencies;
  int64_t errors = 0;
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index =
      static_cast<size_t>(q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

void AddScenarioJson(bench::JsonWriter* json, const Scenario& s) {
  json->BeginObject();
  json->Key("scenario").String(s.name);
  json->Key("shards").Int(static_cast<int64_t>(s.shards));
  json->Key("queries").Int(static_cast<int64_t>(s.latencies.size()));
  json->Key("errors").Int(s.errors);
  json->Key("p50_seconds").Number(Percentile(s.latencies, 0.5));
  json->Key("p95_seconds").Number(Percentile(s.latencies, 0.95));
  json->Key("p99_seconds").Number(Percentile(s.latencies, 0.99));
  json->EndObject();
}

void PrintScenario(TablePrinter* table, const Scenario& s) {
  std::ostringstream p50, p95, p99;
  p50.precision(3);
  p50 << std::fixed << Percentile(s.latencies, 0.5) * 1e3;
  p95.precision(3);
  p95 << std::fixed << Percentile(s.latencies, 0.95) * 1e3;
  p99.precision(3);
  p99 << std::fixed << Percentile(s.latencies, 0.99) * 1e3;
  table->AddRow({s.name, std::to_string(s.shards),
                 std::to_string(s.latencies.size()), p50.str(), p95.str(),
                 p99.str(), std::to_string(s.errors)});
}

/// One shard count's full serving stack: mirrored stores, a
/// QueryService + loopback QueryServer per shard, remote backends, and
/// the coordinator fanning over them. Declaration order doubles as the
/// teardown order contract (coordinator first, servers before stores).
struct LoopbackStack {
  std::unique_ptr<shard::ShardedDatabase> sharded;
  std::vector<std::unique_ptr<QueryService>> services;
  std::vector<std::unique_ptr<net::QueryServer>> servers;
  std::unique_ptr<shard::Coordinator> coordinator;

  LoopbackStack() = default;
  LoopbackStack(LoopbackStack&&) = default;
  LoopbackStack& operator=(LoopbackStack&&) = default;
  ~LoopbackStack() {
    coordinator.reset();
    for (auto& server : servers) server->Stop();
  }
};

Result<LoopbackStack> BuildLoopbackStack(const MultimediaDatabase& source,
                                         size_t shards) {
  LoopbackStack stack;
  shard::ShardedDatabaseOptions options;
  options.shards = shards;
  MMDB_ASSIGN_OR_RETURN(stack.sharded, shard::ShardedDatabase::Open(options));
  MMDB_RETURN_IF_ERROR(shard::MirrorDatabase(source, stack.sharded.get()));
  std::vector<std::vector<std::unique_ptr<shard::ShardBackend>>> backends;
  for (size_t s = 0; s < shards; ++s) {
    stack.services.push_back(
        std::make_unique<QueryService>(stack.sharded->shard(s)));
    stack.servers.push_back(std::make_unique<net::QueryServer>(
        stack.sharded->shard(s), stack.services.back().get()));
    MMDB_RETURN_IF_ERROR(stack.servers.back()->Start());
    std::vector<std::unique_ptr<shard::ShardBackend>> replicas;
    replicas.push_back(std::make_unique<shard::RemoteShardBackend>(
        "127.0.0.1", stack.servers.back()->port(), &stack.sharded->catalog(),
        s));
    backends.push_back(std::move(replicas));
  }
  stack.coordinator = std::make_unique<shard::Coordinator>(
      std::move(backends), &stack.sharded->catalog());
  return stack;
}

int Run(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const int rounds = quick ? 4 : 20;
  const int degraded_queries = quick ? 8 : 30;

  std::cout << "=== Sharded corpus: scatter-gather scaling and degraded "
               "tail ===\n"
            << "hardware threads available: "
            << std::thread::hardware_concurrency() << "\n\n";

  datasets::DatasetSpec spec;
  spec.kind = datasets::DatasetKind::kHelmets;
  spec.total_images = quick ? 240 : 600;
  spec.edited_fraction = 0.8;
  spec.min_ops = 4;
  spec.max_ops = 10;
  spec.seed = 70001;
  auto db = bench::BuildDatabase(spec, nullptr);
  if (!db.ok()) {
    std::cerr << "dataset build failed: " << db.status().ToString() << "\n";
    return 1;
  }

  Rng rng(70005);
  const auto windows = datasets::MakeGroundedRangeWorkload(
      (*db)->collection(), (*db)->quantizer(), datasets::HelmetPalette(), 12,
      rng);
  std::vector<QueryRequest> requests;
  for (const RangeQuery& window : windows) {
    requests.push_back(QueryRequest::Range(window, QueryMethod::kRbm));
  }

  // --- Scaling: 1/2/4/8 loopback shards vs the embedded store --------
  QueryService embedded_service(db->get());
  std::vector<Scenario> scenarios;
  {
    Scenario embedded;
    embedded.name = "embedded";
    for (const QueryRequest& request : requests) {  // Warm-up pass.
      if (!embedded_service.Execute(request).ok()) ++embedded.errors;
    }
    for (int round = 0; round < rounds; ++round) {
      for (const QueryRequest& request : requests) {
        Stopwatch call;
        if (!embedded_service.Execute(request).ok()) ++embedded.errors;
        embedded.latencies.push_back(call.ElapsedSeconds());
      }
    }
    scenarios.push_back(std::move(embedded));
  }

  for (size_t shards : kShardCounts) {
    auto stack = BuildLoopbackStack(**db, shards);
    if (!stack.ok()) {
      std::cerr << "stack build (" << shards
                << " shards) failed: " << stack.status().ToString() << "\n";
      return 1;
    }
    Scenario scenario;
    scenario.name = "loopback-" + std::to_string(shards);
    scenario.shards = shards;
    // Correctness gate before any timing: the fanned answer must carry
    // exactly the embedded ids (RBM emits in scan order, which the
    // coordinator's canonical merge reproduces bit-for-bit).
    for (const QueryRequest& request : requests) {
      const auto fanned = stack->coordinator->Execute(request);
      const auto reference = embedded_service.Execute(request);
      if (!fanned.ok() || !reference.ok() || !fanned->complete ||
          fanned->result.ids != reference->ids) {
        std::cerr << "fanned answer diverges from embedded at " << shards
                  << " shards\n";
        return 1;
      }
    }
    for (int round = 0; round < rounds; ++round) {
      for (const QueryRequest& request : requests) {
        Stopwatch call;
        const auto fanned = stack->coordinator->Execute(request);
        if (!fanned.ok() || !fanned->complete) ++scenario.errors;
        scenario.latencies.push_back(call.ElapsedSeconds());
      }
    }
    scenarios.push_back(std::move(scenario));
  }
  std::cout << "correctness: fanned answers identical to embedded dispatch "
               "at every shard count\n\n";

  TablePrinter scaling_table({"scenario", "shards", "queries", "p50 ms",
                                    "p95 ms", "p99 ms", "errors"});
  for (const Scenario& s : scenarios) PrintScenario(&scaling_table, s);
  scaling_table.Print(std::cout);

  // --- Degraded tail: a stalled primary disk vs the hedged replica ---
  // Shard 0's primary store lives on a real page file behind a
  // FaultInjectingEnv with a pool too small to absorb reads; shard 0's
  // replica is a healthy in-memory mirror (identical global ids — the
  // mirror order is deterministic). Instantiate-method queries force
  // raster reads through the faulty disk.
  const std::string primary_path = "bench_shard_primary.mmdb";
  for (const char* suffix : {".shard0", ".shard0.journal", ".shard1",
                             ".shard1.journal"}) {
    std::error_code ignored;
    std::filesystem::remove(primary_path + suffix, ignored);
  }
  FaultInjectingEnv fault_env(Env::Default());
  shard::ShardedDatabaseOptions primary_options;
  primary_options.shards = 2;
  primary_options.shard_options.path = primary_path;
  primary_options.shard_options.pool_pages = 8;
  primary_options.shard_envs = {&fault_env, Env::Default()};
  auto primary = shard::ShardedDatabase::Open(primary_options);
  if (!primary.ok()) {
    std::cerr << "primary open failed: " << primary.status().ToString()
              << "\n";
    return 1;
  }
  shard::ShardedDatabaseOptions replica_options;
  replica_options.shards = 2;
  auto replica = shard::ShardedDatabase::Open(replica_options);
  if (!replica.ok() ||
      !shard::MirrorDatabase(**db, primary->get()).ok() ||
      !shard::MirrorDatabase(**db, replica->get()).ok()) {
    std::cerr << "degraded-topology mirror failed\n";
    return 1;
  }

  std::vector<std::unique_ptr<QueryService>> degraded_services;
  std::vector<std::vector<std::unique_ptr<shard::ShardBackend>>> backends(2);
  for (size_t s = 0; s < 2; ++s) {
    degraded_services.push_back(
        std::make_unique<QueryService>((*primary)->shard(s)));
    backends[s].push_back(std::make_unique<shard::LocalShardBackend>(
        degraded_services.back().get(), &(*primary)->catalog(), s));
  }
  degraded_services.push_back(
      std::make_unique<QueryService>((*replica)->shard(0)));
  backends[0].push_back(std::make_unique<shard::LocalShardBackend>(
      degraded_services.back().get(), &(*replica)->catalog(), 0));
  shard::CoordinatorOptions degraded_options;
  degraded_options.hedge_delay_seconds = kHedgeDelaySeconds;
  shard::Coordinator coordinator(std::move(backends), &(*primary)->catalog(),
                                 degraded_options);

  std::vector<QueryRequest> instantiate_requests;
  for (const RangeQuery& window : windows) {
    instantiate_requests.push_back(
        QueryRequest::Range(window, QueryMethod::kInstantiate));
  }
  auto run_pass = [&](const char* name) {
    Scenario scenario;
    scenario.name = name;
    scenario.shards = 2;
    for (int i = 0; i < degraded_queries; ++i) {
      const QueryRequest& request =
          instantiate_requests[static_cast<size_t>(i) %
                               instantiate_requests.size()];
      Stopwatch call;
      const auto fanned = coordinator.Execute(request);
      if (!fanned.ok() || !fanned->complete) ++scenario.errors;
      scenario.latencies.push_back(call.ElapsedSeconds());
    }
    return scenario;
  };
  // A hedge-losing primary attempt can outlive Execute(); FaultInjectingEnv
  // is not thread-safe, so every (re-)arming below waits out any orphan
  // first and only then touches the fault plan.
  auto drain_orphans = [](const Scenario& pass) {
    const double worst =
        pass.latencies.empty()
            ? 0.0
            : *std::max_element(pass.latencies.begin(), pass.latencies.end());
    // The stall rides on top of a full execution, so cover both.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(2.0 * worst + kStallSeconds + 0.1));
  };

  const Scenario healthy = run_pass("healthy-2-shards");
  drain_orphans(healthy);
  // One stall, armed while nothing is in flight. p99 over the pass is
  // the worst query, so a single stalled read is exactly the fault the
  // tail claim must absorb — and a single arming cannot race with the
  // env's one-shot fault slot.
  fault_env.StallNth(IoOp::kRead, 1, kStallSeconds);
  const Scenario degraded = run_pass("degraded-hedged");
  drain_orphans(degraded);
  fault_env.ClearFaults();
  const shard::Coordinator::Stats coord_stats = coordinator.stats();

  TablePrinter degraded_table({"scenario", "shards", "queries",
                                     "p50 ms", "p95 ms", "p99 ms", "errors"});
  PrintScenario(&degraded_table, healthy);
  PrintScenario(&degraded_table, degraded);
  std::cout << "\n";
  degraded_table.Print(std::cout);

  const double healthy_p99 = Percentile(healthy.latencies, 0.99);
  const double degraded_p99 = Percentile(degraded.latencies, 0.99);
  const double tail_ratio =
      healthy_p99 > 0 ? degraded_p99 / healthy_p99 : 0.0;
  const bool hedge_holds_tail = tail_ratio <= 1.5;
  std::cout << "\ndegraded tail: p99 " << degraded_p99 * 1e3
            << " ms vs healthy p99 " << healthy_p99 * 1e3 << " ms = "
            << tail_ratio << "x (" << (hedge_holds_tail ? "within" : "OVER")
            << " the 1.5x budget; stall injected " << kStallSeconds * 1e3
            << " ms, hedges launched " << coord_stats.hedges_launched
            << ", wins " << coord_stats.hedge_wins << ")\n";

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("shard");
  json.Key("workload").BeginObject();
  json.Key("dataset").String("helmet");
  json.Key("total_images").Int(spec.total_images);
  json.Key("edited_fraction").Number(spec.edited_fraction);
  json.Key("windows").Int(static_cast<int64_t>(windows.size()));
  json.Key("rounds").Int(rounds);
  json.Key("quick").Bool(quick);
  json.Key("hardware_threads")
      .Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.EndObject();
  json.Key("scaling").BeginArray();
  for (const Scenario& s : scenarios) AddScenarioJson(&json, s);
  json.EndArray();
  json.Key("degraded").BeginArray();
  AddScenarioJson(&json, healthy);
  AddScenarioJson(&json, degraded);
  json.EndArray();
  json.Key("claims").BeginObject();
  json.Key("stall_seconds").Number(kStallSeconds);
  json.Key("hedge_delay_seconds").Number(kHedgeDelaySeconds);
  json.Key("degraded_p99_over_healthy_p99").Number(tail_ratio);
  json.Key("hedge_holds_tail_within_1_5x").Bool(hedge_holds_tail);
  json.Key("hedges_launched").Int(coord_stats.hedges_launched);
  json.Key("hedge_wins").Int(coord_stats.hedge_wins);
  json.EndObject();
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("shard", json.Take())) return 1;

  std::cout << "\nExpected shape: loopback sharding pays a framing tax at 1 "
               "shard and wins it back as shards parallelize the scan; the "
               "degraded scenario's tail stays near healthy because the "
               "hedge reroutes stalled reads to the replica after "
            << kHedgeDelaySeconds * 1e3 << " ms instead of waiting out the "
            << kStallSeconds * 1e3 << " ms stall.\n";
  return 0;
}

}  // namespace
}  // namespace mmdb

int main(int argc, char** argv) { return mmdb::Run(argc, argv); }
