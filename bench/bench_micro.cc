// Microbenchmarks (google-benchmark) for the building blocks: rule
// application per operation type, the BOUNDS fold, histogram extraction,
// instantiation, PPM codec, blob store, and R-tree operations.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "core/bounds.h"
#include "core/histogram.h"
#include "core/rules.h"
#include "datasets/augment.h"
#include "datasets/generators.h"
#include "image/editor.h"
#include "image/ppm_io.h"
#include "index/rtree.h"
#include "storage/object_store.h"
#include "util/random.h"

namespace mmdb {
namespace {

Image BenchImage(int32_t side = 96) {
  Rng rng(1);
  return datasets::MakeHelmetImages(1, rng, side)[0].image;
}

void BM_HistogramExtraction(benchmark::State& state) {
  const Image image = BenchImage(static_cast<int32_t>(state.range(0)));
  const ColorQuantizer quantizer(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractHistogram(image, quantizer));
  }
  state.SetItemsProcessed(state.iterations() * image.PixelCount());
}
BENCHMARK(BM_HistogramExtraction)->Arg(32)->Arg(96)->Arg(256);

void BM_RuleApplication(benchmark::State& state) {
  const ColorQuantizer quantizer(4);
  const RuleEngine engine(quantizer);
  const EditOp ops[] = {
      EditOp(DefineOp{Rect(2, 2, 60, 60)}),
      EditOp(ModifyOp{colors::kRed, colors::kBlue}),
      EditOp(CombineOp::BoxBlur()),
      EditOp(MutateOp::Translation(5, 5)),
      EditOp(MergeOp{}),
  };
  const EditOp& op = ops[state.range(0)];
  for (auto _ : state) {
    RuleState rule_state = RuleEngine::InitialState(1000, 96, 96);
    benchmark::DoNotOptimize(
        engine.ApplyRule(op, 0, nullptr, &rule_state));
  }
  state.SetLabel(EditOpToString(op).substr(0, 12));
}
BENCHMARK(BM_RuleApplication)->DenseRange(0, 4);

void BM_BoundsFoldVsScriptLength(benchmark::State& state) {
  const ColorQuantizer quantizer(4);
  const RuleEngine engine(quantizer);
  Rng rng(2);
  const EditScript script = datasets::MakeRandomScript(
      1, 96, 96, /*all_widening=*/true, static_cast<int>(state.range(0)),
      datasets::HelmetPalette(), {}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeBounds(engine, script, 0, 1000, 96, 96, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(script.ops.size()));
}
BENCHMARK(BM_BoundsFoldVsScriptLength)->Arg(2)->Arg(8)->Arg(32);

void BM_Instantiation(benchmark::State& state) {
  const Image base = BenchImage(96);
  Rng rng(3);
  const EditScript script = datasets::MakeRandomScript(
      1, 96, 96, /*all_widening=*/true, static_cast<int>(state.range(0)),
      datasets::HelmetPalette(), {}, rng);
  const Editor editor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(editor.Instantiate(base, script));
  }
}
BENCHMARK(BM_Instantiation)->Arg(2)->Arg(8);

void BM_PpmEncodeDecode(benchmark::State& state) {
  const Image image = BenchImage(96);
  for (auto _ : state) {
    const std::string encoded = EncodePpm(image, PpmFormat::kBinary);
    benchmark::DoNotOptimize(DecodePpm(encoded));
  }
  state.SetBytesProcessed(state.iterations() * image.PixelCount() * 3);
}
BENCHMARK(BM_PpmEncodeDecode);

void BM_MemoryStorePutGet(benchmark::State& state) {
  const std::string value(static_cast<size_t>(state.range(0)), 'x');
  uint64_t key = 1;
  MemoryObjectStore store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Put(key, value));
    benchmark::DoNotOptimize(store.Get(key));
    ++key;
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MemoryStorePutGet)->Arg(128)->Arg(16384);

void BM_RTreeInsert(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    RTree tree(8);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      std::vector<double> point(8);
      for (double& v : point) v = rng.NextDouble();
      benchmark::DoNotOptimize(
          tree.Insert(HyperRect::Point(std::move(point)), i + 1));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert)->Arg(100)->Arg(1000);

void BM_RTreeRangeSearch(benchmark::State& state) {
  Rng rng(5);
  RTree tree(8);
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> point(8);
    for (double& v : point) v = rng.NextDouble();
    if (!tree.Insert(HyperRect::Point(std::move(point)), i + 1).ok()) {
      state.SkipWithError("insert failed");
      return;
    }
  }
  HyperRect query;
  query.min.assign(8, 0.25);
  query.max.assign(8, 0.75);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeSearch(query));
  }
}
BENCHMARK(BM_RTreeRangeSearch);

}  // namespace
}  // namespace mmdb

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to the repo's
// machine-readable report convention (BENCH_micro.json, google-benchmark's
// own JSON schema). Explicit --benchmark_out/--benchmark_out_format flags
// still win because they are parsed after the injected defaults.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.push_back(argv[0]);
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  args.push_back(out_flag.data());
  args.push_back(format_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::cout << "machine-readable report: BENCH_micro.json\n";
  return 0;
}
