// Ablation B (DESIGN.md): cost scaling of the rule-based methods with
// (a) the number of operations per edited image and (b) the quantizer
// resolution. Rule cost is per-operation and pixel-free, so both methods
// should scale linearly in script length and be independent of image
// size — the property that makes RBM/BWM beat instantiation.

#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

int SweepOpsPerScript(bench::JsonWriter* json) {
  std::cout << "--- (a) avg query time vs. operations per edited image "
               "(helmet, 400 images, 75% edit-stored) ---\n";
  TablePrinter table({"ops/script", "RBM (ms/query)", "BWM (ms/query)",
                      "instantiate (ms/query)"});
  json->Key("ops_sweep").BeginArray();
  for (int ops : {1, 2, 4, 8, 16, 32}) {
    datasets::DatasetSpec spec;
    spec.kind = datasets::DatasetKind::kHelmets;
    spec.total_images = 200;
    spec.edited_fraction = 0.75;
    spec.min_ops = ops;
    spec.max_ops = ops;
    spec.seed = 777;
    datasets::DatasetStats stats;
    auto db = bench::BuildDatabase(spec, &stats);
    if (!db.ok()) {
      std::cerr << db.status().ToString() << "\n";
      return 1;
    }
    Rng rng(11);
    const auto workload = datasets::MakeRangeWorkload(
        (*db)->quantizer(), datasets::HelmetPalette(), 10, rng);
    const auto rbm =
        bench::TimeWorkload(**db, workload, QueryMethod::kRbm, 2);
    const auto bwm =
        bench::TimeWorkload(**db, workload, QueryMethod::kBwm, 2);
    const auto inst =
        bench::TimeWorkload(**db, workload, QueryMethod::kInstantiate, 1);
    if (!rbm.ok() || !bwm.ok() || !inst.ok()) return 1;
    table.AddRow({TablePrinter::Cell(ops),
                  TablePrinter::Cell(rbm->avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(bwm->avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(inst->avg_query_seconds * 1e3, 4)});
    json->BeginObject();
    json->Key("ops_per_script").Int(ops);
    json->Key("rbm").BeginObject();
    bench::AddTimingFields(json, *rbm);
    json->EndObject();
    json->Key("bwm").BeginObject();
    bench::AddTimingFields(json, *bwm);
    json->EndObject();
    json->Key("instantiate").BeginObject();
    bench::AddTimingFields(json, *inst);
    json->EndObject();
    json->EndObject();
  }
  table.Print(std::cout);
  json->EndArray();
  return 0;
}

int SweepQuantizer(bench::JsonWriter* json) {
  std::cout << "\n--- (b) avg query time vs. quantizer divisions per axis "
               "(flag, 300 images, 75% edit-stored) ---\n";
  TablePrinter table(
      {"divisions", "bins", "RBM (ms/query)", "BWM (ms/query)"});
  json->Key("quantizer_sweep").BeginArray();
  for (int divisions : {2, 4, 8}) {
    DatabaseOptions options;
    options.quantizer_divisions = divisions;
    auto db_or = MultimediaDatabase::Open(options);
    if (!db_or.ok()) return 1;
    auto db = std::move(db_or).value();
    datasets::DatasetSpec spec;
    spec.kind = datasets::DatasetKind::kFlags;
    spec.total_images = 300;
    spec.edited_fraction = 0.75;
    spec.seed = 888;
    if (!datasets::BuildAugmentedDatabase(db.get(), spec).ok()) return 1;
    Rng rng(13);
    const auto workload = datasets::MakeRangeWorkload(
        db->quantizer(), datasets::FlagPalette(), 10, rng);
    const auto rbm =
        bench::TimeWorkload(*db, workload, QueryMethod::kRbm, 2);
    const auto bwm =
        bench::TimeWorkload(*db, workload, QueryMethod::kBwm, 2);
    if (!rbm.ok() || !bwm.ok()) return 1;
    table.AddRow({TablePrinter::Cell(divisions),
                  TablePrinter::Cell(divisions * divisions * divisions),
                  TablePrinter::Cell(rbm->avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(bwm->avg_query_seconds * 1e3, 4)});
    json->BeginObject();
    json->Key("divisions").Int(divisions);
    json->Key("bins").Int(divisions * divisions * divisions);
    json->Key("rbm").BeginObject();
    bench::AddTimingFields(json, *rbm);
    json->EndObject();
    json->Key("bwm").BeginObject();
    bench::AddTimingFields(json, *bwm);
    json->EndObject();
    json->EndObject();
  }
  table.Print(std::cout);
  json->EndArray();
  return 0;
}

int Run() {
  std::cout << "=== Ablation B: rule cost scaling ===\n\n";
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("ablate_scale");
  if (SweepOpsPerScript(&json) != 0) return 1;
  if (SweepQuantizer(&json) != 0) return 1;
  std::cout << "\nExpected shape: RBM/BWM grow linearly with ops/script "
               "and are insensitive to quantizer resolution (one bin is "
               "probed per range query); instantiation dwarfs both.\n";
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("ablate_scale", json.Take())) return 1;
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
