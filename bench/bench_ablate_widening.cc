// Ablation A (DESIGN.md): sensitivity of BWM's advantage to the fraction
// of edited images whose operations are all bound-widening. The paper
// observes its gains shrink as more images carry non-bound-widening
// operations; this sweep isolates that effect at a fixed edit-stored
// percentage.

#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

int Run() {
  std::cout << "=== Ablation A: BWM speedup vs. fraction of bound-widening "
               "edited images (helmet data set, 80% edit-stored) ===\n\n";
  TablePrinter table({"widening prob", "widening-only", "unclassified",
                      "RBM (ms/query)", "BWM (ms/query)", "speedup %"});
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("ablate_widening");
  json.Key("workload").BeginObject();
  json.Key("dataset").String("helmet");
  json.Key("total_images").Int(500);
  json.Key("edited_fraction").Number(0.8);
  json.Key("queries").Int(20);
  json.Key("repeats").Int(7);
  json.EndObject();
  json.Key("points").BeginArray();
  for (double probability : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    datasets::DatasetSpec spec;
    spec.kind = datasets::DatasetKind::kHelmets;
    spec.total_images = 500;
    spec.edited_fraction = 0.8;
    spec.widening_probability = probability;
    spec.seed = 4242;
    datasets::DatasetStats stats;
    auto db = bench::BuildDatabase(spec, &stats);
    if (!db.ok()) {
      std::cerr << db.status().ToString() << "\n";
      return 1;
    }
    Rng rng(99);
    const auto workload = datasets::MakeRangeWorkload(
        (*db)->quantizer(), datasets::HelmetPalette(), 20, rng);
    const auto timed = bench::TimeMethodsInterleaved(
        **db, workload, {QueryMethod::kRbm, QueryMethod::kBwm}, 7);
    if (!timed.ok()) {
      std::cerr << timed.status().ToString() << "\n";
      return 1;
    }
    const bench::WorkloadTiming& rbm = (*timed)[0];
    const bench::WorkloadTiming& bwm = (*timed)[1];
    const double speedup =
        (1.0 - bwm.avg_query_seconds / rbm.avg_query_seconds) * 100.0;
    table.AddRow({TablePrinter::Cell(probability, 1),
                  TablePrinter::Cell(stats.widening_only),
                  TablePrinter::Cell(stats.non_widening),
                  TablePrinter::Cell(rbm.avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(bwm.avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(speedup, 2)});
    json.BeginObject();
    json.Key("widening_probability").Number(probability);
    json.Key("widening_only").Int(stats.widening_only);
    json.Key("unclassified").Int(stats.non_widening);
    json.Key("speedup_pct").Number(speedup);
    json.Key("rbm").BeginObject();
    bench::AddTimingFields(&json, rbm);
    json.EndObject();
    json.Key("bwm").BeginObject();
    bench::AddTimingFields(&json, bwm);
    json.EndObject();
    json.EndObject();
  }
  table.Print(std::cout);
  json.EndArray();
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("ablate_widening", json.Take())) return 1;
  std::cout << "\nExpected shape: speedup grows with the widening "
               "fraction; at 0.0 the data structure cannot help (every "
               "image is unclassified) and overhead is ~0.\n";
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
