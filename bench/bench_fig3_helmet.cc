// Reproduces paper Figure 3: range-query execution time vs. percentage of
// images stored as sequences of editing operations, helmet data set,
// RBM ("w/out data structure") vs BWM ("with data structure").

#include "bench_common.h"

int main() {
  mmdb::bench::FigureSweepConfig config;
  config.kind = mmdb::datasets::DatasetKind::kHelmets;
  config.figure_name = "Figure 3";
  config.json_name = "fig3_helmet";
  return mmdb::bench::RunFigureSweep(config);
}
