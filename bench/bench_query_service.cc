// Query service throughput: batched concurrent execution on the
// persistent pool versus serial single-query facade dispatch, swept over
// batch size x service threads (beyond-paper; the serving-shaped
// counterpart of Ablation D's intra-query scaling).
//
// The harness first proves correctness — ExecuteBatch answers on the
// helmet and flag collections must be identical (ids and order) to
// serial RunRange / RunConjunctive for every QueryMethod — and only then
// times the sweep.

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/query_service.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

const QueryMethod kAllMethods[] = {
    QueryMethod::kInstantiate, QueryMethod::kRbm, QueryMethod::kBwm,
    QueryMethod::kBwmIndexed, QueryMethod::kParallelRbm};

Result<QueryResult> RunSerial(const MultimediaDatabase& db,
                              const QueryRequest& request) {
  if (const RangeQuery* range = request.range()) {
    return db.RunRange(*range, request.method);
  }
  return db.RunConjunctive(*request.conjunctive(), request.method);
}

/// ExecuteBatch vs serial dispatch over every method; returns false (and
/// prints the first mismatch) unless all answers are identical.
bool VerifyCollection(const std::string& name, const MultimediaDatabase& db,
                      const std::vector<RangeQuery>& windows) {
  std::vector<QueryRequest> requests;
  for (QueryMethod method : kAllMethods) {
    for (const RangeQuery& window : windows) {
      requests.push_back(QueryRequest::Range(window, method));
    }
    for (size_t i = 0; i + 1 < windows.size(); i += 2) {
      ConjunctiveQuery conjunctive;
      conjunctive.conjuncts.push_back(windows[i]);
      conjunctive.conjuncts.push_back(windows[i + 1]);
      requests.push_back(QueryRequest::Conjunctive(conjunctive, method));
    }
  }
  QueryService service(&db, QueryServiceOptions{8, {}});
  const auto batched = service.ExecuteBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto serial = RunSerial(db, requests[i]);
    if (!serial.ok() || !batched[i].ok() ||
        serial->ids != batched[i]->ids) {
      std::cerr << name << ": batched answer diverges from serial for "
                << "method " << QueryMethodName(requests[i].method)
                << " request " << i << "\n";
      return false;
    }
  }
  std::cout << name << ": " << requests.size()
            << " batched answers identical to serial dispatch (all "
            << std::size(kAllMethods) << " methods)\n";
  return true;
}

int Run() {
  std::cout << "=== Query service: batched throughput vs serial dispatch "
               "===\n"
            << "hardware threads available: "
            << std::thread::hardware_concurrency()
            << " (speedups track physical cores; on few-core machines "
               "the flat tail is the correct reading)\n\n";

  // The paper's two workload shapes: helmet (few colors, heavy scripts)
  // and flag (Figure 4's collection).
  datasets::DatasetSpec helmet_spec;
  helmet_spec.kind = datasets::DatasetKind::kHelmets;
  helmet_spec.total_images = 600;
  helmet_spec.edited_fraction = 0.85;
  helmet_spec.min_ops = 6;
  helmet_spec.max_ops = 12;
  helmet_spec.seed = 41001;
  datasets::DatasetSpec flag_spec;
  flag_spec.kind = datasets::DatasetKind::kFlags;
  flag_spec.total_images = 400;
  flag_spec.edited_fraction = 0.8;
  flag_spec.seed = 41003;

  auto helmets = bench::BuildDatabase(helmet_spec, nullptr);
  auto flags = bench::BuildDatabase(flag_spec, nullptr);
  if (!helmets.ok() || !flags.ok()) {
    std::cerr << "dataset build failed\n";
    return 1;
  }

  Rng rng(41005);
  const auto helmet_windows = datasets::MakeGroundedRangeWorkload(
      (*helmets)->collection(), (*helmets)->quantizer(),
      datasets::HelmetPalette(), 12, rng);
  const auto flag_windows = datasets::MakeGroundedRangeWorkload(
      (*flags)->collection(), (*flags)->quantizer(),
      datasets::FlagPalette(), 12, rng);

  if (!VerifyCollection("helmet", **helmets, helmet_windows) ||
      !VerifyCollection("flag", **flags, flag_windows)) {
    return 1;
  }
  std::cout << "\n";

  // Throughput sweep on the helmet collection with the RBM access path
  // (the heaviest per-query work, so inter-query parallelism has
  // something to chew on).
  const MultimediaDatabase& db = **helmets;
  const int rounds = 7;

  TablePrinter table({"batch", "threads", "queries/s", "ms/query",
                      "speedup vs serial"});
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("query_service");
  json.Key("workload").BeginObject();
  json.Key("dataset").String("helmet");
  json.Key("total_images").Int(600);
  json.Key("edited_fraction").Number(0.85);
  json.Key("method").String("rbm");
  json.Key("rounds").Int(rounds);
  json.Key("hardware_threads")
      .Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.EndObject();
  json.Key("points").BeginArray();
  for (int batch_size : {8, 32, 128}) {
    std::vector<QueryRequest> batch;
    batch.reserve(static_cast<size_t>(batch_size));
    for (int i = 0; i < batch_size; ++i) {
      batch.push_back(QueryRequest::Range(
          helmet_windows[static_cast<size_t>(i) % helmet_windows.size()],
          QueryMethod::kRbm));
    }

    // Serial single-query dispatch baseline (median of rounds).
    std::vector<double> serial_rounds;
    for (int r = 0; r < rounds; ++r) {
      Stopwatch watch;
      for (const QueryRequest& request : batch) {
        if (!RunSerial(db, request).ok()) return 1;
      }
      serial_rounds.push_back(watch.ElapsedSeconds());
    }
    std::sort(serial_rounds.begin(), serial_rounds.end());
    const double serial_seconds = serial_rounds[serial_rounds.size() / 2];
    table.AddRow({TablePrinter::Cell(batch_size), "serial",
                  TablePrinter::Cell(batch_size / serial_seconds, 1),
                  TablePrinter::Cell(serial_seconds / batch_size * 1e3, 4),
                  TablePrinter::Cell(1.0, 2)});
    json.BeginObject();
    json.Key("batch_size").Int(batch_size);
    json.Key("threads").Int(0);
    json.Key("mode").String("serial");
    json.Key("queries_per_second").Number(batch_size / serial_seconds);
    json.Key("avg_query_seconds").Number(serial_seconds / batch_size);
    json.Key("max_round_seconds").Number(serial_rounds.back());
    json.Key("speedup_vs_serial").Number(1.0);
    json.EndObject();

    for (int threads : {1, 2, 4, 8}) {
      QueryService service(&db, QueryServiceOptions{threads, {}});
      (void)service.ExecuteBatch(batch);  // Warm-up.
      std::vector<double> pooled_rounds;
      for (int r = 0; r < rounds; ++r) {
        Stopwatch watch;
        const auto results = service.ExecuteBatch(batch);
        pooled_rounds.push_back(watch.ElapsedSeconds());
        for (const auto& result : results) {
          if (!result.ok()) return 1;
        }
      }
      std::sort(pooled_rounds.begin(), pooled_rounds.end());
      const double pooled_seconds = pooled_rounds[pooled_rounds.size() / 2];
      table.AddRow({TablePrinter::Cell(batch_size),
                    TablePrinter::Cell(threads),
                    TablePrinter::Cell(batch_size / pooled_seconds, 1),
                    TablePrinter::Cell(pooled_seconds / batch_size * 1e3, 4),
                    TablePrinter::Cell(serial_seconds / pooled_seconds, 2)});
      json.BeginObject();
      json.Key("batch_size").Int(batch_size);
      json.Key("threads").Int(threads);
      json.Key("mode").String("pooled");
      json.Key("queries_per_second").Number(batch_size / pooled_seconds);
      json.Key("avg_query_seconds").Number(pooled_seconds / batch_size);
      json.Key("max_round_seconds").Number(pooled_rounds.back());
      json.Key("speedup_vs_serial")
          .Number(serial_seconds / pooled_seconds);
      json.EndObject();
    }
  }
  table.Print(std::cout);
  json.EndArray();

  QueryService service(&db, QueryServiceOptions{8, {}});
  std::vector<QueryRequest> final_batch;
  for (const RangeQuery& window : helmet_windows) {
    final_batch.push_back(QueryRequest::Range(window, QueryMethod::kBwm));
  }
  (void)service.ExecuteBatch(final_batch);
  std::cout << "\nService counter snapshot after one BWM batch:\n";
  const QueryService::CounterSnapshot snapshot = service.Snapshot();
  snapshot.PrintTo(std::cout);
  json.Key("final_bwm_batch").BeginObject();
  json.Key("queries").Int(snapshot.queries);
  json.Key("pool_tasks").Int(snapshot.pool_tasks);
  json.Key("inline_tasks").Int(snapshot.inline_tasks);
  json.Key("total_queue_wait_seconds")
      .Number(snapshot.total_queue_wait_seconds);
  json.Key("max_queue_wait_seconds")
      .Number(snapshot.max_queue_wait_seconds);
  json.Key("method_latency").BeginObject();
  for (const auto& [method, latency] : snapshot.method_latency) {
    json.Key(QueryMethodName(method)).BeginObject();
    json.Key("count").Int(latency.count);
    json.Key("p50_seconds").Number(latency.p50_seconds);
    json.Key("p95_seconds").Number(latency.p95_seconds);
    json.Key("max_seconds").Number(latency.max_seconds);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("query_service", json.Take())) return 1;
  std::cout << "\nExpected shape: throughput scales with min(threads, "
               "cores) and grows with batch size as pool dispatch costs "
               "amortize; the serial row is the single-query facade "
               "dispatch the service replaces.\n";
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
