// Planner benchmark: a 3-conjunct query whose conjuncts are written
// broadest-first, with one predicate ~100x more selective than the
// others. The unplanned processors (kRbm / kBwm) evaluate the
// conjunction as written — folding rules for every edited image — while
// kPlanned reorders the selective predicate into the driver seat, picks
// its access method from the Fig 3/4 cost model, and only
// residual-filters the driver's survivors.
//
// Emits BENCH_planner.json with the per-method timings, the rendered
// plan, and the planned-vs-unplanned speedups.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/plan.h"
#include "core/query_service.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

/// ~1% of the binary images are mostly red; everything else is
/// blue/white mixes, and every edited script rides a blue base. A
/// `red >= 0.5` predicate is therefore ~100x more selective than the
/// broad window predicates next to it.
Result<std::unique_ptr<MultimediaDatabase>> BuildSkewedDatabase(
    int binaries, int edited, int ops_per_script) {
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<MultimediaDatabase> db,
                        MultimediaDatabase::Open());
  std::vector<ObjectId> blue_bases;
  const int rare = std::max(1, binaries / 100);
  for (int i = 0; i < binaries; ++i) {
    Image image(16, 16, i < rare ? colors::kRed : colors::kBlue);
    if (i >= rare) {
      // A varying white stripe so the broad predicates stay broad but
      // the per-bin distributions are not degenerate.
      image.Fill(Rect(0, 0, 16, 1 + (i % 8)), colors::kWhite);
    }
    MMDB_ASSIGN_OR_RETURN(const ObjectId id, db->InsertBinaryImage(image));
    if (i >= rare) blue_bases.push_back(id);
  }
  for (int i = 0; i < edited; ++i) {
    EditScript script;
    script.base_id = blue_bases[static_cast<size_t>(i) % blue_bases.size()];
    for (int op = 0; op < ops_per_script; ++op) {
      script.ops.emplace_back(op % 2 == 0
                                  ? ModifyOp{colors::kWhite, colors::kGreen}
                                  : ModifyOp{colors::kGreen, colors::kWhite});
    }
    MMDB_RETURN_IF_ERROR(db->InsertEditedImage(script).status());
  }
  return db;
}

struct MethodTiming {
  QueryMethod method = QueryMethod::kRbm;
  double avg_query_seconds = 0.0;
  QueryStats stats;
  size_t results = 0;
};

Result<MethodTiming> TimeConjunctive(const MultimediaDatabase& db,
                                     const ConjunctiveQuery& query,
                                     QueryMethod method, int repeats) {
  MethodTiming timing;
  timing.method = method;
  MMDB_RETURN_IF_ERROR(db.RunConjunctive(query, method).status());  // Warm.
  double total = 0.0;
  for (int round = 0; round < repeats; ++round) {
    Stopwatch watch;
    MMDB_ASSIGN_OR_RETURN(const QueryResult result,
                          db.RunConjunctive(query, method));
    total += watch.ElapsedSeconds();
    timing.stats = result.stats;
    timing.results = result.ids.size();
  }
  timing.avg_query_seconds = total / repeats;
  return timing;
}

int Run() {
  constexpr int kBinaries = 400;
  constexpr int kEdited = 400;
  constexpr int kOpsPerScript = 8;
  constexpr int kRepeats = 20;

  auto built = BuildSkewedDatabase(kBinaries, kEdited, kOpsPerScript);
  if (!built.ok()) {
    std::cerr << "bench_planner: " << built.status().ToString() << "\n";
    return 1;
  }
  const MultimediaDatabase& db = **built;

  // Written broadest-first: the order a naive author would type it.
  ConjunctiveQuery query;
  RangeQuery broad_white;
  broad_white.bin = db.BinOf(colors::kWhite);
  broad_white.min_fraction = 0.0;
  broad_white.max_fraction = 1.0;
  RangeQuery broad_blue;
  broad_blue.bin = db.BinOf(colors::kBlue);
  broad_blue.min_fraction = 0.0;
  broad_blue.max_fraction = 1.0;
  RangeQuery rare_red;
  rare_red.bin = db.BinOf(colors::kRed);
  rare_red.min_fraction = 0.5;
  rare_red.max_fraction = 1.0;
  query.conjuncts = {broad_white, broad_blue, rare_red};

  const QueryPlanner planner(db);
  const QueryPlan plan = planner.PlanConjunctive(query);
  std::cout << plan.Explain() << "\n";

  const QueryMethod methods[] = {QueryMethod::kRbm, QueryMethod::kBwm,
                                 QueryMethod::kPlanned};
  std::vector<MethodTiming> timings;
  for (QueryMethod method : methods) {
    auto timing = TimeConjunctive(db, query, method, kRepeats);
    if (!timing.ok()) {
      std::cerr << "bench_planner: " << QueryMethodName(method) << ": "
                << timing.status().ToString() << "\n";
      return 1;
    }
    timings.push_back(*timing);
  }

  // Identical result sets are the planner's contract; refuse to report
  // timings for diverging answers.
  for (const MethodTiming& timing : timings) {
    if (timing.results != timings.front().results) {
      std::cerr << "bench_planner: result size diverges for "
                << QueryMethodName(timing.method) << "\n";
      return 1;
    }
  }

  TablePrinter table({"method", "avg ms/query", "histograms", "bounded",
                      "rules"});
  for (const MethodTiming& timing : timings) {
    table.AddRow({std::string(QueryMethodName(timing.method)),
                  std::to_string(timing.avg_query_seconds * 1e3),
                  std::to_string(timing.stats.binary_images_checked),
                  std::to_string(timing.stats.edited_images_bounded),
                  std::to_string(timing.stats.rules_applied)});
  }
  table.Print(std::cout);

  const double planned = timings[2].avg_query_seconds;
  const double vs_rbm = timings[0].avg_query_seconds / planned;
  const double vs_bwm = timings[1].avg_query_seconds / planned;
  std::cout << "planned speedup: " << vs_rbm << "x vs rbm, " << vs_bwm
            << "x vs bwm\n";

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("planner");
  json.Key("dataset").BeginObject();
  json.Key("binary_images").Int(kBinaries);
  json.Key("edited_images").Int(kEdited);
  json.Key("ops_per_script").Int(kOpsPerScript);
  json.EndObject();
  json.Key("query").String(query.ToString());
  json.Key("plan").String(plan.Explain());
  json.Key("driver_method")
      .String(QueryMethodName(plan.driver().method));
  json.Key("repeats").Int(kRepeats);
  json.Key("methods").BeginArray();
  for (const MethodTiming& timing : timings) {
    json.BeginObject();
    json.Key("method").String(QueryMethodName(timing.method));
    json.Key("avg_query_seconds").Number(timing.avg_query_seconds);
    json.Key("results").Int(static_cast<int64_t>(timing.results));
    json.Key("binary_images_checked")
        .Int(timing.stats.binary_images_checked);
    json.Key("edited_images_bounded")
        .Int(timing.stats.edited_images_bounded);
    json.Key("rules_applied").Int(timing.stats.rules_applied);
    json.EndObject();
  }
  json.EndArray();
  json.Key("planned_speedup_vs_rbm").Number(vs_rbm);
  json.Key("planned_speedup_vs_bwm").Number(vs_bwm);
  json.EndObject();
  if (!bench::WriteBenchReport("planner", json.Take())) return 1;
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
