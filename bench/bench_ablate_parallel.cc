// Ablation D (beyond-paper): multi-threaded RBM scan scaling. The
// per-image BOUNDS folds are embarrassingly parallel, so a modern
// implementation can buy back much of instantiation-free query cost with
// cores — an axis the 2006 prototype did not have.

#include <algorithm>
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "core/parallel.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

int Run() {
  std::cout << "=== Ablation D: parallel RBM scan scaling (helmet data "
               "set, 1200 images, 85% edit-stored) ===\n"
            << "hardware threads available: "
            << std::thread::hardware_concurrency() << "\n\n";

  datasets::DatasetSpec spec;
  spec.kind = datasets::DatasetKind::kHelmets;
  spec.total_images = 1200;
  spec.edited_fraction = 0.85;
  spec.min_ops = 6;
  spec.max_ops = 12;
  spec.seed = 31337;
  datasets::DatasetStats stats;
  auto db = bench::BuildDatabase(spec, &stats);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }
  Rng rng(271);
  const auto workload = datasets::MakeGroundedRangeWorkload(
      (*db)->collection(), (*db)->quantizer(), datasets::HelmetPalette(),
      20, rng);

  TablePrinter table({"threads", "ms/query", "speedup vs 1 thread"});
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("ablate_parallel");
  json.Key("workload").BeginObject();
  json.Key("dataset").String("helmet");
  json.Key("total_images").Int(1200);
  json.Key("edited_fraction").Number(0.85);
  json.Key("queries").Int(20);
  json.Key("repeats").Int(7);
  json.Key("hardware_threads")
      .Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.EndObject();
  json.Key("points").BeginArray();
  double baseline = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    const ParallelRbmQueryProcessor processor(&(*db)->collection(),
                                              &(*db)->rule_engine(),
                                              threads);
    // Warm up, then take the median of 7 rounds.
    for (const RangeQuery& query : workload) {
      if (!processor.RunRange(query).ok()) return 1;
    }
    std::vector<double> rounds;
    for (int r = 0; r < 7; ++r) {
      Stopwatch watch;
      for (const RangeQuery& query : workload) {
        const auto result = processor.RunRange(query);
        if (!result.ok()) {
          std::cerr << result.status().ToString() << "\n";
          return 1;
        }
      }
      rounds.push_back(watch.ElapsedSeconds());
    }
    std::sort(rounds.begin(), rounds.end());
    const double per_query =
        rounds[rounds.size() / 2] / static_cast<double>(workload.size());
    if (threads == 1) baseline = per_query;
    table.AddRow({TablePrinter::Cell(threads),
                  TablePrinter::Cell(per_query * 1e3, 4),
                  TablePrinter::Cell(baseline / per_query, 2)});
    json.BeginObject();
    json.Key("threads").Int(threads);
    json.Key("avg_query_seconds").Number(per_query);
    json.Key("p50_round_seconds").Number(rounds[rounds.size() / 2]);
    json.Key("max_round_seconds").Number(rounds.back());
    json.Key("speedup_vs_serial").Number(baseline / per_query);
    json.EndObject();
  }
  table.Print(std::cout);
  json.EndArray();
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("ablate_parallel", json.Take())) return 1;
  std::cout << "\nExpected shape: near-linear speedup until the thread "
               "count approaches the core count (the scan is "
               "embarrassingly parallel; chunk startup costs bound the "
               "tail). On a single-core machine extra threads can only "
               "add scheduling overhead, so ratios below 1.0 there are "
               "the correct reading, not a bug.\n";
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
