// Ablation D (beyond-paper): multi-threaded RBM scan scaling. The
// per-image BOUNDS folds are embarrassingly parallel, so a modern
// implementation can buy back much of instantiation-free query cost with
// cores — an axis the 2006 prototype did not have.

#include <algorithm>
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "core/parallel.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

int Run() {
  std::cout << "=== Ablation D: parallel RBM scan scaling (helmet data "
               "set, 1200 images, 85% edit-stored) ===\n"
            << "hardware threads available: "
            << std::thread::hardware_concurrency() << "\n\n";

  datasets::DatasetSpec spec;
  spec.kind = datasets::DatasetKind::kHelmets;
  spec.total_images = 1200;
  spec.edited_fraction = 0.85;
  spec.min_ops = 6;
  spec.max_ops = 12;
  spec.seed = 31337;
  datasets::DatasetStats stats;
  auto db = bench::BuildDatabase(spec, &stats);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }
  Rng rng(271);
  const auto workload = datasets::MakeGroundedRangeWorkload(
      (*db)->collection(), (*db)->quantizer(), datasets::HelmetPalette(),
      20, rng);

  TablePrinter table({"threads", "ms/query", "speedup vs 1 thread"});
  double baseline = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    const ParallelRbmQueryProcessor processor(&(*db)->collection(),
                                              &(*db)->rule_engine(),
                                              threads);
    // Warm up, then take the median of 7 rounds.
    for (const RangeQuery& query : workload) {
      if (!processor.RunRange(query).ok()) return 1;
    }
    std::vector<double> rounds;
    for (int r = 0; r < 7; ++r) {
      Stopwatch watch;
      for (const RangeQuery& query : workload) {
        const auto result = processor.RunRange(query);
        if (!result.ok()) {
          std::cerr << result.status().ToString() << "\n";
          return 1;
        }
      }
      rounds.push_back(watch.ElapsedSeconds());
    }
    std::sort(rounds.begin(), rounds.end());
    const double per_query =
        rounds[rounds.size() / 2] / static_cast<double>(workload.size());
    if (threads == 1) baseline = per_query;
    table.AddRow({TablePrinter::Cell(threads),
                  TablePrinter::Cell(per_query * 1e3, 4),
                  TablePrinter::Cell(baseline / per_query, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: near-linear speedup until the thread "
               "count approaches the core count (the scan is "
               "embarrassingly parallel; chunk startup costs bound the "
               "tail). On a single-core machine extra threads can only "
               "add scheduling overhead, so ratios below 1.0 there are "
               "the correct reading, not a bug.\n";
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
