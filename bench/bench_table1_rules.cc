// Reproduces paper Table 1: the rules for adjusting the bounds on the
// number of pixels in a histogram bin HB, one row per editing-operation
// condition. For each rule the harness prints the bound adjustment on a
// worked example and validates it against actual instantiation.

#include <iostream>

#include "bench_common.h"
#include "core/bounds.h"
#include "core/histogram.h"
#include "core/rules.h"
#include "image/editor.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

struct WorkedRow {
  std::string operation;
  std::string condition;
  EditScript script;
};

int Run() {
  const ColorQuantizer quantizer(4);
  const RuleEngine engine(quantizer);

  // Worked example: a 10x10 base image, 40 red pixels (4x10 left band),
  // 60 white. Queried bin HB = bin(red). DR = left half (5x10 = 50 px).
  Image base(10, 10, colors::kWhite);
  base.Fill(Rect(0, 0, 4, 10), colors::kRed);
  const BinIndex hb = quantizer.BinOf(colors::kRed);
  const ColorHistogram base_hist = ExtractHistogram(base, quantizer);
  const DefineOp define_left{Rect(0, 0, 5, 10)};

  // Stored target for the non-null Merge row: a 12x12 image, 30% red.
  Image target_image(12, 12, colors::kWhite);
  target_image.Fill(Rect(0, 0, 12, 4), colors::kRed);
  constexpr ObjectId kTargetId = 500;
  const ColorHistogram target_hist =
      ExtractHistogram(target_image, quantizer);
  const TargetBoundsResolver resolver =
      [&](ObjectId id, BinIndex bin) -> Result<TargetBounds> {
    if (id != kTargetId) return Status::NotFound("target");
    TargetBounds out;
    out.hb_min = out.hb_max = target_hist.Count(bin);
    out.size = target_hist.Total();
    out.width = target_image.width();
    out.height = target_image.height();
    return out;
  };
  const ImageResolver pixels = [&](ObjectId id) -> Result<Image> {
    if (id != kTargetId) return Status::NotFound("target");
    return target_image;
  };

  auto make = [&](std::string op, std::string condition,
                  std::vector<EditOp> ops) {
    WorkedRow row;
    row.operation = std::move(op);
    row.condition = std::move(condition);
    row.script.base_id = 1;
    row.script.ops = std::move(ops);
    return row;
  };

  MergeOp merge_target;
  merge_target.target = kTargetId;
  merge_target.x = 2;
  merge_target.y = 2;

  const std::vector<WorkedRow> rows = {
      make("Combine(C1..C9)", "All",
           {define_left, CombineOp::BoxBlur()}),
      make("Modify(old,new)", "RGBnew maps to HB",
           {define_left, ModifyOp{colors::kWhite, colors::kRed}}),
      make("Modify(old,new)", "RGBold maps to HB",
           {define_left, ModifyOp{colors::kRed, colors::kWhite}}),
      make("Modify(old,new)", "Neither maps to HB",
           {define_left, ModifyOp{colors::kBlue, colors::kGreen}}),
      make("Mutate(M11..M33)", "DR contains image (scale 2x2)",
           {MutateOp::Scale(2.0, 2.0)}),
      make("Mutate(M11..M33)", "Rigid body (translate +3,+3)",
           {define_left, MutateOp::Translation(3, 3)}),
      make("Merge(target,x,y)", "Target is NULL",
           {define_left, MergeOp{}}),
      make("Merge(target,x,y)", "Target is not NULL",
           {define_left, merge_target}),
  };

  std::cout
      << "=== Table 1: Rules for adjusting bounds on numbers of pixels in "
         "histogram bin HB ===\n"
         "Worked example: 10x10 base, 40 px in HB (red), DR = left half "
         "(50 px), initial bounds [40, 40], size 100.\n\n";

  TablePrinter table({"Editing Operation", "Condition", "HBmin", "HBmax",
                      "Total px", "exact (instantiated)", "sound?"});
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("table1_rules");
  json.Key("workload").BeginObject();
  json.Key("base_width").Int(10);
  json.Key("base_height").Int(10);
  json.Key("initial_hb_count").Int(base_hist.Count(hb));
  json.Key("rows").Int(static_cast<int64_t>(rows.size()));
  json.EndObject();
  json.Key("rows").BeginArray();
  const Editor editor(pixels);
  bool all_sound = true;
  for (const WorkedRow& row : rows) {
    const auto state =
        ComputeRuleState(engine, row.script, hb, base_hist.Count(hb),
                         base.width(), base.height(), resolver);
    if (!state.ok()) {
      std::cerr << "rule failed: " << state.status().ToString() << "\n";
      return 1;
    }
    const auto instantiated = editor.Instantiate(base, row.script);
    if (!instantiated.ok()) {
      std::cerr << "instantiation failed: "
                << instantiated.status().ToString() << "\n";
      return 1;
    }
    const int64_t exact =
        ExtractHistogram(*instantiated, quantizer).Count(hb);
    const bool sound = state->hb_min <= exact && exact <= state->hb_max &&
                       state->size == instantiated->PixelCount();
    all_sound = all_sound && sound;
    table.AddRow({row.operation, row.condition,
                  TablePrinter::Cell(state->hb_min),
                  TablePrinter::Cell(state->hb_max),
                  TablePrinter::Cell(state->size),
                  TablePrinter::Cell(exact), sound ? "yes" : "NO"});
    json.BeginObject();
    json.Key("operation").String(row.operation);
    json.Key("condition").String(row.condition);
    json.Key("hb_min").Int(state->hb_min);
    json.Key("hb_max").Int(state->hb_max);
    json.Key("total_pixels").Int(state->size);
    json.Key("exact_instantiated").Int(exact);
    json.Key("sound").Bool(sound);
    json.EndObject();
  }
  table.Print(std::cout);
  json.EndArray();
  json.Key("all_sound").Bool(all_sound);
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("table1_rules", json.Take())) return 1;
  std::cout << "\nBound-widening classification (Section 4): Define, "
               "Combine, Modify, Mutate, Merge(NULL) -> widening; "
               "Merge(target) -> not widening.\n"
            << (all_sound ? "All rules sound against instantiation.\n"
                          : "SOUNDNESS VIOLATION DETECTED\n");
  return all_sound ? 0 : 1;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
