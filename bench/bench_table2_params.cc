// Reproduces paper Table 2: default values of parameters used in the
// performance evaluation, measured from the synthetic helmet and flag
// datasets actually built by the figure benches. (The numeric cells of
// Table 2 are lost in the scraped copy of the paper; the *schema* of the
// table is reproduced and filled with this repo's defaults.)

#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

namespace mmdb {
namespace {

int Run() {
  using datasets::DatasetKind;

  struct Column {
    std::string name;
    datasets::DatasetSpec spec;
    datasets::DatasetStats stats;
  };
  std::vector<Column> columns(2);
  columns[0].name = "Helmet";
  columns[0].spec.kind = DatasetKind::kHelmets;
  columns[1].name = "Flag";
  columns[1].spec.kind = DatasetKind::kFlags;
  for (Column& column : columns) {
    column.spec.total_images = 600;
    column.spec.edited_fraction = 0.8;
    column.spec.widening_probability =
        column.spec.kind == DatasetKind::kHelmets ? 0.8 : 0.7;
    column.spec.seed = 2006;
    auto db = bench::BuildDatabase(column.spec, &column.stats);
    if (!db.ok()) {
      std::cerr << db.status().ToString() << "\n";
      return 1;
    }
  }

  std::cout << "=== Table 2: Default values of parameters used in "
               "performance evaluation ===\n\n";
  TablePrinter table({"Description", "Helmet", "Flag"});
  auto row = [&](const std::string& description, auto getter) {
    table.AddRow({description, TablePrinter::Cell(getter(columns[0])),
                  TablePrinter::Cell(getter(columns[1]))});
  };
  row("Number of images in database", [](const Column& c) {
    return static_cast<int64_t>(c.stats.binary_ids.size() +
                                c.stats.edited_ids.size());
  });
  row("Number of binary images in database", [](const Column& c) {
    return static_cast<int64_t>(c.stats.binary_ids.size());
  });
  row("Number of edited images in database", [](const Column& c) {
    return static_cast<int64_t>(c.stats.edited_ids.size());
  });
  table.AddRow({"Average number of operations within an edited image",
                TablePrinter::Cell(columns[0].stats.AvgOpsPerEdited(), 2),
                TablePrinter::Cell(columns[1].stats.AvgOpsPerEdited(), 2)});
  row("Number of edited images that contain only operations with "
      "bound-widening rules",
      [](const Column& c) {
        return static_cast<int64_t>(c.stats.widening_only);
      });
  row("Number of edited images that have an operation whose rule is not "
      "bound-widening",
      [](const Column& c) {
        return static_cast<int64_t>(c.stats.non_widening);
      });
  table.Print(std::cout);
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("table2_params");
  json.Key("datasets").BeginArray();
  for (const Column& column : columns) {
    json.BeginObject();
    json.Key("name").String(column.name);
    json.Key("total_images")
        .Int(static_cast<int64_t>(column.stats.binary_ids.size() +
                                  column.stats.edited_ids.size()));
    json.Key("binary_images")
        .Int(static_cast<int64_t>(column.stats.binary_ids.size()));
    json.Key("edited_images")
        .Int(static_cast<int64_t>(column.stats.edited_ids.size()));
    json.Key("avg_ops_per_edited").Number(column.stats.AvgOpsPerEdited());
    json.Key("widening_only")
        .Int(static_cast<int64_t>(column.stats.widening_only));
    json.Key("non_widening")
        .Int(static_cast<int64_t>(column.stats.non_widening));
    json.EndObject();
  }
  json.EndArray();
  json.Key("registry").Raw(bench::RegistryJson());
  json.EndObject();
  if (!bench::WriteBenchReport("table2_params", json.Take())) return 1;
  std::cout << "\n(Shape per the paper's Table 2; counts are this repo's "
               "defaults because the scraped paper lost the originals.)\n";
  return 0;
}

}  // namespace
}  // namespace mmdb

int main() { return mmdb::Run(); }
