#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb::bench {

namespace {

/// Sorts `samples` in place and fills the timing's percentile fields.
void FillPercentiles(std::vector<double>* samples, WorkloadTiming* timing) {
  if (samples->empty()) return;
  std::sort(samples->begin(), samples->end());
  const auto at = [&](double q) {
    const size_t index = static_cast<size_t>(
        q * static_cast<double>(samples->size() - 1));
    return (*samples)[index];
  };
  timing->p50_query_seconds = at(0.5);
  timing->p95_query_seconds = at(0.95);
  timing->max_query_seconds = samples->back();
}

/// JSON string-escapes `text` into `out` (quotes, backslashes, and
/// control characters — plan renderings embed newlines).
void EscapeJson(std::ostream& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '\\': out << "\\\\"; break;
      case '"': out << "\\\""; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buffer;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

Result<WorkloadTiming> TimeWorkload(const MultimediaDatabase& db,
                                    const std::vector<RangeQuery>& workload,
                                    QueryMethod method, int repeats) {
  WorkloadTiming timing;
  // Warm-up pass so first-touch costs do not skew the first method run.
  for (const RangeQuery& query : workload) {
    MMDB_ASSIGN_OR_RETURN(QueryResult result, db.RunRange(query, method));
    timing.stats += result.stats;
  }
  std::vector<double> samples;
  samples.reserve(workload.size() * static_cast<size_t>(repeats));
  Stopwatch watch;
  for (int r = 0; r < repeats; ++r) {
    for (const RangeQuery& query : workload) {
      Stopwatch per_query;
      MMDB_ASSIGN_OR_RETURN(QueryResult result, db.RunRange(query, method));
      samples.push_back(per_query.ElapsedSeconds());
      // Keep the optimizer honest.
      if (result.ids.size() > (1u << 30)) {
        return Status::Internal("impossible result size");
      }
    }
  }
  timing.total_seconds = watch.ElapsedSeconds();
  timing.queries = static_cast<int>(workload.size()) * repeats;
  timing.avg_query_seconds =
      timing.queries > 0 ? timing.total_seconds / timing.queries : 0.0;
  FillPercentiles(&samples, &timing);
  return timing;
}

Result<std::unique_ptr<MultimediaDatabase>> BuildDatabase(
    const datasets::DatasetSpec& spec, datasets::DatasetStats* stats) {
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<MultimediaDatabase> db,
                        MultimediaDatabase::Open());
  MMDB_ASSIGN_OR_RETURN(datasets::DatasetStats built,
                        datasets::BuildAugmentedDatabase(db.get(), spec));
  if (stats != nullptr) *stats = built;
  return db;
}

Result<std::vector<WorkloadTiming>> TimeMethodsInterleaved(
    const MultimediaDatabase& db, const std::vector<RangeQuery>& workload,
    const std::vector<QueryMethod>& methods, int repeats) {
  std::vector<WorkloadTiming> out(methods.size());
  std::vector<std::vector<double>> round_seconds(methods.size());

  // Warm-up (also collects the work counters once per method).
  for (size_t m = 0; m < methods.size(); ++m) {
    for (const RangeQuery& query : workload) {
      MMDB_ASSIGN_OR_RETURN(QueryResult result,
                            db.RunRange(query, methods[m]));
      out[m].stats += result.stats;
    }
  }
  std::vector<std::vector<double>> samples(methods.size());
  for (int r = 0; r < std::max(1, repeats); ++r) {
    for (size_t m = 0; m < methods.size(); ++m) {
      Stopwatch watch;
      for (const RangeQuery& query : workload) {
        Stopwatch per_query;
        MMDB_ASSIGN_OR_RETURN(QueryResult result,
                              db.RunRange(query, methods[m]));
        samples[m].push_back(per_query.ElapsedSeconds());
        if (result.ids.size() > (1u << 30)) {
          return Status::Internal("impossible result size");
        }
      }
      round_seconds[m].push_back(watch.ElapsedSeconds());
    }
  }
  for (size_t m = 0; m < methods.size(); ++m) {
    std::vector<double>& rounds = round_seconds[m];
    std::sort(rounds.begin(), rounds.end());
    const double median = rounds[rounds.size() / 2];
    out[m].queries = static_cast<int>(workload.size());
    out[m].total_seconds = median;
    out[m].avg_query_seconds =
        workload.empty() ? 0.0 : median / workload.size();
    FillPercentiles(&samples[m], &out[m]);
  }
  return out;
}

int RunFigureSweep(const FigureSweepConfig& config) {
  std::cout << "=== " << config.figure_name
            << ": Range query time vs. percentage of images stored as "
               "editing operations (" << KindName(config.kind)
            << " data set) ===\n"
            << "total images per point: " << config.total_images
            << ", queries: " << config.queries << " x" << config.repeats
            << " repeats, widening probability: "
            << config.widening_probability << ", seed: " << config.seed
            << "\n\n";

  TablePrinter table({"% edit-stored", "RBM w/out DS (ms/query)",
                      "BWM with DS (ms/query)", "BWM+R-tree (ms/query)",
                      "speedup %", "rules RBM", "rules BWM",
                      "skipped by BWM"});
  JsonWriter json;
  json.BeginObject();
  json.Key("bench").String(config.json_name.empty() ? config.figure_name
                                                    : config.json_name);
  json.Key("workload").BeginObject();
  json.Key("figure").String(config.figure_name);
  json.Key("dataset").String(KindName(config.kind));
  json.Key("total_images").Int(config.total_images);
  json.Key("queries").Int(config.queries);
  json.Key("repeats").Int(config.repeats);
  json.Key("widening_probability").Number(config.widening_probability);
  json.Key("min_ops").Int(config.min_ops);
  json.Key("max_ops").Int(config.max_ops);
  json.Key("seed").Int(static_cast<int64_t>(config.seed));
  json.EndObject();
  json.Key("points").BeginArray();
  double speedup_sum = 0.0;
  int points = 0;
  for (int pct = 10; pct <= 90; pct += 10) {
    datasets::DatasetSpec spec;
    spec.kind = config.kind;
    spec.total_images = config.total_images;
    spec.edited_fraction = pct / 100.0;
    spec.widening_probability = config.widening_probability;
    spec.min_ops = config.min_ops;
    spec.max_ops = config.max_ops;
    spec.seed = config.seed + static_cast<uint64_t>(pct);

    datasets::DatasetStats stats;
    auto db = BuildDatabase(spec, &stats);
    if (!db.ok()) {
      std::cerr << "build failed: " << db.status().ToString() << "\n";
      return 1;
    }
    Rng rng(config.seed * 31 + static_cast<uint64_t>(pct));
    const auto workload = datasets::MakeGroundedRangeWorkload(
        (*db)->collection(), (*db)->quantizer(),
        datasets::PaletteFor(config.kind), config.queries, rng);

    const auto timed = TimeMethodsInterleaved(
        **db, workload,
        {QueryMethod::kRbm, QueryMethod::kBwm, QueryMethod::kBwmIndexed},
        config.repeats);
    if (!timed.ok()) {
      std::cerr << "workload failed: " << timed.status().ToString() << "\n";
      return 1;
    }
    const WorkloadTiming& rbm = (*timed)[0];
    const WorkloadTiming& bwm = (*timed)[1];
    const WorkloadTiming& indexed = (*timed)[2];
    const double speedup =
        rbm.avg_query_seconds > 0
            ? (1.0 - bwm.avg_query_seconds / rbm.avg_query_seconds) * 100.0
            : 0.0;
    speedup_sum += speedup;
    ++points;
    table.AddRow({TablePrinter::Cell(pct),
                  TablePrinter::Cell(rbm.avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(bwm.avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(indexed.avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(speedup, 2),
                  TablePrinter::Cell(rbm.stats.rules_applied),
                  TablePrinter::Cell(bwm.stats.rules_applied),
                  TablePrinter::Cell(bwm.stats.edited_images_skipped)});
    json.BeginObject();
    json.Key("edit_stored_pct").Int(pct);
    json.Key("speedup_pct").Number(speedup);
    json.Key("rbm").BeginObject();
    AddTimingFields(&json, rbm);
    json.EndObject();
    json.Key("bwm").BeginObject();
    AddTimingFields(&json, bwm);
    json.EndObject();
    json.Key("bwm_indexed").BeginObject();
    AddTimingFields(&json, indexed);
    json.EndObject();
    json.EndObject();
  }
  table.Print(std::cout);
  if (std::getenv("MMDB_BENCH_CSV") != nullptr) {
    std::cout << "\nCSV:\n";
    table.PrintCsv(std::cout);
  }
  std::cout << "\nAverage speedup of BWM over RBM: "
            << TablePrinter::Cell(speedup_sum / points, 2)
            << "% (paper reports 33.07% helmet / 22.08% flag; shape, not "
               "absolute numbers, is the reproduction target)\n";
  json.EndArray();
  json.Key("average_speedup_pct").Number(speedup_sum / points);
  json.Key("registry").Raw(RegistryJson());
  json.EndObject();
  if (!config.json_name.empty() &&
      !WriteBenchReport(config.json_name, json.Take())) {
    return 1;
  }
  return 0;
}

void JsonWriter::ValuePrefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ << ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  ValuePrefix();
  out_ << '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  ValuePrefix();
  out_ << '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  if (needs_comma_.back()) out_ << ',';
  needs_comma_.back() = true;
  out_ << '"';
  EscapeJson(out_, name);
  out_ << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  ValuePrefix();
  out_ << '"';
  EscapeJson(out_, value);
  out_ << '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  ValuePrefix();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ << buffer;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  ValuePrefix();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  ValuePrefix();
  out_ << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  ValuePrefix();
  out_ << json;
  return *this;
}

std::string RegistryJson() {
  std::ostringstream out;
  obs::Registry::Default().WriteJson(out);
  return out.str();
}

void AddTimingFields(JsonWriter* json, const WorkloadTiming& timing) {
  json->Key("queries").Int(timing.queries);
  json->Key("total_seconds").Number(timing.total_seconds);
  json->Key("avg_query_seconds").Number(timing.avg_query_seconds);
  json->Key("p50_query_seconds").Number(timing.p50_query_seconds);
  json->Key("p95_query_seconds").Number(timing.p95_query_seconds);
  json->Key("max_query_seconds").Number(timing.max_query_seconds);
  json->Key("binary_images_checked").Int(timing.stats.binary_images_checked);
  json->Key("edited_images_bounded").Int(timing.stats.edited_images_bounded);
  json->Key("edited_images_skipped").Int(timing.stats.edited_images_skipped);
  json->Key("rules_applied").Int(timing.stats.rules_applied);
  json->Key("images_instantiated").Int(timing.stats.images_instantiated);
}

bool WriteBenchReport(const std::string& bench_name,
                      const std::string& json) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path, std::ios::trunc);
  out << json << "\n";
  if (!out) {
    std::cerr << "failed to write " << path << "\n";
    return false;
  }
  std::cout << "machine-readable report: " << path << "\n";
  return true;
}

std::string KindName(datasets::DatasetKind kind) {
  switch (kind) {
    case datasets::DatasetKind::kFlags:
      return "flag";
    case datasets::DatasetKind::kHelmets:
      return "helmet";
    case datasets::DatasetKind::kRoadSigns:
      return "road-sign";
  }
  return "unknown";
}

}  // namespace mmdb::bench
