#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mmdb::bench {

Result<WorkloadTiming> TimeWorkload(const MultimediaDatabase& db,
                                    const std::vector<RangeQuery>& workload,
                                    QueryMethod method, int repeats) {
  WorkloadTiming timing;
  // Warm-up pass so first-touch costs do not skew the first method run.
  for (const RangeQuery& query : workload) {
    MMDB_ASSIGN_OR_RETURN(QueryResult result, db.RunRange(query, method));
    timing.stats += result.stats;
  }
  Stopwatch watch;
  for (int r = 0; r < repeats; ++r) {
    for (const RangeQuery& query : workload) {
      MMDB_ASSIGN_OR_RETURN(QueryResult result, db.RunRange(query, method));
      // Keep the optimizer honest.
      if (result.ids.size() > (1u << 30)) {
        return Status::Internal("impossible result size");
      }
    }
  }
  timing.total_seconds = watch.ElapsedSeconds();
  timing.queries = static_cast<int>(workload.size()) * repeats;
  timing.avg_query_seconds =
      timing.queries > 0 ? timing.total_seconds / timing.queries : 0.0;
  return timing;
}

Result<std::unique_ptr<MultimediaDatabase>> BuildDatabase(
    const datasets::DatasetSpec& spec, datasets::DatasetStats* stats) {
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<MultimediaDatabase> db,
                        MultimediaDatabase::Open());
  MMDB_ASSIGN_OR_RETURN(datasets::DatasetStats built,
                        datasets::BuildAugmentedDatabase(db.get(), spec));
  if (stats != nullptr) *stats = built;
  return db;
}

Result<std::vector<WorkloadTiming>> TimeMethodsInterleaved(
    const MultimediaDatabase& db, const std::vector<RangeQuery>& workload,
    const std::vector<QueryMethod>& methods, int repeats) {
  std::vector<WorkloadTiming> out(methods.size());
  std::vector<std::vector<double>> round_seconds(methods.size());

  // Warm-up (also collects the work counters once per method).
  for (size_t m = 0; m < methods.size(); ++m) {
    for (const RangeQuery& query : workload) {
      MMDB_ASSIGN_OR_RETURN(QueryResult result,
                            db.RunRange(query, methods[m]));
      out[m].stats += result.stats;
    }
  }
  for (int r = 0; r < std::max(1, repeats); ++r) {
    for (size_t m = 0; m < methods.size(); ++m) {
      Stopwatch watch;
      for (const RangeQuery& query : workload) {
        MMDB_ASSIGN_OR_RETURN(QueryResult result,
                              db.RunRange(query, methods[m]));
        if (result.ids.size() > (1u << 30)) {
          return Status::Internal("impossible result size");
        }
      }
      round_seconds[m].push_back(watch.ElapsedSeconds());
    }
  }
  for (size_t m = 0; m < methods.size(); ++m) {
    std::vector<double>& rounds = round_seconds[m];
    std::sort(rounds.begin(), rounds.end());
    const double median = rounds[rounds.size() / 2];
    out[m].queries = static_cast<int>(workload.size());
    out[m].total_seconds = median;
    out[m].avg_query_seconds =
        workload.empty() ? 0.0 : median / workload.size();
  }
  return out;
}

int RunFigureSweep(const FigureSweepConfig& config) {
  std::cout << "=== " << config.figure_name
            << ": Range query time vs. percentage of images stored as "
               "editing operations (" << KindName(config.kind)
            << " data set) ===\n"
            << "total images per point: " << config.total_images
            << ", queries: " << config.queries << " x" << config.repeats
            << " repeats, widening probability: "
            << config.widening_probability << ", seed: " << config.seed
            << "\n\n";

  TablePrinter table({"% edit-stored", "RBM w/out DS (ms/query)",
                      "BWM with DS (ms/query)", "BWM+R-tree (ms/query)",
                      "speedup %", "rules RBM", "rules BWM",
                      "skipped by BWM"});
  double speedup_sum = 0.0;
  int points = 0;
  for (int pct = 10; pct <= 90; pct += 10) {
    datasets::DatasetSpec spec;
    spec.kind = config.kind;
    spec.total_images = config.total_images;
    spec.edited_fraction = pct / 100.0;
    spec.widening_probability = config.widening_probability;
    spec.min_ops = config.min_ops;
    spec.max_ops = config.max_ops;
    spec.seed = config.seed + static_cast<uint64_t>(pct);

    datasets::DatasetStats stats;
    auto db = BuildDatabase(spec, &stats);
    if (!db.ok()) {
      std::cerr << "build failed: " << db.status().ToString() << "\n";
      return 1;
    }
    Rng rng(config.seed * 31 + static_cast<uint64_t>(pct));
    const auto workload = datasets::MakeGroundedRangeWorkload(
        (*db)->collection(), (*db)->quantizer(),
        datasets::PaletteFor(config.kind), config.queries, rng);

    const auto timed = TimeMethodsInterleaved(
        **db, workload,
        {QueryMethod::kRbm, QueryMethod::kBwm, QueryMethod::kBwmIndexed},
        config.repeats);
    if (!timed.ok()) {
      std::cerr << "workload failed: " << timed.status().ToString() << "\n";
      return 1;
    }
    const WorkloadTiming& rbm = (*timed)[0];
    const WorkloadTiming& bwm = (*timed)[1];
    const WorkloadTiming& indexed = (*timed)[2];
    const double speedup =
        rbm.avg_query_seconds > 0
            ? (1.0 - bwm.avg_query_seconds / rbm.avg_query_seconds) * 100.0
            : 0.0;
    speedup_sum += speedup;
    ++points;
    table.AddRow({TablePrinter::Cell(pct),
                  TablePrinter::Cell(rbm.avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(bwm.avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(indexed.avg_query_seconds * 1e3, 4),
                  TablePrinter::Cell(speedup, 2),
                  TablePrinter::Cell(rbm.stats.rules_applied),
                  TablePrinter::Cell(bwm.stats.rules_applied),
                  TablePrinter::Cell(bwm.stats.edited_images_skipped)});
  }
  table.Print(std::cout);
  if (std::getenv("MMDB_BENCH_CSV") != nullptr) {
    std::cout << "\nCSV:\n";
    table.PrintCsv(std::cout);
  }
  std::cout << "\nAverage speedup of BWM over RBM: "
            << TablePrinter::Cell(speedup_sum / points, 2)
            << "% (paper reports 33.07% helmet / 22.08% flag; shape, not "
               "absolute numbers, is the reproduction target)\n";
  return 0;
}

std::string KindName(datasets::DatasetKind kind) {
  switch (kind) {
    case datasets::DatasetKind::kFlags:
      return "flag";
    case datasets::DatasetKind::kHelmets:
      return "helmet";
    case datasets::DatasetKind::kRoadSigns:
      return "road-sign";
  }
  return "unknown";
}

}  // namespace mmdb::bench
