#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/object_store.h"

namespace mmdb {
namespace {

std::string StorePath() {
  return ::testing::TempDir() + "/mmdb_torture.db";
}

void RemoveStoreFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
}

using StoreState = std::map<uint64_t, std::string>;

/// The scripted workload: a sequence of batches, each a group of
/// mutations that must commit (or disappear) atomically. Batch payloads
/// include a multi-page blob so crashes land inside chain writes too.
struct Batch {
  std::vector<std::pair<uint64_t, std::string>> puts;
  std::vector<uint64_t> deletes;
};

std::vector<Batch> TortureWorkload() {
  std::vector<Batch> batches;
  batches.push_back({{{10, "alpha"}, {11, std::string(9000, 'A')}}, {}});
  batches.push_back({{{12, "beta"}, {13, std::string(300, 'B')}}, {}});
  batches.push_back({{{14, std::string(5000, 'C')}}, {11}});
  batches.push_back({{{10, "alpha-rewritten"}, {15, "delta"}}, {10}});
  return batches;
}

/// The store states a correct engine may expose after a crash anywhere in
/// the workload: exactly the state after some batch prefix.
std::vector<StoreState> ExpectedPrefixStates() {
  std::vector<StoreState> states;
  StoreState state;
  states.push_back(state);  // Before any batch.
  for (const Batch& batch : TortureWorkload()) {
    for (uint64_t key : batch.deletes) state.erase(key);
    for (const auto& [key, value] : batch.puts) state[key] = value;
    states.push_back(state);
  }
  return states;
}

/// Runs the workload against `store`, one atomic batch per entry.
/// Returns the index of the last batch whose commit was confirmed
/// (0 = none), stopping at the first failure.
int RunWorkload(DiskObjectStore* store) {
  int committed = 0;
  const std::vector<Batch> batches = TortureWorkload();
  for (size_t i = 0; i < batches.size(); ++i) {
    if (!store->BeginBatch().ok()) break;
    bool batch_ok = true;
    for (uint64_t key : batches[i].deletes) {
      if (!store->Delete(key).ok()) {
        batch_ok = false;
        break;
      }
    }
    for (const auto& [key, value] : batches[i].puts) {
      if (!batch_ok) break;
      const Status put = store->Contains(key) ? store->Upsert(key, value)
                                              : store->Put(key, value);
      if (!put.ok()) batch_ok = false;
    }
    if (!batch_ok) {
      store->AbortBatch().ok();
      break;
    }
    if (!store->CommitBatch().ok()) break;
    committed = static_cast<int>(i) + 1;
  }
  return committed;
}

/// Reads the full contents of `store` (keys and payloads).
Result<StoreState> ReadState(DiskObjectStore* store) {
  StoreState state;
  for (uint64_t key : store->Keys()) {
    MMDB_ASSIGN_OR_RETURN(state[key], store->Get(key));
  }
  return state;
}

// The crash-point torture sweep: run the scripted multi-batch workload,
// crash after the k-th I/O operation — for every k from 0 to the fault-
// free operation count — reopen through a clean env, and assert the
// journal's all-or-nothing invariant:
//   * the store reopens without error (recovery handles every crash
//     point),
//   * its contents equal the state after some batch prefix j,
//   * j covers at least every batch whose CommitBatch returned OK,
//   * Scrub finds no corruption (recovery never leaves torn state).
TEST(CrashTortureTest, EveryCrashPointRecoversToAPrefixState) {
  const std::string path = StorePath();
  const std::vector<StoreState> expected = ExpectedPrefixStates();

  // Fault-free probe to size the sweep.
  int64_t total_ops = 0;
  {
    RemoveStoreFiles(path);
    FaultInjectingEnv env(Env::Default());
    Result<std::unique_ptr<DiskObjectStore>> store =
        DiskObjectStore::Open(path, 64, true, &env);
    ASSERT_TRUE(store.ok()) << store.status().message();
    ASSERT_EQ(RunWorkload(store->get()),
              static_cast<int>(TortureWorkload().size()));
    total_ops = env.op_count();
  }
  ASSERT_GT(total_ops, 20) << "workload too small to be a meaningful sweep";

  for (int64_t k = 0; k <= total_ops; ++k) {
    SCOPED_TRACE("crash after op " + std::to_string(k) + " of " +
                 std::to_string(total_ops));
    RemoveStoreFiles(path);
    int confirmed = 0;
    {
      FaultInjectingEnv env(Env::Default());
      env.CrashAfterOps(k);
      Result<std::unique_ptr<DiskObjectStore>> store =
          DiskObjectStore::Open(path, 64, true, &env);
      if (store.ok()) confirmed = RunWorkload(store->get());
      // (An Open refused by the crash point is itself a valid crash.)
    }

    // Reboot: reopen through the real env and let recovery run.
    Result<std::unique_ptr<DiskObjectStore>> store = DiskObjectStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().message();
    Result<StoreState> state = ReadState(store->get());
    ASSERT_TRUE(state.ok()) << state.status().message();

    int matched = -1;
    for (size_t j = 0; j < expected.size(); ++j) {
      if (*state == expected[j]) {
        matched = static_cast<int>(j);
        break;
      }
    }
    ASSERT_GE(matched, 0) << "recovered state matches no batch prefix";
    EXPECT_GE(matched, confirmed)
        << "a confirmed commit was lost by the crash";

    Result<DiskObjectStore::ScrubReport> report = (*store)->Scrub();
    ASSERT_TRUE(report.ok()) << report.status().message();
    EXPECT_TRUE(report->clean()) << "recovery left corrupt pages behind";
  }
  RemoveStoreFiles(path);
}

// Journal-off stores make no atomicity promise, but must still reopen
// cleanly after a crash (pages are checksummed either way); this pins the
// weaker contract so the journaled path's guarantees stay deliberate.
TEST(CrashTortureTest, UnjournaledStoreStillReopensAfterCrash) {
  const std::string path = StorePath() + ".nojournal";
  RemoveStoreFiles(path);
  {
    FaultInjectingEnv env(Env::Default());
    Result<std::unique_ptr<DiskObjectStore>> store =
        DiskObjectStore::Open(path, 64, false, &env);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put(1, "x").ok());
    env.CrashAfterOps(4);
    (*store)->Put(2, std::string(6000, 'y')).ok();  // Dies mid-batch.
    EXPECT_TRUE(env.crashed());
  }
  Result<std::unique_ptr<DiskObjectStore>> store =
      DiskObjectStore::Open(path, 64, false);
  ASSERT_TRUE(store.ok()) << store.status().message();
  RemoveStoreFiles(path);
}

}  // namespace
}  // namespace mmdb
