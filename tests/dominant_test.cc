#include <gtest/gtest.h>

#include <set>

#include "core/database.h"
#include "core/dominant.h"
#include "core/instantiate.h"
#include "datasets/augment.h"
#include "test_util.h"

namespace mmdb {
namespace {

TEST(DominantColorTest, ExtractionOrdersByStrength) {
  const ColorQuantizer quantizer(4);
  Image image(10, 10, colors::kWhite);            // 60%.
  image.Fill(Rect(0, 0, 10, 3), colors::kRed);    // 30%.
  image.Fill(Rect(0, 9, 10, 10), colors::kBlue);  // 10%.
  const ColorHistogram hist = ExtractHistogram(image, quantizer);
  const auto dominant = ExtractDominantColors(hist, 8, 0.05);
  ASSERT_EQ(dominant.size(), 3u);
  EXPECT_EQ(dominant[0].bin, quantizer.BinOf(colors::kWhite));
  EXPECT_EQ(dominant[1].bin, quantizer.BinOf(colors::kRed));
  EXPECT_EQ(dominant[2].bin, quantizer.BinOf(colors::kBlue));
  EXPECT_DOUBLE_EQ(dominant[0].fraction, 0.6);
}

TEST(DominantColorTest, ThresholdAndCapApply) {
  const ColorQuantizer quantizer(4);
  Image image(10, 10, colors::kWhite);
  image.Fill(Rect(0, 0, 10, 3), colors::kRed);
  image.Fill(Rect(0, 9, 10, 10), colors::kBlue);
  const ColorHistogram hist = ExtractHistogram(image, quantizer);
  EXPECT_EQ(ExtractDominantColors(hist, 8, 0.2).size(), 2u);  // Blue cut.
  EXPECT_EQ(ExtractDominantColors(hist, 1, 0.05).size(), 1u);  // Cap.
  EXPECT_TRUE(ExtractDominantColors(hist, 8, 0.95).empty());
}

TEST(DominantColorTest, SimilarityProperties) {
  const ColorQuantizer quantizer(4);
  Rng rng(411);
  const ColorHistogram a = ExtractHistogram(
      mmdb::testing::RandomBlockImage(16, 16, 6, rng), quantizer);
  const ColorHistogram b = ExtractHistogram(
      mmdb::testing::RandomBlockImage(16, 16, 6, rng), quantizer);
  const auto da = ExtractDominantColors(a);
  const auto db = ExtractDominantColors(b);
  EXPECT_NEAR(DominantColorSimilarity(da, da), 1.0, 1e-12);
  const double ab = DominantColorSimilarity(da, db);
  EXPECT_DOUBLE_EQ(ab, DominantColorSimilarity(db, da));
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0 + 1e-12);
  // Disjoint sets score 0; empty-vs-empty scores 1.
  EXPECT_DOUBLE_EQ(DominantColorSimilarity({{0, 0.5}}, {{1, 0.5}}), 0.0);
  EXPECT_DOUBLE_EQ(DominantColorSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(DominantColorSimilarity({{0, 0.5}}, {}), 0.0);
}

class DominantBoundsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DominantBoundsProperty, MustAndMayBracketExactDominants) {
  auto db = MultimediaDatabase::Open().value();
  datasets::DatasetSpec spec;
  spec.total_images = 24;
  spec.edited_fraction = 0.7;
  spec.seed = GetParam();
  ASSERT_TRUE(datasets::BuildAugmentedDatabase(db.get(), spec).ok());

  const InstantiationQueryProcessor exact_processor(
      &db->collection(), &db->quantizer(), db->MakePixelResolver());
  constexpr double kThreshold = 0.1;

  for (ObjectId id : db->collection().edited_ids()) {
    const EditedImageInfo* edited = db->collection().FindEdited(id);
    const auto candidates = ClassifyDominantBins(
        db->collection(), db->rule_engine(), *edited, kThreshold);
    ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();

    const auto exact_hist = exact_processor.ExactHistogram(*edited);
    ASSERT_TRUE(exact_hist.ok());
    std::set<BinIndex> exact_dominant;
    for (const DominantColor& color :
         ExtractDominantColors(*exact_hist, -1, kThreshold)) {
      exact_dominant.insert(color.bin);
    }
    const std::set<BinIndex> must(candidates->must.begin(),
                                  candidates->must.end());
    const std::set<BinIndex> may(candidates->may.begin(),
                                 candidates->may.end());
    // must ⊆ exact ⊆ may.
    for (BinIndex bin : must) {
      EXPECT_TRUE(exact_dominant.count(bin))
          << "object " << id << " bin " << bin;
    }
    for (BinIndex bin : exact_dominant) {
      EXPECT_TRUE(may.count(bin)) << "object " << id << " bin " << bin;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, DominantBoundsProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{5}));

TEST(DominantColorTest, UnmodifiedScriptHasTightClassification) {
  auto db = MultimediaDatabase::Open().value();
  Image image(10, 10, colors::kRed);
  image.Fill(Rect(0, 0, 10, 4), colors::kWhite);
  const ObjectId base = db->InsertBinaryImage(image).value();
  EditScript noop;
  noop.base_id = base;
  const ObjectId edited = db->InsertEditedImage(noop).value();
  const auto candidates =
      ClassifyDominantBins(db->collection(), db->rule_engine(),
                           *db->collection().FindEdited(edited), 0.3);
  ASSERT_TRUE(candidates.ok());
  // No ops: bounds are exact, so must == may == the true dominants.
  EXPECT_EQ(candidates->must, candidates->may);
  EXPECT_EQ(candidates->must.size(), 2u);
}

}  // namespace
}  // namespace mmdb
