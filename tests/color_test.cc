#include <gtest/gtest.h>

#include "image/color.h"
#include "util/random.h"

namespace mmdb {
namespace {

TEST(ColorTest, PackedRoundTrip) {
  const Rgb c(0x12, 0x34, 0x56);
  EXPECT_EQ(c.Packed(), 0x123456u);
  EXPECT_EQ(Rgb::FromPacked(c.Packed()), c);
}

TEST(ColorTest, HexString) {
  EXPECT_EQ(Rgb(255, 0, 128).ToHexString(), "#ff0080");
  EXPECT_EQ(Rgb().ToHexString(), "#000000");
}

TEST(ColorTest, HsvPrimaries) {
  const Hsv red = RgbToHsv(Rgb(255, 0, 0));
  EXPECT_NEAR(red.h, 0.0, 1e-9);
  EXPECT_NEAR(red.s, 1.0, 1e-9);
  EXPECT_NEAR(red.v, 1.0, 1e-9);

  const Hsv green = RgbToHsv(Rgb(0, 255, 0));
  EXPECT_NEAR(green.h, 120.0, 1e-9);

  const Hsv blue = RgbToHsv(Rgb(0, 0, 255));
  EXPECT_NEAR(blue.h, 240.0, 1e-9);
}

TEST(ColorTest, HsvGreyHasZeroSaturation) {
  const Hsv grey = RgbToHsv(Rgb(128, 128, 128));
  EXPECT_NEAR(grey.s, 0.0, 1e-9);
  EXPECT_NEAR(grey.v, 128.0 / 255.0, 1e-9);
}

TEST(ColorTest, HsvRoundTripIsNearlyLossless) {
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const Rgb original(static_cast<uint8_t>(rng.Uniform(256)),
                       static_cast<uint8_t>(rng.Uniform(256)),
                       static_cast<uint8_t>(rng.Uniform(256)));
    const Rgb round = HsvToRgb(RgbToHsv(original));
    EXPECT_NEAR(round.r, original.r, 1);
    EXPECT_NEAR(round.g, original.g, 1);
    EXPECT_NEAR(round.b, original.b, 1);
  }
}

}  // namespace
}  // namespace mmdb
