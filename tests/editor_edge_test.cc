// Edge-of-domain behaviour of the instantiation engine and its agreement
// with the rule engine on the same edges.

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/histogram.h"
#include <set>

#include "datasets/generators.h"
#include "image/editor.h"
#include "test_util.h"

namespace mmdb {
namespace {

TEST(EditorEdgeTest, OnePixelImageSurvivesEveryWideningOp) {
  const Editor editor;
  Image base(1, 1, colors::kRed);
  EditScript script;
  script.base_id = 1;
  script.ops.emplace_back(CombineOp::BoxBlur());
  script.ops.emplace_back(ModifyOp{colors::kRed, colors::kBlue});
  script.ops.emplace_back(MutateOp::Translation(0, 0));
  script.ops.emplace_back(DefineOp{Rect(0, 0, 1, 1)});
  script.ops.emplace_back(MergeOp{});
  const auto out = editor.Instantiate(base, script);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->width(), 1);
  EXPECT_EQ(out->height(), 1);
}

TEST(EditorEdgeTest, EmptyDefinedRegionMakesOpsNoOps) {
  const Editor editor;
  Editor::State state = Editor::InitialState(Image(4, 4, colors::kRed));
  ASSERT_TRUE(editor.ApplyOp(DefineOp{Rect(2, 2, 2, 2)}, &state).ok());
  EXPECT_TRUE(state.defined_region.Empty());
  const Image before = state.canvas;
  ASSERT_TRUE(editor.ApplyOp(CombineOp::BoxBlur(), &state).ok());
  ASSERT_TRUE(
      editor.ApplyOp(ModifyOp{colors::kRed, colors::kBlue}, &state).ok());
  ASSERT_TRUE(editor.ApplyOp(MutateOp::Translation(1, 1), &state).ok());
  EXPECT_EQ(state.canvas, before);
}

TEST(EditorEdgeTest, RulesAgreeOnEmptyDefinedRegion) {
  const ColorQuantizer quantizer(4);
  const RuleEngine engine(quantizer);
  EditScript script;
  script.base_id = 1;
  script.ops.emplace_back(DefineOp{Rect(2, 2, 2, 2)});  // Empty.
  script.ops.emplace_back(ModifyOp{colors::kRed, colors::kBlue});
  script.ops.emplace_back(CombineOp::BoxBlur());
  const auto bounds = ComputeBounds(
      engine, script, quantizer.BinOf(colors::kRed), 16, 4, 4, nullptr);
  ASSERT_TRUE(bounds.ok());
  // |DR| = 0: bounds stay the exact base point.
  EXPECT_DOUBLE_EQ(bounds->min_fraction, 1.0);
  EXPECT_DOUBLE_EQ(bounds->max_fraction, 1.0);
}

TEST(EditorEdgeTest, ScaleDownToOnePixel) {
  const Editor editor;
  Image base(4, 4, colors::kGold);
  EditScript script;
  script.base_id = 1;
  script.ops.emplace_back(MutateOp::Scale(0.25, 0.25));
  const auto out = editor.Instantiate(base, script);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->width(), 1);
  EXPECT_EQ(out->height(), 1);
  EXPECT_EQ(out->At(0, 0), colors::kGold);
}

TEST(EditorEdgeTest, ReflectionIsRigidBody) {
  // Horizontal mirror about the canvas midline: |det| = 1, orthonormal.
  MutateOp mirror;
  mirror.m = {-1, 0, 8, 0, 1, 0, 0, 0, 1};  // x' = 8 - x.
  EXPECT_TRUE(mirror.IsRigidBody());

  const Editor editor;
  Image base(8, 4, colors::kWhite);
  base.Fill(Rect(0, 0, 2, 4), colors::kNavy);
  Editor::State state = Editor::InitialState(base);
  ASSERT_TRUE(editor.ApplyOp(DefineOp{Rect(0, 0, 2, 4)}, &state).ok());
  ASSERT_TRUE(editor.ApplyOp(mirror, &state).ok());
  // The band's mirror image lands on the right edge.
  EXPECT_EQ(state.canvas.CountColor(colors::kNavy, Rect(6, 0, 8, 4)), 8);
}

TEST(EditorEdgeTest, ChainedCropsToMinimumSize) {
  const Editor editor;
  Rng rng(1701);
  Image base = testing::RandomBlockImage(16, 16, 6, rng);
  EditScript script;
  script.base_id = 1;
  int32_t w = 16, h = 16;
  while (w > 1 && h > 1) {
    w = (w + 1) / 2;
    h = (h + 1) / 2;
    script.ops.emplace_back(DefineOp{Rect(0, 0, w, h)});
    script.ops.emplace_back(MergeOp{});
  }
  const auto out = editor.Instantiate(base, script);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->width(), 1);
  EXPECT_EQ(out->height(), 1);
}

TEST(WorldFlagsTest, RecognizableAndDistinct) {
  const auto flags = datasets::MakeWorldFlags();
  ASSERT_GE(flags.size(), 10u);
  const ColorQuantizer quantizer(4);
  // France is 1/3 blue; Japan is mostly white with a red disc.
  const auto find = [&](const std::string& name) -> const Image& {
    for (const auto& flag : flags) {
      if (flag.label == "flag:" + name) return flag.image;
    }
    ADD_FAILURE() << name << " missing";
    return flags[0].image;
  };
  const ColorHistogram france = ExtractHistogram(find("france"), quantizer);
  EXPECT_NEAR(france.Fraction(quantizer.BinOf(colors::kBlue)), 1.0 / 3,
              0.05);
  const ColorHistogram japan = ExtractHistogram(find("japan"), quantizer);
  EXPECT_GT(japan.Fraction(quantizer.BinOf(colors::kWhite)), 0.6);
  EXPECT_GT(japan.Fraction(quantizer.BinOf(colors::kRed)), 0.1);
  // All labels distinct.
  std::set<std::string> labels;
  for (const auto& flag : flags) labels.insert(flag.label);
  EXPECT_EQ(labels.size(), flags.size());
  // Deterministic.
  const auto again = datasets::MakeWorldFlags();
  for (size_t i = 0; i < flags.size(); ++i) {
    EXPECT_EQ(flags[i].image, again[i].image);
  }
}

}  // namespace
}  // namespace mmdb
