#include <gtest/gtest.h>

#include <sstream>

#include "util/table_printer.h"

namespace mmdb {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| only |"), std::string::npos);
}

TEST(TablePrinterTest, CellFormatsNumbers) {
  EXPECT_EQ(TablePrinter::Cell(int64_t{-5}), "-5");
  EXPECT_EQ(TablePrinter::Cell(uint64_t{7}), "7");
  EXPECT_EQ(TablePrinter::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Cell(1.0, 0), "1");
}

TEST(TablePrinterTest, CsvEscapesSpecialCharacters) {
  TablePrinter table({"k", "v"});
  table.AddRow({"with,comma", "with\"quote"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "k,v\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(TablePrinterTest, CsvPlainCellsUnquoted) {
  TablePrinter table({"x"});
  table.AddRow({"plain"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "x\nplain\n");
}

}  // namespace
}  // namespace mmdb
