#include <gtest/gtest.h>

#include "core/database.h"
#include "core/quantizer.h"
#include "datasets/augment.h"
#include "test_util.h"

namespace mmdb {
namespace {

using mmdb::testing::AsSet;

TEST(LuvConversionTest, ReferenceValues) {
  // White: L = 100, u = v = 0.
  const Luv white = RgbToLuv(Rgb(255, 255, 255));
  EXPECT_NEAR(white.l, 100.0, 0.1);
  EXPECT_NEAR(white.u, 0.0, 0.2);
  EXPECT_NEAR(white.v, 0.0, 0.2);
  // Black: everything 0.
  const Luv black = RgbToLuv(Rgb(0, 0, 0));
  EXPECT_NEAR(black.l, 0.0, 1e-9);
  // sRGB red: L ~ 53.2, u ~ 175.0, v ~ 37.8 (standard tables).
  const Luv red = RgbToLuv(Rgb(255, 0, 0));
  EXPECT_NEAR(red.l, 53.2, 0.5);
  EXPECT_NEAR(red.u, 175.0, 1.5);
  EXPECT_NEAR(red.v, 37.8, 1.0);
}

TEST(LuvConversionTest, GreysHaveZeroChromaticity) {
  for (uint8_t v : {32, 96, 160, 224}) {
    const Luv grey = RgbToLuv(Rgb(v, v, v));
    EXPECT_NEAR(grey.u, 0.0, 0.3) << static_cast<int>(v);
    EXPECT_NEAR(grey.v, 0.0, 0.3) << static_cast<int>(v);
  }
}

TEST(LuvConversionTest, LightnessIsMonotoneInGrey) {
  double prev = -1.0;
  for (int v = 0; v <= 255; v += 15) {
    const double l = RgbToLuv(Rgb(static_cast<uint8_t>(v),
                                  static_cast<uint8_t>(v),
                                  static_cast<uint8_t>(v)))
                         .l;
    EXPECT_GT(l, prev);
    prev = l;
  }
}

TEST(LuvConversionTest, RoundTripIsNearlyLossless) {
  Rng rng(907);
  for (int trial = 0; trial < 300; ++trial) {
    const Rgb original(static_cast<uint8_t>(rng.Uniform(256)),
                       static_cast<uint8_t>(rng.Uniform(256)),
                       static_cast<uint8_t>(rng.Uniform(256)));
    const Rgb round = LuvToRgb(RgbToLuv(original));
    EXPECT_NEAR(round.r, original.r, 2);
    EXPECT_NEAR(round.g, original.g, 2);
    EXPECT_NEAR(round.b, original.b, 2);
  }
}

TEST(LuvConversionTest, RangesStayInQuantizationWindow) {
  Rng rng(911);
  for (int trial = 0; trial < 1000; ++trial) {
    const Luv luv = RgbToLuv(Rgb(static_cast<uint8_t>(rng.Uniform(256)),
                                 static_cast<uint8_t>(rng.Uniform(256)),
                                 static_cast<uint8_t>(rng.Uniform(256))));
    EXPECT_GE(luv.l, 0.0);
    EXPECT_LE(luv.l, 100.0 + 1e-9);
    EXPECT_GE(luv.u, -134.0);
    EXPECT_LE(luv.u, 220.0);
    EXPECT_GE(luv.v, -140.0);
    EXPECT_LE(luv.v, 122.0);
  }
}

TEST(LuvQuantizerTest, BinsInRangeAndDiscriminative) {
  const ColorQuantizer luv(4, ColorSpace::kLuv);
  Rng rng(913);
  for (int i = 0; i < 1000; ++i) {
    const BinIndex bin =
        luv.BinOf(Rgb(static_cast<uint8_t>(rng.Uniform(256)),
                      static_cast<uint8_t>(rng.Uniform(256)),
                      static_cast<uint8_t>(rng.Uniform(256))));
    EXPECT_GE(bin, 0);
    EXPECT_LT(bin, luv.BinCount());
  }
  // Primaries separate.
  EXPECT_NE(luv.BinOf(Rgb(255, 0, 0)), luv.BinOf(Rgb(0, 255, 0)));
  EXPECT_NE(luv.BinOf(Rgb(0, 255, 0)), luv.BinOf(Rgb(0, 0, 255)));
  // Black and white separate on lightness.
  EXPECT_NE(luv.BinOf(Rgb(0, 0, 0)), luv.BinOf(Rgb(255, 255, 255)));
}

TEST(LuvQuantizerTest, SmallPerturbationsMostlyStayInBin) {
  // Not every neighbor shares a bin (cell boundaries exist), but tiny
  // perturbations should usually stay put under a coarse quantizer.
  const ColorQuantizer luv(3, ColorSpace::kLuv);
  Rng rng(929);
  int same = 0, total = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const Rgb color(static_cast<uint8_t>(rng.UniformInt(4, 251)),
                    static_cast<uint8_t>(rng.UniformInt(4, 251)),
                    static_cast<uint8_t>(rng.UniformInt(4, 251)));
    const Rgb nudged(
        static_cast<uint8_t>(color.r + rng.UniformInt(-3, 3)),
        static_cast<uint8_t>(color.g + rng.UniformInt(-3, 3)),
        static_cast<uint8_t>(color.b + rng.UniformInt(-3, 3)));
    ++total;
    if (luv.BinOf(color) == luv.BinOf(nudged)) ++same;
  }
  EXPECT_GT(static_cast<double>(same) / total, 0.6);
}

TEST(LuvDatabaseTest, MethodsAgreeUnderLuv) {
  DatabaseOptions options;
  options.color_space = ColorSpace::kLuv;
  auto db = MultimediaDatabase::Open(options).value();
  EXPECT_EQ(db->quantizer().space(), ColorSpace::kLuv);
  datasets::DatasetSpec spec;
  spec.total_images = 24;
  spec.edited_fraction = 0.7;
  spec.seed = 917;
  ASSERT_TRUE(datasets::BuildAugmentedDatabase(db.get(), spec).ok());
  Rng rng(919);
  for (const RangeQuery& query : datasets::MakeRangeWorkload(
           db->quantizer(), datasets::FlagPalette(), 6, rng)) {
    const auto exact =
        db->RunRange(query, QueryMethod::kInstantiate).value();
    const auto rbm = db->RunRange(query, QueryMethod::kRbm).value();
    const auto bwm = db->RunRange(query, QueryMethod::kBwm).value();
    EXPECT_EQ(AsSet(rbm.ids), AsSet(bwm.ids));
    const auto rbm_set = AsSet(rbm.ids);
    for (ObjectId id : exact.ids) {
      EXPECT_TRUE(rbm_set.count(id));
    }
  }
  EXPECT_TRUE(db->VerifyIntegrity(/*deep_pixels=*/true).ok());
}

TEST(LuvDatabaseTest, LuvPersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/mmdb_luv_test.db";
  std::remove(path.c_str());
  {
    DatabaseOptions options;
    options.path = path;
    options.color_space = ColorSpace::kLuv;
    auto db = MultimediaDatabase::Open(options).value();
    ASSERT_TRUE(db->InsertBinaryImage(Image(4, 4, colors::kGold)).ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  DatabaseOptions options;
  options.path = path;
  auto db = MultimediaDatabase::Open(options).value();
  EXPECT_EQ(db->quantizer().space(), ColorSpace::kLuv);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mmdb
