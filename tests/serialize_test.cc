#include <gtest/gtest.h>

#include "datasets/augment.h"
#include "editops/serialize.h"
#include "test_util.h"
#include "util/random.h"

namespace mmdb {
namespace {

EditScript SampleScript() {
  EditScript script;
  script.base_id = 77;
  script.ops.emplace_back(DefineOp{Rect(1, 2, 30, 40)});
  script.ops.emplace_back(CombineOp::GaussianBlur());
  script.ops.emplace_back(ModifyOp{colors::kRed, colors::kNavy});
  script.ops.emplace_back(MutateOp::Rotation(0.5, 16.0, 16.0));
  MergeOp merge;
  merge.target = 123456789;
  merge.x = -4;
  merge.y = 9;
  script.ops.emplace_back(merge);
  script.ops.emplace_back(MergeOp{});  // Null target.
  return script;
}

TEST(SerializeTest, RoundTripAllOpTypes) {
  const EditScript original = SampleScript();
  Result<EditScript> decoded = DecodeEditScript(EncodeEditScript(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, original);
}

TEST(SerializeTest, EmptyScriptRoundTrip) {
  EditScript script;
  script.base_id = 5;
  Result<EditScript> decoded = DecodeEditScript(EncodeEditScript(script));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, script);
}

TEST(SerializeTest, RandomScriptsRoundTrip) {
  Rng rng(55);
  const std::vector<datasets::MergeTarget> targets = {{900, 32, 32},
                                                      {901, 48, 24}};
  for (int trial = 0; trial < 50; ++trial) {
    const EditScript original = testing::RandomScript(
        100 + static_cast<ObjectId>(trial), 40, 30,
        static_cast<int>(rng.UniformInt(0, 12)), targets, rng);
    Result<EditScript> decoded = DecodeEditScript(EncodeEditScript(original));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, original);
  }
}

TEST(SerializeTest, RejectsEmptyBuffer) {
  EXPECT_EQ(DecodeEditScript("").status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, RejectsUnknownVersion) {
  std::string data = EncodeEditScript(SampleScript());
  data[0] = 99;
  EXPECT_EQ(DecodeEditScript(data).status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, RejectsTruncation) {
  const std::string data = EncodeEditScript(SampleScript());
  // Every strict prefix must fail cleanly, never crash.
  for (size_t len = 1; len < data.size(); ++len) {
    EXPECT_FALSE(DecodeEditScript(data.substr(0, len)).ok()) << len;
  }
}

TEST(SerializeTest, RejectsTrailingBytes) {
  std::string data = EncodeEditScript(SampleScript());
  data += "x";
  EXPECT_EQ(DecodeEditScript(data).status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, RejectsUnknownOpTag) {
  EditScript script;
  script.base_id = 1;
  script.ops.emplace_back(MergeOp{});
  std::string data = EncodeEditScript(script);
  // The op tag byte sits right after version(1) + base(8) + count(4).
  data[13] = 42;
  EXPECT_EQ(DecodeEditScript(data).status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, EncodingIsCompact) {
  // The whole point of edit-sequence storage: a script is a few dozen
  // bytes where the raster would be kilobytes.
  const std::string data = EncodeEditScript(SampleScript());
  EXPECT_LT(data.size(), 300u);
}

}  // namespace
}  // namespace mmdb
