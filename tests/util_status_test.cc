#include <gtest/gtest.h>

#include "util/result.h"
#include "util/status.h"

namespace mmdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("object 7").ToString(), "NotFound: object 7");
  EXPECT_EQ(Status::Corruption("bad page").ToString(), "Corruption: bad page");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

Status FailsWhenNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int v) {
  MMDB_RETURN_IF_ERROR(FailsWhenNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_EQ(Propagates(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterEven(int v) {
  MMDB_ASSIGN_OR_RETURN(int half, HalveEven(v));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_EQ(QuarterEven(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(QuarterEven(3).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mmdb
