#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "storage/blob_store.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/object_store.h"
#include "util/random.h"

namespace mmdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class DiskManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("mmdb_dm_test.db");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(DiskManagerTest, AllocateReadWrite) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  EXPECT_EQ(dm.PageCount().value(), 0u);
  const PageId id = dm.AllocatePage().value();
  EXPECT_EQ(id, 0u);
  Page page;
  page.WriteU64(0, 0xdeadbeefcafef00dULL);
  page.WriteU32(100, 42);
  ASSERT_TRUE(dm.WritePage(id, page).ok());
  Page read;
  ASSERT_TRUE(dm.ReadPage(id, &read).ok());
  EXPECT_EQ(read.ReadU64(0), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(read.ReadU32(100), 42u);
}

TEST_F(DiskManagerTest, ReadPastEofFails) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  Page page;
  EXPECT_EQ(dm.ReadPage(5, &page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dm.WritePage(5, page).code(), StatusCode::kOutOfRange);
}

TEST_F(DiskManagerTest, PersistsAcrossReopen) {
  {
    DiskManager dm;
    ASSERT_TRUE(dm.Open(path_).ok());
    ASSERT_TRUE(dm.AllocatePage().ok());
    Page page;
    page.WriteU32(0, 777);
    ASSERT_TRUE(dm.WritePage(0, page).ok());
    ASSERT_TRUE(dm.Sync().ok());
    ASSERT_TRUE(dm.Close().ok());
  }
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  EXPECT_EQ(dm.PageCount().value(), 1u);
  Page page;
  ASSERT_TRUE(dm.ReadPage(0, &page).ok());
  EXPECT_EQ(page.ReadU32(0), 777u);
}

TEST_F(DiskManagerTest, UnopenedFails) {
  DiskManager dm;
  Page page;
  EXPECT_FALSE(dm.ReadPage(0, &page).ok());
  EXPECT_FALSE(dm.PageCount().ok());
}

class BufferPoolTest : public DiskManagerTest {};

TEST_F(BufferPoolTest, WriteThroughAndReadBack) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 4);
  {
    PageGuard guard = pool.NewPage().value();
    guard.Write().WriteU32(8, 123);
  }
  {
    PageGuard guard = pool.FetchPage(0).value();
    EXPECT_EQ(guard.Read().ReadU32(8), 123u);
  }
  EXPECT_GE(pool.stats().hits, 1);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 2);
  // Create 6 pages, each stamped with its id; pool holds only 2.
  for (uint32_t i = 0; i < 6; ++i) {
    PageGuard guard = pool.NewPage().value();
    guard.Write().WriteU32(0, i + 1000);
  }
  EXPECT_GE(pool.stats().evictions, 4);
  // Every page must read back correctly through the pool.
  for (uint32_t i = 0; i < 6; ++i) {
    PageGuard guard = pool.FetchPage(i).value();
    EXPECT_EQ(guard.Read().ReadU32(0), i + 1000) << i;
  }
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 2);
  PageGuard pinned_a = pool.NewPage().value();
  PageGuard pinned_b = pool.NewPage().value();
  EXPECT_EQ(pool.PinnedCount(), 2u);
  // Every frame pinned: a third page cannot be brought in.
  EXPECT_EQ(pool.NewPage().status().code(), StatusCode::kResourceExhausted);
  pinned_a.Release();
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST_F(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 2);
  pool.NewPage().value();  // Page 0.
  pool.NewPage().value();  // Page 1.
  pool.FetchPage(0).value();  // Touch 0: now 1 is LRU.
  const auto before = pool.stats().evictions;
  pool.NewPage().value();  // Page 2: must evict page 1 (LRU).
  EXPECT_EQ(pool.stats().evictions, before + 1);
  // Page 0 should still be resident (hit).
  const auto hits_before = pool.stats().hits;
  pool.FetchPage(0).value();
  EXPECT_EQ(pool.stats().hits, hits_before + 1);
}

TEST_F(BufferPoolTest, FailedFetchLeaksNoFrames) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 2);
  // Page 9 does not exist; the claimed frame must return to the free
  // list, leaving the pool fully usable.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pool.FetchPage(9).status().code(), StatusCode::kOutOfRange);
  }
  PageGuard a = pool.NewPage().value();
  PageGuard b = pool.NewPage().value();
  EXPECT_EQ(pool.PinnedCount(), 2u);
}

TEST_F(BufferPoolTest, FlushAllPersistsWithoutEviction) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 4);
  {
    PageGuard guard = pool.NewPage().value();
    guard.Write().WriteU32(0, 55);
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  Page raw;
  ASSERT_TRUE(dm.ReadPage(0, &raw).ok());
  EXPECT_EQ(raw.ReadU32(0), 55u);
}

TEST_F(BufferPoolTest, MoveSemanticsOfGuards) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 2);
  PageGuard a = pool.NewPage().value();
  PageGuard b = std::move(a);
  EXPECT_FALSE(a.Valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.Valid());
  EXPECT_EQ(pool.PinnedCount(), 1u);
  b.Release();
  EXPECT_EQ(pool.PinnedCount(), 0u);
}

class BlobStoreTest : public DiskManagerTest {};

TEST_F(BlobStoreTest, PutGetDelete) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 16);
  auto store = BlobStore::Open(&pool).value();
  ASSERT_TRUE(store->Put(1, "hello").ok());
  ASSERT_TRUE(store->Put(2, std::string(10000, 'x')).ok());
  EXPECT_EQ(store->Get(1).value(), "hello");
  EXPECT_EQ(store->Get(2).value().size(), 10000u);
  EXPECT_TRUE(store->Contains(1));
  ASSERT_TRUE(store->Delete(1).ok());
  EXPECT_FALSE(store->Contains(1));
  EXPECT_EQ(store->Get(1).status().code(), StatusCode::kNotFound);
}

TEST_F(BlobStoreTest, RejectsDuplicatesAndZeroKeys) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 16);
  auto store = BlobStore::Open(&pool).value();
  ASSERT_TRUE(store->Put(1, "a").ok());
  EXPECT_EQ(store->Put(1, "b").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store->Put(0, "c").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store->Delete(9).code(), StatusCode::kNotFound);
}

TEST_F(BlobStoreTest, EmptyBlobRoundTrips) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 16);
  auto store = BlobStore::Open(&pool).value();
  ASSERT_TRUE(store->Put(5, "").ok());
  EXPECT_EQ(store->Get(5).value(), "");
}

TEST_F(BlobStoreTest, FreedPagesAreReused) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 16);
  auto store = BlobStore::Open(&pool).value();
  const std::string big(kPageSize * 3, 'y');
  ASSERT_TRUE(store->Put(1, big).ok());
  const PageId pages_after_first = dm.PageCount().value();
  ASSERT_TRUE(store->Delete(1).ok());
  ASSERT_TRUE(store->Put(2, big).ok());
  // The second blob reuses the freed chain; the file must not grow.
  EXPECT_EQ(dm.PageCount().value(), pages_after_first);
  EXPECT_EQ(store->Get(2).value(), big);
}

TEST_F(BlobStoreTest, PersistsAcrossReopen) {
  Rng rng(101);
  std::string big(9000, '\0');
  for (char& c : big) c = static_cast<char>(rng.Uniform(256));
  {
    DiskManager dm;
    ASSERT_TRUE(dm.Open(path_).ok());
    BufferPool pool(&dm, 16);
    auto store = BlobStore::Open(&pool).value();
    ASSERT_TRUE(store->Put(7, "persisted").ok());
    ASSERT_TRUE(store->Put(8, big).ok());
    ASSERT_TRUE(store->Flush().ok());
    ASSERT_TRUE(dm.Sync().ok());
  }
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 16);
  auto store = BlobStore::Open(&pool).value();
  EXPECT_EQ(store->BlobCount(), 2u);
  EXPECT_EQ(store->Get(7).value(), "persisted");
  EXPECT_EQ(store->Get(8).value(), big);
  EXPECT_EQ(store->Keys(), (std::vector<uint64_t>{7, 8}));
}

TEST_F(BlobStoreTest, ManyBlobsSpanMultipleDirectoryPages) {
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path_).ok());
  BufferPool pool(&dm, 32);
  auto store = BlobStore::Open(&pool).value();
  // 255 slots per directory page; insert 600 blobs.
  for (uint64_t key = 1; key <= 600; ++key) {
    ASSERT_TRUE(store->Put(key, "v" + std::to_string(key)).ok()) << key;
  }
  EXPECT_EQ(store->BlobCount(), 600u);
  for (uint64_t key = 1; key <= 600; ++key) {
    EXPECT_EQ(store->Get(key).value(), "v" + std::to_string(key));
  }
}

TEST(MemoryObjectStoreTest, BasicOperations) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put(3, "three").ok());
  ASSERT_TRUE(store.Put(1, "one").ok());
  EXPECT_EQ(store.Get(3).value(), "three");
  EXPECT_EQ(store.Put(3, "x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store.Put(0, "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Keys(), (std::vector<uint64_t>{1, 3}));
  EXPECT_EQ(store.Count(), 2u);
  ASSERT_TRUE(store.Delete(1).ok());
  EXPECT_EQ(store.Delete(1).code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.Flush().ok());
}

TEST(DiskObjectStoreTest, MatchesMemorySemantics) {
  const std::string path = TempPath("mmdb_dos_test.db");
  std::remove(path.c_str());
  Rng rng(113);
  {
    auto store = DiskObjectStore::Open(path, 16).value();
    MemoryObjectStore reference;
    for (int i = 0; i < 200; ++i) {
      const uint64_t key = rng.UniformInt(1, 40);
      const int action = static_cast<int>(rng.Uniform(3));
      if (action == 0) {
        const std::string value(rng.UniformInt(0, 5000), 'z');
        EXPECT_EQ(store->Put(key, value).code(),
                  reference.Put(key, value).code());
      } else if (action == 1) {
        EXPECT_EQ(store->Delete(key).code(), reference.Delete(key).code());
      } else {
        const auto a = store->Get(key);
        const auto b = reference.Get(key);
        EXPECT_EQ(a.ok(), b.ok());
        if (a.ok()) {
          EXPECT_EQ(a.value(), b.value());
        }
      }
    }
    EXPECT_EQ(store->Keys(), reference.Keys());
    ASSERT_TRUE(store->Flush().ok());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mmdb
