#include <gtest/gtest.h>

#include "core/collection.h"
#include "core/histogram.h"

namespace mmdb {
namespace {

BinaryImageInfo MakeBinary(ObjectId id, Rgb color, int32_t side = 4) {
  BinaryImageInfo info;
  info.id = id;
  info.width = side;
  info.height = side;
  info.histogram = ExtractHistogram(Image(side, side, color),
                                    ColorQuantizer(4));
  return info;
}

EditedImageInfo MakeEdited(ObjectId id, ObjectId base_id) {
  EditedImageInfo info;
  info.id = id;
  info.script.base_id = base_id;
  info.script.ops.emplace_back(ModifyOp{colors::kRed, colors::kBlue});
  return info;
}

TEST(CollectionTest, AddAndFind) {
  AugmentedCollection collection;
  ASSERT_TRUE(collection.AddBinary(MakeBinary(1, colors::kRed)).ok());
  ASSERT_TRUE(collection.AddEdited(MakeEdited(2, 1)).ok());
  EXPECT_NE(collection.FindBinary(1), nullptr);
  EXPECT_EQ(collection.FindBinary(2), nullptr);
  EXPECT_NE(collection.FindEdited(2), nullptr);
  EXPECT_EQ(collection.FindEdited(1), nullptr);
  EXPECT_EQ(collection.BinaryCount(), 1u);
  EXPECT_EQ(collection.EditedCount(), 1u);
}

TEST(CollectionTest, RejectsZeroIds) {
  AugmentedCollection collection;
  EXPECT_EQ(collection.AddBinary(MakeBinary(0, colors::kRed)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(collection.AddEdited(MakeEdited(0, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST(CollectionTest, RejectsDuplicateIdsAcrossKinds) {
  AugmentedCollection collection;
  ASSERT_TRUE(collection.AddBinary(MakeBinary(1, colors::kRed)).ok());
  EXPECT_EQ(collection.AddBinary(MakeBinary(1, colors::kBlue)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(collection.AddEdited(MakeEdited(2, 1)).ok());
  EXPECT_EQ(collection.AddEdited(MakeEdited(2, 1)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(collection.AddBinary(MakeBinary(2, colors::kRed)).code(),
            StatusCode::kAlreadyExists);
}

TEST(CollectionTest, EditedRequiresStoredBase) {
  AugmentedCollection collection;
  EXPECT_EQ(collection.AddEdited(MakeEdited(2, 1)).code(),
            StatusCode::kNotFound);
}

TEST(CollectionTest, MaintainsConnections) {
  AugmentedCollection collection;
  ASSERT_TRUE(collection.AddBinary(MakeBinary(1, colors::kRed)).ok());
  ASSERT_TRUE(collection.AddBinary(MakeBinary(2, colors::kBlue)).ok());
  ASSERT_TRUE(collection.AddEdited(MakeEdited(3, 1)).ok());
  ASSERT_TRUE(collection.AddEdited(MakeEdited(4, 1)).ok());
  ASSERT_TRUE(collection.AddEdited(MakeEdited(5, 2)).ok());
  EXPECT_EQ(collection.EditedOf(1), (std::vector<ObjectId>{3, 4}));
  EXPECT_EQ(collection.EditedOf(2), std::vector<ObjectId>{5});
  EXPECT_TRUE(collection.EditedOf(99).empty());
}

TEST(CollectionTest, PreservesInsertionOrder) {
  AugmentedCollection collection;
  ASSERT_TRUE(collection.AddBinary(MakeBinary(5, colors::kRed)).ok());
  ASSERT_TRUE(collection.AddBinary(MakeBinary(3, colors::kBlue)).ok());
  EXPECT_EQ(collection.binary_ids(), (std::vector<ObjectId>{5, 3}));
}

TEST(CollectionTest, TargetResolverBinaryIsExact) {
  const ColorQuantizer quantizer(4);
  AugmentedCollection collection;
  ASSERT_TRUE(collection.AddBinary(MakeBinary(1, colors::kRed, 6)).ok());
  const RuleEngine engine(quantizer);
  const TargetBoundsResolver resolver =
      collection.MakeTargetResolver(engine);
  const BinIndex red_bin = quantizer.BinOf(colors::kRed);
  Result<TargetBounds> bounds = resolver(1, red_bin);
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->hb_min, 36);
  EXPECT_EQ(bounds->hb_max, 36);
  EXPECT_EQ(bounds->size, 36);
  EXPECT_EQ(bounds->width, 6);
}

TEST(CollectionTest, TargetResolverRecursesThroughEditedTargets) {
  const ColorQuantizer quantizer(4);
  AugmentedCollection collection;
  ASSERT_TRUE(collection.AddBinary(MakeBinary(1, colors::kRed, 6)).ok());
  // Edited image 2: recolors red -> blue over the whole canvas.
  EditedImageInfo edited;
  edited.id = 2;
  edited.script.base_id = 1;
  edited.script.ops.emplace_back(ModifyOp{colors::kRed, colors::kBlue});
  ASSERT_TRUE(collection.AddEdited(edited).ok());

  const RuleEngine engine(quantizer);
  const TargetBoundsResolver resolver =
      collection.MakeTargetResolver(engine);
  const BinIndex red_bin = quantizer.BinOf(colors::kRed);
  Result<TargetBounds> bounds = resolver(2, red_bin);
  ASSERT_TRUE(bounds.ok());
  // All 36 red pixels may have left the bin.
  EXPECT_EQ(bounds->hb_min, 0);
  EXPECT_EQ(bounds->hb_max, 36);
  EXPECT_EQ(bounds->size, 36);
}

TEST(CollectionTest, TargetResolverReportsMissingTarget) {
  const ColorQuantizer quantizer(4);
  AugmentedCollection collection;
  const RuleEngine engine(quantizer);
  const TargetBoundsResolver resolver =
      collection.MakeTargetResolver(engine);
  EXPECT_EQ(resolver(42, 0).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mmdb
