#include "core/query_service.h"

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <thread>
#include <vector>

#include "datasets/augment.h"
#include "test_util.h"

namespace mmdb {
namespace {

const QueryMethod kAllMethods[] = {
    QueryMethod::kInstantiate, QueryMethod::kRbm, QueryMethod::kBwm,
    QueryMethod::kBwmIndexed, QueryMethod::kParallelRbm};

std::unique_ptr<MultimediaDatabase> MakeDataset(int total_images,
                                                uint64_t seed) {
  auto db = MultimediaDatabase::Open().value();
  datasets::DatasetSpec spec;
  spec.total_images = total_images;
  spec.edited_fraction = 0.7;
  spec.seed = seed;
  EXPECT_TRUE(datasets::BuildAugmentedDatabase(db.get(), spec).ok());
  return db;
}

std::vector<QueryRequest> MixedWorkload(const MultimediaDatabase& db,
                                        int per_method, uint64_t seed) {
  Rng rng(seed);
  const auto ranges = datasets::MakeGroundedRangeWorkload(
      db.collection(), db.quantizer(), datasets::FlagPalette(), per_method,
      rng);
  std::vector<QueryRequest> requests;
  for (QueryMethod method : kAllMethods) {
    for (const RangeQuery& query : ranges) {
      requests.push_back(QueryRequest::Range(query, method));
    }
    // One conjunctive request per method, built from two range windows.
    ConjunctiveQuery conjunctive;
    conjunctive.conjuncts.push_back(ranges[0]);
    RangeQuery second = ranges[1 % ranges.size()];
    if (second.bin == ranges[0].bin) second.bin = (second.bin + 1) % 4;
    conjunctive.conjuncts.push_back(second);
    requests.push_back(QueryRequest::Conjunctive(conjunctive, method));
  }
  return requests;
}

/// The serial answer the batched one must reproduce exactly.
Result<QueryResult> RunSerial(const MultimediaDatabase& db,
                              const QueryRequest& request) {
  switch (request.kind()) {
    case QueryKind::kRange:
      return db.RunRange(*request.range(), request.method);
    case QueryKind::kConjunctive:
      return db.RunConjunctive(*request.conjunctive(), request.method);
    case QueryKind::kSimilarity:
      return db.RunSimilarity(*request.similarity());
  }
  return Status::Internal("unreachable");
}

void ExpectSameStats(const QueryStats& a, const QueryStats& b) {
  EXPECT_EQ(a.binary_images_checked, b.binary_images_checked);
  EXPECT_EQ(a.edited_images_bounded, b.edited_images_bounded);
  EXPECT_EQ(a.edited_images_skipped, b.edited_images_skipped);
  EXPECT_EQ(a.rules_applied, b.rules_applied);
  EXPECT_EQ(a.images_instantiated, b.images_instantiated);
}

class QueryServiceBatch : public ::testing::TestWithParam<int> {};

TEST_P(QueryServiceBatch, BatchedMatchesSerialForEveryMethod) {
  auto db = MakeDataset(50, 2201);
  const std::vector<QueryRequest> requests = MixedWorkload(*db, 6, 2203);

  QueryServiceOptions options;
  options.threads = GetParam();
  QueryService service(db.get(), options);
  const auto batched = service.ExecuteBatch(requests);
  ASSERT_EQ(batched.size(), requests.size());

  for (size_t i = 0; i < requests.size(); ++i) {
    const auto serial = RunSerial(*db, requests[i]);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
    // Identical including order: every processor is deterministic.
    EXPECT_EQ(serial->ids, batched[i]->ids)
        << "method " << QueryMethodName(requests[i].method) << " request "
        << i;
    ExpectSameStats(serial->stats, batched[i]->stats);
  }

  const auto snapshot = service.Snapshot();
  EXPECT_EQ(snapshot.batches, 1);
  EXPECT_EQ(snapshot.queries, static_cast<int64_t>(requests.size()));
  EXPECT_EQ(snapshot.failed_queries, 0);
  EXPECT_EQ(snapshot.conjunctive_queries,
            static_cast<int64_t>(std::size(kAllMethods)));
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, QueryServiceBatch,
                         ::testing::Values(1, 2, 4, 8));

TEST(QueryServiceTest, ShutdownJoinsCleanlyWithWorkInFlight) {
  auto db = MakeDataset(40, 2301);
  const std::vector<QueryRequest> requests = MixedWorkload(*db, 12, 2303);

  QueryServiceOptions options;
  options.threads = 4;
  auto service = std::make_unique<QueryService>(db.get(), options);

  // Batches racing against Shutdown must still return complete, correct
  // answers: queued chunk tasks drain, and the submitting threads pick
  // up whatever the pool no longer does.
  std::vector<std::vector<Result<QueryResult>>> answers(3);
  std::vector<std::thread> clients;
  for (size_t t = 0; t < answers.size(); ++t) {
    clients.emplace_back(
        [&, t] { answers[t] = service->ExecuteBatch(requests); });
  }
  service->Shutdown();
  for (std::thread& client : clients) client.join();

  for (const auto& batch : answers) {
    ASSERT_EQ(batch.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
      EXPECT_EQ(batch[i]->ids, RunSerial(*db, requests[i])->ids);
    }
  }

  // A post-shutdown batch still completes (inline on the caller).
  const auto late = service->ExecuteBatch(requests);
  ASSERT_EQ(late.size(), requests.size());
  for (const auto& result : late) EXPECT_TRUE(result.ok());
  service.reset();  // Destructor after explicit Shutdown: idempotent.
}

TEST(QueryServiceTest, StatsMatchKnownScanCountsOnFixture) {
  // Fixture: 3 binary images (red, blue, white) and 2 edited images over
  // the red base, each with a known all-widening script.
  auto db = MultimediaDatabase::Open().value();
  const ObjectId red =
      db->InsertBinaryImage(Image(8, 8, colors::kRed)).value();
  ASSERT_TRUE(db->InsertBinaryImage(Image(8, 8, colors::kBlue)).ok());
  ASSERT_TRUE(db->InsertBinaryImage(Image(8, 8, colors::kWhite)).ok());
  EditScript two_ops;
  two_ops.base_id = red;
  two_ops.ops.emplace_back(ModifyOp{colors::kWhite, colors::kGreen});
  two_ops.ops.emplace_back(ModifyOp{colors::kGreen, colors::kWhite});
  ASSERT_TRUE(db->InsertEditedImage(two_ops).ok());
  EditScript three_ops = two_ops;
  three_ops.ops.emplace_back(ModifyOp{colors::kWhite, colors::kBlue});
  ASSERT_TRUE(db->InsertEditedImage(three_ops).ok());

  RangeQuery query;
  query.bin = db->BinOf(colors::kRed);
  query.min_fraction = 0.5;

  QueryServiceOptions options;
  options.threads = 2;
  QueryService service(db.get(), options);

  // RBM scans everything: 3 histograms checked, both scripts bounded,
  // one rule application per operation (2 + 3).
  auto result = service.Execute(QueryRequest::Range(query, QueryMethod::kRbm));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.binary_images_checked, 3);
  EXPECT_EQ(result->stats.edited_images_bounded, 2);
  EXPECT_EQ(result->stats.rules_applied, 5);

  // BWM: both scripts are all-widening and their base satisfies the
  // query, so the whole Main cluster is accepted rule-free.
  result = service.Execute(QueryRequest::Range(query, QueryMethod::kBwm));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.edited_images_skipped, 2);
  EXPECT_EQ(result->stats.edited_images_bounded, 0);
  EXPECT_EQ(result->stats.rules_applied, 0);

  // Service-level counters aggregate both observations.
  const auto snapshot = service.Snapshot();
  EXPECT_EQ(snapshot.queries, 2);
  EXPECT_EQ(snapshot.batches, 2);
  EXPECT_EQ(snapshot.range_queries, 2);
  EXPECT_EQ(snapshot.stats.binary_images_checked, 6);
  EXPECT_EQ(snapshot.stats.edited_images_bounded, 2);
  EXPECT_EQ(snapshot.stats.edited_images_skipped, 2);
  EXPECT_EQ(snapshot.stats.rules_applied, 5);
  EXPECT_EQ(snapshot.queries_per_method.at(QueryMethod::kRbm), 1);
  EXPECT_EQ(snapshot.queries_per_method.at(QueryMethod::kBwm), 1);
  EXPECT_GE(snapshot.total_query_seconds, 0.0);
  EXPECT_GE(snapshot.max_query_seconds, 0.0);

  service.ResetCounters();
  EXPECT_EQ(service.Snapshot().queries, 0);
}

TEST(QueryServiceTest, MalformedAndFailingRequestsAreCounted) {
  auto db = MakeDataset(10, 2401);
  QueryService service(db.get(), QueryServiceOptions{2, {}});

  // An empty conjunction is rejected by every processor.
  auto result = service.Execute(
      QueryRequest::Conjunctive(ConjunctiveQuery{}, QueryMethod::kRbm));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  RangeQuery bad_bin;
  bad_bin.bin = 10000;
  result = service.Execute(QueryRequest::Range(bad_bin, QueryMethod::kRbm));
  EXPECT_FALSE(result.ok());

  // A similarity request with mismatched histogram arity fails too.
  SimilarityQuery bad_similarity;
  bad_similarity.histogram = ColorHistogram(db->quantizer().BinCount() + 1);
  bad_similarity.histogram.Add(0, 1);
  result = service.Execute(QueryRequest::Similarity(bad_similarity));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  const auto snapshot = service.Snapshot();
  EXPECT_EQ(snapshot.queries, 3);
  EXPECT_EQ(snapshot.failed_queries, 3);
  EXPECT_EQ(snapshot.similarity_queries, 1);
}

TEST(QueryServiceTest, DefaultRequestIsMatchAllRange) {
  // A default-constructed request is the widest range query: bin 0 over
  // [0, 1] — valid, matches every image.
  auto db = MakeDataset(10, 2405);
  QueryService service(db.get(), QueryServiceOptions{2, {}});
  QueryRequest request;
  auto result = service.Execute(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ids.size(), db->collection().BinaryCount() +
                                    db->collection().EditedCount());
}

TEST(QueryServiceTest, SimilarityThroughServiceMatchesFacade) {
  auto db = MakeDataset(40, 2407);
  QueryService service(db.get(), QueryServiceOptions{2, {}});

  SimilarityQuery query;
  query.histogram = ColorHistogram(db->quantizer().BinCount());
  query.histogram.Add(db->BinOf(colors::kBlue), 3);
  query.histogram.Add(db->BinOf(colors::kWhite), 1);
  query.k = 7;

  const auto direct = db->RunSimilarity(query);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  const auto served = service.Execute(QueryRequest::Similarity(query));
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  EXPECT_EQ(direct->ids, served->ids);
  ASSERT_EQ(direct->matches.size(), served->matches.size());
  for (size_t i = 0; i < direct->matches.size(); ++i) {
    EXPECT_EQ(direct->matches[i].id, served->matches[i].id);
    EXPECT_EQ(direct->matches[i].distance_lo, served->matches[i].distance_lo);
    EXPECT_EQ(direct->matches[i].distance_hi, served->matches[i].distance_hi);
    EXPECT_EQ(direct->matches[i].exact, served->matches[i].exact);
  }
  // The contract is no-false-negatives: the candidate set may exceed k
  // when edited images' intervals straddle the cutoff, never undershoot
  // it (while enough images exist).
  EXPECT_GE(served->ids.size(), 7u);

  const auto snapshot = service.Snapshot();
  EXPECT_EQ(snapshot.similarity_queries, 1);
}

TEST(QueryServiceTest, PrintableSnapshot) {
  auto db = MakeDataset(12, 2501);
  QueryService service(db.get(), QueryServiceOptions{2, {}});
  RangeQuery query;
  query.bin = 0;
  ASSERT_TRUE(
      service.Execute(QueryRequest::Range(query, QueryMethod::kBwm)).ok());
  std::ostringstream os;
  service.Snapshot().PrintTo(os);
  EXPECT_NE(os.str().find("queries"), std::string::npos);
  EXPECT_NE(os.str().find("method bwm"), std::string::npos);
  EXPECT_NE(os.str().find("rules applied"), std::string::npos);
}

TEST(QueryServiceTest, RegistryDispatchesParallelRbmThroughFacade) {
  // kParallelRbm rides the database's shared pool; answers (including
  // order) must equal the serial RBM scan.
  auto db = MakeDataset(30, 2601);
  Rng rng(2603);
  const auto workload = datasets::MakeGroundedRangeWorkload(
      db->collection(), db->quantizer(), datasets::FlagPalette(), 8, rng);
  for (const RangeQuery& query : workload) {
    const auto serial = db->RunRange(query, QueryMethod::kRbm);
    const auto pooled = db->RunRange(query, QueryMethod::kParallelRbm);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(pooled.ok());
    EXPECT_EQ(serial->ids, pooled->ids) << query.ToString();
  }
}

}  // namespace
}  // namespace mmdb
