#include "test_util.h"

#include <algorithm>
#include <cmath>

namespace mmdb::testing {

std::vector<Rgb> TestPalette() {
  return {colors::kRed,   colors::kGreen, colors::kBlue, colors::kYellow,
          colors::kWhite, colors::kBlack, colors::kGold, colors::kNavy};
}

Image RandomBlockImage(int32_t width, int32_t height, int palette_size,
                       Rng& rng) {
  const std::vector<Rgb> palette = TestPalette();
  const size_t n = std::min<size_t>(palette.size(),
                                    static_cast<size_t>(palette_size));
  Image image(width, height, palette[rng.Uniform(n)]);
  const int blocks = static_cast<int>(rng.UniformInt(2, 8));
  for (int b = 0; b < blocks; ++b) {
    const int32_t w = static_cast<int32_t>(rng.UniformInt(1, width));
    const int32_t h = static_cast<int32_t>(rng.UniformInt(1, height));
    const int32_t x = static_cast<int32_t>(rng.UniformInt(0, width - 1));
    const int32_t y = static_cast<int32_t>(rng.UniformInt(0, height - 1));
    image.Fill(Rect(x, y, x + w, y + h), palette[rng.Uniform(n)]);
  }
  return image;
}

EditScript RandomScript(
    ObjectId base_id, int32_t width, int32_t height, int op_count,
    const std::vector<datasets::MergeTarget>& merge_targets, Rng& rng) {
  EditScript script;
  script.base_id = base_id;
  const std::vector<Rgb> palette = TestPalette();
  int32_t cur_w = width, cur_h = height;
  Rect dr = Rect::Full(cur_w, cur_h);

  while (static_cast<int>(script.ops.size()) < op_count) {
    switch (rng.Uniform(8)) {
      case 0: {  // Define a random sub-rectangle (always non-empty).
        const int32_t w = static_cast<int32_t>(rng.UniformInt(1, cur_w));
        const int32_t h = static_cast<int32_t>(rng.UniformInt(1, cur_h));
        const int32_t x = static_cast<int32_t>(rng.UniformInt(0, cur_w - w));
        const int32_t y = static_cast<int32_t>(rng.UniformInt(0, cur_h - h));
        const DefineOp op{Rect(x, y, x + w, y + h)};
        dr = op.region;
        script.ops.emplace_back(op);
        break;
      }
      case 1: {  // Modify.
        ModifyOp op;
        op.old_color = palette[rng.Uniform(palette.size())];
        op.new_color = palette[rng.Uniform(palette.size())];
        script.ops.emplace_back(op);
        break;
      }
      case 2:  // Combine.
        script.ops.emplace_back(rng.Bernoulli(0.5)
                                    ? CombineOp::BoxBlur()
                                    : CombineOp::GaussianBlur());
        break;
      case 3: {  // Rigid-body Mutate (translation or arbitrary rotation).
        if (rng.Bernoulli(0.5)) {
          script.ops.emplace_back(MutateOp::Translation(
              static_cast<double>(rng.UniformInt(-cur_w / 3, cur_w / 3)),
              static_cast<double>(rng.UniformInt(-cur_h / 3, cur_h / 3))));
        } else {
          script.ops.emplace_back(MutateOp::Rotation(
              rng.UniformDouble(0.1, 3.0), (dr.x0 + dr.x1) / 2.0,
              (dr.y0 + dr.y1) / 2.0));
        }
        break;
      }
      case 4: {  // Whole-image scale, integer or fractional.
        if (cur_w > 200 || cur_h > 200 || cur_w < 8 || cur_h < 8) break;
        script.ops.emplace_back(DefineOp{Rect::Full(cur_w, cur_h)});
        static constexpr double kScales[] = {0.5, 0.75, 1.5, 2.0};
        const double sx = kScales[rng.Uniform(4)];
        const double sy = kScales[rng.Uniform(4)];
        script.ops.emplace_back(MutateOp::Scale(sx, sy));
        cur_w = static_cast<int32_t>(std::lround(cur_w * sx));
        cur_h = static_cast<int32_t>(std::lround(cur_h * sy));
        dr = Rect::Full(cur_w, cur_h);
        break;
      }
      case 5: {  // General affine stamp: shear about the DR.
        MutateOp op;
        const double shear = rng.UniformDouble(-0.5, 0.5);
        op.m = {1, shear, static_cast<double>(rng.UniformInt(-8, 8)),
                0, 1,     static_cast<double>(rng.UniformInt(-8, 8)),
                0, 0,     1};
        script.ops.emplace_back(op);
        break;
      }
      case 6: {  // Merge(NULL) crop.
        const Rect clipped = dr.Intersect(Rect::Full(cur_w, cur_h));
        if (clipped.Empty()) break;
        script.ops.emplace_back(MergeOp{});
        cur_w = clipped.Width();
        cur_h = clipped.Height();
        dr = Rect::Full(cur_w, cur_h);
        break;
      }
      default: {  // Merge into a target, when allowed.
        if (merge_targets.empty()) break;
        const datasets::MergeTarget& target =
            merge_targets[rng.Uniform(merge_targets.size())];
        MergeOp op;
        op.target = target.id;
        op.x = static_cast<int32_t>(rng.UniformInt(-8, target.width - 1));
        op.y = static_cast<int32_t>(rng.UniformInt(-8, target.height - 1));
        script.ops.emplace_back(op);
        cur_w = target.width;
        cur_h = target.height;
        dr = Rect::Full(cur_w, cur_h);
        break;
      }
    }
  }
  return script;
}

std::set<ObjectId> AsSet(const std::vector<ObjectId>& ids) {
  return {ids.begin(), ids.end()};
}

}  // namespace mmdb::testing
