#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/rbm.h"
#include "datasets/augment.h"
#include "test_util.h"

namespace mmdb {
namespace {

class ParallelScan : public ::testing::TestWithParam<int> {};

TEST_P(ParallelScan, IdenticalToSerialIncludingOrder) {
  auto db = MultimediaDatabase::Open().value();
  datasets::DatasetSpec spec;
  spec.total_images = 60;
  spec.edited_fraction = 0.75;
  spec.seed = 811;
  ASSERT_TRUE(datasets::BuildAugmentedDatabase(db.get(), spec).ok());

  const RbmQueryProcessor serial(&db->collection(), &db->rule_engine());
  const ParallelRbmQueryProcessor parallel(&db->collection(),
                                           &db->rule_engine(), GetParam());
  Rng rng(813);
  const auto workload = datasets::MakeGroundedRangeWorkload(
      db->collection(), db->quantizer(), datasets::FlagPalette(), 10, rng);
  for (const RangeQuery& query : workload) {
    const auto a = serial.RunRange(query);
    const auto b = parallel.RunRange(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Chunk-ordered concatenation reproduces the serial order exactly.
    EXPECT_EQ(a->ids, b->ids) << query.ToString();
    EXPECT_EQ(a->stats.rules_applied, b->stats.rules_applied);
    EXPECT_EQ(a->stats.edited_images_bounded,
              b->stats.edited_images_bounded);
  }
}

TEST_P(ParallelScan, ConjunctiveIdenticalToSerialIncludingOrder) {
  auto db = MultimediaDatabase::Open().value();
  datasets::DatasetSpec spec;
  spec.total_images = 60;
  spec.edited_fraction = 0.75;
  spec.seed = 821;
  ASSERT_TRUE(datasets::BuildAugmentedDatabase(db.get(), spec).ok());

  const RbmQueryProcessor serial(&db->collection(), &db->rule_engine());
  const ParallelRbmQueryProcessor parallel(&db->collection(),
                                           &db->rule_engine(), GetParam());
  Rng rng(823);
  const auto windows = datasets::MakeGroundedRangeWorkload(
      db->collection(), db->quantizer(), datasets::FlagPalette(), 12, rng);
  for (size_t i = 0; i + 1 < windows.size(); i += 2) {
    ConjunctiveQuery query;
    query.conjuncts.push_back(windows[i]);
    query.conjuncts.push_back(windows[i + 1]);
    const auto a = serial.RunConjunctive(query);
    const auto b = parallel.RunConjunctive(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->ids, b->ids) << query.ToString();
    EXPECT_EQ(a->stats.rules_applied, b->stats.rules_applied);
    EXPECT_EQ(a->stats.edited_images_bounded,
              b->stats.edited_images_bounded);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelScan,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ParallelScanTest, HandlesEmptyAndTinyCollections) {
  auto db = MultimediaDatabase::Open().value();
  const ParallelRbmQueryProcessor parallel(&db->collection(),
                                           &db->rule_engine(), 4);
  RangeQuery query;
  query.bin = 0;
  EXPECT_TRUE(parallel.RunRange(query).value().ids.empty());

  const ObjectId base =
      db->InsertBinaryImage(Image(4, 4, colors::kRed)).value();
  EditScript script;
  script.base_id = base;
  script.ops.emplace_back(ModifyOp{colors::kRed, colors::kBlue});
  ASSERT_TRUE(db->InsertEditedImage(script).ok());
  query.bin = db->BinOf(colors::kRed);
  query.min_fraction = 0.5;
  query.max_fraction = 1.0;
  // More threads than edited images.
  const auto result = parallel.RunRange(query).value();
  EXPECT_EQ(result.ids.size(), 2u);
}

TEST(ParallelScanTest, MergeTargetsResolveAcrossThreads) {
  // Scripts whose merge targets are other edited images exercise the
  // per-thread recursive resolvers.
  auto db = MultimediaDatabase::Open().value();
  const ObjectId red =
      db->InsertBinaryImage(Image(8, 8, colors::kRed)).value();
  const ObjectId white =
      db->InsertBinaryImage(Image(8, 8, colors::kWhite)).value();
  std::vector<ObjectId> chain = {white};
  for (int i = 0; i < 12; ++i) {
    EditScript script;
    script.base_id = red;
    MergeOp merge;
    merge.target = chain.back();
    merge.x = 0;
    merge.y = 0;
    script.ops.emplace_back(merge);
    chain.push_back(db->InsertEditedImage(script).value());
  }
  const RbmQueryProcessor serial(&db->collection(), &db->rule_engine());
  const ParallelRbmQueryProcessor parallel(&db->collection(),
                                           &db->rule_engine(), 4);
  RangeQuery query;
  query.bin = db->BinOf(colors::kRed);
  query.min_fraction = 0.3;
  query.max_fraction = 1.0;
  const auto a = serial.RunRange(query);
  const auto b = parallel.RunRange(query);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->ids, b->ids);
}

}  // namespace
}  // namespace mmdb
