#include <gtest/gtest.h>

#include "core/database.h"
#include "core/similarity.h"
#include "datasets/augment.h"
#include "index/histogram_index.h"
#include "test_util.h"

namespace mmdb {
namespace {

using mmdb::testing::AsSet;

/// End-to-end scenario over every dataset kind: build an augmented
/// database, run a realistic workload through all three query methods,
/// and check the paper's cross-method relationships hold.
class EndToEnd : public ::testing::TestWithParam<datasets::DatasetKind> {};

TEST_P(EndToEnd, FullWorkloadAllMethodsConsistent) {
  auto db = MultimediaDatabase::Open().value();
  datasets::DatasetSpec spec;
  spec.kind = GetParam();
  spec.total_images = 80;
  spec.edited_fraction = 0.75;
  spec.widening_probability = 0.7;
  spec.seed = 97;
  const auto stats = datasets::BuildAugmentedDatabase(db.get(), spec);
  ASSERT_TRUE(stats.ok());

  Rng rng(101);
  const auto workload = datasets::MakeRangeWorkload(
      db->quantizer(), datasets::PaletteFor(spec.kind), 10, rng);

  QueryStats rbm_total, bwm_total;
  for (const RangeQuery& query : workload) {
    const auto exact = db->RunRange(query, QueryMethod::kInstantiate);
    const auto rbm = db->RunRange(query, QueryMethod::kRbm);
    const auto bwm = db->RunRange(query, QueryMethod::kBwm);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(rbm.ok());
    ASSERT_TRUE(bwm.ok());
    // BWM == RBM exactly; both are supersets of the exact result.
    EXPECT_EQ(AsSet(rbm->ids), AsSet(bwm->ids));
    const auto rbm_set = AsSet(rbm->ids);
    for (ObjectId id : exact->ids) {
      EXPECT_TRUE(rbm_set.count(id)) << query.ToString();
    }
    rbm_total += rbm->stats;
    bwm_total += bwm->stats;
  }
  // BWM applies no more rules than RBM, ever.
  EXPECT_LE(bwm_total.rules_applied, rbm_total.rules_applied);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EndToEnd,
                         ::testing::Values(datasets::DatasetKind::kFlags,
                                           datasets::DatasetKind::kHelmets,
                                           datasets::DatasetKind::kRoadSigns));

TEST(IntegrationTest, ConventionalIndexAgreesWithProcessorsOnBinaries) {
  auto db = MultimediaDatabase::Open().value();
  datasets::DatasetSpec spec;
  spec.total_images = 50;
  spec.edited_fraction = 0.5;
  spec.seed = 103;
  ASSERT_TRUE(datasets::BuildAugmentedDatabase(db.get(), spec).ok());

  // Index every binary image's signature in the R-tree.
  HistogramIndex index(db->quantizer().BinCount());
  for (ObjectId id : db->collection().binary_ids()) {
    ASSERT_TRUE(
        index.Insert(id, db->collection().FindBinary(id)->histogram).ok());
  }

  Rng rng(107);
  const auto workload = datasets::MakeRangeWorkload(
      db->quantizer(), datasets::FlagPalette(), 8, rng);
  for (const RangeQuery& query : workload) {
    const auto via_index = index.RangeSearch(query).value();
    const auto via_rbm = db->RunRange(query, QueryMethod::kRbm).value();
    // Binary matches from RBM == index hits.
    std::set<ObjectId> rbm_binaries;
    for (ObjectId id : via_rbm.ids) {
      if (db->collection().FindBinary(id) != nullptr) {
        rbm_binaries.insert(id);
      }
    }
    EXPECT_EQ(AsSet(via_index), rbm_binaries) << query.ToString();
  }
}

TEST(IntegrationTest, AugmentationRecoversLightingVariants) {
  // The Section 1/2 motivation: a query shaped like a darkened variant of
  // a stored image fails against the original's histogram but matches the
  // augmented (recolored) variant — and the connection returns the
  // original too.
  auto db = MultimediaDatabase::Open().value();

  // Stored image: a red-dominated "sign".
  Image original(40, 40, colors::kWhite);
  original.Fill(Rect(5, 5, 35, 35), colors::kRed);
  const ObjectId stored = db->InsertBinaryImage(original).value();

  // Augmentation: a "dusk" variant with red darkened to maroon.
  EditScript dusk;
  dusk.base_id = stored;
  dusk.ops.emplace_back(ModifyOp{colors::kRed, colors::kMaroon});
  const ObjectId variant = db->InsertEditedImage(dusk).value();

  // Query: at least 30% maroon-ish pixels (what the camera saw at dusk).
  RangeQuery query;
  query.bin = db->BinOf(colors::kMaroon);
  query.min_fraction = 0.3;
  query.max_fraction = 1.0;

  const auto result = db->RunRange(query, QueryMethod::kBwm).value();
  const auto expanded = db->ExpandWithConnections(result.ids);
  EXPECT_TRUE(AsSet(expanded).count(variant));
  EXPECT_TRUE(AsSet(expanded).count(stored))
      << "connection must surface the original image";
  // Without augmentation the original alone would NOT match.
  EXPECT_FALSE(
      query.Satisfies(db->collection().FindBinary(stored)->histogram.Fraction(
          query.bin)));
}

TEST(IntegrationTest, StrictPaperModeStillEquivalentAcrossMethods) {
  // paper_strict changes bound tightness, not the BWM/RBM relationship.
  DatabaseOptions options;
  options.rule_options.paper_strict = true;
  auto db = MultimediaDatabase::Open(options).value();
  datasets::DatasetSpec spec;
  spec.total_images = 40;
  spec.edited_fraction = 0.7;
  spec.seed = 109;
  ASSERT_TRUE(datasets::BuildAugmentedDatabase(db.get(), spec).ok());
  Rng rng(113);
  for (const RangeQuery& query : datasets::MakeRangeWorkload(
           db->quantizer(), datasets::FlagPalette(), 8, rng)) {
    const auto rbm = db->RunRange(query, QueryMethod::kRbm).value();
    const auto bwm = db->RunRange(query, QueryMethod::kBwm).value();
    EXPECT_EQ(AsSet(rbm.ids), AsSet(bwm.ids));
  }
}

TEST(IntegrationTest, EditedStorageIsSmallerThanRasterStorage) {
  // The premise of edit-sequence storage (Section 2): scripts are orders
  // of magnitude smaller than rasters.
  auto db = MultimediaDatabase::Open().value();
  Rng rng(127);
  const auto flags = datasets::MakeFlagImages(1, rng);
  const ObjectId base = db->InsertBinaryImage(flags[0].image).value();
  EditScript script = datasets::MakeRandomScript(
      base, flags[0].image.width(), flags[0].image.height(),
      /*all_widening=*/true, 8, datasets::FlagPalette(), {}, rng);
  const size_t raster_bytes =
      db->object_store().Get(catalog_keys::RasterKey(base)).value().size();
  const ObjectId edited = db->InsertEditedImage(script).value();
  const size_t script_bytes =
      db->object_store().Get(catalog_keys::ScriptKey(edited)).value().size();
  EXPECT_LT(script_bytes * 20, raster_bytes)
      << "script=" << script_bytes << " raster=" << raster_bytes;
}

}  // namespace
}  // namespace mmdb
