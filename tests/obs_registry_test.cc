// obs::Registry and instrument semantics: exactness of the sharded-atomic
// counters and histograms under heavy concurrent recording (the test the
// `obs` ctest label runs under TSan via -DMMDB_SANITIZE=thread), plus the
// exposition formats.

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace mmdb::obs {
namespace {

TEST(RegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  Registry registry;
  Counter* a = registry.GetCounter("mmdb_test_total", "help");
  Counter* b = registry.GetCounter("mmdb_test_total", "help");
  EXPECT_EQ(a, b);
  Counter* labeled =
      registry.GetCounter("mmdb_test_total", "help", {{"method", "bwm"}});
  EXPECT_NE(a, labeled);
  // Label order must not matter: the registry canonicalizes by key.
  Counter* two = registry.GetCounter("mmdb_pair_total", "help",
                                     {{"a", "1"}, {"b", "2"}});
  Counter* two_swapped = registry.GetCounter("mmdb_pair_total", "help",
                                             {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(two, two_swapped);
}

TEST(RegistryTest, HistogramBucketsAreCumulativeInExposition) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram(
      "mmdb_test_seconds", "help", {}, {0.1, 1.0, 10.0});
  histogram->Record(0.05);   // <= 0.1
  histogram->Record(0.5);    // <= 1.0
  histogram->Record(5.0);    // <= 10.0
  histogram->Record(50.0);   // overflow
  const Histogram::Snapshot snap = histogram->Snap();
  EXPECT_EQ(snap.count, 4);
  EXPECT_DOUBLE_EQ(snap.sum, 55.55);
  EXPECT_DOUBLE_EQ(snap.max, 50.0);
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow.
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 1);

  std::ostringstream text;
  registry.WriteText(text);
  const std::string exposition = text.str();
  // Prometheus buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(exposition.find("# TYPE mmdb_test_seconds histogram"),
            std::string::npos);
  EXPECT_NE(exposition.find("mmdb_test_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(exposition.find("mmdb_test_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(exposition.find("mmdb_test_seconds_bucket{le=\"10\"} 3"),
            std::string::npos);
  EXPECT_NE(exposition.find("mmdb_test_seconds_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(exposition.find("mmdb_test_seconds_count 4"),
            std::string::npos);
}

TEST(RegistryTest, PercentileInterpolatesWithinBucket) {
  Histogram histogram({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) histogram.Record(1.5);
  const Histogram::Snapshot snap = histogram.Snap();
  const double p50 = snap.Percentile(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  // The overflow bucket reports the observed max, not infinity.
  histogram.Record(100.0);
  EXPECT_DOUBLE_EQ(histogram.Snap().Percentile(1.0), 100.0);
}

TEST(RegistryTest, ResetZeroesEveryInstrument) {
  Registry registry;
  Counter* counter = registry.GetCounter("mmdb_reset_total", "help");
  Gauge* gauge = registry.GetGauge("mmdb_reset_gauge", "help");
  Histogram* histogram = registry.GetHistogram("mmdb_reset_seconds", "help");
  counter->Increment(7);
  gauge->Set(3.5);
  histogram->Record(0.25);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(histogram->Snap().count, 0);
  // Registrations survive a reset: same pointers, still exposable.
  EXPECT_EQ(registry.GetCounter("mmdb_reset_total", "help"), counter);
}

TEST(RegistryTest, WriteJsonIsWellFormedEnoughToRoundTripCounts) {
  Registry registry;
  registry.GetCounter("mmdb_json_total", "help")->Increment(42);
  registry.GetHistogram("mmdb_json_seconds", "help")->Record(0.5);
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"mmdb_json_total\""), std::string::npos);
  EXPECT_NE(json.find("42"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// The tentpole concurrency guarantee: many threads hammering the same
// histogram and counter never lose a record, and snapshots taken
// mid-flight are monotonic and never torn. Values are exactly
// representable doubles so the final sum check is equality, not
// tolerance. Run under TSan via -DMMDB_SANITIZE=thread + `ctest -L obs`.
TEST(RegistryConcurrencyTest, ConcurrentRecordsAreExactAndSnapshotsSafe) {
  Registry registry;
  Counter* counter = registry.GetCounter("mmdb_conc_total", "help");
  Histogram* histogram =
      registry.GetHistogram("mmdb_conc_seconds", "help", {},
                            {0.25, 1.0, 4.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  // 0.5 and 3.0 are dyadic rationals: kThreads * kPerThread * 3.5 is
  // exact in double arithmetic.
  constexpr double kLow = 0.5;
  constexpr double kHigh = 3.0;

  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    int64_t last_count = 0;
    double last_sum = 0.0;
    while (!done.load(std::memory_order_relaxed)) {
      const Histogram::Snapshot snap = histogram->Snap();
      // Monotonic: a later snapshot never shows less than an earlier one.
      EXPECT_GE(snap.count, last_count);
      EXPECT_GE(snap.sum, last_sum - 1e-9);
      // Never torn: bucket counts sum to the total count observed at the
      // moment each shard was read, so they can't exceed the final total.
      int64_t bucket_total = 0;
      for (int64_t c : snap.counts) bucket_total += c;
      EXPECT_LE(bucket_total,
                static_cast<int64_t>(kThreads) * 2 * kPerThread);
      last_count = snap.count;
      last_sum = snap.sum;
    }
  });

  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Record(kLow);
        histogram->Record(kHigh);
        counter->Increment();
      }
    });
  }
  for (std::thread& thread : recorders) thread.join();
  done.store(true, std::memory_order_relaxed);
  snapshotter.join();

  EXPECT_EQ(counter->Value(),
            static_cast<int64_t>(kThreads) * kPerThread);
  const Histogram::Snapshot snap = histogram->Snap();
  EXPECT_EQ(snap.count, static_cast<int64_t>(kThreads) * 2 * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, kThreads * kPerThread * (kLow + kHigh));
  EXPECT_DOUBLE_EQ(snap.max, kHigh);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 0);                                // <= 0.25
  EXPECT_EQ(snap.counts[1],
            static_cast<int64_t>(kThreads) * kPerThread);      // 0.5
  EXPECT_EQ(snap.counts[2],
            static_cast<int64_t>(kThreads) * kPerThread);      // 3.0
  EXPECT_EQ(snap.counts[3], 0);                                // overflow
}

// Concurrent first-use registration of the same family must hand every
// thread the same instrument (the magic-statics pattern call sites use).
TEST(RegistryConcurrencyTest, ConcurrentRegistrationConverges) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[static_cast<size_t>(t)] = registry.GetCounter(
          "mmdb_race_total", "help", {{"method", "bwm"}});
      seen[static_cast<size_t>(t)]->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  EXPECT_EQ(seen[0]->Value(), kThreads);
}

}  // namespace
}  // namespace mmdb::obs
