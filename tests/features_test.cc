#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "features/shape.h"
#include "features/signature.h"
#include "features/texture.h"
#include "image/draw.h"
#include "test_util.h"

namespace mmdb {
namespace {

using features::CosineSimilarity;
using features::EdgeDensity;
using features::EdgeOrientationHistogram;
using features::ForegroundArea;
using features::ForegroundMask;
using features::HuMoments;
using features::Signature;

TEST(SignatureTest, DistanceAndSimilarityBasics) {
  const Signature a = {1.0, 0.0, 0.5};
  const Signature b = {0.0, 1.0, 0.5};
  EXPECT_DOUBLE_EQ(features::L1Distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(features::L1Distance(a, b), 2.0);
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
}

TEST(TextureTest, UniformImageIsAllFlat) {
  const Image image(16, 16, colors::kNavy);
  const Signature hist = EdgeOrientationHistogram(image, 8);
  ASSERT_EQ(hist.size(), 9u);
  EXPECT_NEAR(hist.back(), 1.0, 1e-12);  // Everything in the flat bin.
  EXPECT_DOUBLE_EQ(EdgeDensity(image), 0.0);
}

TEST(TextureTest, HistogramSumsToOne) {
  Rng rng(1009);
  for (int trial = 0; trial < 10; ++trial) {
    const Image image = testing::RandomBlockImage(20, 20, 8, rng);
    const Signature hist = EdgeOrientationHistogram(image, 8);
    const double sum = std::accumulate(hist.begin(), hist.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(TextureTest, VerticalStripesProduceVerticalEdges) {
  // Vertical color boundaries have horizontal gradients: orientation
  // theta = atan2(gy, gx) ~ 0, the first bin.
  Image image(32, 32, colors::kBlack);
  draw::VerticalStripes(image, image.Bounds(),
                        {colors::kBlack, colors::kWhite, colors::kBlack,
                         colors::kWhite});
  const Signature hist = EdgeOrientationHistogram(image, 8);
  double edge_mass = 0;
  for (size_t i = 0; i + 1 < hist.size(); ++i) edge_mass += hist[i];
  ASSERT_GT(edge_mass, 0.0);
  EXPECT_GT(hist[0], edge_mass * 0.9);
}

TEST(TextureTest, HorizontalStripesProduceHorizontalEdges) {
  // Horizontal boundaries gradient points in y: theta ~ pi/2, mid bin.
  Image image(32, 32, colors::kBlack);
  draw::HorizontalStripes(image, image.Bounds(),
                          {colors::kBlack, colors::kWhite, colors::kBlack,
                           colors::kWhite});
  const Signature hist = EdgeOrientationHistogram(image, 8);
  double edge_mass = 0;
  for (size_t i = 0; i + 1 < hist.size(); ++i) edge_mass += hist[i];
  ASSERT_GT(edge_mass, 0.0);
  EXPECT_GT(hist[4], edge_mass * 0.9);  // Bin for theta ~ pi/2.
}

TEST(TextureTest, BusyImagesHaveHigherEdgeDensity) {
  Image flat(32, 32, colors::kRed);
  Image checker(32, 32);
  for (int32_t y = 0; y < 32; ++y) {
    for (int32_t x = 0; x < 32; ++x) {
      checker.At(x, y) =
          ((x / 2 + y / 2) % 2 == 0) ? colors::kBlack : colors::kWhite;
    }
  }
  EXPECT_GT(EdgeDensity(checker), EdgeDensity(flat) + 0.3);
}

TEST(TextureTest, TinyImagesAreHandled) {
  EXPECT_TRUE(EdgeOrientationHistogram(Image(2, 2)).empty());
  EXPECT_DOUBLE_EQ(EdgeDensity(Image(1, 5)), 0.0);
}

TEST(ShapeTest, ForegroundMaskSeparatesShapeFromBackdrop) {
  Image image(20, 20, colors::kSkyBlue);
  image.Fill(Rect(5, 5, 15, 15), colors::kRed);
  const auto mask = ForegroundMask(image);
  int64_t on = 0;
  for (uint8_t bit : mask) on += bit;
  EXPECT_EQ(on, 100);
  EXPECT_NEAR(ForegroundArea(image), 0.25, 1e-12);
}

TEST(ShapeTest, EmptyMaskYieldsEmptyMoments) {
  EXPECT_TRUE(HuMoments(Image(10, 10, colors::kWhite)).empty());
  EXPECT_TRUE(HuMoments(Image()).empty());
}

TEST(ShapeTest, HuMomentsTranslationInvariant) {
  Image a(64, 64, colors::kWhite);
  draw::FilledTriangle(a, Rect(4, 4, 28, 28), true, colors::kRed);
  Image b(64, 64, colors::kWhite);
  draw::FilledTriangle(b, Rect(34, 30, 58, 54), true, colors::kRed);
  const Signature ha = HuMoments(a);
  const Signature hb = HuMoments(b);
  ASSERT_EQ(ha.size(), 7u);
  EXPECT_LT(features::L1Distance(ha, hb), 0.05);
}

TEST(ShapeTest, HuMomentsScaleInvariant) {
  Image a(64, 64, colors::kWhite);
  draw::FilledCircle(a, 32, 32, 10, colors::kNavy);
  Image b(64, 64, colors::kWhite);
  draw::FilledCircle(b, 32, 32, 25, colors::kNavy);
  EXPECT_LT(features::L1Distance(HuMoments(a), HuMoments(b)), 0.1);
}

TEST(ShapeTest, HuMomentsRotationInvariantAt90Degrees) {
  // A 2:1 bar rotated by 90 degrees (exact rasterization).
  Image a(64, 64, colors::kWhite);
  a.Fill(Rect(16, 26, 48, 38), colors::kRed);  // Horizontal bar.
  Image b(64, 64, colors::kWhite);
  b.Fill(Rect(26, 16, 38, 48), colors::kRed);  // Vertical bar.
  EXPECT_LT(features::L1Distance(HuMoments(a), HuMoments(b)), 1e-9);
}

TEST(ShapeTest, DistinctShapesSeparate) {
  auto render = [](auto draw_fn) {
    Image image(64, 64, colors::kWhite);
    draw_fn(image);
    return HuMoments(image);
  };
  const Signature octagon = render([](Image& image) {
    draw::FilledOctagon(image, Rect(8, 8, 56, 56), colors::kRed);
  });
  const Signature triangle = render([](Image& image) {
    draw::FilledTriangle(image, Rect(8, 8, 56, 56), true, colors::kRed);
  });
  const Signature bar = render([](Image& image) {
    image.Fill(Rect(8, 28, 56, 36), colors::kRed);
  });
  // A triangle and an octagon differ more than two octagon draws.
  const Signature octagon2 = render([](Image& image) {
    draw::FilledOctagon(image, Rect(12, 12, 52, 52), colors::kNavy);
  });
  const double same = features::L1Distance(octagon, octagon2);
  const double tri = features::L1Distance(octagon, triangle);
  const double elongated = features::L1Distance(octagon, bar);
  EXPECT_LT(same, tri);
  EXPECT_LT(same, elongated);
  EXPECT_GT(tri, 0.05);
}

TEST(ShapeTest, MatchesSyntheticSignShapesAcrossColors) {
  // The same sign shape in different colors yields near-identical
  // moments (shape is color-blind), supporting the road-sign use case.
  Image red_stop(64, 64, colors::kSkyBlue);
  draw::FilledOctagon(red_stop, Rect(10, 10, 54, 54), colors::kRed);
  Image blue_stop(64, 64, colors::kGrassGreen);
  draw::FilledOctagon(blue_stop, Rect(10, 10, 54, 54), colors::kBlue);
  EXPECT_LT(
      features::L1Distance(HuMoments(red_stop), HuMoments(blue_stop)),
      1e-9);
}

}  // namespace
}  // namespace mmdb
