#include <gtest/gtest.h>

#include <set>

#include "core/database.h"
#include "datasets/augment.h"
#include "datasets/generators.h"
#include "image/editor.h"

namespace mmdb {
namespace {

using datasets::DatasetKind;
using datasets::DatasetSpec;

TEST(GeneratorsTest, DeterministicFromSeed) {
  Rng a(5), b(5);
  const auto flags_a = datasets::MakeFlagImages(10, a);
  const auto flags_b = datasets::MakeFlagImages(10, b);
  ASSERT_EQ(flags_a.size(), flags_b.size());
  for (size_t i = 0; i < flags_a.size(); ++i) {
    EXPECT_EQ(flags_a[i].image, flags_b[i].image);
    EXPECT_EQ(flags_a[i].label, flags_b[i].label);
  }
}

TEST(GeneratorsTest, RequestedCountsAndDimensions) {
  Rng rng(6);
  const auto flags = datasets::MakeFlagImages(7, rng, 60, 40);
  EXPECT_EQ(flags.size(), 7u);
  for (const auto& flag : flags) {
    EXPECT_EQ(flag.image.width(), 60);
    EXPECT_EQ(flag.image.height(), 40);
  }
  const auto helmets = datasets::MakeHelmetImages(5, rng, 48);
  EXPECT_EQ(helmets.size(), 5u);
  const auto signs = datasets::MakeRoadSignImages(5, rng, 48);
  EXPECT_EQ(signs.size(), 5u);
}

TEST(GeneratorsTest, ImagesUsePaletteColorsHeavily) {
  // The datasets' defining property: most pixels are saturated palette
  // colors, so histogram bins discriminate.
  Rng rng(8);
  const ColorQuantizer quantizer(4);
  for (const auto& generated : datasets::MakeFlagImages(12, rng)) {
    int64_t palette_pixels = 0;
    for (const Rgb& color : datasets::FlagPalette()) {
      palette_pixels += generated.image.CountColor(color);
    }
    EXPECT_GE(palette_pixels, generated.image.PixelCount() * 9 / 10)
        << generated.label;
  }
}

TEST(GeneratorsTest, LabelsDescribeDesigns) {
  Rng rng(9);
  std::set<std::string> labels;
  for (const auto& generated : datasets::MakeFlagImages(40, rng)) {
    labels.insert(generated.label);
  }
  EXPECT_GE(labels.size(), 3u);  // Several designs appear in 40 draws.
}

TEST(AugmentTest, WideningScriptsContainOnlyWideningOps) {
  Rng rng(10);
  for (int trial = 0; trial < 40; ++trial) {
    const EditScript script = datasets::MakeRandomScript(
        1, 60, 40, /*all_widening=*/true, 6, datasets::FlagPalette(), {},
        rng);
    EXPECT_TRUE(RuleEngine::IsAllBoundWidening(script))
        << script.ToString();
    EXPECT_GE(script.ops.size(), 6u);
  }
}

TEST(AugmentTest, NonWideningScriptsContainAMergeTarget) {
  Rng rng(11);
  const std::vector<datasets::MergeTarget> targets = {{5, 60, 40}};
  int non_widening = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const EditScript script = datasets::MakeRandomScript(
        1, 60, 40, /*all_widening=*/false, 6, datasets::FlagPalette(),
        targets, rng);
    if (!RuleEngine::IsAllBoundWidening(script)) ++non_widening;
  }
  EXPECT_EQ(non_widening, 40);
}

TEST(AugmentTest, GeneratedScriptsAlwaysInstantiate) {
  // Validity property: every produced script must execute without error.
  auto db = MultimediaDatabase::Open().value();
  DatasetSpec spec;
  spec.kind = DatasetKind::kHelmets;
  spec.total_images = 40;
  spec.edited_fraction = 0.75;
  spec.seed = 12;
  const auto stats = datasets::BuildAugmentedDatabase(db.get(), spec);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (ObjectId id : stats->edited_ids) {
    const auto image = db->GetImage(id);
    EXPECT_TRUE(image.ok())
        << id << ": " << image.status().ToString() << "\n"
        << db->collection().FindEdited(id)->script.ToString();
  }
}

TEST(AugmentTest, BuildMatchesSpecShape) {
  auto db = MultimediaDatabase::Open().value();
  DatasetSpec spec;
  spec.kind = DatasetKind::kFlags;
  spec.total_images = 100;
  spec.edited_fraction = 0.8;
  spec.widening_probability = 0.5;
  spec.min_ops = 4;
  spec.max_ops = 8;
  spec.seed = 13;
  const auto stats = datasets::BuildAugmentedDatabase(db.get(), spec);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->binary_ids.size(), 20u);
  EXPECT_EQ(stats->edited_ids.size(), 80u);
  EXPECT_EQ(stats->widening_only + stats->non_widening, 80);
  // ~50% widening with generous slack for 80 draws.
  EXPECT_GT(stats->widening_only, 20);
  EXPECT_GT(stats->non_widening, 20);
  EXPECT_GE(stats->AvgOpsPerEdited(), 4.0);
  EXPECT_LE(stats->AvgOpsPerEdited(), 9.0);
  // The BWM index classified exactly the widening-only scripts into Main.
  EXPECT_EQ(db->bwm_index().MainEditedCount(),
            static_cast<size_t>(stats->widening_only));
  EXPECT_EQ(db->bwm_index().Unclassified().size(),
            static_cast<size_t>(stats->non_widening));
}

TEST(AugmentTest, RejectsBadSpecs) {
  auto db = MultimediaDatabase::Open().value();
  DatasetSpec spec;
  spec.total_images = 0;
  EXPECT_EQ(datasets::BuildAugmentedDatabase(db.get(), spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.total_images = 10;
  spec.edited_fraction = 1.0;
  EXPECT_EQ(datasets::BuildAugmentedDatabase(db.get(), spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AugmentTest, WorkloadTargetsPaletteBins) {
  const ColorQuantizer quantizer(4);
  Rng rng(14);
  const auto palette = datasets::FlagPalette();
  std::set<BinIndex> palette_bins;
  for (const Rgb& color : palette) palette_bins.insert(quantizer.BinOf(color));
  const auto workload =
      datasets::MakeRangeWorkload(quantizer, palette, 50, rng);
  EXPECT_EQ(workload.size(), 50u);
  for (const RangeQuery& query : workload) {
    EXPECT_TRUE(palette_bins.count(query.bin));
    EXPECT_GE(query.min_fraction, 0.0);
    EXPECT_LE(query.max_fraction, 1.0);
    EXPECT_LT(query.min_fraction, query.max_fraction);
  }
}

}  // namespace
}  // namespace mmdb
