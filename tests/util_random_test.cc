#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace mmdb {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformStaysBelowBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  // Mean of U[0,1) over 10k draws is ~0.5 +- a few percent.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(RngTest, UniformDoubleRespectsRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace mmdb
